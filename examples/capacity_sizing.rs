//! Capacity-aware scheduling beats capacity-aware *sizing*: the paper's
//! introductory motivation, demonstrated end to end.
//!
//! A VM advertises 12 vCPUs, but on a real cloud host some are heavily
//! contended, two are stragglers, and two are stacked on one hardware
//! thread. A barrier-parallel job is gated by its slowest thread every
//! round, so the advertised core count is a lie that costs real time.
//!
//! The obvious userspace workaround — probe the effective capacity and
//! shrink the thread pool to match — makes things *worse*: the guest
//! scheduler is still blind, still parks threads on the straggler, and
//! with fewer threads each straggler hit gates the whole round harder.
//! The fix the paper argues for is feeding the accurate abstraction to
//! the *scheduler* (rwc hides straggler/stacked vCPUs, bvs and ivh place
//! around the rest), which this example measures last.
//!
//! ```text
//! cargo run --release --example capacity_sizing
//! ```

use experiments::profiles::rcvm;
use guestos::VcpuId;
use simcore::{SimRng, SimTime};
use vsched::VschedConfig;
use workloads::{work_ms, BarrierCfg, BarrierParallel, Stressor};

const RUN: u64 = 15;

/// Runs a fixed-size problem — `work_ms(48)` of work per round, divided
/// evenly among `threads` — so completed rounds compare time-to-solution
/// directly across pool sizes.
fn barrier_rounds(seed: u64, threads: usize, cfg: Option<VschedConfig>) -> u64 {
    let mut p = rcvm(seed);
    let per_thread = work_ms(48.0) / threads as f64;
    let (wl, stats) = BarrierParallel::new(BarrierCfg::new(threads, per_thread), SimRng::new(9));
    p.machine.set_workload(p.vm, Box::new(wl));
    if let Some(c) = cfg {
        p.machine
            .with_vm(p.vm, |g, plat| vsched::install(g, plat, c));
    }
    p.machine.start();
    p.machine.run_until(SimTime::from_secs(RUN));
    let done = stats.borrow().completed;
    done
}

fn main() {
    // Phase 1: probe. A light background load keeps the guest ticking while
    // the vProbers measure; only prober output is read afterwards.
    let mut p = rcvm(42);
    let (wl, _s) = Stressor::new(2, work_ms(5.0));
    p.machine.set_workload(p.vm, Box::new(wl));
    p.machine.with_vm(p.vm, |g, plat| {
        vsched::install(g, plat, VschedConfig::full())
    });
    p.machine.start();
    p.machine.run_until(SimTime::from_secs(5));

    let nr = p.machine.vms[p.vm].nr_vcpus;
    let vs = vsched::instance(&mut p.machine.vms[p.vm].guest).expect("vsched installed");
    println!("probed per-vCPU capacity (1024 = one full reference core):");
    let mut total = 0.0;
    for v in 0..nr {
        let cap = vs.vcap.capacity(VcpuId(v));
        total += cap;
        let tag = if cap < 0.1 * vs.vcap.mean_cap {
            "  <- straggler"
        } else if vs
            .vtop
            .topo
            .as_ref()
            .map(|t| t.stacked[v].count() > 1)
            .unwrap_or(false)
        {
            "  <- stacked"
        } else {
            ""
        };
        println!("  vCPU{v:>2}: {cap:>6.0}{tag}");
    }
    let suggested = (total / 1024.0).round().max(1.0) as usize;
    println!(
        "\naggregate: {:.1} effective cores from {nr} advertised vCPUs -> a sizing tool would pick {suggested} threads\n",
        total / 1024.0
    );

    // Phase 2: the same fixed-size problem, three ways.
    let naive = barrier_rounds(42, nr, None);
    let sized_blind = barrier_rounds(42, suggested, None);
    let vsched_full = barrier_rounds(42, nr, Some(VschedConfig::full()));

    println!("fixed-size problem: rounds completed in {RUN} s (higher = faster time-to-solution):");
    println!("  {nr:>2} threads, plain CFS          : {naive:>5}");
    println!(
        "  {suggested:>2} threads, plain CFS          : {sized_blind:>5}  ({:+.0}%)  <- sizing without the abstraction backfires",
        100.0 * (sized_blind as f64 / naive as f64 - 1.0)
    );
    println!(
        "  {nr:>2} threads, vSched             : {vsched_full:>5}  ({:+.0}%)  <- abstraction in the scheduler",
        100.0 * (vsched_full as f64 / naive as f64 - 1.0)
    );
    println!(
        "\nshrinking the pool still parks threads on the straggler and each hit gates a\n\
         whole round; vSched instead hides the bad vCPUs from placement and solves the\n\
         same problem {:.1}x faster than naive CFS.",
        vsched_full as f64 / naive as f64
    );
}
