//! vtop demo: probe a hidden vCPU topology from inside the VM.
//!
//! Builds the paper's Figure 10b setup — 8 vCPUs spread over two sockets
//! with SMT pairs and one *stacked* pair — and prints the measured
//! cache-line transfer latency matrix plus the reconstructed topology.
//!
//! ```text
//! cargo run --release --example probe_topology
//! ```

use hostsim::{HostSpec, Pinning, ScenarioBuilder, VmSpec};
use simcore::SimTime;
use vsched::VschedConfig;
use workloads::{work_ms, Stressor};

fn main() {
    // Ground truth (invisible to the guest): vCPUs 0-3 on two SMT pairs of
    // socket 0; vCPUs 4,5 an SMT pair on socket 1; vCPUs 6,7 stacked on a
    // single hardware thread of socket 1.
    let host = HostSpec::new(2, 2, 2);
    let (b, vm) = ScenarioBuilder::new(host, 1).vm(VmSpec {
        nr_vcpus: 8,
        pinning: Pinning::OneToOne(vec![0, 1, 2, 3, 4, 5, 6, 6]),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    let (wl, _s) = Stressor::new(2, work_ms(5.0));
    m.set_workload(vm, Box::new(wl));
    m.with_vm(vm, |g, p| {
        vsched::install(g, p, VschedConfig::probers_only())
    });
    m.start();
    m.run_until(SimTime::from_secs(5));

    let vs = vsched::instance(&mut m.vms[vm].guest).expect("vsched installed");
    println!("probed cache-line transfer latency matrix (ns; inf = stacked, - = inferred):\n");
    print!("      ");
    for j in 0..8 {
        print!("{j:>6}");
    }
    println!();
    for (i, row) in vs.vtop.latency_matrix.iter().enumerate() {
        print!("vCPU{i} ");
        for (j, &v) in row.iter().enumerate() {
            if i == j {
                print!("{:>6}", "0");
            } else if v.is_infinite() {
                print!("{:>6}", "inf");
            } else if v < 0.0 {
                print!("{:>6}", "-");
            } else {
                print!("{v:>6.0}");
            }
        }
        println!();
    }

    let topo = vs.vtop.topo.as_ref().expect("topology probed");
    println!("\nreconstructed topology:");
    for v in 0..8 {
        let smt: Vec<usize> = topo.smt[v].iter().filter(|&s| s != v).collect();
        let stacked: Vec<usize> = topo.stacked[v].iter().filter(|&s| s != v).collect();
        let socket: Vec<usize> = topo.socket[v].iter().collect();
        println!("  vCPU{v}: smt_siblings={smt:?} stacked_with={stacked:?} socket={socket:?}");
    }
    println!(
        "\nfull probe took {} of simulated time (paper: sub-second)",
        metrics::fmt_ns(vs.vtop.last_full_ns.unwrap_or(0))
    );
}
