//! Quickstart: build a small overcommitted cloud host, run a benchmark
//! under stock CFS and under vSched, and compare. The vSched run is traced:
//! a Chrome trace-event file and a schedstat dump land in `target/`, and
//! the streaming invariant checker audits the run as it happens.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use simcore::{SimRng, SimTime};
use trace::{chrome_trace, Collector, SharedCollector, TraceSink};
use vsched::VschedConfig;
use workloads::{build, work_ms, Stressor};

fn run(with_vsched: bool, trace_to: Option<&SharedCollector>) -> f64 {
    // A 16-core host: our 16-vCPU VM shares every core with a competing
    // VM's stressor, so each vCPU gets ~50% and experiences inactive
    // periods — the dynamic vCPU resources the paper targets.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(16), 42).vm(VmSpec::pinned(16, 0));
    let (b, competitor) = b.vm(VmSpec::pinned(16, 0));
    let mut machine = b.build();
    if let Some(shared) = trace_to {
        machine.attach_trace(shared);
    }

    // The guest runs canneal (lock-heavy PARSEC benchmark) with 4 threads:
    // plenty of unused vCPUs whose cycles a stalled task could harvest.
    let (workload, stats) = build("canneal", 4, SimRng::new(7));
    machine.set_workload(vm, workload);
    let (stress, _s) = Stressor::new(16, work_ms(10.0));
    machine.set_workload(competitor, Box::new(stress));

    if with_vsched {
        // Install vSched: vProbers (vcap/vact/vtop) + bvs + ivh + rwc —
        // entirely guest-side, no hypervisor changes.
        machine.with_vm(vm, |guest, plat| {
            vsched::install(guest, plat, VschedConfig::full());
        });
    }

    machine.start();
    let duration = SimTime::from_secs(10);
    machine.run_until(duration);
    stats.rate(duration)
}

fn main() {
    println!("vSched quickstart: canneal x4 threads on an overcommitted 16-vCPU VM\n");
    let cfs = run(false, None);
    println!("  stock CFS : {cfs:8.1} lock sections/s");

    // Trace the vSched run: ring buffer for the exporters, checker for the
    // conservation laws, schedstat aggregates always-on.
    let (_, shared) = TraceSink::shared(Collector::with_ring(1 << 18).with_checker());
    let vsched = run(true, Some(&shared));
    println!("  vSched    : {vsched:8.1} lock sections/s");
    println!(
        "\n  improvement: {:+.1}% (ivh harvests cycles the stalled task would waste)",
        100.0 * (vsched / cfs - 1.0)
    );

    let collector = shared.borrow();
    let ring = collector.ring.as_ref().expect("ring attached");
    println!(
        "\ntrace: {} events captured ({} dropped by the ring)",
        ring.len(),
        ring.dropped()
    );
    let report = collector
        .checker
        .as_ref()
        .expect("checker attached")
        .report();
    println!("invariant checker: {report}");

    let _ = std::fs::create_dir_all("target");
    let json_path = "target/quickstart_trace.json";
    if let Err(e) = std::fs::write(json_path, chrome_trace(ring)) {
        eprintln!("could not write {json_path}: {e}");
    } else {
        println!("wrote {json_path} — open it at https://ui.perfetto.dev (or chrome://tracing)");
    }
    let stat_path = "target/quickstart_schedstat.txt";
    if let Err(e) = std::fs::write(stat_path, collector.stats.render(SimTime::from_secs(10))) {
        eprintln!("could not write {stat_path}: {e}");
    } else {
        println!("wrote {stat_path} — Linux /proc/schedstat-style per-vCPU aggregates");
    }
}
