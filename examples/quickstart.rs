//! Quickstart: build a small overcommitted cloud host, run a benchmark
//! under stock CFS and under vSched, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use simcore::{SimRng, SimTime};
use vsched::VschedConfig;
use workloads::{build, work_ms, Stressor};

fn run(with_vsched: bool) -> f64 {
    // A 16-core host: our 16-vCPU VM shares every core with a competing
    // VM's stressor, so each vCPU gets ~50% and experiences inactive
    // periods — the dynamic vCPU resources the paper targets.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(16), 42).vm(VmSpec::pinned(16, 0));
    let (b, competitor) = b.vm(VmSpec::pinned(16, 0));
    let mut machine = b.build();

    // The guest runs canneal (lock-heavy PARSEC benchmark) with 4 threads:
    // plenty of unused vCPUs whose cycles a stalled task could harvest.
    let (workload, stats) = build("canneal", 4, SimRng::new(7));
    machine.set_workload(vm, workload);
    let (stress, _s) = Stressor::new(16, work_ms(10.0));
    machine.set_workload(competitor, Box::new(stress));

    if with_vsched {
        // Install vSched: vProbers (vcap/vact/vtop) + bvs + ivh + rwc —
        // entirely guest-side, no hypervisor changes.
        machine.with_vm(vm, |guest, plat| {
            vsched::install(guest, plat, VschedConfig::full());
        });
    }

    machine.start();
    let duration = SimTime::from_secs(10);
    machine.run_until(duration);
    stats.rate(duration)
}

fn main() {
    println!("vSched quickstart: canneal x4 threads on an overcommitted 16-vCPU VM\n");
    let cfs = run(false);
    println!("  stock CFS : {cfs:8.1} lock sections/s");
    let vsched = run(true);
    println!("  vSched    : {vsched:8.1} lock sections/s");
    println!(
        "\n  improvement: {:+.1}% (ivh harvests cycles the stalled task would waste)",
        100.0 * (vsched / cfs - 1.0)
    );
}
