//! Latency-server demo: how bvs steers small latency-sensitive tasks.
//!
//! Recreates a scaled-down Table 3: Masstree-like requests on a VM with
//! asymmetric vCPU latency, with and without bvs, printing the
//! queue/service/end-to-end p95 breakdown.
//!
//! ```text
//! cargo run --release --example latency_server
//! ```

use hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use vsched::VschedConfig;
use workloads::{work_ms, LatencyServer, LatencyServerCfg, Stressor};

fn run(with_bvs: bool) -> (f64, f64, f64) {
    // 8 vCPUs at 50% capacity; vCPUs 0-3 have 3 ms inactive periods,
    // vCPUs 4-7 have 9 ms (the "vCPU latency" asymmetry of §5.4).
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(8), 42).vm(VmSpec::pinned(8, 0));
    let (b, stress_vm) = b.vm(VmSpec::pinned(8, 0));
    let mut m = b.build();
    let (sw, _s) = Stressor::new(8, work_ms(10.0));
    m.set_workload(stress_vm, Box::new(sw));
    for th in 0..8 {
        m.set_thread_quantum(th, if th < 4 { 3 * MS } else { 9 * MS });
    }

    // Masstree: ~0.36 ms requests at a low rate.
    let cfg = LatencyServerCfg::new(4, work_ms(0.36), 6.0 * MS as f64);
    let (wl, stats) = LatencyServer::new(cfg, SimRng::new(5));
    m.set_workload(vm, Box::new(wl));

    let vcfg = if with_bvs {
        VschedConfig {
            ivh: false,
            rwc: false,
            ..VschedConfig::full()
        }
    } else {
        VschedConfig::probers_only()
    };
    m.with_vm(vm, |g, p| vsched::install(g, p, vcfg));
    m.start();
    m.run_until(SimTime::from_secs(20));
    let s = stats.borrow();
    (
        s.queue.p95() as f64 / 1e6,
        s.service.p95() as f64 / 1e6,
        s.e2e.p95() as f64 / 1e6,
    )
}

fn main() {
    println!("Masstree-like requests on a VM with asymmetric vCPU latency\n");
    println!(
        "{:<14}{:>12}{:>12}{:>12}",
        "config", "queue p95", "service p95", "e2e p95"
    );
    let (q, s, e) = run(false);
    println!("{:<14}{q:>10.2}ms{s:>10.2}ms{e:>10.2}ms", "without bvs");
    let (q2, s2, e2) = run(true);
    println!("{:<14}{q2:>10.2}ms{s2:>10.2}ms{e2:>10.2}ms", "with bvs");
    println!(
        "\nbvs places the small requests on low-latency vCPUs: e2e p95 {:+.0}%",
        100.0 * (e2 / e - 1.0)
    );
}
