//! Multi-tenant demo: a server VM rides out changing neighbours.
//!
//! An Nginx-like VM floats freely over a 8-core host while neighbour VMs
//! come and go (the Figure 17 scenario, scaled down); live per-second
//! throughput is printed for stock CFS and vSched side by side.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use simcore::time::SEC;
use simcore::{SimRng, SimTime};
use vsched::VschedConfig;
use workloads::{build, work_ms, DelayedWorkload, LatencyServer, LatencyServerCfg};

fn run(with_vsched: bool) -> Vec<f64> {
    let threads: Vec<usize> = (0..8).collect();
    let (b, vm) =
        ScenarioBuilder::new(HostSpec::flat(8), 42).vm(VmSpec::floating(8, threads.clone()));
    let (b, n1) = b.vm(VmSpec::floating(8, threads.clone()));
    let (b, n2) = b.vm(VmSpec::floating(8, threads));
    let mut m = b.build();

    // The server: ~0.5 ms requests, offered at ~60% of the host.
    let service = work_ms(0.5);
    let cfg = LatencyServerCfg::new(8, service, service / 1024.0 / 8.0 / 0.6).with_series(SEC);
    let (wl, stats) = LatencyServer::new(cfg, SimRng::new(3));
    m.set_workload(vm, Box::new(wl));

    // Neighbours: a sync-heavy VM arrives at t=5s, a compute-heavy one at
    // t=10s.
    let (w1, _h1) = build("facesim", 8, SimRng::new(4));
    m.set_workload(n1, Box::new(DelayedWorkload::new(w1, 5 * SEC)));
    let (w2, _h2) = build("swaptions", 8, SimRng::new(5));
    m.set_workload(n2, Box::new(DelayedWorkload::new(w2, 10 * SEC)));

    if with_vsched {
        m.with_vm(vm, |g, p| vsched::install(g, p, VschedConfig::full()));
    }
    m.start();
    m.run_until(SimTime::from_secs(15));
    let out = stats
        .borrow()
        .series
        .as_ref()
        .map(|ts| ts.rates_per_sec())
        .unwrap_or_default();
    out
}

fn main() {
    println!("Nginx-like server under arriving neighbours (req/s per second)\n");
    let cfs = run(false);
    let vs = run(true);
    println!("{:>4} {:>10} {:>10}   phase", "t(s)", "CFS", "vSched");
    for i in 0..cfs.len().min(vs.len()) {
        let phase = match i {
            0..=4 => "alone",
            5..=9 => "+ facesim",
            _ => "+ facesim + swaptions",
        };
        println!("{:>4} {:>10.0} {:>10.0}   {phase}", i + 1, cfs[i], vs[i]);
    }
    let tail = |s: &[f64]| s[10..].iter().sum::<f64>() / (s.len() - 10).max(1) as f64;
    println!(
        "\ncontended-phase mean: CFS {:.0} req/s, vSched {:.0} req/s ({:+.0}%)",
        tail(&cfs),
        tail(&vs),
        100.0 * (tail(&vs) / tail(&cfs) - 1.0)
    );
}
