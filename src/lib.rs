//! vsched-repro — umbrella crate for the vSched (EuroSys '25) reproduction.
//!
//! This crate re-exports the workspace's public surface so examples and
//! integration tests can depend on a single crate. See `README.md` for the
//! architecture overview and `DESIGN.md` for the system inventory.

pub use experiments;
pub use guestos;
pub use hostsim;
pub use metrics;
pub use simcore;
pub use trace;
pub use vsched;
pub use workloads;
