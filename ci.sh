#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the tier-1 build + test suite.
# Everything here must pass without network access (crates/bench, which
# needs criterion from the registry, sits outside default-members).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "CI OK"
