#!/usr/bin/env bash
# Offline CI gate: formatting, lints, the tier-1 build + test suite, a
# serial-vs-parallel determinism smoke of the suite runner, and a bench
# harness regeneration pass. Everything here must pass without network
# access.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== suite runner: serial vs parallel output equality (fig03, smoke scale)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
VSCHED_SCALE=smoke ./target/release/suite --filter fig03 --jobs 1 --seed 42 \
    > "$tmpdir/serial.txt" 2>/dev/null
VSCHED_SCALE=smoke ./target/release/suite --filter fig03 --jobs 4 --seed 42 \
    > "$tmpdir/parallel.txt" 2>/dev/null
diff "$tmpdir/serial.txt" "$tmpdir/parallel.txt"

echo "== chaos-smoke: fixed seed (determinism) + one randomized seed"
# Fixed seed: the chaos cell must replay byte-identically across worker
# counts, like the figures above.
VSCHED_SCALE=smoke ./target/release/suite --filter chaos --jobs 1 --seed 42 \
    > "$tmpdir/chaos_serial.txt" 2>/dev/null
VSCHED_SCALE=smoke ./target/release/suite --filter chaos --jobs 4 --seed 42 \
    > "$tmpdir/chaos_parallel.txt" 2>/dev/null
diff "$tmpdir/chaos_serial.txt" "$tmpdir/chaos_parallel.txt"
# Randomized seed: fault-class invariant sweeps on a fresh schedule each
# run. The seed is printed so a CI failure replays locally with
# CHAOS_SEED=<seed> cargo test --release --test chaos.
chaos_seed=$(date +%s)
echo "   chaos-smoke randomized seed: $chaos_seed"
if ! CHAOS_SEED="$chaos_seed" cargo test -q --release --test chaos invariants; then
    echo "chaos-smoke FAILED with CHAOS_SEED=$chaos_seed (replay locally with that env var)" >&2
    exit 1
fi

echo "== regenerate BENCH_vsched.json (quick scale)"
./target/release/vsched-bench

echo "CI OK"
