#!/usr/bin/env bash
# Offline CI gate: formatting, lints, the tier-1 build + test suite, a
# serial-vs-parallel determinism smoke of the suite runner, and a bench
# harness regeneration pass. Everything here must pass without network
# access.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== suite runner: serial vs parallel output equality (fig03, smoke scale)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
VSCHED_SCALE=smoke ./target/release/suite --filter fig03 --jobs 1 --seed 42 \
    > "$tmpdir/serial.txt" 2>/dev/null
VSCHED_SCALE=smoke ./target/release/suite --filter fig03 --jobs 4 --seed 42 \
    > "$tmpdir/parallel.txt" 2>/dev/null
diff "$tmpdir/serial.txt" "$tmpdir/parallel.txt"

echo "== chaos-smoke: fixed seed (determinism) + one randomized seed"
# Fixed seed: the chaos cell must replay byte-identically across worker
# counts, like the figures above.
VSCHED_SCALE=smoke ./target/release/suite --filter chaos --jobs 1 --seed 42 \
    > "$tmpdir/chaos_serial.txt" 2>/dev/null
VSCHED_SCALE=smoke ./target/release/suite --filter chaos --jobs 4 --seed 42 \
    > "$tmpdir/chaos_parallel.txt" 2>/dev/null
diff "$tmpdir/chaos_serial.txt" "$tmpdir/chaos_parallel.txt"
# Randomized seed: fault-class invariant sweeps on a fresh schedule each
# run. The seed is printed so a CI failure replays locally with
# CHAOS_SEED=<seed> cargo test --release --test chaos.
chaos_seed=$(date +%s)
echo "   chaos-smoke randomized seed: $chaos_seed"
if ! CHAOS_SEED="$chaos_seed" cargo test -q --release --test chaos invariants; then
    echo "chaos-smoke FAILED with CHAOS_SEED=$chaos_seed (replay locally with that env var)" >&2
    exit 1
fi

echo "== fleet-smoke: fixed-seed fleet cell, serial vs parallel byte-identity"
# The fleet job churns a multi-host cluster per placement policy; its
# placement decisions, SLO merge, and trace-law verdicts must replay
# byte-identically regardless of worker count (mirrors the chaos-smoke
# fixed-seed gate).
VSCHED_SCALE=smoke ./target/release/suite --filter fleet --jobs 1 --seed 42 \
    --no-ckpt > "$tmpdir/fleet_serial.txt" 2>/dev/null
VSCHED_SCALE=smoke ./target/release/suite --filter fleet --jobs 4 --seed 42 \
    --no-ckpt > "$tmpdir/fleet_parallel.txt" 2>/dev/null
diff "$tmpdir/fleet_serial.txt" "$tmpdir/fleet_parallel.txt"
grep -q "violations" "$tmpdir/fleet_serial.txt"
# The *cluster-stepping* pool (host shards inside each cell, distinct from
# the suite's job pool above) must be equally invisible: a forced
# four-worker stepping pool vs the run above, byte-identical figures.
VSCHED_SCALE=smoke ./target/release/suite --filter fleet --jobs 1 --seed 42 \
    --fleet-threads 4 --no-ckpt > "$tmpdir/fleet_step4.txt" 2>/dev/null
diff "$tmpdir/fleet_serial.txt" "$tmpdir/fleet_step4.txt"

echo "== replay-smoke: fleettrace gen/validate + replayed-day byte-identity"
# 1) Generate a small trace with the CLI and validate it; a corrupted copy
#    must be rejected with a nonzero exit and a line-precise error.
./target/release/fleettrace gen --profile sap-diurnal --horizon-secs 2 \
    --out "$tmpdir/day.trace.jsonl" 2>/dev/null
./target/release/fleettrace validate "$tmpdir/day.trace.jsonl" > /dev/null
sed 's/"op":"depart"/"op":"explode"/' "$tmpdir/day.trace.jsonl" \
    > "$tmpdir/corrupt.trace.jsonl"
if ./target/release/fleettrace validate "$tmpdir/corrupt.trace.jsonl" \
    2> "$tmpdir/corrupt_err.txt"; then
    echo "fleettrace validate accepted a corrupted trace" >&2
    exit 1
fi
grep -q "line " "$tmpdir/corrupt_err.txt"
# A trace that *parses* but is not the codec's canonical byte encoding
# (here: one extra space) must fail the round-trip gate, and every
# committed example must pass it.
sed '2s/"op":"arrive"/"op": "arrive"/' "$tmpdir/day.trace.jsonl" \
    > "$tmpdir/noncanon.trace.jsonl"
if ./target/release/fleettrace validate "$tmpdir/noncanon.trace.jsonl" \
    2> "$tmpdir/noncanon_err.txt"; then
    echo "fleettrace validate accepted a non-canonical trace" >&2
    exit 1
fi
grep -q "canonical encoding" "$tmpdir/noncanon_err.txt"
for example in examples/*.trace.jsonl; do
    ./target/release/fleettrace validate "$example" | grep -q "round-trip clean"
done
# 2) The committed example trace must replay end-to-end, law-clean, and
#    the cluster-stepping pool must be invisible in the replay output:
#    one host-stepping worker vs four, byte-identical stdout. This pins
#    the stepping parallelism itself, not just the suite-level pool.
./target/release/fleettrace replay examples/sap_day.trace.jsonl \
    --policy probe-aware --mode vsched --fleet-threads 1 \
    > "$tmpdir/step_serial.txt"
./target/release/fleettrace replay examples/sap_day.trace.jsonl \
    --policy probe-aware --mode vsched --fleet-threads 4 \
    > "$tmpdir/step_parallel.txt"
diff "$tmpdir/step_serial.txt" "$tmpdir/step_parallel.txt"
# 3) The fleet-replay job (every policy x guest mode over one generated
#    day per profile) must be byte-identical across worker counts.
VSCHED_SCALE=smoke ./target/release/suite --filter fleet-replay --jobs 1 --seed 42 \
    --no-ckpt > "$tmpdir/replay_serial.txt" 2>/dev/null
VSCHED_SCALE=smoke ./target/release/suite --filter fleet-replay --jobs 4 --seed 42 \
    --no-ckpt > "$tmpdir/replay_parallel.txt" 2>/dev/null
diff "$tmpdir/replay_serial.txt" "$tmpdir/replay_parallel.txt"
grep -q "violations" "$tmpdir/replay_serial.txt"

echo "== fleet-chaos-smoke: faulted day determinism, seed sweep, shrink round-trip"
# 1) Fixed seed: the fleet-chaos job (pinned SAP day x pinned failure
#    plan, every policy x guest config) must be byte-identical across
#    suite workers AND across cluster-stepping workers, and every cell
#    must end law-clean with nothing stranded on a dead host.
VSCHED_SCALE=smoke ./target/release/suite --filter fleet-chaos --jobs 1 --seed 42 \
    --no-ckpt > "$tmpdir/fchaos_serial.txt" 2>/dev/null
VSCHED_SCALE=smoke ./target/release/suite --filter fleet-chaos --jobs 4 --seed 42 \
    --no-ckpt > "$tmpdir/fchaos_parallel.txt" 2>/dev/null
diff "$tmpdir/fchaos_serial.txt" "$tmpdir/fchaos_parallel.txt"
VSCHED_SCALE=smoke ./target/release/suite --filter fleet-chaos --jobs 1 --seed 42 \
    --fleet-threads 4 --no-ckpt > "$tmpdir/fchaos_step4.txt" 2>/dev/null
diff "$tmpdir/fchaos_serial.txt" "$tmpdir/fchaos_step4.txt"
grep -q "stranded" "$tmpdir/fchaos_serial.txt"
# 2) Randomized seed: migration laws on a fresh faulted day each run. The
#    seed is printed so a CI failure replays locally with
#    FLEET_CHAOS_SEED=<seed> cargo test --release -p vsched-fleet --test fleet_chaos.
fleet_chaos_seed=$(date +%s%N)
echo "   fleet-chaos-smoke randomized seed: $fleet_chaos_seed"
if ! FLEET_CHAOS_SEED="$fleet_chaos_seed" \
    cargo test -q --release -p vsched-fleet --test fleet_chaos; then
    echo "fleet-chaos-smoke FAILED with FLEET_CHAOS_SEED=$fleet_chaos_seed (replay locally with that env var)" >&2
    exit 1
fi
# 3) Shrink + replay the fault plan under the synthetic law (healthy code
#    passes the real checker, so CI exercises the fleet ddmin pipeline
#    with the canary law), mirroring the single-host shrink gate below.
VSCHED_SHRINK_LAW=synthetic ./target/release/suite --shrink-fleet 3735928559 \
    2> "$tmpdir/fshrink_err.txt"
grep -q "repro written" "$tmpdir/fshrink_err.txt"
VSCHED_SHRINK_LAW=synthetic ./target/release/suite \
    --replay-fleet target/fleet_chaos_repro_3735928559.json \
    2> "$tmpdir/freplay_err.txt"
grep -q "reproduced law 'fleet-synthetic-canary'" "$tmpdir/freplay_err.txt"
# 4) The committed maintenance-drain day replays law-clean under a chaos
#    overlay, byte-identically at 1 vs 4 stepping workers.
./target/release/fleettrace replay examples/sap_drain.trace.jsonl \
    --policy probe-aware --mode vsched --chaos-seed 99 --migration handoff \
    --fleet-threads 1 > "$tmpdir/drain_serial.txt"
./target/release/fleettrace replay examples/sap_drain.trace.jsonl \
    --policy probe-aware --mode vsched --chaos-seed 99 --migration handoff \
    --fleet-threads 4 > "$tmpdir/drain_step4.txt"
diff "$tmpdir/drain_serial.txt" "$tmpdir/drain_step4.txt"
grep -q "chaos seed" "$tmpdir/drain_serial.txt"
# 5) So does the committed resize-storm chaos day (the chaos-mode example
#    trace captured via the fleettrace codec).
./target/release/fleettrace replay examples/sap_storm_chaos.trace.jsonl \
    --policy probe-aware --mode vsched --chaos-seed 7 --migration handoff \
    --fleet-threads 1 > "$tmpdir/storm_serial.txt"
./target/release/fleettrace replay examples/sap_storm_chaos.trace.jsonl \
    --policy probe-aware --mode vsched --chaos-seed 7 --migration handoff \
    --fleet-threads 4 > "$tmpdir/storm_step4.txt"
diff "$tmpdir/storm_serial.txt" "$tmpdir/storm_step4.txt"
grep -q "chaos seed" "$tmpdir/storm_serial.txt"

echo "== adversary-smoke: gamed-host determinism, seed sweep, shrink round-trip"
# 1) Fixed seed: the adversary matrix (host policy x victim guest, a
#    dodge and a pollute sub-run per cell) must be byte-identical across
#    worker counts, like every other job.
VSCHED_SCALE=smoke ./target/release/suite --filter adversary --jobs 1 --seed 42 \
    --no-ckpt > "$tmpdir/adv_serial.txt" 2>/dev/null
VSCHED_SCALE=smoke ./target/release/suite --filter adversary --jobs 4 --seed 42 \
    --no-ckpt > "$tmpdir/adv_parallel.txt" 2>/dev/null
diff "$tmpdir/adv_serial.txt" "$tmpdir/adv_parallel.txt"
grep -q "steal" "$tmpdir/adv_serial.txt"
# 2) Randomized seed: attack-archetype invariant sweeps on a fresh plan
#    each run. The seed is printed so a CI failure replays locally with
#    ADVERSARY_SEED=<seed> cargo test --release --test adversary.
adversary_seed=$(date +%s%N)
echo "   adversary-smoke randomized seed: $adversary_seed"
if ! ADVERSARY_SEED="$adversary_seed" \
    cargo test -q --release --test adversary invariants; then
    echo "adversary-smoke FAILED with ADVERSARY_SEED=$adversary_seed (replay locally with that env var)" >&2
    exit 1
fi
# 3) Shrink + replay the attack plan under the synthetic law (healthy
#    code passes the real checker, so CI exercises the attack-plan ddmin
#    pipeline with the canary law), mirroring the chaos and fleet gates.
VSCHED_SHRINK_LAW=synthetic ./target/release/suite --shrink-adversary 3735928559 \
    2> "$tmpdir/ashrink_err.txt"
grep -q "repro written" "$tmpdir/ashrink_err.txt"
VSCHED_SHRINK_LAW=synthetic ./target/release/suite \
    --replay-adversary target/adversary_repro_3735928559.json \
    2> "$tmpdir/areplay_err.txt"
grep -q "reproduced law 'adversary-synthetic-canary'" "$tmpdir/areplay_err.txt"

echo "== vcache-smoke: cache-steering determinism + randomized occupancy sweep"
# 1) Fixed seed: the vcache job (co-tenant LLC thrasher x guest config,
#    cache-aware bvs steering) must be byte-identical across worker
#    counts, and every cell must report its checker-law verdict.
VSCHED_SCALE=smoke ./target/release/suite --filter vcache --jobs 1 --seed 42 \
    --no-ckpt > "$tmpdir/vcache_serial.txt" 2>/dev/null
VSCHED_SCALE=smoke ./target/release/suite --filter vcache --jobs 4 --seed 42 \
    --no-ckpt > "$tmpdir/vcache_parallel.txt" 2>/dev/null
diff "$tmpdir/vcache_serial.txt" "$tmpdir/vcache_parallel.txt"
grep -q "cache picks" "$tmpdir/vcache_serial.txt"
grep -q "violations" "$tmpdir/vcache_serial.txt"
# 2) Randomized seed: LLC occupancy-model invariants (capacity, byte
#    conservation, decay monotonicity) on a fresh schedule each run. The
#    seed is printed so a CI failure replays locally with
#    VCACHE_SEED=<seed> cargo test --release -p vsched-hostsim --test llc_propcheck.
vcache_seed=$(date +%s%N)
echo "   vcache-smoke randomized seed: $vcache_seed"
if ! VCACHE_SEED="$vcache_seed" \
    cargo test -q --release -p vsched-hostsim --test llc_propcheck; then
    echo "vcache-smoke FAILED with VCACHE_SEED=$vcache_seed (replay locally with that env var)" >&2
    exit 1
fi

echo "== supervision-smoke: canary isolation, kill/resume, shrink/replay"
# 1) Canary: two cells fail on purpose (panic + blown deadline). The suite
#    must exit 0, name both cells in the stderr failure report and the JSON
#    report, and leave the healthy jobs' stdout byte-identical to a clean
#    run.
VSCHED_SCALE=smoke ./target/release/suite --filter fig03 --jobs 2 --seed 42 \
    --no-ckpt > "$tmpdir/clean.txt" 2>/dev/null
VSCHED_CANARY=1 VSCHED_SCALE=smoke ./target/release/suite --filter fig03 --jobs 2 \
    --seed 42 --retries 1 --ckpt-dir "$tmpdir/canary_ckpt" \
    > "$tmpdir/canary.txt" 2> "$tmpdir/canary_err.txt"
diff "$tmpdir/clean.txt" "$tmpdir/canary.txt"
grep -q "canary/panic" "$tmpdir/canary_err.txt"
grep -q "canary/deadline" "$tmpdir/canary_err.txt"
grep -q '"failed_cells":2' "$tmpdir/canary_ckpt/FAILURES.json"
# 2) Crash-safe resume: kill a checkpointing run mid-flight, resume it, and
#    require byte-identity with a clean serial run. (If the run finishes
#    before the kill lands, the resume degenerates to a full replay — the
#    byte-identity requirement is the same.)
VSCHED_SCALE=smoke ./target/release/suite --filter fig03,fig11 --jobs 2 --seed 42 \
    --ckpt-dir "$tmpdir/resume_ckpt" > /dev/null 2>&1 &
suite_pid=$!
sleep 0.3
kill -9 "$suite_pid" 2>/dev/null || true
wait "$suite_pid" 2>/dev/null || true
VSCHED_SCALE=smoke ./target/release/suite --filter fig03,fig11 --jobs 1 --seed 42 \
    --no-ckpt > "$tmpdir/clean2.txt" 2>/dev/null
VSCHED_SCALE=smoke ./target/release/suite --filter fig03,fig11 --jobs 2 --seed 42 \
    --ckpt-dir "$tmpdir/resume_ckpt" --resume > "$tmpdir/resumed.txt" 2>/dev/null
diff "$tmpdir/clean2.txt" "$tmpdir/resumed.txt"
# 3) Shrink + replay under the synthetic law (the real checker passes on
#    healthy code, so CI exercises the ddmin pipeline with the canary law).
VSCHED_SHRINK_LAW=synthetic ./target/release/suite --shrink 3735928559 \
    2> "$tmpdir/shrink_err.txt"
grep -q "repro written" "$tmpdir/shrink_err.txt"
VSCHED_SHRINK_LAW=synthetic ./target/release/suite \
    --replay target/chaos_repro_3735928559.json 2> "$tmpdir/replay_err.txt"
grep -q "reproduced law 'synthetic-canary'" "$tmpdir/replay_err.txt"

echo "== regenerate BENCH_vsched.json (quick scale)"
./target/release/vsched-bench

echo "CI OK"
