//! Reversal completeness of the chaos fault planner.
//!
//! Supervised suite runs retry and resume cells on the same process-global
//! assumptions a clean run makes, so a `FaultPlan` must never leak host
//! state past its horizon: every transient's reversal has to restore the
//! machine's capacity, quota, pinning, offline, stressor, and probe-noise
//! configuration *exactly*. This propcheck applies an arbitrary plan
//! prefix (each prefix event still schedules its own reversal), runs past
//! the last possible reversal, and compares the machine against its
//! nominal configuration field by field.

use simcore::time::MS;
use simcore::{propcheck, SimTime};
use trace::FaultClass;
use vsched_hostsim::{ChaosSpec, FaultPlan, HostSpec, Machine};

/// Longest transient the planner draws (see `plan_class`).
const MAX_TRANSIENT_NS: u64 = 400 * MS;

fn build_machine(nr: usize, seed: u64) -> Machine {
    let mut m = Machine::new(HostSpec::flat(nr), seed);
    let cfg = guestos::GuestConfig::new(nr);
    let aff = (0..nr).map(|t| vec![t]).collect();
    m.add_vm(cfg, aff, 1024, None);
    m
}

fn assert_nominal(m: &Machine, nr: usize, what: &str) {
    for th in 0..nr {
        assert_eq!(
            m.host_load_weight_on(th),
            0,
            "{what}: stressor left on thread {th}"
        );
    }
    for core in 0..nr {
        assert_eq!(
            m.core_freq_factor(core),
            1.0,
            "{what}: DVFS factor left on core {core}"
        );
    }
    assert_eq!(m.probe_noise(), 0.0, "{what}: probe noise left");
    for vcpu in 0..nr {
        let gv = m.gv(0, vcpu);
        assert!(!m.vcpu_offline(gv), "{what}: vCPU {vcpu} left offline");
        assert_eq!(
            m.vcpu_bandwidth(gv),
            None,
            "{what}: quota left on vCPU {vcpu}"
        );
        assert_eq!(
            m.vcpu_affinity(gv),
            &[vcpu],
            "{what}: vCPU {vcpu} not re-pinned home"
        );
    }
}

fn run_past_reversals(m: &mut Machine, spec: &ChaosSpec) {
    m.start();
    // Past the horizon plus the longest transient: every reversal has
    // fired by construction.
    let end = spec.start.ns() + spec.horizon_ns + MAX_TRANSIENT_NS + 100 * MS;
    m.run_until(SimTime::from_ns(end));
}

#[test]
fn prefix_plus_reversals_restores_state() {
    propcheck::forall(0x4EF5, 12, |rng| {
        let nr = 2 + rng.index(7);
        let spec = ChaosSpec::for_pinned_vm(0, nr, 2_000 * MS);
        let plan = FaultPlan::generate(rng.u64(), &spec);
        let k = rng.index(plan.events.len() + 1);
        let prefix = plan.prefix(k);

        let mut m = build_machine(nr, 7);
        prefix.apply(&mut m);
        run_past_reversals(&mut m, &spec);
        assert_nominal(&m, nr, &format!("prefix {k}/{}", plan.events.len()));
    });
}

#[test]
fn single_class_plans_restore_state() {
    // Per-class sweep pins down which reversal leaks if one ever does.
    for class in [
        FaultClass::StressorBurst,
        FaultClass::QuotaChurn,
        FaultClass::PinChange,
        FaultClass::VcpuOffline,
        FaultClass::CapacityStep,
        FaultClass::ProbeNoise,
    ] {
        let nr = 4;
        let spec = ChaosSpec::for_pinned_vm(0, nr, 2_000 * MS)
            .only(class)
            .mean_interval(200 * MS);
        let plan = FaultPlan::generate(11, &spec);
        assert!(
            !plan.events.is_empty(),
            "{class:?}: horizon long enough to draw faults"
        );
        let mut m = build_machine(nr, 3);
        plan.apply(&mut m);
        run_past_reversals(&mut m, &spec);
        assert_nominal(&m, nr, &format!("{class:?}"));
    }
}
