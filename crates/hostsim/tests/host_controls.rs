//! Host-control edge cases: runtime bandwidth changes, re-pinning,
//! host-load lifecycle, samplers, and the quantum knobs.

use guestos::{GuestOs, Platform, SpawnSpec, TaskAction, TaskId, Workload};
use simcore::time::{MS, SEC};
use simcore::SimTime;
use vsched_hostsim::{HostSpec, Machine, ScenarioBuilder, ScriptAction, VmSpec};

struct Spin(usize);

impl Workload for Spin {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        for _ in 0..self.0 {
            let t = guest.spawn(plat, SpawnSpec::normal(guest.kern.cfg.nr_vcpus));
            guest.wake_task(plat, t, None);
        }
    }
    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: u64) {}
    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        TaskAction::Compute { work: 1.0e18 }
    }
}

fn work(m: &Machine, vm: usize) -> f64 {
    (0..m.vms[vm].nr_vcpus)
        .map(|i| m.vcpus[m.gv(vm, i)].delivered_work)
        .sum()
}

#[test]
fn bandwidth_can_be_changed_and_removed_at_runtime() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 1).vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spin(1)));
    // Throttle to 25% after 1 s, release after 2 s.
    m.at(
        SimTime::from_secs(1),
        ScriptAction::SetBandwidth {
            vm,
            vcpu: 0,
            qp: Some((MS, 4 * MS)),
        },
    );
    m.at(
        SimTime::from_secs(2),
        ScriptAction::SetBandwidth {
            vm,
            vcpu: 0,
            qp: None,
        },
    );
    m.start();
    m.run_until(SimTime::from_secs(3));
    // 1 s full + 1 s quarter + 1 s full = 2.25 core-seconds.
    let w = work(&m, vm);
    let expect = 2.25 * 1024.0 * SEC as f64;
    assert!(
        (w - expect).abs() / expect < 0.05,
        "work {w:.3e} vs {expect:.3e}"
    );
}

#[test]
fn repinning_moves_execution() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(2), 2).vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spin(1)));
    m.at(
        SimTime::from_secs(1),
        ScriptAction::SetAffinity {
            vm,
            vcpu: 0,
            threads: vec![1],
        },
    );
    m.start();
    m.run_until(SimTime::from_secs(2));
    // The vCPU kept its full rate across the move.
    let w = work(&m, vm);
    let expect = 2.0 * 1024.0 * SEC as f64;
    assert!((w - expect).abs() / expect < 0.02, "work {w:.3e}");
}

#[test]
fn host_load_add_remove_restores_capacity() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 3).vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spin(1)));
    m.at(
        SimTime::from_secs(1),
        ScriptAction::AddLoad {
            thread: 0,
            weight: 1024,
        },
    );
    m.at(SimTime::from_secs(2), ScriptAction::RemoveLoad { id: 0 });
    m.start();
    m.run_until(SimTime::from_secs(3));
    // 1 s full + 1 s half + 1 s full.
    let w = work(&m, vm);
    let expect = 2.5 * 1024.0 * SEC as f64;
    assert!(
        (w - expect).abs() / expect < 0.05,
        "work {w:.3e} vs {expect:.3e}"
    );
}

#[test]
fn per_thread_quanta_set_inactive_periods() {
    // Two VMs share a core; quantum 8 ms → preemption gaps ≈ 8 ms.
    let (b, vm0) = ScenarioBuilder::new(HostSpec::flat(1), 4).vm(VmSpec::pinned(1, 0));
    let (b, vm1) = b.vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_thread_quantum(0, 8 * MS);
    m.set_workload(vm0, Box::new(Spin(1)));
    m.set_workload(vm1, Box::new(Spin(1)));
    m.start();
    m.run_until(SimTime::from_secs(2));
    let gv = m.gv(vm0, 0);
    // ~125 preemptions per VM over 2 s with 8 ms alternation.
    let p = m.vcpus[gv].preemptions;
    assert!((100..150).contains(&p), "preemptions {p}");
}

#[test]
fn samplers_fire_on_schedule() {
    use std::cell::RefCell;
    use std::rc::Rc;
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 5).vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spin(1)));
    let count = Rc::new(RefCell::new(0u32));
    let c2 = Rc::clone(&count);
    m.add_sampler(
        100 * MS,
        Box::new(move |_m: &Machine| {
            *c2.borrow_mut() += 1;
        }),
    );
    m.start();
    m.run_until(SimTime::from_secs(1));
    let n = *count.borrow();
    assert!((9..=10).contains(&n), "sampler fired {n} times");
}

#[test]
fn dvfs_script_is_deterministic_and_bounded() {
    let run = || {
        let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 6).vm(VmSpec::pinned(1, 0));
        let mut m = b.build();
        m.set_workload(vm, Box::new(Spin(1)));
        for (i, f) in [(0u64, 0.25), (1, 1.0), (2, 0.5)] {
            m.at(
                SimTime::from_secs(i),
                ScriptAction::SetFreq { core: 0, factor: f },
            );
        }
        m.start();
        m.run_until(SimTime::from_secs(3));
        work(&m, vm)
    };
    let a = run();
    let expect = (0.25 + 1.0 + 0.5) * 1024.0 * SEC as f64;
    assert!((a - expect).abs() / expect < 0.02, "work {a:.3e}");
    assert_eq!(a, run(), "deterministic");
}

#[test]
fn stacked_vcpus_share_one_thread() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(2), 7).vm(VmSpec {
        nr_vcpus: 2,
        pinning: vsched_hostsim::Pinning::stacked_pairs(0, 2),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spin(2)));
    m.start();
    m.run_until(SimTime::from_secs(2));
    // Both spinners share thread 0: combined work = one core's worth.
    let w = work(&m, vm);
    let one_core = 2.0 * 1024.0 * SEC as f64; // 2 s × 1 core
    assert!(
        (w - one_core).abs() / one_core < 0.05,
        "work {w:.3e} vs one core {one_core:.3e}"
    );
    // Each vCPU got roughly half.
    let w0 = m.vcpus[m.gv(vm, 0)].delivered_work;
    let w1 = m.vcpus[m.gv(vm, 1)].delivered_work;
    assert!((w0 / w1 - 1.0).abs() < 0.2, "split {w0:.3e}/{w1:.3e}");
}
