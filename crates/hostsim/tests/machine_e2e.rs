//! End-to-end validation of the two-level scheduling machine.
//!
//! These tests drive the full stack — host scheduler, bandwidth control,
//! steal accounting, guest CFS, work accrual — with simple synthetic
//! workloads and check the physics: work rates, steal fractions,
//! active/inactive periods, and contention effects.

use guestos::{GuestOs, Platform, SpawnSpec, TaskAction, TaskId, Workload};
use simcore::time::{MS, SEC};
use simcore::SimTime;
use vsched_hostsim::{HostSpec, Machine, ScenarioBuilder, VmSpec};

/// Spawns `n` CPU-bound spinner tasks at start and never finishes.
struct Spinners {
    n: usize,
    burst_work: f64,
    bursts_done: u64,
    tasks: Vec<TaskId>,
}

impl Spinners {
    fn new(n: usize) -> Self {
        Self {
            n,
            burst_work: 1.0e18,
            bursts_done: 0,
            tasks: Vec::new(),
        }
    }

    /// Finite bursts so completion counts can be asserted.
    fn with_burst(n: usize, work: f64) -> Self {
        Self {
            n,
            burst_work: work,
            bursts_done: 0,
            tasks: Vec::new(),
        }
    }
}

impl Workload for Spinners {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for _ in 0..self.n {
            let t = guest.spawn(plat, SpawnSpec::normal(nr));
            self.tasks.push(t);
            guest.wake_task(plat, t, None);
        }
    }

    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _token: u64) {}

    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        self.bursts_done += 1;
        TaskAction::Compute {
            work: self.burst_work,
        }
    }

    fn label(&self) -> &str {
        "spinners"
    }
}

fn total_work(m: &Machine, vm: usize) -> f64 {
    (0..m.vms[vm].nr_vcpus)
        .map(|i| m.vcpus[m.gv(vm, i)].delivered_work)
        .sum()
}

#[test]
fn dedicated_vcpu_accrues_full_capacity() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 1).vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners::new(1)));
    m.start();
    m.run_until(SimTime::from_secs(1));
    let work = total_work(&m, vm);
    // 1 s at capacity 1024 → 1024e9 capacity-ns (±1% for bookkeeping edges).
    let expect = 1024.0 * SEC as f64;
    assert!(
        (work - expect).abs() / expect < 0.01,
        "work {work:.3e} vs {expect:.3e}"
    );
    // No steal on a dedicated core.
    assert_eq!(m.vcpu_steal(m.gv(vm, 0)), 0);
}

#[test]
fn two_vms_share_a_core_fairly() {
    let (b, vm0) = ScenarioBuilder::new(HostSpec::flat(1), 2).vm(VmSpec::pinned(1, 0));
    let (b, vm1) = b.vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm0, Box::new(Spinners::new(1)));
    m.set_workload(vm1, Box::new(Spinners::new(1)));
    m.start();
    m.run_until(SimTime::from_secs(2));
    let w0 = total_work(&m, vm0);
    let w1 = total_work(&m, vm1);
    let expect = 1024.0 * SEC as f64; // half of 2 s each
    assert!((w0 - expect).abs() / expect < 0.05, "w0 {w0:.3e}");
    assert!((w1 - expect).abs() / expect < 0.05, "w1 {w1:.3e}");
    // Each vCPU stole roughly half the time.
    let steal = m.vcpu_steal(m.gv(vm0, 0)) as f64 / (2.0 * SEC as f64);
    assert!((steal - 0.5).abs() < 0.05, "steal fraction {steal}");
}

#[test]
fn bandwidth_control_caps_share() {
    // quota 2 ms / period 10 ms → 20% capacity.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 3)
        .vm(VmSpec::pinned(1, 0).bandwidth(2 * MS, 10 * MS));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners::new(1)));
    m.start();
    m.run_until(SimTime::from_secs(1));
    let work = total_work(&m, vm);
    let expect = 0.2 * 1024.0 * SEC as f64;
    assert!(
        (work - expect).abs() / expect < 0.05,
        "work {work:.3e} vs {expect:.3e}"
    );
    // The vCPU saw many preemptions (one per period).
    let p = m.vcpus[m.gv(vm, 0)].preemptions;
    assert!((80..=120).contains(&p), "preemptions {p}");
}

#[test]
fn host_load_steals_capacity_by_weight() {
    // Host load with 3x weight → vCPU gets ~25%.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 4).vm(VmSpec::pinned(1, 0));
    let mut m = b.host_load(0, 3 * 1024).build();
    m.set_workload(vm, Box::new(Spinners::new(1)));
    m.start();
    m.run_until(SimTime::from_secs(2));
    let share = total_work(&m, vm) / (1024.0 * 2.0 * SEC as f64);
    assert!((share - 0.25).abs() < 0.05, "share {share}");
}

#[test]
fn smt_contention_reduces_capacity() {
    // Two vCPUs of one VM pinned on the two threads of one core.
    let host = HostSpec::new(1, 1, 2);
    let (b, vm) = ScenarioBuilder::new(host, 5).vm(VmSpec::pinned(2, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners::new(2)));
    m.start();
    m.run_until(SimTime::from_secs(1));
    let work = total_work(&m, vm);
    // Both threads busy → each at the contention factor (0.62).
    let expect = 2.0 * 0.62 * 1024.0 * SEC as f64;
    assert!(
        (work - expect).abs() / expect < 0.06,
        "work {work:.3e} vs {expect:.3e}"
    );
}

#[test]
fn guest_balances_tasks_across_vcpus() {
    // 4 spinners on a 4-vCPU VM must end up one per vCPU.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(4), 6).vm(VmSpec::pinned(4, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners::new(4)));
    m.start();
    m.run_until(SimTime::from_secs(1));
    let total = total_work(&m, vm);
    let expect = 4.0 * 1024.0 * SEC as f64;
    assert!(
        (total - expect).abs() / expect < 0.05,
        "total {total:.3e} vs {expect:.3e}"
    );
    for i in 0..4 {
        let w = m.vcpus[m.gv(vm, i)].delivered_work;
        assert!(w > 0.8 * 1024.0 * SEC as f64, "vCPU {i} starved: {w:.3e}");
    }
}

#[test]
fn finite_bursts_complete_and_chain() {
    // One task, 1 ms bursts; in 100 ms about 100 bursts complete.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 7).vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners::with_burst(1, 1024.0 * MS as f64)));
    m.start();
    m.run_until(SimTime::from_ms(100));
    // Read back the workload's burst counter.
    let wl = m.vms[vm].workload.take().unwrap();
    // SAFETY of downcast-free check: we re-derive bursts from work instead.
    drop(wl);
    let work = total_work(&m, vm);
    let bursts = work / (1024.0 * MS as f64);
    assert!((bursts - 100.0).abs() < 2.0, "bursts {bursts}");
}

#[test]
fn dvfs_scales_work_rate() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 8).vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners::new(1)));
    m.at(
        SimTime::from_ms(500),
        vsched_hostsim::ScriptAction::SetFreq {
            core: 0,
            factor: 0.5,
        },
    );
    m.start();
    m.run_until(SimTime::from_secs(1));
    let work = total_work(&m, vm);
    // 0.5 s at 1.0 + 0.5 s at 0.5 → 0.75 of full.
    let expect = 0.75 * 1024.0 * SEC as f64;
    assert!(
        (work - expect).abs() / expect < 0.03,
        "work {work:.3e} vs {expect:.3e}"
    );
}

#[test]
fn vm_cycles_track_capacity_integral() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(2), 9).vm(VmSpec::pinned(2, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners::new(2)));
    m.start();
    m.run_until(SimTime::from_secs(1));
    let cycles = m.vms[vm].cycles.value();
    let expect = 2.0 * 1024.0 * SEC as f64;
    assert!(
        (cycles - expect).abs() / expect < 0.02,
        "cycles {cycles:.3e}"
    );
}

#[test]
fn floating_vcpus_find_idle_threads() {
    // 2 floating vCPUs over 2 threads with spinners: both should make
    // full-speed progress (host balancing spreads them).
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(2), 10).vm(VmSpec::floating(2, vec![0, 1]));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners::new(2)));
    m.start();
    m.run_until(SimTime::from_secs(1));
    let work = total_work(&m, vm);
    let expect = 2.0 * 1024.0 * SEC as f64;
    assert!(
        (work - expect).abs() / expect < 0.10,
        "work {work:.3e} vs {expect:.3e}"
    );
}

#[test]
fn deterministic_under_same_seed() {
    let run = |seed: u64| -> f64 {
        let (b, vm0) = ScenarioBuilder::new(HostSpec::flat(2), seed).vm(VmSpec::pinned(2, 0));
        let (b, vm1) = b.vm(VmSpec::pinned(2, 0));
        let mut m = b.build();
        m.set_workload(vm0, Box::new(Spinners::new(3)));
        m.set_workload(vm1, Box::new(Spinners::new(2)));
        m.start();
        m.run_until(SimTime::from_ms(500));
        total_work(&m, vm0) + 7.0 * total_work(&m, vm1)
    };
    assert_eq!(run(42), run(42));
}

/// A workload that sleeps and computes alternately, to exercise halting and
/// kicking of vCPUs.
struct SleepCompute {
    cycles: u64,
}

impl Workload for SleepCompute {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let t = guest.spawn(plat, SpawnSpec::normal(guest.kern.cfg.nr_vcpus));
        guest.wake_task(plat, t, None);
    }

    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _token: u64) {}

    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        self.cycles += 1;
        if self.cycles % 2 == 1 {
            TaskAction::Compute {
                work: 1024.0 * MS as f64, // 1 ms of work
            }
        } else {
            TaskAction::Sleep { ns: MS }
        }
    }

    fn label(&self) -> &str {
        "sleep-compute"
    }
}

#[test]
fn sleeping_task_halts_and_wakes_vcpu() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 11).vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(SleepCompute { cycles: 0 }));
    m.start();
    m.run_until(SimTime::from_ms(100));
    // 1 ms on / 1 ms off → ~50% utilization.
    let active = m.vcpu_active_ns(m.gv(vm, 0)) as f64 / (100.0 * MS as f64);
    assert!((active - 0.5).abs() < 0.1, "active fraction {active}");
    // The halted vCPU must not accrue steal on a dedicated core.
    assert_eq!(m.vcpu_steal(m.gv(vm, 0)), 0);
}
