//! Randomized property checks over the per-socket LLC occupancy model.
//!
//! For *any* interleaving of schedule/deschedule/footprint/advance
//! operations at arbitrary times, [`LlcModel`] must (1) never report
//! more resident bytes than a socket's capacity, (2) keep its byte
//! ledger conserved — `occupied == inserted - evicted - decayed` within
//! float tolerance — and (3) only ever *lose* occupancy on a socket
//! while a VM is fully descheduled there. One test re-seeds from the
//! `VCACHE_SEED` environment variable so a CI sweep failure prints the
//! exact seed to replay:
//! `VCACHE_SEED=<seed> cargo test -p vsched-hostsim --test llc_propcheck`.

use simcore::propcheck;
use simcore::{SimRng, SimTime};
use vsched_hostsim::llc::LlcModel;

const MB: f64 = 1024.0 * 1024.0;

/// A random but *valid* operation schedule driver: deschedules are only
/// issued against VMs that are actually running on that socket, and time
/// only moves forward.
struct Harness {
    m: LlcModel,
    now: SimTime,
    sockets: usize,
    vms: usize,
    /// Mirror of the model's per-(vm, socket) running counts, so the
    /// driver never violates the sched/desched pairing contract.
    running: Vec<Vec<u32>>,
}

impl Harness {
    fn new(rng: &mut SimRng) -> Self {
        let sockets = 1 + rng.index(3);
        let vms = 1 + rng.index(4);
        let mut m = LlcModel::new(sockets, 32.0 * MB);
        for _ in 0..vms {
            m.add_vm();
        }
        Harness {
            m,
            now: SimTime::ZERO,
            sockets,
            vms,
            running: vec![vec![0; sockets]; vms],
        }
    }

    /// Applies one random operation after a random forward time step.
    fn step(&mut self, rng: &mut SimRng) {
        self.now = self.now.after(rng.range(0, 4_000_000));
        let vm = rng.index(self.vms);
        let socket = rng.index(self.sockets);
        match rng.index(4) {
            0 => {
                self.m.on_sched(self.now, vm, socket);
                self.running[vm][socket] += 1;
            }
            1 => {
                if self.running[vm][socket] > 0 {
                    self.m.on_desched(self.now, vm, socket);
                    self.running[vm][socket] -= 1;
                }
            }
            2 => {
                // Footprints from 0 (cache-insensitive) up to 3x the LLC,
                // so oversubscription and shrink-eviction both happen.
                let bytes = rng.f64() * 96.0 * MB;
                let bytes = if rng.chance(0.2) { 0.0 } else { bytes };
                self.m.set_footprint(self.now, vm, bytes);
            }
            _ => self.m.advance(self.now, socket),
        }
    }

    /// The invariants every reachable state must satisfy, on every socket.
    fn check(&mut self, label: &str) {
        for s in 0..self.sockets {
            self.m.advance(self.now, s);
            let snap = self.m.snapshot(s);
            let tol = (1e-6 * snap.inserted).max(1.0);
            assert!(
                snap.occupied <= self.m.llc_bytes() + tol,
                "{label}: socket {s} over capacity: occupied {} > llc {}",
                snap.occupied,
                self.m.llc_bytes()
            );
            let ledger = snap.inserted - snap.evicted - snap.decayed;
            assert!(
                (snap.occupied - ledger).abs() <= tol,
                "{label}: socket {s} ledger drift: occupied {} vs inserted - evicted - decayed = {}",
                snap.occupied,
                ledger
            );
            assert!(
                snap.occupied >= -tol
                    && snap.inserted >= 0.0
                    && snap.evicted >= 0.0
                    && snap.decayed >= 0.0,
                "{label}: socket {s} negative ledger entry: {snap:?}"
            );
            for vm in 0..self.vms {
                let occ = self.m.occupancy(vm, s);
                assert!(occ >= -tol, "{label}: vm {vm} negative occupancy {occ}");
                let eff = self.m.efficiency(vm, s);
                assert!(
                    (0.6..=1.0).contains(&eff),
                    "{label}: vm {vm} efficiency {eff} outside [MISS_FLOOR, 1]"
                );
                let con = self.m.contention(vm, s);
                assert!(
                    (0.0..=1.0).contains(&con),
                    "{label}: vm {vm} contention {con} outside [0, 1]"
                );
            }
        }
        let p = self.m.pressure();
        assert!(
            (0.0..=1.0).contains(&p),
            "{label}: pressure {p} outside [0, 1]"
        );
    }
}

fn run_schedule(rng: &mut SimRng, ops: usize, label: &str) {
    let mut h = Harness::new(rng);
    for op in 0..ops {
        h.step(rng);
        h.check(&format!("{label} op {op}"));
    }
}

/// Core safety property: arbitrary valid schedules never overflow a
/// socket, never leak ledger bytes, and keep every derived signal in
/// range.
#[test]
fn random_schedules_conserve_bytes_and_respect_capacity() {
    propcheck::forall(0x11C0, 48, |rng| run_schedule(rng, 60, "random schedule"));
}

/// While a VM is fully descheduled on a socket, its occupancy there is
/// monotone non-increasing — warm footprints can only cool, never grow.
#[test]
fn occupancy_decays_monotonically_while_descheduled() {
    propcheck::forall(0x11C1, 48, |rng| {
        let mut h = Harness::new(rng);
        // Warm a random subset of VMs with random on-CPU stints.
        for _ in 0..20 {
            h.step(rng);
        }
        // Deschedule everything, everywhere.
        for vm in 0..h.vms {
            for s in 0..h.sockets {
                while h.running[vm][s] > 0 {
                    h.m.on_desched(h.now, vm, s);
                    h.running[vm][s] -= 1;
                }
            }
        }
        let mut prev: Vec<Vec<f64>> = (0..h.vms)
            .map(|vm| (0..h.sockets).map(|s| h.m.occupancy(vm, s)).collect())
            .collect();
        for _ in 0..12 {
            h.now = h.now.after(rng.range(1, 20_000_000));
            for s in 0..h.sockets {
                h.m.advance(h.now, s);
            }
            for (vm, row) in prev.iter_mut().enumerate() {
                for (s, last) in row.iter_mut().enumerate() {
                    let occ = h.m.occupancy(vm, s);
                    assert!(
                        occ <= *last + 1e-9,
                        "vm {vm} socket {s} occupancy grew while descheduled: {last} -> {occ}"
                    );
                    *last = occ;
                }
            }
        }
    });
}

/// CI sweep hook: `VCACHE_SEED` reseeds one long schedule so a sweep
/// failure is replayable with
/// `VCACHE_SEED=<seed> cargo test -p vsched-hostsim --test llc_propcheck`.
#[test]
fn env_seeded_schedule_is_invariant_clean() {
    let seed = std::env::var("VCACHE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x11C2);
    let mut rng = SimRng::new(seed);
    run_schedule(
        &mut rng,
        200,
        &format!("VCACHE_SEED={seed} (replay with this env var)"),
    );
}
