//! Cache-warmth model: a cache-sensitive task pays a refill cost whenever
//! its vCPU resumes after a pollution-length inactive period (paper §2.1:
//! "a vCPU cannot allow its tasks to effectively build up data in the
//! cache if the co-running vCPUs constantly pollute the cache during its
//! inactive periods").

use guestos::{GuestOs, Platform, SpawnSpec, TaskAction, TaskId, Workload};
use simcore::time::SEC;
use simcore::SimTime;
use vsched_hostsim::{HostSpec, ScenarioBuilder, VmSpec};

struct OneSpinner {
    cache_sensitive: bool,
}

impl Workload for OneSpinner {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let mut spec = SpawnSpec::normal(guest.kern.cfg.nr_vcpus);
        if self.cache_sensitive {
            spec = spec.cache_sensitive();
        }
        let t = guest.spawn(plat, spec);
        guest.wake_task(plat, t, None);
    }
    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: u64) {}
    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        TaskAction::Compute { work: 1.0e18 }
    }
}

fn run(cache_sensitive: bool, contended: bool) -> f64 {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 3).vm(VmSpec::pinned(1, 0));
    let mut m = if contended {
        b.host_load(0, 1024).build()
    } else {
        b.build()
    };
    m.set_workload(vm, Box::new(OneSpinner { cache_sensitive }));
    m.start();
    m.run_until(SimTime::from_secs(2));
    m.vcpus[m.gv(vm, 0)].delivered_work
}

#[test]
fn refills_cost_only_under_preemption() {
    // Dedicated vCPU: cache sensitivity is free (no inactive periods).
    let plain = run(false, false);
    let sensitive = run(true, false);
    assert!(
        (plain - sensitive).abs() / plain < 0.001,
        "dedicated: {plain:.3e} vs {sensitive:.3e}"
    );
}

#[test]
fn refills_tax_preempted_cache_sensitive_tasks() {
    // Contended vCPU (4 ms quanta → ~250 resumes over 2 s): the sensitive
    // task pays one refill (~50 µs of work) per resume — a visible but
    // bounded tax on top of the 50% share.
    let plain = run(false, true);
    let sensitive = run(true, true);
    let tax = 1.0 - sensitive / plain;
    assert!(
        tax > 0.01 && tax < 0.10,
        "cache tax {:.2}% (plain {plain:.3e}, sensitive {sensitive:.3e})",
        100.0 * tax
    );
    // Sanity: both still got roughly half the core.
    let half = 1024.0 * 2.0 * SEC as f64 / 2.0;
    assert!((plain - half).abs() / half < 0.05);
}
