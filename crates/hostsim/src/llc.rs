//! Per-socket LLC occupancy model.
//!
//! Extends the analytic cache-line machinery (refill penalties, the
//! Figure 10b latency matrix) into an *occupancy* abstraction: each VM
//! carries a working-set footprint, and the model tracks how many bytes of
//! each socket's last-level cache that VM currently holds.
//!
//! * While any of the VM's vCPUs runs on a socket, its occupancy there
//!   grows exponentially toward the footprint (time constant
//!   [`TAU_FILL_NS`]) — streaming the working set in.
//! * While the VM is fully descheduled on a socket, occupancy decays
//!   exponentially (time constant [`TAU_DECAY_NS`]) — the same
//!   cache-warmth story the refill penalty models, now with a size.
//! * When the sum of occupancies exceeds the socket's LLC capacity,
//!   neighbours evict each other *proportionally to their pressure*: every
//!   VM's occupancy is scaled down by the same factor, so a 48 MB thrasher
//!   displaces far more victim bytes than a 4 MB one.
//!
//! The model is **inert by default**: until some VM is given a non-zero
//! footprint via [`LlcModel::set_footprint`], [`LlcModel::active`] is
//! false, no state advances, and every efficiency is exactly 1.0 — existing
//! scenarios are byte-identical.
//!
//! Cumulative per-socket inserted/evicted/decayed counters are exposed for
//! `LlcOccupancySample` trace events; by construction
//! `occupied == inserted - evicted - decayed`, which the trace checker
//! enforces as a conservation law.

use simcore::SimTime;

/// Fill time constant: a running working set streams into the LLC with
/// ~5 ms characteristic time (tens of GB/s over tens of MB).
pub const TAU_FILL_NS: f64 = 5.0e6;

/// Decay time constant while descheduled: neighbour traffic takes ~50 ms to
/// wash out a resident working set (paper §2.1 pollution, given a size).
pub const TAU_DECAY_NS: f64 = 50.0e6;

/// Throughput efficiency when a cache-sensitive VM holds none of its
/// working set: every access misses to DRAM, costing ~40% of throughput.
pub const MISS_FLOOR: f64 = 0.6;

/// Per-VM occupancy state.
#[derive(Debug, Clone)]
struct VmCache {
    /// Working-set footprint in bytes (0 = cache-insensitive, modelled out).
    footprint: f64,
    /// Bytes resident per socket.
    occ: Vec<f64>,
    /// Number of this VM's vCPUs currently running per socket.
    running: Vec<u32>,
}

/// Per-socket bookkeeping.
#[derive(Debug, Clone)]
struct SocketState {
    /// Last time this socket's occupancies were advanced.
    last: SimTime,
    /// Cumulative bytes inserted (working sets streaming in).
    inserted: f64,
    /// Cumulative bytes evicted by neighbour pressure.
    evicted: f64,
    /// Cumulative bytes lost to decay while descheduled.
    decayed: f64,
}

/// Snapshot of one socket's occupancy, for trace emission.
#[derive(Debug, Clone, Copy)]
pub struct LlcSnapshot {
    /// Total bytes currently resident across all VMs.
    pub occupied: f64,
    /// Cumulative bytes inserted since simulation start.
    pub inserted: f64,
    /// Cumulative bytes evicted since simulation start.
    pub evicted: f64,
    /// Cumulative bytes decayed since simulation start.
    pub decayed: f64,
}

/// Per-socket LLC occupancy model for one host.
#[derive(Debug, Clone)]
pub struct LlcModel {
    /// LLC capacity per socket, bytes.
    llc_bytes: f64,
    vms: Vec<VmCache>,
    sockets: Vec<SocketState>,
    /// Number of VMs with a non-zero footprint; 0 ⇒ the model is inert.
    sensitive: usize,
}

impl LlcModel {
    /// A model for `sockets` sockets of `llc_bytes` each, no VMs yet.
    pub fn new(sockets: usize, llc_bytes: f64) -> Self {
        assert!(sockets > 0, "degenerate host");
        assert!(llc_bytes > 0.0, "LLC must have capacity");
        Self {
            llc_bytes,
            vms: Vec::new(),
            sockets: vec![
                SocketState {
                    last: SimTime::ZERO,
                    inserted: 0.0,
                    evicted: 0.0,
                    decayed: 0.0,
                };
                sockets
            ],
            sensitive: 0,
        }
    }

    /// Registers the next VM (footprint 0 until told otherwise).
    pub fn add_vm(&mut self) {
        let n = self.sockets.len();
        self.vms.push(VmCache {
            footprint: 0.0,
            occ: vec![0.0; n],
            running: vec![0; n],
        });
    }

    /// True once any VM has a non-zero footprint. While false the model
    /// must not be advanced and all efficiencies are 1.0.
    pub fn active(&self) -> bool {
        self.sensitive > 0
    }

    /// Sets a VM's working-set footprint. Shrinking below current
    /// occupancy evicts the excess immediately.
    pub fn set_footprint(&mut self, now: SimTime, vm: usize, bytes: f64) {
        assert!(bytes >= 0.0, "footprint must be non-negative");
        if self.active() {
            for s in 0..self.sockets.len() {
                self.advance(now, s);
            }
        }
        let was = self.vms[vm].footprint > 0.0;
        self.vms[vm].footprint = bytes;
        match (was, bytes > 0.0) {
            (false, true) => self.sensitive += 1,
            (true, false) => self.sensitive -= 1,
            _ => {}
        }
        for s in 0..self.sockets.len() {
            let occ = self.vms[vm].occ[s];
            if occ > bytes {
                let cut = occ - bytes;
                self.vms[vm].occ[s] = bytes;
                self.sockets[s].evicted += cut;
            }
        }
    }

    /// A VM's vCPU started running on `socket`.
    pub fn on_sched(&mut self, now: SimTime, vm: usize, socket: usize) {
        self.advance(now, socket);
        self.vms[vm].running[socket] += 1;
    }

    /// A VM's vCPU stopped running on `socket`.
    pub fn on_desched(&mut self, now: SimTime, vm: usize, socket: usize) {
        self.advance(now, socket);
        let r = &mut self.vms[vm].running[socket];
        debug_assert!(*r > 0, "desched without matching sched");
        *r = r.saturating_sub(1);
    }

    /// Advances one socket's occupancies to `now` (lazy evaluation).
    ///
    /// Growth first, then decay, then proportional eviction if the socket
    /// is over capacity — so a burst of insertion by a thrasher squeezes
    /// every resident working set in the same pass.
    pub fn advance(&mut self, now: SimTime, socket: usize) {
        let st = &mut self.sockets[socket];
        let dt = now.since(st.last) as f64;
        if dt <= 0.0 {
            st.last = now;
            return;
        }
        st.last = now;
        let fill = 1.0 - (-dt / TAU_FILL_NS).exp();
        let decay = 1.0 - (-dt / TAU_DECAY_NS).exp();
        let mut total = 0.0;
        for v in &mut self.vms {
            if v.footprint <= 0.0 {
                continue;
            }
            if v.running[socket] > 0 {
                let delta = (v.footprint - v.occ[socket]).max(0.0) * fill;
                v.occ[socket] += delta;
                st.inserted += delta;
            } else if v.occ[socket] > 0.0 {
                let d = v.occ[socket] * decay;
                v.occ[socket] -= d;
                st.decayed += d;
            }
            total += v.occ[socket];
        }
        if total > self.llc_bytes {
            let scale = self.llc_bytes / total;
            for v in &mut self.vms {
                let cut = v.occ[socket] * (1.0 - scale);
                v.occ[socket] -= cut;
                st.evicted += cut;
            }
        }
    }

    /// Throughput efficiency factor for a VM running on `socket`, in
    /// `[MISS_FLOOR, 1.0]`. 1.0 for footprint-0 VMs (cache-insensitive).
    ///
    /// Callers must [`advance`](Self::advance) the socket first.
    pub fn efficiency(&self, vm: usize, socket: usize) -> f64 {
        let v = &self.vms[vm];
        if v.footprint <= 0.0 {
            return 1.0;
        }
        let resident = (v.occ[socket] / v.footprint).clamp(0.0, 1.0);
        MISS_FLOOR + (1.0 - MISS_FLOOR) * resident
    }

    /// Miss pressure a probe observes on `socket`: the fraction of LLC
    /// capacity held by *other* VMs than `vm`, clamped to `[0, 1]`.
    ///
    /// Callers must [`advance`](Self::advance) the socket first.
    pub fn contention(&self, vm: usize, socket: usize) -> f64 {
        let mut other = 0.0;
        for (i, v) in self.vms.iter().enumerate() {
            if i != vm {
                other += v.occ[socket];
            }
        }
        (other / self.llc_bytes).clamp(0.0, 1.0)
    }

    /// Snapshot of one socket for trace emission. Callers must
    /// [`advance`](Self::advance) the socket first.
    pub fn snapshot(&self, socket: usize) -> LlcSnapshot {
        let occupied: f64 = self.vms.iter().map(|v| v.occ[socket]).sum();
        let st = &self.sockets[socket];
        LlcSnapshot {
            occupied,
            inserted: st.inserted,
            evicted: st.evicted,
            decayed: st.decayed,
        }
    }

    /// LLC capacity per socket, bytes.
    pub fn llc_bytes(&self) -> f64 {
        self.llc_bytes
    }

    /// Worst-socket pressure for fleet placement: max over sockets of
    /// total occupancy over capacity, in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        let mut worst = 0.0f64;
        for s in 0..self.sockets.len() {
            let total: f64 = self.vms.iter().map(|v| v.occ[s]).sum();
            worst = worst.max(total / self.llc_bytes);
        }
        worst.clamp(0.0, 1.0)
    }

    /// A VM's resident bytes on one socket (test/diagnostic accessor).
    pub fn occupancy(&self, vm: usize, socket: usize) -> f64 {
        self.vms[vm].occ[socket]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO.after(ms * 1_000_000)
    }

    #[test]
    fn inert_until_a_footprint_is_set() {
        let mut m = LlcModel::new(2, 27.5 * MB);
        m.add_vm();
        assert!(!m.active());
        assert_eq!(m.efficiency(0, 0), 1.0);
        m.set_footprint(at(0), 0, 16.0 * MB);
        assert!(m.active());
        m.set_footprint(at(0), 0, 0.0);
        assert!(!m.active());
    }

    #[test]
    fn occupancy_fills_toward_footprint_while_running() {
        let mut m = LlcModel::new(1, 27.5 * MB);
        m.add_vm();
        m.set_footprint(at(0), 0, 16.0 * MB);
        m.on_sched(at(0), 0, 0);
        let mut prev = 0.0;
        for ms in [1, 5, 10, 50, 200] {
            m.advance(at(ms), 0);
            let occ = m.occupancy(0, 0);
            assert!(occ > prev, "fill must be monotone");
            assert!(occ <= 16.0 * MB + 1.0, "never above footprint");
            prev = occ;
        }
        assert!(prev > 15.9 * MB, "200 ms is many fill time constants");
        assert!(m.efficiency(0, 0) > 0.99);
    }

    #[test]
    fn occupancy_decays_while_descheduled() {
        let mut m = LlcModel::new(1, 27.5 * MB);
        m.add_vm();
        m.set_footprint(at(0), 0, 16.0 * MB);
        m.on_sched(at(0), 0, 0);
        m.on_desched(at(100), 0, 0);
        let mut prev = m.occupancy(0, 0);
        for ms in [110, 150, 250, 500] {
            m.advance(at(ms), 0);
            let occ = m.occupancy(0, 0);
            assert!(occ < prev, "decay must be monotone");
            assert!(occ >= 0.0);
            prev = occ;
        }
        assert!(m.efficiency(0, 0) < 0.75, "cold cache approaches the floor");
    }

    #[test]
    fn oversubscription_evicts_proportionally_and_conserves() {
        let mut m = LlcModel::new(1, 27.5 * MB);
        m.add_vm();
        m.add_vm();
        m.set_footprint(at(0), 0, 16.0 * MB);
        m.set_footprint(at(0), 1, 48.0 * MB);
        m.on_sched(at(0), 0, 0);
        m.on_sched(at(0), 1, 0);
        for ms in 1..=300 {
            m.advance(at(ms), 0);
            let snap = m.snapshot(0);
            assert!(
                snap.occupied <= 27.5 * MB + 1.0,
                "occupancy must never exceed the LLC"
            );
            let balance = snap.inserted - snap.evicted - snap.decayed;
            assert!(
                (snap.occupied - balance).abs() <= (1e-6 * snap.inserted).max(1.0),
                "conservation: occupied == inserted - evicted - decayed"
            );
        }
        // The thrasher's 48 MB footprint squeezes the victim well below its
        // 16 MB working set: proportional eviction favours the big one.
        let victim = m.occupancy(0, 0);
        let thrasher = m.occupancy(1, 0);
        assert!(thrasher > 2.0 * victim);
        assert!(m.efficiency(0, 0) < 0.9, "victim pays a miss penalty");
    }

    #[test]
    fn shrinking_a_footprint_evicts_the_excess() {
        let mut m = LlcModel::new(1, 27.5 * MB);
        m.add_vm();
        m.set_footprint(at(0), 0, 16.0 * MB);
        m.on_sched(at(0), 0, 0);
        m.advance(at(100), 0);
        m.set_footprint(at(100), 0, 4.0 * MB);
        assert!(m.occupancy(0, 0) <= 4.0 * MB);
        let snap = m.snapshot(0);
        let balance = snap.inserted - snap.evicted - snap.decayed;
        assert!((snap.occupied - balance).abs() <= 1.0);
    }

    #[test]
    fn contention_reflects_neighbour_bytes_only() {
        let mut m = LlcModel::new(1, 27.5 * MB);
        m.add_vm();
        m.add_vm();
        m.set_footprint(at(0), 1, 20.0 * MB);
        m.on_sched(at(0), 1, 0);
        m.advance(at(200), 0);
        assert!(m.contention(0, 0) > 0.6, "vm0 sees vm1's bytes");
        assert!(m.contention(1, 0) < 0.05, "vm1 does not see itself");
    }
}
