//! seL4-style static time-domain partitioning of host threads.
//!
//! A [`DomainSchedule`] divides host CPU time into a fixed rotation of
//! per-tenant-class slices (the seL4 `ksDomSchedule` idea): while a
//! slice is active, only vCPUs of that slice's [`PriorityClass`] may
//! execute; everything else waits, regardless of demand or weight. This
//! makes proportional-share gaming (tick-dodging, wake-preemption abuse)
//! structurally impossible — an adversary cannot run outside its own
//! domain, so the most it can "steal" is time inside its own entitlement.
//!
//! The schedule is validated up front ([`DomainSchedule::validate`]) and
//! then immutable for the run; [`crate::machine::Machine`] rotates it
//! round-robin, emitting `DomainSwitch`/`StealAccounted` trace events
//! that the invariant checker holds to the slice-sum, cross-domain, and
//! steal-conservation laws.

use std::fmt;
use trace::PriorityClass;

/// One entry of a domain rotation: a tenant class and its slice length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainSlice {
    /// Tenant class that owns the slice.
    pub class: PriorityClass,
    /// Slice length in nanoseconds.
    pub slice_ns: u64,
}

impl DomainSlice {
    /// Convenience constructor.
    pub fn new(class: PriorityClass, slice_ns: u64) -> Self {
        Self { class, slice_ns }
    }
}

/// A static rotation of per-tenant-class time slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSchedule {
    /// The rotation, in order. Repeating a class is allowed (a class may
    /// hold several slices per period).
    pub slices: Vec<DomainSlice>,
    /// Rotation period in nanoseconds; the slices must sum to exactly
    /// this (the slice-sum trace law re-checks it at every wrap).
    pub period_ns: u64,
}

impl DomainSchedule {
    /// Builds a schedule whose period is the sum of its slices (the
    /// common, always-consistent case).
    pub fn new(slices: Vec<DomainSlice>) -> Self {
        let period_ns = slices.iter().map(|s| s.slice_ns).sum();
        Self { slices, period_ns }
    }

    /// Builds a schedule with an explicit period, which
    /// [`DomainSchedule::validate`] may then reject — the error-path
    /// constructor for tests and config loading.
    pub fn with_period(slices: Vec<DomainSlice>, period_ns: u64) -> Self {
        Self { slices, period_ns }
    }

    /// An even two-class split: half the period to `a`, half to `b`.
    pub fn even_pair(a: PriorityClass, b: PriorityClass, period_ns: u64) -> Self {
        let half = period_ns / 2;
        Self::with_period(
            vec![
                DomainSlice::new(a, half),
                DomainSlice::new(b, period_ns - half),
            ],
            period_ns,
        )
    }

    /// Checks the schedule's internal consistency and that every tenant
    /// class in `classes_in_use` owns at least one slice (a class with no
    /// domain would silently never run).
    pub fn validate(&self, classes_in_use: &[PriorityClass]) -> Result<(), DomainConfigError> {
        if self.slices.is_empty() {
            return Err(DomainConfigError::EmptySchedule);
        }
        for (index, s) in self.slices.iter().enumerate() {
            if s.slice_ns == 0 {
                return Err(DomainConfigError::ZeroLengthSlice {
                    index,
                    class: s.class,
                });
            }
        }
        let total_ns: u64 = self.slices.iter().map(|s| s.slice_ns).sum();
        if total_ns > self.period_ns {
            return Err(DomainConfigError::SlicesExceedPeriod {
                total_ns,
                period_ns: self.period_ns,
            });
        }
        if total_ns < self.period_ns {
            return Err(DomainConfigError::SlicesUnderfillPeriod {
                total_ns,
                period_ns: self.period_ns,
            });
        }
        for &class in classes_in_use {
            if !self.slices.iter().any(|s| s.class == class) {
                return Err(DomainConfigError::MissingClass { class });
            }
        }
        Ok(())
    }
}

/// Why a [`DomainSchedule`] was rejected. Every variant names the exact
/// offending field values so the message alone identifies the fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainConfigError {
    /// The rotation has no slices at all.
    EmptySchedule,
    /// A slice has `slice_ns == 0`.
    ZeroLengthSlice {
        /// Position in the rotation.
        index: usize,
        /// Class the empty slice belongs to.
        class: PriorityClass,
    },
    /// The slices sum to more than the period.
    SlicesExceedPeriod {
        /// Sum of all slice lengths.
        total_ns: u64,
        /// Declared period.
        period_ns: u64,
    },
    /// The slices sum to less than the period (a gap nobody owns).
    SlicesUnderfillPeriod {
        /// Sum of all slice lengths.
        total_ns: u64,
        /// Declared period.
        period_ns: u64,
    },
    /// A tenant class present on the machine has no slice.
    MissingClass {
        /// The classless tenant.
        class: PriorityClass,
    },
}

impl fmt::Display for DomainConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySchedule => write!(f, "domain schedule has no slices"),
            Self::ZeroLengthSlice { index, class } => {
                write!(f, "slice {index} (class {}) has zero length", class.name())
            }
            Self::SlicesExceedPeriod {
                total_ns,
                period_ns,
            } => write!(
                f,
                "slices sum to {total_ns} ns, exceeding the {period_ns} ns period"
            ),
            Self::SlicesUnderfillPeriod {
                total_ns,
                period_ns,
            } => write!(
                f,
                "slices sum to {total_ns} ns, leaving {} ns of the {period_ns} ns \
                 period unowned",
                period_ns - total_ns
            ),
            Self::MissingClass { class } => write!(
                f,
                "tenant class {} is in use but owns no domain slice",
                class.name()
            ),
        }
    }
}

impl std::error::Error for DomainConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_constructor_is_always_consistent() {
        let ds = DomainSchedule::new(vec![
            DomainSlice::new(PriorityClass::Standard, 2_000_000),
            DomainSlice::new(PriorityClass::Batch, 2_000_000),
        ]);
        assert_eq!(ds.period_ns, 4_000_000);
        assert_eq!(
            ds.validate(&[PriorityClass::Standard, PriorityClass::Batch]),
            Ok(())
        );
    }

    #[test]
    fn zero_length_slice_is_named() {
        let ds = DomainSchedule::with_period(
            vec![
                DomainSlice::new(PriorityClass::Standard, 4_000_000),
                DomainSlice::new(PriorityClass::Batch, 0),
            ],
            4_000_000,
        );
        let err = ds.validate(&[]).unwrap_err();
        assert_eq!(
            err,
            DomainConfigError::ZeroLengthSlice {
                index: 1,
                class: PriorityClass::Batch
            }
        );
        assert_eq!(err.to_string(), "slice 1 (class batch) has zero length");
    }

    #[test]
    fn over_and_underfilled_periods_are_named() {
        let over = DomainSchedule::with_period(
            vec![DomainSlice::new(PriorityClass::Standard, 5_000_000)],
            4_000_000,
        );
        assert_eq!(
            over.validate(&[]).unwrap_err().to_string(),
            "slices sum to 5000000 ns, exceeding the 4000000 ns period"
        );
        let under = DomainSchedule::with_period(
            vec![DomainSlice::new(PriorityClass::Standard, 3_000_000)],
            4_000_000,
        );
        assert_eq!(
            under.validate(&[]).unwrap_err().to_string(),
            "slices sum to 3000000 ns, leaving 1000000 ns of the 4000000 ns period unowned"
        );
    }

    #[test]
    fn class_without_a_slice_is_rejected() {
        let ds = DomainSchedule::new(vec![DomainSlice::new(PriorityClass::Standard, 1_000_000)]);
        let err = ds
            .validate(&[PriorityClass::Standard, PriorityClass::Critical])
            .unwrap_err();
        assert_eq!(
            err,
            DomainConfigError::MissingClass {
                class: PriorityClass::Critical
            }
        );
        assert_eq!(
            err.to_string(),
            "tenant class critical is in use but owns no domain slice"
        );
        assert_eq!(
            DomainSchedule::with_period(vec![], 0)
                .validate(&[])
                .unwrap_err(),
            DomainConfigError::EmptySchedule
        );
    }
}
