//! Scenario construction helpers.
//!
//! Experiments describe a host, a set of VMs (with pinning, host weights,
//! and bandwidth control), interfering host loads, and a timeline of
//! scripted changes; [`ScenarioBuilder`] assembles the [`Machine`].
//!
//! Pinning conventions match the paper's setups: `pinned_one_to_one` puts
//! vCPU *i* on thread *base + i* (virsh-style pinning), `stacked_pairs`
//! doubles vCPUs up on threads, and `floating` lets the host place vCPUs
//! freely (the multi-tenant experiments of §5.8).

use crate::machine::Machine;
use crate::topology::HostSpec;
use guestos::GuestConfig;
use simcore::SimTime;

/// How a VM's vCPUs map to hardware threads.
#[derive(Debug, Clone)]
pub enum Pinning {
    /// vCPU `i` pinned to exactly `threads[i]`.
    OneToOne(Vec<usize>),
    /// Each vCPU may run on any of the given threads.
    Floating(Vec<usize>),
    /// Explicit per-vCPU thread lists.
    PerVcpu(Vec<Vec<usize>>),
}

impl Pinning {
    /// vCPU `i` on thread `base + i` for `n` vCPUs.
    pub fn one_to_one(base: usize, n: usize) -> Self {
        Pinning::OneToOne((base..base + n).collect())
    }

    /// Pairs of vCPUs stacked on consecutive threads: vCPUs `2k` and
    /// `2k + 1` both pinned to thread `base + k`.
    pub fn stacked_pairs(base: usize, n_vcpus: usize) -> Self {
        Pinning::OneToOne((0..n_vcpus).map(|i| base + i / 2).collect())
    }

    fn to_affinities(&self, n: usize) -> Vec<Vec<usize>> {
        match self {
            Pinning::OneToOne(threads) => {
                assert_eq!(threads.len(), n, "one thread per vCPU");
                threads.iter().map(|&t| vec![t]).collect()
            }
            Pinning::Floating(threads) => {
                assert!(!threads.is_empty());
                vec![threads.clone(); n]
            }
            Pinning::PerVcpu(lists) => {
                assert_eq!(lists.len(), n);
                lists.clone()
            }
        }
    }
}

/// Description of one VM.
#[derive(Debug, Clone)]
pub struct VmSpec {
    /// Number of vCPUs.
    pub nr_vcpus: usize,
    /// vCPU→thread mapping.
    pub pinning: Pinning,
    /// Host scheduling weight of each vCPU.
    pub weight: u64,
    /// Uniform CFS-bandwidth `(quota_ns, period_ns)`, if any.
    pub bandwidth: Option<(u64, u64)>,
    /// Guest scheduler configuration (defaults from `nr_vcpus`).
    pub guest_cfg: Option<GuestConfig>,
}

impl VmSpec {
    /// A VM with `n` vCPUs pinned one-to-one starting at thread `base`.
    pub fn pinned(n: usize, base: usize) -> Self {
        Self {
            nr_vcpus: n,
            pinning: Pinning::one_to_one(base, n),
            weight: 1024,
            bandwidth: None,
            guest_cfg: None,
        }
    }

    /// A VM with `n` vCPUs floating over the given threads.
    pub fn floating(n: usize, threads: Vec<usize>) -> Self {
        Self {
            nr_vcpus: n,
            pinning: Pinning::Floating(threads),
            weight: 1024,
            bandwidth: None,
            guest_cfg: None,
        }
    }

    /// Sets explicit pinning.
    pub fn pinning(mut self, p: Pinning) -> Self {
        self.pinning = p;
        self
    }

    /// Sets uniform bandwidth control.
    pub fn bandwidth(mut self, quota_ns: u64, period_ns: u64) -> Self {
        self.bandwidth = Some((quota_ns, period_ns));
        self
    }

    /// Sets the host weight of every vCPU.
    pub fn weight(mut self, w: u64) -> Self {
        self.weight = w;
        self
    }

    /// Overrides the guest scheduler configuration.
    pub fn guest_cfg(mut self, cfg: GuestConfig) -> Self {
        self.guest_cfg = Some(cfg);
        self
    }
}

/// Assembles a [`Machine`] from declarative pieces.
pub struct ScenarioBuilder {
    machine: Machine,
}

impl ScenarioBuilder {
    /// Starts a scenario on the given host with a deterministic seed.
    pub fn new(host: HostSpec, seed: u64) -> Self {
        Self {
            machine: Machine::new(host, seed),
        }
    }

    /// Adds a VM; returns `(self, vm_index)`.
    pub fn vm(mut self, spec: VmSpec) -> (Self, usize) {
        let cfg = spec
            .guest_cfg
            .clone()
            .unwrap_or_else(|| GuestConfig::new(spec.nr_vcpus));
        assert_eq!(cfg.nr_vcpus, spec.nr_vcpus, "guest cfg size mismatch");
        let aff = spec.pinning.to_affinities(spec.nr_vcpus);
        let idx = self.machine.add_vm(cfg, aff, spec.weight, spec.bandwidth);
        (self, idx)
    }

    /// Adds a host load on a thread immediately.
    pub fn host_load(mut self, thread: usize, weight: u64) -> Self {
        self.machine.add_host_load(thread, weight);
        self
    }

    /// Schedules a scripted action.
    pub fn at(mut self, t: SimTime, action: crate::machine::ScriptAction) -> Self {
        self.machine.at(t, action);
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Machine {
        self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_pinning_expands() {
        let p = Pinning::one_to_one(4, 3);
        assert_eq!(p.to_affinities(3), vec![vec![4], vec![5], vec![6]]);
    }

    #[test]
    fn stacked_pairs_double_up() {
        let p = Pinning::stacked_pairs(0, 4);
        assert_eq!(p.to_affinities(4), vec![vec![0], vec![0], vec![1], vec![1]]);
    }

    #[test]
    fn floating_repeats_mask() {
        let p = Pinning::Floating(vec![0, 1]);
        assert_eq!(p.to_affinities(2), vec![vec![0, 1], vec![0, 1]]);
    }

    #[test]
    #[should_panic]
    fn one_to_one_size_mismatch_panics() {
        Pinning::one_to_one(0, 2).to_affinities(3);
    }

    #[test]
    fn builder_assembles_machine() {
        let (b, vm0) = ScenarioBuilder::new(HostSpec::flat(4), 1).vm(VmSpec::pinned(4, 0));
        let (b, vm1) = b.vm(VmSpec::pinned(4, 0)
            .bandwidth(5_000_000, 10_000_000)
            .weight(2048));
        let m = b.host_load(3, 1024).build();
        assert_eq!(vm0, 0);
        assert_eq!(vm1, 1);
        assert_eq!(m.vms.len(), 2);
        assert_eq!(m.vcpus.len(), 8);
        assert_eq!(m.vcpus[m.gv(1, 0)].weight, 2048);
    }
}
