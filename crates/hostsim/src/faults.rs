//! Chaos-mode fault injection.
//!
//! A [`FaultPlan`] is a seed-driven, fully precomputed schedule of host
//! misbehaviour: stressor bursts, quota/period churn, re-pinning, vCPU
//! offline/online, DVFS capacity steps, and probe-time measurement noise.
//! The plan is generated *before* the simulation starts from a
//! [`simcore::SimRng`] stream, so a given `(seed, spec)` pair always yields
//! the same injected-event sequence, byte for byte — chaos runs replay
//! exactly, across processes and thread counts.
//!
//! Each concrete fault is applied through the existing
//! [`ScriptAction`](crate::ScriptAction) machinery and paired with an
//! [`ScriptAction::AnnotateFault`] marker, so traces (and the streaming
//! invariant checker) see fault boundaries as first-class events.
//!
//! Transient faults carry a duration and schedule their own reversal:
//! stressor loads are removed, quotas lifted, offline vCPUs brought back,
//! frequencies restored, and noise cleared. A plan therefore leaves the
//! host in its nominal configuration once the last reversal fires.

use crate::machine::{Machine, ScriptAction};
use simcore::json::Json;
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::fmt;
use trace::FaultClass;

/// Which VM / host surface a plan may touch.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// VM index the vCPU-level faults target.
    pub vm: usize,
    /// Number of vCPUs in that VM.
    pub nr_vcpus: usize,
    /// Hardware threads the VM's vCPUs occupy (stressor bursts and
    /// re-pinning stay inside this set).
    pub threads: Vec<usize>,
    /// Cores whose DVFS frequency may step (typically the cores backing
    /// `threads`).
    pub cores: Vec<usize>,
    /// Enabled fault classes. [`FaultClass::VcpuOnline`] is implied by
    /// [`FaultClass::VcpuOffline`] (every offline schedules its online).
    pub classes: Vec<FaultClass>,
    /// Injection horizon: faults are injected in `[start, start + horizon)`.
    pub start: SimTime,
    /// Horizon length in nanoseconds.
    pub horizon_ns: u64,
    /// Mean gap between consecutive faults of one class (ns).
    pub mean_interval_ns: u64,
}

impl ChaosSpec {
    /// A spec covering one pinned VM: vCPU `i` on thread `i`, one core per
    /// thread, every fault class enabled, faults from 500 ms to `horizon`.
    pub fn for_pinned_vm(vm: usize, nr_vcpus: usize, horizon_ns: u64) -> Self {
        Self {
            vm,
            nr_vcpus,
            threads: (0..nr_vcpus).collect(),
            cores: (0..nr_vcpus).collect(),
            classes: vec![
                FaultClass::StressorBurst,
                FaultClass::QuotaChurn,
                FaultClass::PinChange,
                FaultClass::VcpuOffline,
                FaultClass::CapacityStep,
                FaultClass::ProbeNoise,
            ],
            start: SimTime::from_ns(500 * MS),
            horizon_ns,
            mean_interval_ns: 800 * MS,
        }
    }

    /// Restricts the plan to a single fault class.
    pub fn only(mut self, class: FaultClass) -> Self {
        self.classes = vec![class];
        self
    }

    /// Overrides the mean inter-fault gap.
    pub fn mean_interval(mut self, ns: u64) -> Self {
        self.mean_interval_ns = ns;
        self
    }
}

/// Stable per-class RNG stream tag (independent of declaration order).
fn class_tag(class: FaultClass) -> u64 {
    match class {
        FaultClass::StressorBurst => 1,
        FaultClass::QuotaChurn => 2,
        FaultClass::PinChange => 3,
        FaultClass::VcpuOffline => 4,
        FaultClass::VcpuOnline => 5,
        FaultClass::CapacityStep => 6,
        FaultClass::ProbeNoise => 7,
    }
}

/// One planned fault with its concrete parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFault {
    /// Injection time.
    pub at: SimTime,
    /// Classification (matches the `FaultInjected` trace marker).
    pub class: FaultClass,
    /// Affected guest-local vCPU, where one exists (0 for machine-wide).
    pub vcpu: usize,
    /// How long the fault persists before its reversal (0 = permanent
    /// within the run, e.g. a pin change).
    pub duration_ns: u64,
    /// Class-specific magnitude: stressor weight, quota fraction ×1000,
    /// DVFS factor ×1000, noise amplitude ×1000, target thread for pins.
    pub magnitude: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} {:?} vcpu={} dur={} mag={}",
            self.at.ns(),
            self.class,
            self.vcpu,
            self.duration_ns,
            self.magnitude
        )
    }
}

/// A replayable fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// Planned faults, sorted by injection time (ties keep generation
    /// order, which is itself deterministic).
    pub events: Vec<InjectedFault>,
    spec: ChaosSpec,
}

// PartialEq on ChaosSpec is structural; derive would need it on SimTime
// (present) — implement manually to keep the field list explicit.
impl PartialEq for ChaosSpec {
    fn eq(&self, other: &Self) -> bool {
        self.vm == other.vm
            && self.nr_vcpus == other.nr_vcpus
            && self.threads == other.threads
            && self.cores == other.cores
            && self.classes == other.classes
            && self.start == other.start
            && self.horizon_ns == other.horizon_ns
            && self.mean_interval_ns == other.mean_interval_ns
    }
}

impl FaultPlan {
    /// Generates the plan. Each enabled class draws from its own forked
    /// RNG stream, so enabling or disabling one class never perturbs the
    /// schedule of another.
    pub fn generate(seed: u64, spec: &ChaosSpec) -> FaultPlan {
        let mut events: Vec<InjectedFault> = Vec::new();
        for &class in &spec.classes {
            // Each class gets a stream derived only from `(seed, class)` —
            // not from its position in `classes` or the other enabled
            // classes — so filtering classes never perturbs the streams of
            // the ones that remain.
            let mut rng = SimRng::new(seed ^ 0xC4A0_5F00).fork(class_tag(class));
            Self::plan_class(&mut rng, spec, class, &mut events);
        }
        // Stable sort: simultaneous faults keep class-order, which is
        // fixed by `spec.classes`.
        events.sort_by_key(|e| e.at);
        FaultPlan {
            seed,
            events,
            spec: spec.clone(),
        }
    }

    fn plan_class(
        rng: &mut SimRng,
        spec: &ChaosSpec,
        class: FaultClass,
        out: &mut Vec<InjectedFault>,
    ) {
        // Saturating horizon arithmetic: a spec with `start + horizon` near
        // `u64::MAX` must clip the injection window, not wrap it to zero
        // (which would silently plan nothing — or, pre-overflow-checks,
        // plan faults in the past).
        let end = spec.start.ns().saturating_add(spec.horizon_ns);
        let mut t = spec
            .start
            .ns()
            .saturating_add(rng.exp(spec.mean_interval_ns as f64) as u64);
        while t < end {
            let vcpu = rng.index(spec.nr_vcpus.max(1));
            // Transients last 50–400 ms and never outlive the horizon, so
            // the plan always restores the nominal configuration.
            let max_dur = (end - t).min(400 * MS);
            let duration_ns = (50 * MS + rng.range(0, 350 * MS)).min(max_dur).max(MS);
            let magnitude = match class {
                // Host stressor weight: 1×–8× a vCPU's default weight.
                FaultClass::StressorBurst => 1024 * rng.range(1, 9),
                // Quota as a fraction of the period, ×1000: 200–800 ‰.
                FaultClass::QuotaChurn => rng.range(200, 801),
                // Pin target: another thread from the allowed set.
                FaultClass::PinChange => spec.threads[rng.index(spec.threads.len())] as u64,
                FaultClass::VcpuOffline => 0,
                // DVFS factor ×1000: 300–900 ‰ of nominal.
                FaultClass::CapacityStep => rng.range(300, 901),
                // Noise amplitude ×1000: 100–500 ‰ (±10 % – ±50 %).
                FaultClass::ProbeNoise => rng.range(100, 501),
                // Onlines are scheduled by their offline, never drawn.
                FaultClass::VcpuOnline => 0,
            };
            out.push(InjectedFault {
                at: SimTime::from_ns(t),
                class,
                vcpu,
                duration_ns,
                magnitude,
            });
            t = t.saturating_add(rng.exp(spec.mean_interval_ns as f64).max(1.0) as u64);
        }
    }

    /// The spec the plan was generated against.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// A plan with the same seed and spec but a different action list.
    /// The shrinker uses this to test subsets; `events` must preserve the
    /// original relative order (any subsequence does), so the result stays
    /// sorted and replays deterministically.
    pub fn with_events(&self, events: Vec<InjectedFault>) -> FaultPlan {
        debug_assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        FaultPlan {
            seed: self.seed,
            events,
            spec: self.spec.clone(),
        }
    }

    /// The plan truncated to its first `k` actions (reversals of those
    /// actions are still scheduled by [`FaultPlan::apply`]).
    pub fn prefix(&self, k: usize) -> FaultPlan {
        self.with_events(self.events[..k.min(self.events.len())].to_vec())
    }

    /// Schedules every planned fault (and its reversal) onto a machine.
    /// Call after the scenario is assembled but before [`Machine::start`].
    ///
    /// Stressor reversals remove loads by arena id, which is predicted
    /// from [`Machine::nr_host_loads`] — the plan must therefore be the
    /// only source of *scripted* `AddLoad` actions on this machine
    /// (loads added directly before `start` are fine).
    pub fn apply(&self, m: &mut Machine) {
        let spec = &self.spec;
        let mut next_load_id = m.nr_host_loads();
        for e in &self.events {
            let vm = spec.vm;
            let vcpu = e.vcpu;
            m.at(
                e.at,
                ScriptAction::AnnotateFault {
                    vm,
                    vcpu,
                    class: e.class,
                },
            );
            let until = e.at.after(e.duration_ns);
            match e.class {
                FaultClass::StressorBurst => {
                    // Stress the thread hosting the chosen vCPU.
                    let thread = spec.threads[vcpu % spec.threads.len()];
                    let weight = e.magnitude;
                    m.at(e.at, ScriptAction::AddLoad { thread, weight });
                    m.at(until, ScriptAction::RemoveLoad { id: next_load_id });
                    next_load_id += 1;
                }
                FaultClass::QuotaChurn => {
                    let period_ns = 10 * MS;
                    let quota_ns = period_ns * e.magnitude / 1000;
                    m.at(
                        e.at,
                        ScriptAction::SetBandwidth {
                            vm,
                            vcpu,
                            qp: Some((quota_ns, period_ns)),
                        },
                    );
                    m.at(until, ScriptAction::SetBandwidth { vm, vcpu, qp: None });
                }
                FaultClass::PinChange => {
                    m.at(
                        e.at,
                        ScriptAction::SetAffinity {
                            vm,
                            vcpu,
                            threads: vec![e.magnitude as usize],
                        },
                    );
                    // Restore the home thread after the transient.
                    let home = spec.threads[vcpu % spec.threads.len()];
                    m.at(
                        until,
                        ScriptAction::SetAffinity {
                            vm,
                            vcpu,
                            threads: vec![home],
                        },
                    );
                }
                FaultClass::VcpuOffline => {
                    m.at(e.at, ScriptAction::OfflineVcpu { vm, vcpu });
                    m.at(
                        until,
                        ScriptAction::AnnotateFault {
                            vm,
                            vcpu,
                            class: FaultClass::VcpuOnline,
                        },
                    );
                    m.at(until, ScriptAction::OnlineVcpu { vm, vcpu });
                }
                FaultClass::VcpuOnline => {}
                FaultClass::CapacityStep => {
                    let core = spec.cores[vcpu % spec.cores.len()];
                    let factor = e.magnitude as f64 / 1000.0;
                    m.at(e.at, ScriptAction::SetFreq { core, factor });
                    m.at(until, ScriptAction::SetFreq { core, factor: 1.0 });
                }
                FaultClass::ProbeNoise => {
                    let noise = e.magnitude as f64 / 1000.0;
                    m.at(e.at, ScriptAction::SetProbeNoise { noise });
                    m.at(until, ScriptAction::SetProbeNoise { noise: 0.0 });
                }
            }
        }
    }

    /// Serializes the full plan — spec, seed, and action list — as JSON.
    /// This is the chaos-repro file format (`suite --shrink` writes it,
    /// `suite --replay` reads it back); integers round-trip exactly.
    pub fn to_json(&self) -> String {
        let spec = &self.spec;
        let uints = |v: &[usize]| Json::Arr(v.iter().map(|&x| Json::Uint(x as u64)).collect());
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::obj([
                    ("at_ns", Json::Uint(e.at.ns())),
                    ("class", e.class.name().into()),
                    ("vcpu", Json::Uint(e.vcpu as u64)),
                    ("duration_ns", Json::Uint(e.duration_ns)),
                    ("magnitude", Json::Uint(e.magnitude)),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("seed", Json::Uint(self.seed)),
            (
                "spec",
                Json::obj([
                    ("vm", Json::Uint(spec.vm as u64)),
                    ("nr_vcpus", Json::Uint(spec.nr_vcpus as u64)),
                    ("threads", uints(&spec.threads)),
                    ("cores", uints(&spec.cores)),
                    (
                        "classes",
                        Json::Arr(spec.classes.iter().map(|c| c.name().into()).collect()),
                    ),
                    ("start_ns", Json::Uint(spec.start.ns())),
                    ("horizon_ns", Json::Uint(spec.horizon_ns)),
                    ("mean_interval_ns", Json::Uint(spec.mean_interval_ns)),
                ]),
            ),
            ("events", Json::Arr(events)),
        ])
        .render()
    }

    /// Parses a plan previously written by [`FaultPlan::to_json`].
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let need =
            |v: Option<&Json>, what: &str| v.cloned().ok_or_else(|| format!("missing {what}"));
        let u = |v: &Json, what: &str| v.as_u64().ok_or_else(|| format!("{what} not a u64"));
        let usizes = |v: &Json, what: &str| -> Result<Vec<usize>, String> {
            v.as_arr()
                .ok_or_else(|| format!("{what} not an array"))?
                .iter()
                .map(|x| u(x, what).map(|n| n as usize))
                .collect()
        };
        let class_of = |v: &Json| -> Result<FaultClass, String> {
            let name = v.as_str().ok_or("class not a string")?;
            FaultClass::from_name(name).ok_or_else(|| format!("unknown fault class '{name}'"))
        };

        let sj = need(doc.get("spec"), "spec")?;
        let spec = ChaosSpec {
            vm: u(&need(sj.get("vm"), "spec.vm")?, "spec.vm")? as usize,
            nr_vcpus: u(&need(sj.get("nr_vcpus"), "spec.nr_vcpus")?, "spec.nr_vcpus")? as usize,
            threads: usizes(&need(sj.get("threads"), "spec.threads")?, "spec.threads")?,
            cores: usizes(&need(sj.get("cores"), "spec.cores")?, "spec.cores")?,
            classes: need(sj.get("classes"), "spec.classes")?
                .as_arr()
                .ok_or("spec.classes not an array")?
                .iter()
                .map(class_of)
                .collect::<Result<_, _>>()?,
            start: SimTime::from_ns(u(&need(sj.get("start_ns"), "spec.start_ns")?, "start_ns")?),
            horizon_ns: u(
                &need(sj.get("horizon_ns"), "spec.horizon_ns")?,
                "horizon_ns",
            )?,
            mean_interval_ns: u(
                &need(sj.get("mean_interval_ns"), "spec.mean_interval_ns")?,
                "mean_interval_ns",
            )?,
        };
        let mut events = Vec::new();
        for ej in need(doc.get("events"), "events")?
            .as_arr()
            .ok_or("events not an array")?
        {
            events.push(InjectedFault {
                at: SimTime::from_ns(u(&need(ej.get("at_ns"), "event.at_ns")?, "at_ns")?),
                class: class_of(&need(ej.get("class"), "event.class")?)?,
                vcpu: u(&need(ej.get("vcpu"), "event.vcpu")?, "vcpu")? as usize,
                duration_ns: u(
                    &need(ej.get("duration_ns"), "event.duration_ns")?,
                    "duration_ns",
                )?,
                magnitude: u(&need(ej.get("magnitude"), "event.magnitude")?, "magnitude")?,
            });
        }
        if !events.windows(2).all(|w| w[0].at <= w[1].at) {
            return Err("events not sorted by at_ns".into());
        }
        Ok(FaultPlan {
            seed: u(&need(doc.get("seed"), "seed")?, "seed")?,
            events,
            spec,
        })
    }

    /// Stable one-line-per-fault rendering; determinism gates compare this
    /// byte-for-byte across runs and processes.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::HostSpec;
    use simcore::propcheck;

    fn spec(n: usize) -> ChaosSpec {
        ChaosSpec::for_pinned_vm(0, n, 3_000 * MS)
    }

    #[test]
    fn same_seed_same_plan() {
        let s = spec(8);
        let a = FaultPlan::generate(7, &s);
        let b = FaultPlan::generate(7, &s);
        assert_eq!(a, b);
        assert_eq!(a.describe(), b.describe());
        assert!(!a.events.is_empty(), "horizon long enough to draw faults");
    }

    #[test]
    fn different_seeds_differ() {
        let s = spec(8);
        let a = FaultPlan::generate(1, &s);
        let b = FaultPlan::generate(2, &s);
        assert_ne!(a.describe(), b.describe());
    }

    #[test]
    fn class_streams_are_independent() {
        // Dropping one class must not perturb another class's schedule.
        let full = FaultPlan::generate(11, &spec(4));
        let only = FaultPlan::generate(11, &spec(4).only(FaultClass::QuotaChurn));
        let full_quota: Vec<_> = full
            .events
            .iter()
            .filter(|e| e.class == FaultClass::QuotaChurn)
            .cloned()
            .collect();
        assert_eq!(full_quota, only.events);
    }

    #[test]
    fn events_sorted_and_bounded() {
        propcheck::forall(0xFA017, 16, |rng| {
            let s = spec(1 + rng.index(16));
            let plan = FaultPlan::generate(rng.u64(), &s);
            let end = s.start.ns() + s.horizon_ns;
            let mut prev = 0;
            for e in &plan.events {
                assert!(e.at.ns() >= prev, "sorted");
                prev = e.at.ns();
                assert!(e.at >= s.start && e.at.ns() < end, "inside horizon");
                assert!(e.vcpu < s.nr_vcpus);
                assert!(
                    e.at.ns() + e.duration_ns <= end + 400 * MS,
                    "reversal near horizon"
                );
            }
        });
    }

    #[test]
    fn json_round_trips_exactly() {
        propcheck::forall(0xFA018, 16, |rng| {
            let s = spec(1 + rng.index(8));
            let plan = FaultPlan::generate(rng.u64(), &s);
            let back = FaultPlan::from_json(&plan.to_json()).expect("parses back");
            assert_eq!(plan, back);
            assert_eq!(plan.to_json(), back.to_json());
        });
    }

    #[test]
    fn from_json_rejects_malformed_plans() {
        assert!(FaultPlan::from_json("{}").is_err());
        assert!(FaultPlan::from_json("not json").is_err());
        // Unsorted events are rejected: apply() assumes time order.
        let plan = FaultPlan::generate(5, &spec(4));
        assert!(plan.events.len() >= 2);
        let mut doc = Json::parse(&plan.to_json()).unwrap();
        if let Json::Obj(m) = &mut doc {
            if let Some(Json::Arr(events)) = m.get_mut("events") {
                events.reverse();
            }
        }
        assert!(FaultPlan::from_json(&doc.render()).is_err());
    }

    #[test]
    fn subsets_preserve_identity_and_order() {
        let plan = FaultPlan::generate(9, &spec(6));
        let n = plan.events.len();
        assert!(n >= 4, "want a non-trivial plan");
        let half: Vec<_> = plan.events.iter().step_by(2).cloned().collect();
        let sub = plan.with_events(half.clone());
        assert_eq!(sub.seed, plan.seed);
        assert_eq!(sub.spec(), plan.spec());
        assert_eq!(sub.events, half);
        let pre = plan.prefix(3);
        assert_eq!(pre.events, plan.events[..3].to_vec());
        assert_eq!(plan.prefix(n + 10).events.len(), n);
    }

    #[test]
    fn near_max_horizon_saturates_instead_of_wrapping() {
        // start + horizon would overflow; generation must clip, not wrap
        // (wrapped arithmetic would put `end` before `start` and plan
        // nothing — or abort under overflow-checks).
        let mut s = spec(4);
        s.start = SimTime::from_ns(u64::MAX - 100 * MS);
        s.horizon_ns = u64::MAX;
        let plan = FaultPlan::generate(3, &s);
        for e in &plan.events {
            assert!(e.at >= s.start);
        }
    }

    #[test]
    fn apply_schedules_reversals() {
        let s = spec(4);
        let plan = FaultPlan::generate(3, &s);
        let mut m = Machine::new(HostSpec::flat(4), 3);
        let cfg = guestos::GuestConfig::new(4);
        let aff = (0..4).map(|t| vec![t]).collect();
        m.add_vm(cfg, aff, 1024, None);
        plan.apply(&mut m);
        m.start();
        m.run_until(SimTime::from_ns(s.start.ns() + s.horizon_ns + 500 * MS));
        // All transients reversed: no live stressors, nominal noise.
        for th in 0..4 {
            assert_eq!(m.host_load_weight_on(th), 0, "thread {th} stressor left");
        }
    }
}
