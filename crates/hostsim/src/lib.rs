//! Host/hypervisor simulator.
//!
//! This crate is the *below-the-VM* half of the vSched reproduction: a
//! discrete-event model of a multi-socket SMT host running KVM-style VMs.
//! It produces, from first principles, every signal the paper's guest-side
//! machinery observes:
//!
//! * **vCPU activity** — per-thread weighted round-robin among vCPUs and
//!   host loads, plus CFS-bandwidth `(quota, period)` throttling, yields
//!   the active/inactive periods the paper controls with
//!   `cpu.cfs_quota_us` and the granularity sysctls;
//! * **steal time** — accounted while a vCPU is runnable-but-preempted or
//!   throttled, exposed to the guest as the paravirtual steal counter;
//! * **capacity** — DVFS frequency factors per core and an SMT-contention
//!   factor while a sibling thread is busy;
//! * **topology** — sockets/cores/threads with a cache-line transfer
//!   latency model calibrated to the paper's Figure 10b, which `vtop`
//!   measures through [`guestos::Platform::cacheline_latency_ns`].
//!
//! The [`machine::Machine`] owns the event loop; [`scenario`] provides the
//! declarative builders experiments use.

pub mod domain;
pub mod faults;
pub mod llc;
pub mod machine;
pub mod scenario;
pub mod topology;

pub use domain::{DomainConfigError, DomainSchedule, DomainSlice};
pub use faults::{ChaosSpec, FaultPlan, InjectedFault};
pub use machine::{Ev, GVcpu, HostSched, HostState, Machine, ScriptAction, Vm};
pub use scenario::{Pinning, ScenarioBuilder, VmSpec};
pub use topology::{CachelineLatencies, HostSpec};
