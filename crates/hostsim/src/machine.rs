//! The machine: host scheduler, vCPUs, VMs, and the event loop.
//!
//! [`Machine`] owns the physical threads, every vCPU, and every VM (each a
//! [`guestos::GuestOs`] plus its workload). It drives the simulation:
//!
//! * **Host scheduling** — per-hardware-thread weighted round-robin over
//!   entities (vCPUs and host stressor loads), with CFS-bandwidth-style
//!   `(quota, period)` throttling per vCPU. This produces exactly the
//!   signals the paper manipulates on its testbed: vCPU inactive periods,
//!   steal time, and capacity fluctuation.
//! * **Work accrual** — a guest task accrues work only while its vCPU is
//!   `Running`, at the hosting thread's capacity (DVFS × SMT contention),
//!   scaled by the task's communication-locality factor.
//! * **Guest callbacks** — vCPU start/stop, the 1 ms guest tick (suppressed
//!   while preempted, which is what makes `vact`'s heartbeat work), burst
//!   completion, task wake timers, and workload/vSched timers.
//!
//! Re-entrancy rule: [`guestos::Platform`] methods invoked from inside guest
//! code never call back into a guest; anything that needs to (a thread
//! reschedule that starts another VM's vCPU) is deferred through a
//! zero-delay event.

use crate::domain::{DomainConfigError, DomainSchedule};
use crate::llc::LlcModel;
use crate::topology::HostSpec;
use guestos::{
    CommDistance, GuestConfig, GuestOs, Platform, RunDelta, TaskId, TaskState, VcpuId, Workload,
};
use simcore::{EventQueue, Integrator, SimRng, SimTime};
use std::collections::VecDeque;
use trace::{EventKind, FaultClass, PreemptReason, PriorityClass, SharedCollector, TraceSink};

/// Global vCPU index across all VMs.
pub type GVcpu = usize;

/// Host-side scheduling state of a vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostState {
    /// Guest has nothing to run; not on any host runqueue.
    Halted,
    /// Wants to run; waiting on a host runqueue (steal time accrues).
    Runnable,
    /// Executing on the given hardware thread.
    Running(usize),
    /// Out of CFS-bandwidth quota (steal time accrues).
    Throttled,
}

/// CFS-bandwidth-style quota state.
#[derive(Debug, Clone, Copy)]
struct Bandwidth {
    quota_ns: u64,
    period_ns: u64,
    runtime_ns: u64,
    period_start: SimTime,
}

impl Bandwidth {
    /// Rolls the period window forward to contain `now`, resetting runtime.
    fn refill_to(&mut self, now: SimTime) {
        if now.since(self.period_start) >= self.period_ns {
            let periods = now.since(self.period_start) / self.period_ns;
            self.period_start = self.period_start.after(periods * self.period_ns);
            self.runtime_ns = 0;
        }
    }

    fn quota_left(&self) -> u64 {
        self.quota_ns.saturating_sub(self.runtime_ns)
    }

    fn next_refill(&self) -> SimTime {
        self.period_start.after(self.period_ns)
    }
}

/// An in-flight guest-task execution on a vCPU.
struct RunCtx {
    task: TaskId,
    target: f64,
    factor: f64,
    cache_penalty: f64,
    work: Integrator,
    active: Integrator,
    prev_work: f64,
    prev_active: f64,
    last_settle: SimTime,
}

/// Host-side record of one vCPU.
pub struct HostVcpu {
    /// Owning VM index.
    pub vm: usize,
    /// Guest-local index.
    pub idx: usize,
    /// Hardware threads this vCPU may run on (preference order).
    pub affinity: Vec<usize>,
    /// Host scheduling weight (1024 = one fair share).
    pub weight: u64,
    /// Current host state.
    pub state: HostState,
    state_since: SimTime,
    /// Cumulative steal (runnable/throttled) time, guest-visible.
    pub steal_ns: u64,
    /// Cumulative time actually executing.
    pub active_ns: u64,
    /// Host-side preemption count (Running → waiting transitions).
    pub preemptions: u64,
    /// Taken offline by the chaos layer: the host refuses to schedule it.
    /// Guest kicks still land (Halted → Runnable) but the vCPU never
    /// reaches a host queue, so it sits Runnable accruing steal — the
    /// starving-vCPU signal the probers are supposed to notice.
    pub offline: bool,
    bandwidth: Option<Bandwidth>,
    bw_gen: u64,
    run: Option<RunCtx>,
    tick_gen: u64,
    burst_gen: u64,
    /// Capacity contribution currently flowing into the VM cycle counter.
    cap_contrib: f64,
    /// Total work delivered through this vCPU (capacity-ns).
    pub delivered_work: f64,
    /// Segment log of (start, end) running intervals, kept only when
    /// tracing is enabled (Figure 3's timeline).
    pub trace_segments: Vec<(SimTime, SimTime)>,
}

/// An always-runnable host-level load (stressor / high-priority host task).
#[derive(Debug, Clone, Copy)]
pub struct HostLoad {
    /// Identifier (index into the load arena).
    pub id: usize,
    /// Host scheduling weight.
    pub weight: u64,
    /// Pinned thread.
    pub thread: usize,
    /// Whether the load has been removed.
    pub dead: bool,
}

/// How the host arbitrates a thread among its runnable entities.
///
/// [`HostSched::Proportional`] is the original exact-settling weighted
/// round-robin — the default, byte-identical to every prior run.
/// [`HostSched::CreditSampled`] models a Xen-credit-style scheduler whose
/// accounting is *sampled* at a periodic tick rather than settled exactly:
/// whoever happens to be on-CPU at the tick eats the whole tick's charge,
/// which is precisely the hole a tick-dodging adversary exploits
/// ("Scheduler Vulnerabilities and Attacks in Cloud Computing").
/// [`HostSched::Domain`] is the seL4-style static time-partition that
/// closes the hole structurally.
#[derive(Debug, Clone)]
pub enum HostSched {
    /// Exact-accounting weighted round-robin (the default).
    Proportional,
    /// Sampled-accounting credit scheduler: charge is attributed at each
    /// tick to whichever entity is running at that instant, decays ×3/4
    /// per tick, and the runqueue picks the least-charged entity, with
    /// wake preemption when a waiter's charge undercuts the current's.
    CreditSampled {
        /// Accounting tick period.
        tick_ns: u64,
    },
    /// Static per-tenant-class time slices rotated round-robin; only the
    /// active slice's class may execute.
    Domain(DomainSchedule),
}

/// Margin by which a queued entity's charge must undercut the current's
/// before a credit-sampled wake preempts (hysteresis against thrash).
const CREDIT_PREEMPT_MARGIN_NS: u64 = 200_000;

/// Live rotation state of a [`HostSched::Domain`] machine.
struct DomainState {
    /// Index of the active slice.
    active: usize,
    /// Class of the active slice (denormalized for the eligibility check).
    active_class: PriorityClass,
    /// Per-vCPU `active_ns` at the instant the slice began, for exact
    /// used/stolen deltas at the next rotation.
    snapshot: Vec<u64>,
}

/// An entity schedulable on a hardware thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entity {
    /// A vCPU (global index).
    Vcpu(GVcpu),
    /// A host load (arena index).
    Load(usize),
}

/// Per-hardware-thread scheduler state.
struct HwThread {
    current: Option<Entity>,
    queue: VecDeque<Entity>,
    quantum_gen: u64,
    /// When the current entity started its quantum (for bandwidth runtime).
    quantum_started: SimTime,
}

/// One virtual machine: guest kernel + workload + accounting.
pub struct Vm {
    /// The guest OS (scheduler + optional vSched hooks).
    pub guest: GuestOs,
    /// The hosted workload, if any.
    pub workload: Option<Box<dyn Workload>>,
    /// First global vCPU index of this VM.
    pub gvcpu_base: usize,
    /// Number of vCPUs.
    pub nr_vcpus: usize,
    /// Cycle accounting: integral of capacity over running vCPU time
    /// (Figure 20's total-cycles metric).
    pub cycles: Integrator,
    cycles_rate: f64,
}

/// Simulation events.
pub enum Ev {
    /// Re-evaluate a hardware thread's current entity.
    ThreadResched {
        /// Thread index.
        th: usize,
    },
    /// The current entity's quantum on a thread expired.
    QuantumExpire {
        /// Thread index.
        th: usize,
        /// Validity generation.
        gen: u64,
    },
    /// A throttled vCPU's bandwidth period rolled over.
    ThrottleRefill {
        /// Global vCPU.
        gv: GVcpu,
        /// Validity generation.
        gen: u64,
    },
    /// Guest scheduler tick (1 ms while the vCPU runs).
    GuestTick {
        /// Global vCPU.
        gv: GVcpu,
        /// Validity generation.
        gen: u64,
    },
    /// Predicted completion of the current task's burst.
    BurstDone {
        /// Global vCPU.
        gv: GVcpu,
        /// Validity generation.
        gen: u64,
    },
    /// A sleeping task's timer fired.
    TaskWake {
        /// VM index.
        vm: usize,
        /// Task to wake.
        task: TaskId,
    },
    /// A workload or vSched timer fired.
    Timer {
        /// VM index.
        vm: usize,
        /// Token (routed by `HOOK_TIMER_BASE`).
        token: u64,
    },
    /// A scripted scenario action fires.
    Script {
        /// Index into the scenario script.
        idx: usize,
    },
    /// A registered sampler fires.
    Sample {
        /// Sampler index.
        id: usize,
    },
    /// Credit-sampled accounting tick ([`HostSched::CreditSampled`]).
    ChargeTick,
    /// A wake enqueued a low-charge entity behind a busy thread; re-check
    /// whether it should preempt (deferred so the preemption's guest
    /// callbacks run from dispatch context, per the re-entrancy rule).
    CreditKick {
        /// Thread index.
        th: usize,
    },
    /// The active domain slice ended ([`HostSched::Domain`]).
    DomainRotate,
    /// Periodic LLC occupancy sample: advance the occupancy model, emit
    /// per-socket samples, and refresh running vCPU rates so the miss
    /// penalty tracks occupancy with bounded staleness. Armed only while
    /// the model is active (some VM has a non-zero footprint).
    LlcSample,
    /// End of the current run window.
    End,
}

/// A scripted change to the host configuration at a point in time.
pub enum ScriptAction {
    /// Install or remove bandwidth control on a vCPU.
    SetBandwidth {
        /// VM index.
        vm: usize,
        /// Guest-local vCPU.
        vcpu: usize,
        /// `(quota_ns, period_ns)`, or `None` to remove throttling.
        qp: Option<(u64, u64)>,
    },
    /// Change a core's DVFS frequency factor.
    SetFreq {
        /// Core index.
        core: usize,
        /// Frequency factor (1.0 = nominal).
        factor: f64,
    },
    /// Add a host-level load on a thread; the load id is its arena index
    /// (`loads_added` so far).
    AddLoad {
        /// Thread to stress.
        thread: usize,
        /// Host weight of the load.
        weight: u64,
    },
    /// Remove a previously added host load.
    RemoveLoad {
        /// Load id from the add order.
        id: usize,
    },
    /// Re-pin a vCPU to a new set of threads.
    SetAffinity {
        /// VM index.
        vm: usize,
        /// Guest-local vCPU.
        vcpu: usize,
        /// New allowed threads.
        threads: Vec<usize>,
    },
    /// Change a vCPU's host scheduling weight.
    SetVcpuWeight {
        /// VM index.
        vm: usize,
        /// Guest-local vCPU.
        vcpu: usize,
        /// New weight.
        weight: u64,
    },
    /// Take a vCPU offline: the host stops scheduling it and drops guest
    /// kicks until the matching [`ScriptAction::OnlineVcpu`].
    OfflineVcpu {
        /// VM index.
        vm: usize,
        /// Guest-local vCPU.
        vcpu: usize,
    },
    /// Bring an offline vCPU back online.
    OnlineVcpu {
        /// VM index.
        vm: usize,
        /// Guest-local vCPU.
        vcpu: usize,
    },
    /// Set the machine-wide probe-noise level: guest-visible measurements
    /// (`steal_ns`, cacheline latency) gain deterministic multiplicative
    /// jitter of up to ±`noise` (0.0 disables).
    SetProbeNoise {
        /// Relative jitter amplitude (e.g. 0.3 = ±30%).
        noise: f64,
    },
    /// Emit a [`EventKind::FaultInjected`] marker into the trace. The chaos
    /// layer schedules one alongside each concrete fault action so traces
    /// and the checker see fault boundaries.
    AnnotateFault {
        /// VM index the fault targets.
        vm: usize,
        /// Affected guest-local vCPU (0 for machine-wide faults).
        vcpu: usize,
        /// Fault classification.
        class: FaultClass,
    },
}

type Sampler = (u64, Option<Box<dyn FnMut(&Machine)>>);

/// Period of the [`Ev::LlcSample`] occupancy bookkeeping event (10 ms —
/// two fill time constants, so published occupancy is never badly stale).
const LLC_SAMPLE_NS: u64 = 10_000_000;

/// The simulated physical machine and everything on it.
pub struct Machine {
    /// Physical description.
    pub spec: HostSpec,
    /// Event queue (owns the clock).
    pub q: EventQueue<Ev>,
    /// Randomness (measurement noise).
    pub rng: SimRng,
    threads: Vec<HwThread>,
    thread_quantum: Vec<u64>,
    core_freq: Vec<f64>,
    /// Host scheduling policy ([`Machine::set_host_sched`], pre-start).
    sched: HostSched,
    /// Tenant class per VM (defaults to Standard).
    classes: Vec<PriorityClass>,
    /// Credit-sampled charge per vCPU ([`HostSched::CreditSampled`]).
    charge: Vec<u64>,
    /// Credit-sampled charge per host load.
    load_charge: Vec<u64>,
    /// Rotation state while running under [`HostSched::Domain`].
    domain: Option<DomainState>,
    /// Per-socket LLC occupancy model ([`crate::llc`]). Inert (and
    /// byte-identical to its absence) until some VM is given a working-set
    /// footprint via [`Machine::set_vm_footprint`].
    llc: LlcModel,
    /// Whether the periodic [`Ev::LlcSample`] event has been armed.
    llc_armed: bool,
    /// All vCPUs, across VMs.
    pub vcpus: Vec<HostVcpu>,
    /// All VMs.
    pub vms: Vec<Vm>,
    loads: Vec<HostLoad>,
    script: Vec<(SimTime, ScriptAction)>,
    samplers: Vec<Sampler>,
    /// Record running segments per vCPU (Figure 3 timelines).
    pub trace_activity: bool,
    /// Probe-noise amplitude (chaos mode): relative jitter applied to
    /// guest-visible measurements. 0.0 (the default) is bit-exact off.
    probe_noise: f64,
    /// Host-side trace sink; [`Machine::attach_trace`] turns it on and
    /// propagates per-VM scoped sinks into every guest kernel.
    pub trace: TraceSink,
    /// Reusable stand-in guest swapped into a VM's slot while its real
    /// guest is borrowed out by [`Machine::with_vm`]. Building a fresh
    /// placeholder per call allocates a full `KernelStats` (histogram
    /// buckets included) on every guest tick/wake/burst — the single
    /// hottest allocation in event dispatch.
    placeholder: Option<GuestOs>,
    /// Events popped and dispatched over the machine's lifetime (the bench
    /// harness's events/sec denominator).
    pub events_dispatched: u64,
    finished: bool,
    /// Whether [`Machine::start`] has run. Script entries appended after
    /// start ([`Machine::at`]) are posted to the event queue directly
    /// rather than waiting for the start-time sweep.
    started: bool,
}

impl Machine {
    /// Creates an empty machine; add VMs with [`Machine::add_vm`].
    pub fn new(spec: HostSpec, seed: u64) -> Self {
        let nr = spec.nr_threads();
        let cores = spec.nr_cores();
        let quantum = spec.quantum_ns;
        let llc = LlcModel::new(spec.sockets, spec.llc_bytes);
        Self {
            spec,
            q: EventQueue::with_capacity(256),
            rng: SimRng::new(seed),
            threads: (0..nr)
                .map(|_| HwThread {
                    current: None,
                    queue: VecDeque::new(),
                    quantum_gen: 0,
                    quantum_started: SimTime::ZERO,
                })
                .collect(),
            thread_quantum: vec![quantum; nr],
            core_freq: vec![1.0; cores],
            sched: HostSched::Proportional,
            classes: Vec::new(),
            charge: Vec::new(),
            load_charge: Vec::new(),
            domain: None,
            llc,
            llc_armed: false,
            vcpus: Vec::new(),
            vms: Vec::new(),
            loads: Vec::new(),
            script: Vec::new(),
            samplers: Vec::new(),
            trace_activity: false,
            probe_noise: 0.0,
            trace: TraceSink::default(),
            placeholder: Some(Self::placeholder_guest()),
            events_dispatched: 0,
            finished: false,
            started: false,
        }
    }

    /// Turns on tracing: the machine emits host-side events (resume,
    /// preempt, steal accrual) and every guest kernel — current and
    /// later-added — emits guest-side events, all into `shared`, each
    /// stamped with its VM index.
    pub fn attach_trace(&mut self, shared: &SharedCollector) {
        self.trace = TraceSink::for_vm(shared, 0);
        for (i, vm) in self.vms.iter_mut().enumerate() {
            vm.guest.kern.trace = TraceSink::for_vm(shared, i as u16);
        }
    }

    /// Adds a VM with per-vCPU thread affinities (one `Vec<usize>` per
    /// vCPU), host weights, and optional bandwidth. Returns the VM index.
    pub fn add_vm(
        &mut self,
        guest_cfg: GuestConfig,
        affinities: Vec<Vec<usize>>,
        weight: u64,
        bandwidth: Option<(u64, u64)>,
    ) -> usize {
        let nr = guest_cfg.nr_vcpus;
        assert_eq!(affinities.len(), nr, "one affinity list per vCPU");
        let base = self.vcpus.len();
        let vm_idx = self.vms.len();
        let now = self.q.now();
        for (i, aff) in affinities.into_iter().enumerate() {
            assert!(!aff.is_empty(), "vCPU affinity must be non-empty");
            for &t in &aff {
                assert!(t < self.spec.nr_threads(), "thread {t} out of range");
            }
            self.vcpus.push(HostVcpu {
                vm: vm_idx,
                idx: i,
                affinity: aff,
                weight,
                state: HostState::Halted,
                state_since: now,
                steal_ns: 0,
                active_ns: 0,
                preemptions: 0,
                offline: false,
                bandwidth: bandwidth.map(|(q, p)| Bandwidth {
                    quota_ns: q,
                    period_ns: p,
                    runtime_ns: 0,
                    period_start: now,
                }),
                bw_gen: 0,
                run: None,
                tick_gen: 0,
                burst_gen: 0,
                cap_contrib: 0.0,
                delivered_work: 0.0,
                trace_segments: Vec::new(),
            });
            self.charge.push(0);
        }
        self.classes.push(PriorityClass::Standard);
        self.llc.add_vm();
        let mut guest = GuestOs::new(guest_cfg, now);
        guest.kern.trace = self.trace.scoped(vm_idx as u16);
        self.vms.push(Vm {
            guest,
            workload: None,
            gvcpu_base: base,
            nr_vcpus: nr,
            cycles: Integrator::new(now),
            cycles_rate: 0.0,
        });
        vm_idx
    }

    /// Installs the workload of a VM.
    pub fn set_workload(&mut self, vm: usize, w: Box<dyn Workload>) {
        self.vms[vm].workload = Some(w);
    }

    /// Sets a VM's tenant class (domain-schedule eligibility). Defaults
    /// to [`PriorityClass::Standard`]; set before [`Machine::start`].
    pub fn set_vm_class(&mut self, vm: usize, class: PriorityClass) {
        self.classes[vm] = class;
    }

    /// Sets a VM's working-set footprint in bytes, activating the
    /// per-socket LLC occupancy model ([`crate::llc`]). Footprint 0 (the
    /// default) means cache-insensitive: the VM neither occupies modelled
    /// cache nor pays a miss penalty — and while *every* VM is at 0 the
    /// model is inert and runs are byte-identical to builds without it.
    pub fn set_vm_footprint(&mut self, vm: usize, bytes: f64) {
        let now = self.q.now();
        self.llc.set_footprint(now, vm, bytes);
        if self.llc.active() && self.started && !self.llc_armed {
            self.llc_armed = true;
            self.q.post(now.after(LLC_SAMPLE_NS), Ev::LlcSample);
        }
    }

    /// Worst-socket LLC pressure in `[0, 1]` — the fleet placement signal.
    /// Advances the occupancy model to the current time first.
    pub fn llc_pressure(&mut self) -> f64 {
        if self.llc.active() {
            let now = self.q.now();
            for s in 0..self.spec.sockets {
                self.llc.advance(now, s);
            }
        }
        self.llc.pressure()
    }

    /// Read access to the LLC occupancy model (tests, diagnostics).
    pub fn llc(&self) -> &LlcModel {
        &self.llc
    }

    /// A VM's tenant class.
    pub fn vm_class(&self, vm: usize) -> PriorityClass {
        self.classes[vm]
    }

    /// Selects the host scheduling policy. Must be called before
    /// [`Machine::start`]; a [`HostSched::Domain`] schedule is validated
    /// against the tenant classes of the VMs added so far.
    pub fn set_host_sched(&mut self, sched: HostSched) -> Result<(), DomainConfigError> {
        assert!(
            !self.started,
            "host scheduling policy must be set before start()"
        );
        if let HostSched::Domain(ds) = &sched {
            let mut in_use: Vec<PriorityClass> = Vec::new();
            for &c in &self.classes {
                if !in_use.contains(&c) {
                    in_use.push(c);
                }
            }
            ds.validate(&in_use)?;
        }
        self.sched = sched;
        Ok(())
    }

    /// The host scheduling policy in force.
    pub fn host_sched(&self) -> &HostSched {
        &self.sched
    }

    /// Appends a scripted action at an absolute time. Before
    /// [`Machine::start`] the entry joins the start-time sweep; after
    /// start (fleet chaos injecting mid-run degradation) it is posted to
    /// the event queue directly, so `t` must not be in the past.
    pub fn at(&mut self, t: SimTime, action: ScriptAction) {
        self.script.push((t, action));
        if self.started {
            let idx = self.script.len() - 1;
            self.q.post(t, Ev::Script { idx });
        }
    }

    /// Registers a periodic sampler; returns its id.
    pub fn add_sampler(&mut self, interval_ns: u64, f: Box<dyn FnMut(&Machine)>) -> usize {
        self.samplers.push((interval_ns, Some(f)));
        self.samplers.len() - 1
    }

    /// Adds a host load immediately; returns its id.
    pub fn add_host_load(&mut self, thread: usize, weight: u64) -> usize {
        let id = self.loads.len();
        self.loads.push(HostLoad {
            id,
            weight,
            thread,
            dead: false,
        });
        self.load_charge.push(0);
        self.threads[thread].queue.push_back(Entity::Load(id));
        let now = self.q.now();
        self.q.post(now, Ev::ThreadResched { th: thread });
        id
    }

    /// Removes a host load.
    pub fn remove_host_load(&mut self, id: usize) {
        if self.loads[id].dead {
            return;
        }
        self.loads[id].dead = true;
        let th = self.loads[id].thread;
        self.threads[th].queue.retain(|e| *e != Entity::Load(id));
        if self.threads[th].current == Some(Entity::Load(id)) {
            self.stop_current(th);
            let now = self.q.now();
            self.q.post(now, Ev::ThreadResched { th });
        }
    }

    /// Global vCPU index of a guest-local vCPU.
    pub fn gv(&self, vm: usize, vcpu: usize) -> GVcpu {
        self.vms[vm].gvcpu_base + vcpu
    }

    /// The guest task currently accruing work on a vCPU, if any.
    pub fn running_task(&self, gv: GVcpu) -> Option<TaskId> {
        self.vcpus[gv].run.as_ref().map(|r| r.task)
    }

    /// Total weight of live host loads pinned to a thread.
    pub fn host_load_weight_on(&self, th: usize) -> u64 {
        self.loads
            .iter()
            .filter(|l| !l.dead && l.thread == th)
            .map(|l| l.weight)
            .sum()
    }

    /// Hardware threads a vCPU may currently run on (preference order).
    pub fn vcpu_affinity(&self, gv: GVcpu) -> &[usize] {
        &self.vcpus[gv].affinity
    }

    /// Whether the chaos layer currently holds a vCPU offline.
    pub fn vcpu_offline(&self, gv: GVcpu) -> bool {
        self.vcpus[gv].offline
    }

    /// The bandwidth limit installed on a vCPU, as `(quota_ns, period_ns)`.
    pub fn vcpu_bandwidth(&self, gv: GVcpu) -> Option<(u64, u64)> {
        self.vcpus[gv]
            .bandwidth
            .map(|bw| (bw.quota_ns, bw.period_ns))
    }

    /// The multiplicative probe-noise amplitude currently in force.
    pub fn probe_noise(&self) -> f64 {
        self.probe_noise
    }

    /// A core's current DVFS frequency factor (1.0 = nominal).
    pub fn core_freq_factor(&self, core: usize) -> f64 {
        self.core_freq[core]
    }

    // ------------------------------------------------------------------
    // Capacity and accounting
    // ------------------------------------------------------------------

    /// Instantaneous capacity of a hardware thread (1024 scale).
    pub fn thread_cap(&self, th: usize) -> f64 {
        let core = self.spec.core_of(th);
        let sib = self.spec.sibling_of(th);
        let sib_busy = sib != th && self.threads[sib].current.is_some();
        let smt_factor = if sib_busy {
            self.spec.smt_contention
        } else {
            1.0
        };
        1024.0 * self.core_freq[core] * smt_factor
    }

    /// Current steal time of a vCPU including the in-progress segment.
    pub fn vcpu_steal(&self, gv: GVcpu) -> u64 {
        let v = &self.vcpus[gv];
        let extra = match v.state {
            HostState::Runnable | HostState::Throttled => self.q.now().since(v.state_since),
            _ => 0,
        };
        v.steal_ns + extra
    }

    /// Current active (executing) time of a vCPU including in-progress.
    pub fn vcpu_active_ns(&self, gv: GVcpu) -> u64 {
        let v = &self.vcpus[gv];
        let extra = match v.state {
            HostState::Running(_) => self.q.now().since(v.state_since),
            _ => 0,
        };
        v.active_ns + extra
    }

    /// Active (executing) time summed across every vCPU, including
    /// in-progress segments — the utilization numerator a fleet samples
    /// per host at each epoch barrier.
    pub fn total_active_ns(&self) -> u64 {
        (0..self.vcpus.len())
            .map(|gv| self.vcpu_active_ns(gv))
            .sum()
    }

    fn settle_vcpu_state(&mut self, gv: GVcpu) {
        let now = self.q.now();
        let v = &mut self.vcpus[gv];
        let dt = now.since(v.state_since);
        let mut stolen = 0;
        match v.state {
            HostState::Runnable | HostState::Throttled => {
                v.steal_ns += dt;
                stolen = dt;
            }
            HostState::Running(_) => {
                v.active_ns += dt;
                if let Some(bw) = v.bandwidth.as_mut() {
                    bw.runtime_ns += dt;
                }
            }
            HostState::Halted => {}
        }
        v.state_since = now;
        if stolen > 0 {
            let (vm, idx) = (self.vcpus[gv].vm, self.vcpus[gv].idx);
            self.trace.emit_vm(
                now,
                vm as u16,
                EventKind::StealAccrue {
                    vcpu: idx as u16,
                    delta_ns: stolen,
                },
            );
        }
    }

    fn set_vcpu_state(&mut self, gv: GVcpu, st: HostState) {
        // How long the vCPU has been off-core, read before settling.
        let inactive_gap = {
            let v = &self.vcpus[gv];
            match v.state {
                HostState::Runnable | HostState::Throttled => self.q.now().since(v.state_since),
                _ => 0,
            }
        };
        self.settle_vcpu_state(gv);
        let now = self.q.now();
        let old = self.vcpus[gv].state;
        if matches!(old, HostState::Running(_))
            && !matches!(st, HostState::Running(_) | HostState::Halted)
        {
            self.vcpus[gv].preemptions += 1;
        }
        if self.trace.is_on() {
            let (vm, idx) = (self.vcpus[gv].vm as u16, self.vcpus[gv].idx as u16);
            let kind = match (old, st) {
                (HostState::Running(_), HostState::Running(_)) => None,
                (_, HostState::Running(th)) => Some(EventKind::VcpuResume {
                    vcpu: idx,
                    thread: th as u16,
                }),
                (HostState::Running(_), HostState::Runnable) => Some(EventKind::VcpuPreempt {
                    vcpu: idx,
                    reason: PreemptReason::Preempt,
                }),
                (HostState::Running(_), HostState::Throttled) => Some(EventKind::VcpuPreempt {
                    vcpu: idx,
                    reason: PreemptReason::Throttle,
                }),
                (HostState::Running(_), HostState::Halted) => Some(EventKind::VcpuPreempt {
                    vcpu: idx,
                    reason: PreemptReason::Halt,
                }),
                (HostState::Halted, HostState::Runnable | HostState::Throttled) => {
                    Some(EventKind::VcpuWake { vcpu: idx })
                }
                (HostState::Runnable | HostState::Throttled, HostState::Halted) => {
                    Some(EventKind::VcpuHalt { vcpu: idx })
                }
                _ => None,
            };
            if let Some(kind) = kind {
                self.trace.emit_vm(now, vm, kind);
            }
        }
        if self.trace_activity {
            match (old, st) {
                (HostState::Running(_), HostState::Running(_)) => {}
                (HostState::Running(_), _) => {
                    if let Some(last) = self.vcpus[gv].trace_segments.last_mut() {
                        last.1 = now;
                    }
                }
                (_, HostState::Running(_)) => {
                    self.vcpus[gv].trace_segments.push((now, now));
                }
                _ => {}
            }
        }
        // LLC occupancy: sched/desched transitions move the VM's running
        // count on the affected socket(s); advance happens inside the
        // model before counts change so the elapsed interval is charged
        // under the old regime.
        if self.llc.active() {
            let vm = self.vcpus[gv].vm;
            let old_th = match old {
                HostState::Running(t) => Some(t),
                _ => None,
            };
            let new_th = match st {
                HostState::Running(t) => Some(t),
                _ => None,
            };
            if old_th != new_th {
                if let Some(t) = old_th {
                    self.llc.on_desched(now, vm, self.spec.socket_of(t));
                }
                if let Some(t) = new_th {
                    self.llc.on_sched(now, vm, self.spec.socket_of(t));
                }
            }
        }
        self.vcpus[gv].state = st;
        // Cache pollution: a resume after a long enough inactive period
        // costs a cache-sensitive task a refill's worth of extra work
        // (paper §2.1 — co-running vCPUs pollute the cache while this one
        // is off the core).
        if matches!(st, HostState::Running(_)) && inactive_gap >= 1_000_000 {
            if let Some(run) = self.vcpus[gv].run.as_mut() {
                if run.cache_penalty > 0.0 {
                    run.work.add(-run.cache_penalty);
                }
            }
        }
        self.refresh_vcpu_rate(gv);
    }

    /// Recomputes the work/active/cycle rates of a vCPU after any boundary
    /// (state change, frequency step, SMT sibling change, factor update) and
    /// re-arms its burst-completion event.
    fn refresh_vcpu_rate(&mut self, gv: GVcpu) {
        let now = self.q.now();
        let cap = match self.vcpus[gv].state {
            HostState::Running(th) => self.thread_cap(th),
            _ => 0.0,
        };
        let vm = self.vcpus[gv].vm;
        // VM cycle accounting.
        let old = self.vcpus[gv].cap_contrib;
        if (cap - old).abs() > f64::EPSILON {
            let vmref = &mut self.vms[vm];
            vmref.cycles_rate += cap - old;
            vmref.cycles.set_rate(now, vmref.cycles_rate);
            self.vcpus[gv].cap_contrib = cap;
        }
        // LLC miss penalty: a cache-sensitive VM whose working set is not
        // resident on its socket accrues work slower, exactly like a bad
        // communication-locality factor (the paper's follow-up extends the
        // abstraction premise from cycles to cache this way).
        let llc_eff = if self.llc.active() {
            match self.vcpus[gv].state {
                HostState::Running(th) => {
                    let s = self.spec.socket_of(th);
                    self.llc.advance(now, s);
                    self.llc.efficiency(vm, s)
                }
                _ => 1.0,
            }
        } else {
            1.0
        };
        // Task work accrual.
        let mut arm: Option<(u64, u64)> = None;
        {
            let v = &mut self.vcpus[gv];
            if let Some(run) = v.run.as_mut() {
                run.work.set_rate(now, cap * run.factor * llc_eff);
                run.active.set_rate(now, if cap > 0.0 { 1.0 } else { 0.0 });
                v.burst_gen += 1;
                if run.target < 1.0e15 {
                    if let Some(eta) = run.work.eta_ns(now, run.target) {
                        arm = Some((eta, v.burst_gen));
                    }
                }
            }
        }
        if let Some((eta, gen)) = arm {
            self.q.post(now.after(eta), Ev::BurstDone { gv, gen });
        }
    }

    /// Refresh both the thread's current vCPU and its sibling's (SMT
    /// contention changed).
    fn refresh_thread_and_sibling(&mut self, th: usize) {
        for t in [th, self.spec.sibling_of(th)] {
            if let Some(Entity::Vcpu(gv)) = self.threads[t].current {
                self.refresh_vcpu_rate(gv);
            }
        }
    }

    // ------------------------------------------------------------------
    // Host scheduling
    // ------------------------------------------------------------------

    fn entity_weight(&self, e: Entity) -> u64 {
        match e {
            Entity::Vcpu(gv) => self.vcpus[gv].weight,
            Entity::Load(id) => self.loads[id].weight,
        }
    }

    fn entity_charge(&self, e: Entity) -> u64 {
        match e {
            Entity::Vcpu(gv) => self.charge[gv],
            Entity::Load(id) => self.load_charge[id],
        }
    }

    /// Whether an entity may run right now. Only a domain schedule ever
    /// says no: vCPUs outside the active slice's class wait. Host loads
    /// are classless (hypervisor work) and always eligible.
    fn entity_eligible(&self, e: Entity) -> bool {
        let Some(d) = &self.domain else { return true };
        match e {
            Entity::Vcpu(gv) => self.classes[self.vcpus[gv].vm] == d.active_class,
            Entity::Load(_) => true,
        }
    }

    /// Queue position of the entity the policy would run next on `th`,
    /// or `None` if nothing there is runnable under the policy.
    fn pickable(&self, th: usize) -> Option<usize> {
        let q = &self.threads[th].queue;
        match &self.sched {
            HostSched::Proportional => {
                if q.is_empty() {
                    None
                } else {
                    Some(0)
                }
            }
            HostSched::CreditSampled { .. } => {
                let mut best: Option<(usize, u64)> = None;
                for (pos, &e) in q.iter().enumerate() {
                    let c = self.entity_charge(e);
                    if best.map(|(_, bc)| c < bc).unwrap_or(true) {
                        best = Some((pos, c));
                    }
                }
                best.map(|(pos, _)| pos)
            }
            HostSched::Domain(_) => q.iter().position(|&e| self.entity_eligible(e)),
        }
    }

    /// Stops the current entity on a thread without picking a successor.
    /// vCPUs go back to Runnable (host preemption).
    fn stop_current(&mut self, th: usize) {
        let Some(cur) = self.threads[th].current.take() else {
            return;
        };
        self.threads[th].quantum_gen += 1;
        match cur {
            Entity::Vcpu(gv) => {
                self.set_vcpu_state(gv, HostState::Runnable);
                self.vcpus[gv].tick_gen += 1; // suppress guest ticks while off-core
                self.threads[th].queue.push_back(Entity::Vcpu(gv));
                self.notify_vcpu_stop(gv);
            }
            Entity::Load(id) => {
                if !self.loads[id].dead {
                    self.threads[th].queue.push_back(Entity::Load(id));
                }
            }
        }
        self.refresh_thread_and_sibling(th);
    }

    /// Removes the current entity entirely (halt/throttle/migrate-away).
    fn remove_current(&mut self, th: usize) {
        if self.threads[th].current.take().is_some() {
            self.threads[th].quantum_gen += 1;
            self.refresh_thread_and_sibling(th);
        }
    }

    /// Picks the next entity on an idle thread and starts it.
    fn thread_resched(&mut self, th: usize) {
        if self.threads[th].current.is_some() {
            return;
        }
        // Work-steal a waiting vCPU if we have nothing runnable of our
        // own (floating vCPUs).
        if self.pickable(th).is_none() {
            self.steal_waiting(th);
        }
        let Some(pos) = self.pickable(th) else {
            self.refresh_thread_and_sibling(th);
            return;
        };
        let Some(next) = self.threads[th].queue.remove(pos) else {
            self.refresh_thread_and_sibling(th);
            return;
        };
        self.start_entity(th, next);
    }

    /// Steals the longest-waiting runnable vCPU allowed on `th` from
    /// another thread's queue.
    fn steal_waiting(&mut self, th: usize) {
        let mut best: Option<(usize, usize, u64)> = None; // (thread, pos, waited)
        let now = self.q.now();
        for (ot, other) in self.threads.iter().enumerate() {
            if ot == th {
                continue;
            }
            // Only steal when the owner has more demand than it can serve.
            if other.current.is_none() {
                continue;
            }
            for (pos, e) in other.queue.iter().enumerate() {
                if let Entity::Vcpu(gv) = e {
                    let v = &self.vcpus[*gv];
                    if !v.offline
                        && v.affinity.contains(&th)
                        && v.affinity.len() > 1
                        && self.entity_eligible(*e)
                    {
                        let waited = now.since(v.state_since);
                        if best.map(|(_, _, w)| waited > w).unwrap_or(true) {
                            best = Some((ot, pos, waited));
                        }
                    }
                }
            }
        }
        if let Some((ot, pos, _)) = best {
            if let Some(e) = self.threads[ot].queue.remove(pos) {
                self.threads[th].queue.push_back(e);
            }
        }
    }

    /// Starts an entity on a thread and arms its quantum.
    fn start_entity(&mut self, th: usize, e: Entity) {
        let now = self.q.now();
        debug_assert!(self.threads[th].current.is_none());
        self.threads[th].current = Some(e);
        self.threads[th].quantum_started = now;
        self.threads[th].quantum_gen += 1;
        let gen = self.threads[th].quantum_gen;

        let mut slice = self.thread_quantum[th] * self.entity_weight(e) / 1024;
        slice = slice.max(100_000); // floor: 0.1 ms
        if let Entity::Vcpu(gv) = e {
            // Bandwidth: clamp the slice to the remaining quota.
            if let Some(bw) = self.vcpus[gv].bandwidth.as_mut() {
                bw.refill_to(now);
                slice = slice.min(bw.quota_left().max(1));
            }
            self.set_vcpu_state(gv, HostState::Running(th));
            // Start guest ticks.
            self.vcpus[gv].tick_gen += 1;
            let tgen = self.vcpus[gv].tick_gen;
            let tick = self.vm_tick_ns(self.vcpus[gv].vm);
            self.q
                .post(now.after(tick), Ev::GuestTick { gv, gen: tgen });
            self.refresh_thread_and_sibling(th);
            self.notify_vcpu_start(gv);
        } else {
            self.refresh_thread_and_sibling(th);
        }
        self.q.post(now.after(slice), Ev::QuantumExpire { th, gen });
    }

    fn vm_tick_ns(&self, vm: usize) -> u64 {
        self.vms[vm].guest.kern.cfg.tick_ns
    }

    /// Handles quantum expiry: bandwidth throttling, then rotation.
    fn quantum_expire(&mut self, th: usize, gen: u64) {
        if self.threads[th].quantum_gen != gen {
            return;
        }
        let Some(cur) = self.threads[th].current else {
            return;
        };
        let now = self.q.now();
        if let Entity::Vcpu(gv) = cur {
            // Settle running time into the bandwidth window.
            self.settle_vcpu_state(gv);
            let throttle = {
                let v = &mut self.vcpus[gv];
                match v.bandwidth.as_mut() {
                    Some(bw) => {
                        bw.refill_to(now);
                        bw.quota_left() == 0
                    }
                    None => false,
                }
            };
            if throttle {
                self.threads[th].current = None;
                self.threads[th].quantum_gen += 1;
                self.set_vcpu_state(gv, HostState::Throttled);
                self.vcpus[gv].tick_gen += 1;
                self.vcpus[gv].bw_gen += 1;
                let bwgen = self.vcpus[gv].bw_gen;
                let refill = self.vcpus[gv].bandwidth.as_ref().unwrap().next_refill();
                self.q.post(refill, Ev::ThrottleRefill { gv, gen: bwgen });
                self.refresh_thread_and_sibling(th);
                self.notify_vcpu_stop(gv);
                self.thread_resched(th);
                return;
            }
        }
        if self.pickable(th).is_none() {
            // Nothing the policy could run instead: extend in place.
            self.threads[th].quantum_gen += 1;
            let gen = self.threads[th].quantum_gen;
            let mut slice = self.thread_quantum[th] * self.entity_weight(cur) / 1024;
            slice = slice.max(100_000);
            if let Entity::Vcpu(gv) = cur {
                if let Some(bw) = self.vcpus[gv].bandwidth.as_mut() {
                    slice = slice.min(bw.quota_left().max(1));
                }
            }
            self.threads[th].quantum_started = now;
            self.q.post(now.after(slice), Ev::QuantumExpire { th, gen });
            return;
        }
        // Rotate.
        self.stop_current(th);
        self.thread_resched(th);
    }

    fn throttle_refill(&mut self, gv: GVcpu, gen: u64) {
        if self.vcpus[gv].bw_gen != gen {
            return;
        }
        if self.vcpus[gv].state != HostState::Throttled {
            return;
        }
        let now = self.q.now();
        if let Some(bw) = self.vcpus[gv].bandwidth.as_mut() {
            bw.refill_to(now);
        }
        self.set_vcpu_state(gv, HostState::Runnable);
        self.enqueue_vcpu(gv);
    }

    /// Credit-sampled accounting tick: whoever is on-CPU at this instant
    /// is charged the whole tick (the sampling hole a tick-dodger games),
    /// every charge decays ×3/4, and each thread re-checks whether a
    /// less-charged waiter should take over.
    fn charge_tick(&mut self) {
        let HostSched::CreditSampled { tick_ns } = self.sched else {
            return;
        };
        for th in 0..self.threads.len() {
            match self.threads[th].current {
                Some(Entity::Vcpu(gv)) => self.charge[gv] += tick_ns,
                Some(Entity::Load(id)) => self.load_charge[id] += tick_ns,
                None => {}
            }
        }
        for c in &mut self.charge {
            *c = *c * 3 / 4;
        }
        for c in &mut self.load_charge {
            *c = *c * 3 / 4;
        }
        for th in 0..self.threads.len() {
            self.credit_resort(th);
        }
        let now = self.q.now();
        self.q.post(now.after(tick_ns), Ev::ChargeTick);
    }

    /// Preempts a thread's current entity if a queued one undercuts its
    /// charge by more than the hysteresis margin (credit-sampled only).
    fn credit_resort(&mut self, th: usize) {
        if !matches!(self.sched, HostSched::CreditSampled { .. }) {
            return;
        }
        let Some(cur) = self.threads[th].current else {
            self.thread_resched(th);
            return;
        };
        let cur_charge = self.entity_charge(cur);
        let min_queued = self.threads[th]
            .queue
            .iter()
            .map(|&e| self.entity_charge(e))
            .min();
        if let Some(mc) = min_queued {
            if mc + CREDIT_PREEMPT_MARGIN_NS < cur_charge {
                self.stop_current(th);
                self.thread_resched(th);
            }
        }
    }

    /// Ends the active domain slice: settles execution time, accounts the
    /// ended slice (used vs stolen vs entitled — the steal-conservation
    /// law re-derives this), rotates to the next slice, and evicts any
    /// vCPU the new domain does not admit.
    fn domain_rotate(&mut self) {
        let HostSched::Domain(ref ds) = self.sched else {
            return;
        };
        let ds = ds.clone();
        let now = self.q.now();
        // Settle running vCPUs so active_ns deltas are exact at the
        // boundary; everything off-CPU is already settled.
        for th in 0..self.threads.len() {
            if let Some(Entity::Vcpu(gv)) = self.threads[th].current {
                self.settle_vcpu_state(gv);
            }
        }
        let Some(mut d) = self.domain.take() else {
            return;
        };
        let ended = ds.slices[d.active];
        let mut used_ns = 0u64;
        let mut stolen_ns = 0u64;
        for gv in 0..self.vcpus.len() {
            // VMs added mid-slice (fleet arrivals) have no snapshot entry:
            // their execution this slice is zero by construction.
            let before = d
                .snapshot
                .get(gv)
                .copied()
                .unwrap_or(self.vcpus[gv].active_ns);
            let delta = self.vcpus[gv].active_ns.saturating_sub(before);
            if self.classes[self.vcpus[gv].vm] == ended.class {
                used_ns += delta;
            } else {
                stolen_ns += delta;
            }
        }
        let threads = self.threads.len() as u16;
        self.trace.emit_vm(
            now,
            0,
            EventKind::StealAccounted {
                index: d.active as u16,
                class: ended.class,
                threads,
                slice_ns: ended.slice_ns,
                entitled_ns: ended.slice_ns * threads as u64,
                used_ns,
                stolen_ns,
            },
        );
        d.active = (d.active + 1) % ds.slices.len();
        let next = ds.slices[d.active];
        d.active_class = next.class;
        d.snapshot = self.vcpus.iter().map(|v| v.active_ns).collect();
        self.trace.emit_vm(
            now,
            0,
            EventKind::DomainSwitch {
                index: d.active as u16,
                class: next.class,
                slice_ns: next.slice_ns,
                period_ns: ds.period_ns,
            },
        );
        self.domain = Some(d);
        for th in 0..self.threads.len() {
            if let Some(e) = self.threads[th].current {
                if !self.entity_eligible(e) {
                    self.stop_current(th);
                }
            }
        }
        for th in 0..self.threads.len() {
            self.thread_resched(th);
        }
        self.q.post(now.after(next.slice_ns), Ev::DomainRotate);
    }

    /// Puts a runnable vCPU on the best allowed thread's queue.
    fn enqueue_vcpu(&mut self, gv: GVcpu) {
        if self.vcpus[gv].offline {
            // Chaos offline: stays Runnable (steal accrues) but never
            // reaches a host queue until brought back online.
            return;
        }
        let mut best = self.vcpus[gv].affinity[0];
        let mut best_len = usize::MAX;
        for &t in &self.vcpus[gv].affinity {
            let len = self.threads[t].queue.len() + usize::from(self.threads[t].current.is_some());
            if len < best_len {
                best_len = len;
                best = t;
            }
        }
        self.threads[best].queue.push_back(Entity::Vcpu(gv));
        let now = self.q.now();
        if self.threads[best].current.is_none() {
            self.q.post(now, Ev::ThreadResched { th: best });
        } else if matches!(self.sched, HostSched::CreditSampled { .. }) {
            // A freshly woken low-charge entity may deserve the CPU now;
            // decided via a zero-delay event because the preemption's
            // guest callbacks must not run from guest context.
            self.q.post(now, Ev::CreditKick { th: best });
        }
    }

    /// Makes a halted vCPU runnable (guest kick). Public so vSched's ivh
    /// pre-wake can reach it through the platform.
    pub fn kick_vcpu(&mut self, gv: GVcpu) {
        if self.vcpus[gv].state != HostState::Halted {
            return;
        }
        if let Some(bw) = self.vcpus[gv].bandwidth.as_mut() {
            bw.refill_to(self.q.now());
            if bw.quota_left() == 0 {
                // Out of quota: wake straight into Throttled.
                self.set_vcpu_state(gv, HostState::Throttled);
                self.vcpus[gv].bw_gen += 1;
                let gen = self.vcpus[gv].bw_gen;
                let refill = self.vcpus[gv].bandwidth.as_ref().unwrap().next_refill();
                self.q.post(refill, Ev::ThrottleRefill { gv, gen });
                return;
            }
        }
        self.set_vcpu_state(gv, HostState::Runnable);
        self.enqueue_vcpu(gv);
    }

    /// Halts a vCPU (guest went idle).
    fn halt_vcpu(&mut self, gv: GVcpu) {
        match self.vcpus[gv].state {
            HostState::Halted => {}
            HostState::Running(th) => {
                self.set_vcpu_state(gv, HostState::Halted);
                self.vcpus[gv].tick_gen += 1;
                self.remove_current(th);
                let now = self.q.now();
                self.q.post(now, Ev::ThreadResched { th });
            }
            HostState::Runnable => {
                for t in &mut self.threads {
                    t.queue.retain(|e| *e != Entity::Vcpu(gv));
                }
                self.set_vcpu_state(gv, HostState::Halted);
            }
            HostState::Throttled => {
                self.set_vcpu_state(gv, HostState::Halted);
                self.vcpus[gv].bw_gen += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Guest call plumbing
    // ------------------------------------------------------------------

    fn placeholder_guest() -> GuestOs {
        GuestOs::new(GuestConfig::new(0), SimTime::ZERO)
    }

    /// Runs `f` with mutable access to a VM's guest and a [`Platform`]
    /// implementation over this machine.
    pub fn with_vm<R>(
        &mut self,
        vm: usize,
        f: impl FnOnce(&mut GuestOs, &mut dyn Platform) -> R,
    ) -> R {
        // Reuse the cached placeholder; a nested with_vm (rare — the
        // re-entrancy rule above forbids guest→guest calls) falls back to
        // building a throwaway one.
        let ph = self
            .placeholder
            .take()
            .unwrap_or_else(Self::placeholder_guest);
        let mut guest = std::mem::replace(&mut self.vms[vm].guest, ph);
        let mut ctx = Ctx { m: self, vm };
        let r = f(&mut guest, &mut ctx);
        self.placeholder = Some(std::mem::replace(&mut self.vms[vm].guest, guest));
        r
    }

    /// Like [`Machine::with_vm`] but also hands out the workload.
    fn with_vm_and_workload<R>(
        &mut self,
        vm: usize,
        f: impl FnOnce(&mut GuestOs, &mut dyn Workload, &mut dyn Platform) -> R,
    ) -> Option<R> {
        let mut wl = self.vms[vm].workload.take()?;
        let ph = self
            .placeholder
            .take()
            .unwrap_or_else(Self::placeholder_guest);
        let mut guest = std::mem::replace(&mut self.vms[vm].guest, ph);
        let mut ctx = Ctx { m: self, vm };
        let r = f(&mut guest, wl.as_mut(), &mut ctx);
        self.placeholder = Some(std::mem::replace(&mut self.vms[vm].guest, guest));
        self.vms[vm].workload = Some(wl);
        Some(r)
    }

    fn notify_vcpu_start(&mut self, gv: GVcpu) {
        let (vm, idx) = (self.vcpus[gv].vm, self.vcpus[gv].idx);
        self.with_vm(vm, |g, p| g.vcpu_started(p, VcpuId(idx)));
    }

    fn notify_vcpu_stop(&mut self, gv: GVcpu) {
        let (vm, idx) = (self.vcpus[gv].vm, self.vcpus[gv].idx);
        self.with_vm(vm, |g, p| g.vcpu_stopped(p, VcpuId(idx)));
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    /// Starts all workloads and schedules the scenario script and samplers.
    pub fn start(&mut self) {
        self.started = true;
        let now = self.q.now();
        match self.sched.clone() {
            HostSched::Proportional => {}
            HostSched::CreditSampled { tick_ns } => {
                self.q.post(now.after(tick_ns), Ev::ChargeTick);
            }
            HostSched::Domain(ds) => {
                for vm in 0..self.vms.len() {
                    let class = self.classes[vm];
                    self.trace
                        .emit_vm(now, vm as u16, EventKind::DomainAssigned { class });
                }
                let first = ds.slices[0];
                self.trace.emit_vm(
                    now,
                    0,
                    EventKind::DomainSwitch {
                        index: 0,
                        class: first.class,
                        slice_ns: first.slice_ns,
                        period_ns: ds.period_ns,
                    },
                );
                self.domain = Some(DomainState {
                    active: 0,
                    active_class: first.class,
                    snapshot: self.vcpus.iter().map(|v| v.active_ns).collect(),
                });
                self.q.post(now.after(first.slice_ns), Ev::DomainRotate);
            }
        }
        self.script.sort_by_key(|(t, _)| *t);
        for (idx, (t, _)) in self.script.iter().enumerate() {
            self.q.post(*t, Ev::Script { idx });
        }
        for id in 0..self.samplers.len() {
            let interval = self.samplers[id].0;
            self.q.post(SimTime::from_ns(interval), Ev::Sample { id });
        }
        if self.llc.active() && !self.llc_armed {
            self.llc_armed = true;
            self.q.post(now.after(LLC_SAMPLE_NS), Ev::LlcSample);
        }
        for vm in 0..self.vms.len() {
            self.with_vm_and_workload(vm, |g, w, p| w.start(g, p));
        }
    }

    /// Periodic LLC bookkeeping while the occupancy model is active:
    /// advance every socket, publish `LlcOccupancySample` events, and
    /// refresh running vCPU rates so the miss penalty tracks occupancy
    /// with bounded staleness.
    fn llc_sample(&mut self) {
        if !self.llc.active() {
            self.llc_armed = false;
            return;
        }
        let now = self.q.now();
        for s in 0..self.spec.sockets {
            self.llc.advance(now, s);
            if self.trace.is_on() {
                let snap = self.llc.snapshot(s);
                self.trace.emit_vm(
                    now,
                    0,
                    EventKind::LlcOccupancySample {
                        socket: s as u16,
                        occupied_bytes: snap.occupied,
                        llc_bytes: self.llc.llc_bytes(),
                        inserted_bytes: snap.inserted,
                        evicted_bytes: snap.evicted,
                        decayed_bytes: snap.decayed,
                    },
                );
            }
        }
        for gv in 0..self.vcpus.len() {
            if matches!(self.vcpus[gv].state, HostState::Running(_)) {
                self.refresh_vcpu_rate(gv);
            }
        }
        self.q.post(now.after(LLC_SAMPLE_NS), Ev::LlcSample);
    }

    /// Runs the simulation until `until` (inclusive), settling accounting
    /// at the end.
    pub fn run_until(&mut self, until: SimTime) {
        self.q.post(until, Ev::End);
        self.finished = false;
        while !self.finished {
            let Some((_, ev)) = self.q.pop() else { break };
            self.events_dispatched += 1;
            self.dispatch(ev);
        }
        self.settle_all();
    }

    /// Lockstep re-entry point for multi-machine stepping: advances this
    /// machine to `until` exactly like [`Machine::run_until`]. A fleet
    /// `Cluster` calls this on every host per epoch; machines share no
    /// state, so stepping them in *any* order — or from different worker
    /// threads — is deterministic.
    ///
    /// A `Machine` is deliberately **not** `Send`: its trace plumbing and
    /// workload handles are `Rc`-based so the single-host emit path stays
    /// allocation- and atomic-free. A cluster that steps machines from a
    /// worker pool must instead confine each machine — and everything its
    /// `Rc` graph reaches (guest kernels, workload, per-host collector) —
    /// to exactly one worker per barrier interval, with a happens-before
    /// edge between successive owners. `fleet`'s stepping pool enforces
    /// that by claiming stable host indices under a mutex and joining
    /// every worker before any cross-host state is touched.
    pub fn step_until(&mut self, until: SimTime) {
        self.run_until(until);
    }

    /// Starts the workload of one VM. [`Machine::start`] does this for
    /// every VM present at start time; a VM added *after* `start()` (fleet
    /// arrivals) needs this call once its workload is installed, or it
    /// will sit idle forever.
    pub fn start_vm_workload(&mut self, vm: usize) {
        self.with_vm_and_workload(vm, |g, w, p| w.start(g, p));
    }

    /// Quiesces a VM in place (fleet departures): drops its workload so
    /// pending timers become no-ops, removes its scheduler hooks, and
    /// kills every guest task so the vCPUs halt and stop generating
    /// events. The VM's slot and vCPU indices stay allocated — per-machine
    /// indices are load-bearing (trace scoping, `gvcpu_base`) — but a
    /// quiesced VM consumes no further host time.
    pub fn quiesce_vm(&mut self, vm: usize) {
        self.vms[vm].workload = None;
        self.with_vm(vm, |g, p| {
            g.take_hooks();
            for t in 0..g.kern.tasks.len() {
                g.kern.kill_task(p, TaskId(t as u32));
            }
        });
    }

    fn settle_all(&mut self) {
        let now = self.q.now();
        for vm in &mut self.vms {
            vm.cycles.settle(now);
        }
        for gv in 0..self.vcpus.len() {
            self.settle_vcpu_state(gv);
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::ThreadResched { th } => self.thread_resched(th),
            Ev::QuantumExpire { th, gen } => self.quantum_expire(th, gen),
            Ev::ThrottleRefill { gv, gen } => self.throttle_refill(gv, gen),
            Ev::GuestTick { gv, gen } => self.guest_tick(gv, gen),
            Ev::BurstDone { gv, gen } => self.burst_done(gv, gen),
            Ev::TaskWake { vm, task } => {
                let state = self.vms[vm].guest.kern.task(task).state;
                if matches!(state, TaskState::Sleeping) {
                    self.with_vm(vm, |g, p| g.wake_task(p, task, None));
                }
            }
            Ev::Timer { vm, token } => {
                if token >= guestos::platform::HOOK_TIMER_BASE {
                    self.with_vm(vm, |g, p| g.deliver_hook_timer(p, token));
                } else {
                    self.with_vm_and_workload(vm, |g, w, p| w.on_timer(g, p, token));
                }
            }
            Ev::Script { idx } => {
                let action = std::mem::replace(
                    &mut self.script[idx].1,
                    ScriptAction::SetFreq {
                        core: 0,
                        factor: 1.0,
                    },
                );
                // Re-store a no-op; scripted actions fire once.
                self.apply_script(action);
            }
            Ev::Sample { id } => {
                if let Some(mut f) = self.samplers[id].1.take() {
                    f(self);
                    self.samplers[id].1 = Some(f);
                    let interval = self.samplers[id].0;
                    let now = self.q.now();
                    self.q.post(now.after(interval), Ev::Sample { id });
                }
            }
            Ev::ChargeTick => self.charge_tick(),
            Ev::CreditKick { th } => self.credit_resort(th),
            Ev::DomainRotate => self.domain_rotate(),
            Ev::LlcSample => self.llc_sample(),
            Ev::End => self.finished = true,
        }
    }

    fn guest_tick(&mut self, gv: GVcpu, gen: u64) {
        if self.vcpus[gv].tick_gen != gen {
            return;
        }
        if !matches!(self.vcpus[gv].state, HostState::Running(_)) {
            return;
        }
        let (vm, idx) = (self.vcpus[gv].vm, self.vcpus[gv].idx);
        self.with_vm(vm, |g, p| g.tick(p, VcpuId(idx)));
        // The tick may have halted the vCPU (guest went idle).
        if self.vcpus[gv].tick_gen == gen && matches!(self.vcpus[gv].state, HostState::Running(_)) {
            let now = self.q.now();
            let tick = self.vm_tick_ns(vm);
            self.q.post(now.after(tick), Ev::GuestTick { gv, gen });
        }
    }

    fn burst_done(&mut self, gv: GVcpu, gen: u64) {
        if self.vcpus[gv].burst_gen != gen {
            return;
        }
        let now = self.q.now();
        let complete = match self.vcpus[gv].run.as_ref() {
            Some(run) => run.work.value_at(now) + 1e-6 >= run.target,
            None => false,
        };
        if !complete {
            return;
        }
        let (vm, idx) = (self.vcpus[gv].vm, self.vcpus[gv].idx);
        let v = VcpuId(idx);
        // Settle into the guest, then ask the workload what's next.
        let program = {
            let guest = &self.vms[vm].guest;
            guest.kern.vcpus[idx]
                .curr
                .map(|t| guest.kern.task(t).program)
        };
        let Some(program) = program else { return };
        match program {
            guestos::TaskProgram::BuiltinSpin => {
                self.with_vm(vm, |g, p| {
                    if g.kern.on_burst_complete(p, v).is_some() {
                        g.kern
                            .continue_curr(p, v, guestos::kernel::BUILTIN_SPIN_WORK);
                    }
                });
            }
            guestos::TaskProgram::Workload => {
                let action = self.with_vm_and_workload(vm, |g, w, p| {
                    g.kern
                        .on_burst_complete(p, v)
                        .map(|t| (t, w.next_action(g, p, t)))
                });
                let Some(Some((task, action))) = action else {
                    return;
                };
                self.apply_action(vm, v, task, action);
            }
        }
    }

    /// Applies a workload-decided action to `task`. The workload may have
    /// woken other tasks while deciding, preempting `task` off the vCPU —
    /// so the action targets the task wherever it now is, not "the current
    /// task of `v`".
    fn apply_action(&mut self, vm: usize, v: VcpuId, task: TaskId, action: guestos::TaskAction) {
        use guestos::TaskAction::*;
        let is_curr = self.vms[vm].guest.kern.vcpus[v.0].curr == Some(task);
        match action {
            Compute { work } => {
                if is_curr {
                    self.with_vm(vm, |g, p| g.kern.continue_curr(p, v, work.max(1.0)));
                } else {
                    // Preempted mid-decision: the burst starts when the task
                    // is next picked.
                    self.vms[vm].guest.kern.task_mut(task).remaining = work.max(1.0);
                }
            }
            Sleep { ns } => {
                if is_curr {
                    self.with_vm(vm, |g, p| g.kern.curr_sleeps(p, v));
                } else {
                    self.with_vm(vm, |g, p| g.kern.block_task(p, task));
                }
                self.vms[vm].guest.kern.task_mut(task).state = TaskState::Sleeping;
                let now = self.q.now();
                self.q.post(now.after(ns.max(1)), Ev::TaskWake { vm, task });
            }
            Block => {
                if is_curr {
                    self.with_vm(vm, |g, p| g.kern.curr_blocks(p, v));
                } else {
                    self.with_vm(vm, |g, p| g.kern.block_task(p, task));
                }
            }
            Exit => {
                if is_curr {
                    self.with_vm(vm, |g, p| g.kern.curr_exits(p, v));
                } else {
                    self.with_vm(vm, |g, p| g.kern.kill_task(p, task));
                }
            }
        }
    }

    fn apply_script(&mut self, action: ScriptAction) {
        match action {
            ScriptAction::SetBandwidth { vm, vcpu, qp } => self.set_bandwidth(vm, vcpu, qp),
            ScriptAction::SetFreq { core, factor } => self.set_freq(core, factor),
            ScriptAction::AddLoad { thread, weight } => {
                self.add_host_load(thread, weight);
            }
            ScriptAction::RemoveLoad { id } => self.remove_host_load(id),
            ScriptAction::SetAffinity { vm, vcpu, threads } => self.set_affinity(vm, vcpu, threads),
            ScriptAction::SetVcpuWeight { vm, vcpu, weight } => {
                let gv = self.gv(vm, vcpu);
                self.vcpus[gv].weight = weight;
            }
            ScriptAction::OfflineVcpu { vm, vcpu } => self.offline_vcpu(vm, vcpu),
            ScriptAction::OnlineVcpu { vm, vcpu } => self.online_vcpu(vm, vcpu),
            ScriptAction::SetProbeNoise { noise } => self.set_probe_noise(noise),
            ScriptAction::AnnotateFault { vm, vcpu, class } => {
                let now = self.q.now();
                self.trace.emit_vm(
                    now,
                    vm as u16,
                    EventKind::FaultInjected {
                        vcpu: vcpu as u16,
                        class,
                    },
                );
            }
        }
    }

    /// Takes a vCPU offline (chaos mode): evicted if running, removed from
    /// every host queue, and excluded from scheduling until
    /// [`Machine::online_vcpu`]. Its host state keeps evolving normally
    /// (kicks land, quota refills), so steal accrues the whole time.
    pub fn offline_vcpu(&mut self, vm: usize, vcpu: usize) {
        let gv = self.gv(vm, vcpu);
        if self.vcpus[gv].offline {
            return;
        }
        self.vcpus[gv].offline = true;
        match self.vcpus[gv].state {
            HostState::Running(th) => {
                self.set_vcpu_state(gv, HostState::Runnable);
                self.vcpus[gv].tick_gen += 1;
                self.remove_current(th);
                let now = self.q.now();
                self.q.post(now, Ev::ThreadResched { th });
                self.notify_vcpu_stop(gv);
            }
            HostState::Runnable => {
                for t in &mut self.threads {
                    t.queue.retain(|e| *e != Entity::Vcpu(gv));
                }
            }
            HostState::Halted | HostState::Throttled => {}
        }
    }

    /// Brings an offline vCPU back online and requeues it if it wants to
    /// run. Inverse of [`Machine::offline_vcpu`].
    pub fn online_vcpu(&mut self, vm: usize, vcpu: usize) {
        let gv = self.gv(vm, vcpu);
        if !self.vcpus[gv].offline {
            return;
        }
        self.vcpus[gv].offline = false;
        // Every Runnable transition while offline skipped the enqueue, so a
        // Runnable vCPU here is guaranteed not to be on any queue.
        if self.vcpus[gv].state == HostState::Runnable {
            self.enqueue_vcpu(gv);
        }
    }

    /// Sets the machine-wide probe-noise amplitude (chaos mode).
    pub fn set_probe_noise(&mut self, noise: f64) {
        self.probe_noise = noise.max(0.0);
    }

    /// Host loads added so far (live or dead). The chaos planner uses this
    /// to predict the arena ids its scripted `AddLoad`s will receive.
    pub fn nr_host_loads(&self) -> usize {
        self.loads.len()
    }

    /// Deterministic probe jitter in `[-probe_noise, +probe_noise]`, keyed
    /// on the current simulated time and `salt`. A pure hash rather than an
    /// rng draw: reading a noisy measurement must not advance shared rng
    /// state, or probe timing would perturb unrelated draws.
    fn probe_jitter(&self, salt: u64) -> f64 {
        if self.probe_noise == 0.0 {
            return 0.0;
        }
        let mut x = self
            .q
            .now()
            .ns()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.rotate_left(17));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        self.probe_noise * (2.0 * unit - 1.0)
    }

    /// Installs/changes/removes bandwidth control on a vCPU at runtime.
    pub fn set_bandwidth(&mut self, vm: usize, vcpu: usize, qp: Option<(u64, u64)>) {
        let gv = self.gv(vm, vcpu);
        let now = self.q.now();
        self.settle_vcpu_state(gv);
        if let Some((q, p)) = qp {
            self.trace.emit_vm(
                now,
                vm as u16,
                EventKind::BandwidthSet {
                    vcpu: vcpu as u16,
                    quota_ns: q,
                    period_ns: p,
                },
            );
        }
        self.vcpus[gv].bw_gen += 1;
        self.vcpus[gv].bandwidth = qp.map(|(q, p)| Bandwidth {
            quota_ns: q,
            period_ns: p,
            runtime_ns: 0,
            period_start: now,
        });
        if self.vcpus[gv].state == HostState::Throttled {
            // New regime: become runnable immediately.
            self.set_vcpu_state(gv, HostState::Runnable);
            self.enqueue_vcpu(gv);
        }
    }

    /// Changes one hardware thread's scheduling quantum (the paper's
    /// per-cgroup granularity tunables shape per-core vCPU latency).
    pub fn set_thread_quantum(&mut self, th: usize, quantum_ns: u64) {
        self.thread_quantum[th] = quantum_ns;
    }

    /// Changes a core's DVFS factor at runtime.
    pub fn set_freq(&mut self, core: usize, factor: f64) {
        self.core_freq[core] = factor;
        for th in self.spec.threads_of_core(core) {
            if let Some(Entity::Vcpu(gv)) = self.threads[th].current {
                self.refresh_vcpu_rate(gv);
            }
        }
    }

    /// Re-pins a vCPU at runtime.
    pub fn set_affinity(&mut self, vm: usize, vcpu: usize, threads: Vec<usize>) {
        assert!(!threads.is_empty());
        let gv = self.gv(vm, vcpu);
        self.vcpus[gv].affinity = threads;
        match self.vcpus[gv].state {
            HostState::Running(th) if !self.vcpus[gv].affinity.contains(&th) => {
                // Evict and requeue on an allowed thread.
                self.set_vcpu_state(gv, HostState::Runnable);
                self.vcpus[gv].tick_gen += 1;
                self.remove_current(th);
                let now = self.q.now();
                self.q.post(now, Ev::ThreadResched { th });
                self.enqueue_vcpu(gv);
                self.notify_vcpu_stop(gv);
            }
            HostState::Runnable => {
                for t in &mut self.threads {
                    t.queue.retain(|e| *e != Entity::Vcpu(gv));
                }
                self.enqueue_vcpu(gv);
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// Platform implementation
// ----------------------------------------------------------------------

/// Platform view of the machine scoped to one VM.
struct Ctx<'a> {
    m: &'a mut Machine,
    vm: usize,
}

impl Ctx<'_> {
    fn gv(&self, v: VcpuId) -> GVcpu {
        self.m.vms[self.vm].gvcpu_base + v.0
    }
}

impl Platform for Ctx<'_> {
    fn now(&self) -> SimTime {
        self.m.q.now()
    }

    fn steal_ns(&self, v: VcpuId) -> u64 {
        let exact = self.m.vcpu_steal(self.gv(v));
        let jitter = self.m.probe_jitter(self.gv(v) as u64);
        if jitter == 0.0 {
            return exact;
        }
        // Chaos probe noise: the paravirtual counter lies by up to
        // ±probe_noise. Consumers must already tolerate non-monotonic
        // readings (they clamp deltas), so no monotonicity fix-up here.
        (exact as f64 * (1.0 + jitter)).max(0.0) as u64
    }

    fn vcpu_active(&self, v: VcpuId) -> bool {
        matches!(self.m.vcpus[self.gv(v)].state, HostState::Running(_))
    }

    fn kick(&mut self, v: VcpuId) {
        let gv = self.gv(v);
        self.m.kick_vcpu(gv);
    }

    fn vcpu_idle(&mut self, v: VcpuId) {
        let gv = self.gv(v);
        self.m.halt_vcpu(gv);
    }

    fn run_task(&mut self, v: VcpuId, t: TaskId, remaining: f64, factor: f64, cache_penalty: f64) {
        let gv = self.gv(v);
        let now = self.m.q.now();
        self.m.vcpus[gv].run = Some(RunCtx {
            task: t,
            target: remaining,
            factor,
            cache_penalty,
            work: Integrator::new(now),
            active: Integrator::new(now),
            prev_work: 0.0,
            prev_active: 0.0,
            last_settle: now,
        });
        self.m.refresh_vcpu_rate(gv);
    }

    fn stop_task(&mut self, v: VcpuId) -> RunDelta {
        let gv = self.gv(v);
        let now = self.m.q.now();
        let Some(mut run) = self.m.vcpus[gv].run.take() else {
            return RunDelta::default();
        };
        run.work.settle(now);
        run.active.settle(now);
        let delta = RunDelta {
            wall_ns: now.since(run.last_settle),
            active_ns: (run.active.value() - run.prev_active) as u64,
            work: run.work.value() - run.prev_work,
        };
        self.m.vcpus[gv].delivered_work += delta.work;
        self.m.vcpus[gv].burst_gen += 1;
        delta
    }

    fn poll_task(&mut self, v: VcpuId) -> RunDelta {
        let gv = self.gv(v);
        let now = self.m.q.now();
        let Some(run) = self.m.vcpus[gv].run.as_mut() else {
            return RunDelta::default();
        };
        run.work.settle(now);
        run.active.settle(now);
        let delta = RunDelta {
            wall_ns: now.since(run.last_settle),
            active_ns: (run.active.value() - run.prev_active) as u64,
            work: run.work.value() - run.prev_work,
        };
        run.prev_work = run.work.value();
        run.prev_active = run.active.value();
        run.last_settle = now;
        self.m.vcpus[gv].delivered_work += delta.work;
        delta
    }

    fn update_factor(&mut self, v: VcpuId, factor: f64) {
        let gv = self.gv(v);
        if let Some(run) = self.m.vcpus[gv].run.as_mut() {
            if (run.factor - factor).abs() > 1e-9 {
                run.factor = factor;
                self.m.refresh_vcpu_rate(gv);
            }
        }
    }

    fn send_ipi(&mut self, to: VcpuId) {
        let gv = self.gv(to);
        self.m.kick_vcpu(gv);
    }

    fn comm_distance(&self, a: VcpuId, b: VcpuId) -> CommDistance {
        let (ga, gb) = (self.gv(a), self.gv(b));
        let ta = match self.m.vcpus[ga].state {
            HostState::Running(th) => th,
            _ => self.m.vcpus[ga].affinity[0],
        };
        let tb = match self.m.vcpus[gb].state {
            HostState::Running(th) => th,
            _ => self.m.vcpus[gb].affinity[0],
        };
        if ga != gb && ta == tb {
            return CommDistance::Stacked;
        }
        self.m.spec.distance(ta, tb)
    }

    fn cacheline_latency_ns(&mut self, a: VcpuId, b: VcpuId) -> Option<f64> {
        let (ga, gb) = (self.gv(a), self.gv(b));
        let (ta, tb) = match (self.m.vcpus[ga].state, self.m.vcpus[gb].state) {
            (HostState::Running(x), HostState::Running(y)) => (x, y),
            _ => return None,
        };
        if ta == tb {
            return None; // stacked vCPUs never overlap
        }
        let base = self.m.spec.cacheline_ns(ta, tb);
        let noise = self.m.spec.cacheline.noise;
        let jitter = 1.0 + noise * (2.0 * self.m.rng.f64() - 1.0);
        // Chaos probe noise stacks on the spec's measurement noise.
        let chaos = 1.0 + self.m.probe_jitter((ga as u64) << 16 | gb as u64);
        Some(base * jitter * chaos)
    }

    fn llc_probe_ns(&mut self, v: VcpuId) -> Option<f64> {
        let gv = self.gv(v);
        let th = match self.m.vcpus[gv].state {
            HostState::Running(t) => t,
            _ => return None,
        };
        let s = self.m.spec.socket_of(th);
        let now = self.m.q.now();
        self.m.llc.advance(now, s);
        // Thrash drives the mean pointer-chase latency from an LLC hit
        // toward a cross-socket/DRAM-ish line fill, linearly in the
        // fraction of the socket held by *other* VMs.
        let pressure = self.m.llc.contention(self.vm, s);
        let hit = self.m.spec.cacheline.llc_ns;
        let miss = self.m.spec.cacheline.cross_ns;
        let base = hit + (miss - hit) * pressure;
        let noise = self.m.spec.cacheline.noise;
        let jitter = 1.0 + noise * (2.0 * self.m.rng.f64() - 1.0);
        // Chaos probe noise stacks, keyed apart from vtop's pair probes.
        let chaos = 1.0 + self.m.probe_jitter(0xCAC4E_u64 ^ ((gv as u64) << 20));
        Some(base * jitter * chaos)
    }

    fn set_timer(&mut self, token: u64, at: SimTime) {
        let vm = self.vm;
        self.m.q.post(at, Ev::Timer { vm, token });
    }
}
