//! Physical host topology.
//!
//! Sockets contain cores; cores contain SMT hardware threads. Thread ids are
//! laid out socket-major: `thread = socket * cores_per_socket * smt + core_in_socket * smt + sibling`.
//!
//! The topology also owns the physical latency model `vtop` measures
//! against: cache-line transfer latencies per sharing level, calibrated to
//! the paper's Figure 10b matrix (SMT ≈ 6 ns, same socket ≈ 48 ns, cross
//! socket ≈ 113 ns).

use guestos::CommDistance;

/// Cache-line transfer latencies (ns) by sharing level.
#[derive(Debug, Clone, Copy)]
pub struct CachelineLatencies {
    /// Between SMT siblings (shared L1/L2).
    pub smt_ns: f64,
    /// Between cores of one socket (shared LLC).
    pub llc_ns: f64,
    /// Across sockets (inter-socket bus).
    pub cross_ns: f64,
    /// Multiplicative noise amplitude (e.g. 0.08 = ±8%).
    pub noise: f64,
}

impl Default for CachelineLatencies {
    fn default() -> Self {
        Self {
            smt_ns: 6.0,
            llc_ns: 48.0,
            cross_ns: 113.0,
            noise: 0.08,
        }
    }
}

/// Static description of the physical machine.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Number of sockets.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads per core (1 = SMT off, 2 = hyper-threading).
    pub smt: usize,
    /// Host scheduler base quantum (ns) for a weight-1024 entity.
    pub quantum_ns: u64,
    /// Capacity factor applied to a thread while its SMT sibling is busy.
    pub smt_contention: f64,
    /// Cache-line latency model.
    pub cacheline: CachelineLatencies,
    /// Last-level cache capacity per socket, in bytes (Xeon Gold 6138:
    /// 27.5 MB of L3). Bounds the occupancy model in [`crate::llc`].
    pub llc_bytes: f64,
}

impl HostSpec {
    /// A host with the given shape and default tunables.
    pub fn new(sockets: usize, cores_per_socket: usize, smt: usize) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0, "degenerate host");
        assert!((1..=2).contains(&smt), "smt must be 1 or 2");
        Self {
            sockets,
            cores_per_socket,
            smt,
            quantum_ns: 4_000_000,
            smt_contention: 0.62,
            cacheline: CachelineLatencies::default(),
            llc_bytes: 27.5 * 1024.0 * 1024.0,
        }
    }

    /// The paper's evaluation host: 4 sockets × 20 cores, hyper-threading on
    /// (HPE ProLiant DL580 Gen10, 4× Xeon Gold 6138).
    pub fn paper_testbed() -> Self {
        Self::new(4, 20, 2)
    }

    /// A small host convenient for tests: 1 socket × `cores` cores, no SMT.
    pub fn flat(cores: usize) -> Self {
        Self::new(1, cores, 1)
    }

    /// Total hardware threads.
    pub fn nr_threads(&self) -> usize {
        self.sockets * self.cores_per_socket * self.smt
    }

    /// Total physical cores.
    pub fn nr_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// The core a hardware thread belongs to.
    pub fn core_of(&self, thread: usize) -> usize {
        thread / self.smt
    }

    /// The socket a hardware thread belongs to.
    pub fn socket_of(&self, thread: usize) -> usize {
        self.core_of(thread) / self.cores_per_socket
    }

    /// The SMT sibling of a thread (itself when SMT is off).
    pub fn sibling_of(&self, thread: usize) -> usize {
        if self.smt == 1 {
            thread
        } else if thread.is_multiple_of(2) {
            thread + 1
        } else {
            thread - 1
        }
    }

    /// Thread ids of a core.
    pub fn threads_of_core(&self, core: usize) -> Vec<usize> {
        (0..self.smt).map(|s| core * self.smt + s).collect()
    }

    /// Physical distance between two hardware threads.
    pub fn distance(&self, a: usize, b: usize) -> CommDistance {
        if a == b {
            CommDistance::Stacked
        } else if self.core_of(a) == self.core_of(b) {
            CommDistance::SmtSibling
        } else if self.socket_of(a) == self.socket_of(b) {
            CommDistance::SameLlc
        } else {
            CommDistance::CrossSocket
        }
    }

    /// Mean cache-line transfer latency between two distinct threads.
    /// (Same-thread "transfers" never happen: stacked vCPUs do not overlap.)
    pub fn cacheline_ns(&self, a: usize, b: usize) -> f64 {
        match self.distance(a, b) {
            CommDistance::Stacked | CommDistance::SmtSibling => self.cacheline.smt_ns,
            CommDistance::SameLlc => self.cacheline.llc_ns,
            CommDistance::CrossSocket => self.cacheline.cross_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_layout_is_socket_major() {
        let h = HostSpec::new(2, 2, 2); // 8 threads
        assert_eq!(h.nr_threads(), 8);
        assert_eq!(h.core_of(0), 0);
        assert_eq!(h.core_of(1), 0);
        assert_eq!(h.core_of(2), 1);
        assert_eq!(h.socket_of(3), 0);
        assert_eq!(h.socket_of(4), 1);
        assert_eq!(h.socket_of(7), 1);
    }

    #[test]
    fn siblings_pair_up() {
        let h = HostSpec::new(1, 2, 2);
        assert_eq!(h.sibling_of(0), 1);
        assert_eq!(h.sibling_of(1), 0);
        assert_eq!(h.sibling_of(2), 3);
        let h1 = HostSpec::flat(4);
        assert_eq!(h1.sibling_of(2), 2);
    }

    #[test]
    fn distances_follow_hierarchy() {
        let h = HostSpec::new(2, 2, 2);
        assert_eq!(h.distance(0, 0), CommDistance::Stacked);
        assert_eq!(h.distance(0, 1), CommDistance::SmtSibling);
        assert_eq!(h.distance(0, 2), CommDistance::SameLlc);
        assert_eq!(h.distance(0, 4), CommDistance::CrossSocket);
    }

    #[test]
    fn cacheline_latency_ordering() {
        let h = HostSpec::new(2, 2, 2);
        let smt = h.cacheline_ns(0, 1);
        let llc = h.cacheline_ns(0, 2);
        let cross = h.cacheline_ns(0, 4);
        assert!(smt < llc && llc < cross);
    }

    #[test]
    fn paper_testbed_shape() {
        let h = HostSpec::paper_testbed();
        assert_eq!(h.nr_cores(), 80);
        assert_eq!(h.nr_threads(), 160);
    }

    #[test]
    fn threads_of_core() {
        let h = HostSpec::new(1, 2, 2);
        assert_eq!(h.threads_of_core(1), vec![2, 3]);
    }

    #[test]
    #[should_panic]
    fn smt_over_2_rejected() {
        HostSpec::new(1, 1, 4);
    }
}
