//! Migration laws under randomized host-failure chaos.
//!
//! These are the fault-tolerance counterparts to the placement laws: for
//! *any* seed-generated chaos plan overlaid on *any* random churned
//! cluster, the trace checker must stay law-clean, no VM may end the day
//! stranded on a dead host, and the admission ledger must still balance.
//! One test is re-seedable from the `FLEET_CHAOS_SEED` environment
//! variable so a CI sweep failure prints the exact seed to replay (and
//! `suite --shrink-fleet SEED` can then 1-minimize the plan).

use simcore::propcheck;
use simcore::time::MS;
use vsched_fleet::{
    policy_by_name, Cluster, FleetChaosPlan, FleetChaosSpec, FleetSpec, GuestMode, MigrationMode,
    SloSummary, POLICIES,
};

/// Property case budget; `--features property-tests` widens the sweep.
fn cases(base: usize) -> usize {
    if cfg!(feature = "property-tests") {
        base * 8
    } else {
        base
    }
}

fn random_spec(rng: &mut simcore::SimRng) -> FleetSpec {
    let mut spec = FleetSpec::small(2 + rng.index(4), 1 + rng.index(4), 1);
    spec.horizon_ns = 800 * MS + rng.range(0, 1_200 * MS);
    spec.arrival_mean_ns = 1 + rng.range(0, 120 * MS);
    spec.lifetime_mean_ns = 1 + rng.range(0, 600 * MS);
    spec.max_live_vms = 1 + rng.index(16);
    spec
}

fn run_chaos(
    spec: &FleetSpec,
    policy: &str,
    migration: MigrationMode,
    seed: u64,
    chaos_seed: u64,
) -> SloSummary {
    let mut c = Cluster::new(
        spec.clone(),
        GuestMode::Vsched,
        policy_by_name(policy).expect("registered policy"),
        seed,
    );
    let cspec = FleetChaosSpec::for_fleet(spec.hosts as u16, spec.horizon_ns);
    c.set_chaos(FleetChaosPlan::generate(chaos_seed, &cspec));
    c.set_migration_mode(migration);
    c.run()
}

/// The laws every summary must satisfy regardless of what the chaos plan
/// did to the fleet. The `label` lands in the panic message so a failing
/// sweep case is replayable without rerunning the whole property.
fn assert_chaos_laws(s: &SloSummary, label: &str) {
    assert_eq!(
        s.violations, 0,
        "{label}: checker law violated (first: {:?})",
        s.first_law
    );
    assert_eq!(
        s.stranded, 0,
        "{label}: {} VMs ended the day stranded on failed hosts",
        s.stranded
    );
    assert_eq!(
        s.admitted,
        s.placed + s.rejected,
        "{label}: admission ledger out of balance"
    );
    if s.host_failures == 0 {
        assert_eq!(
            (s.migrations, s.evacuations_failed, s.shed_admissions),
            (0, 0, 0),
            "{label}: migration/shed activity without any fired host failure"
        );
    }
}

/// Core fault-tolerance property: random fleets under random chaos plans,
/// every policy, both migration modes — always law-clean, never stranded.
#[test]
fn random_chaos_plans_never_strand_vms_or_break_placement_laws() {
    propcheck::forall(0xFA17, cases(6), |rng| {
        let spec = random_spec(rng);
        let seed = rng.u64();
        let chaos_seed = rng.u64();
        let policy = POLICIES[rng.index(POLICIES.len())];
        let migration = if rng.index(2) == 0 {
            MigrationMode::Handoff
        } else {
            MigrationMode::ColdReprobe
        };
        let s = run_chaos(&spec, policy, migration, seed, chaos_seed);
        assert_chaos_laws(
            &s,
            &format!(
                "policy {policy} migration {} seed {seed:#x} chaos {chaos_seed:#x}",
                migration.name()
            ),
        );
    });
}

/// A crash mid-day must actually exercise the evacuation path: when the
/// plan fires at least one failure on a loaded fleet, either VMs migrated
/// off the dead host or the retry ledger accounts for why they could not.
#[test]
fn fired_failures_are_accounted_as_migrations_or_failed_evacuations() {
    let mut spec = FleetSpec::small(4, 2, 2);
    spec.arrival_mean_ns = 40 * MS;
    spec.lifetime_mean_ns = 900 * MS;
    let s = run_chaos(&spec, "worst-fit", MigrationMode::Handoff, 7, 0xBAD5EED);
    assert!(
        s.host_failures > 0,
        "chaos plan fired no failures at this scale; for_fleet scaling regressed"
    );
    assert!(
        s.migrations > 0 || s.evacuations_failed > 0,
        "a failure fired on a loaded fleet but nothing was evacuated or retried"
    );
    assert_chaos_laws(&s, "worst-fit handoff seed 7 chaos 0xBAD5EED");
}

/// CI sweep hook: `FLEET_CHAOS_SEED` reseeds the whole day (plan *and*
/// workload) so nightly runs explore fresh faulted days; the seed is in
/// every assertion message, so a red run is immediately reproducible with
/// `FLEET_CHAOS_SEED=<seed> cargo test -p vsched-fleet --test fleet_chaos`.
#[test]
fn env_seeded_chaos_day_is_law_clean() {
    let chaos_seed = std::env::var("FLEET_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xD15EA5E);
    let mut spec = FleetSpec::small(4, 4, 2);
    spec.arrival_mean_ns = 60 * MS;
    for migration in [MigrationMode::Handoff, MigrationMode::ColdReprobe] {
        let s = run_chaos(&spec, "probe-aware", migration, chaos_seed, chaos_seed);
        assert_chaos_laws(
            &s,
            &format!(
                "FLEET_CHAOS_SEED={chaos_seed} migration {} (replay with this env var)",
                migration.name()
            ),
        );
    }
}
