//! Property coverage for the trace-replay subsystem: synthesis is a pure
//! function of `(profile, seed)`, the JSONL codec round-trips exactly,
//! and a replayed spec's schedule is the trace verbatim under any seed.

use simcore::propcheck;
use simcore::time::MS;
use vsched_fleet::{day_seed, spec_for_trace, synthesize, FleetSpec, FleetTrace, VmOp, PROFILES};

/// Property case budget; `--features property-tests` widens the sweep.
fn cases(base: usize) -> usize {
    if cfg!(feature = "property-tests") {
        base * 8
    } else {
        base
    }
}

#[test]
fn synthesis_is_byte_identical_across_runs() {
    propcheck::forall(0x7ACE1, cases(8), |rng| {
        let p = &PROFILES[rng.index(PROFILES.len())];
        let horizon = (500 + rng.range(0, 3_500)) * MS;
        let seed = rng.u64();
        let a = synthesize(p, horizon, seed);
        let b = synthesize(p, horizon, seed);
        assert_eq!(a, b);
        assert_eq!(a.encode(), b.encode(), "encode must be deterministic");
    });
}

#[test]
fn decode_of_encode_is_the_identity() {
    propcheck::forall(0x7ACE2, cases(16), |rng| {
        let p = &PROFILES[rng.index(PROFILES.len())];
        let horizon = (500 + rng.range(0, 3_500)) * MS;
        let trace = synthesize(p, horizon, rng.u64());
        let text = trace.encode();
        let back = FleetTrace::decode(&text).expect("own encoding decodes");
        assert_eq!(trace, back, "replay(encode(schedule)) == schedule");
        assert_eq!(text, back.encode(), "re-encode is byte-identical");
    });
}

#[test]
fn replayed_specs_ignore_the_seed_and_round_trip_json() {
    propcheck::forall(0x7ACE3, cases(8), |rng| {
        let p = &PROFILES[rng.index(PROFILES.len())];
        let horizon = (500 + rng.range(0, 1_500)) * MS;
        let trace = synthesize(p, horizon, day_seed(p.name));
        let spec = spec_for_trace(&trace, 1 + rng.index(4), 1 + rng.index(4));
        spec.validate().expect("replay spec validates");
        // Any two seeds compile to the identical schedule: the trace
        // alone pins the day.
        let a = vsched_fleet::generate(&spec, rng.u64());
        let b = vsched_fleet::generate(&spec, rng.u64());
        assert_eq!(a, trace.events);
        assert_eq!(a, b);
        // And the spec (embedded trace included) survives its JSON form.
        let back = FleetSpec::from_json(&spec.to_json()).expect("parses back");
        assert_eq!(spec, back);
    });
}

#[test]
fn synthesized_traces_satisfy_their_own_validator_and_laws() {
    propcheck::forall(0x7ACE4, cases(12), |rng| {
        let p = &PROFILES[rng.index(PROFILES.len())];
        let horizon = (500 + rng.range(0, 3_500)) * MS;
        let trace = synthesize(p, horizon, rng.u64());
        trace.validate().expect("valid by construction");
        // Independent re-check of the replay ordering laws the cluster
        // depends on: arrivals unique, depart/resize only while live.
        let mut live = std::collections::BTreeSet::new();
        let mut seen = std::collections::BTreeSet::new();
        for e in &trace.events {
            match e.op {
                VmOp::Arrive { uid, vcpus, .. } => {
                    assert!(vcpus > 0);
                    assert!(seen.insert(uid), "uid {uid} arrives twice");
                    live.insert(uid);
                }
                VmOp::Depart { uid } => {
                    assert!(live.remove(&uid), "uid {uid} departs while not live");
                }
                VmOp::Resize { uid, quota_pct } => {
                    assert!(live.contains(&uid), "uid {uid} resized while not live");
                    assert!((1..=100).contains(&quota_pct));
                }
            }
        }
    });
}
