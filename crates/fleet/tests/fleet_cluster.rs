//! End-to-end cluster runs checked against the fleet trace laws, plus the
//! `FleetSpec` JSON round-trip property (the fleet sibling of
//! `FaultPlan`'s round-trip in `hostsim::faults`).

use simcore::propcheck;
use simcore::time::MS;
use vsched_fleet::{policy_by_name, ChurnModel, Cluster, FleetSpec, GuestMode, VmOp, POLICIES};

/// Property case budget; `--features property-tests` widens the sweep.
fn cases(base: usize) -> usize {
    if cfg!(feature = "property-tests") {
        base * 8
    } else {
        base
    }
}

fn random_spec(rng: &mut simcore::SimRng) -> FleetSpec {
    let mut mix = Vec::new();
    for _ in 0..1 + rng.index(4) {
        mix.push((1 + rng.index(8), 1 + rng.range(0, 9)));
    }
    // Valid specs keep the smallest size under the cap (anything else is
    // rejected by FleetSpec::validate as an always-rejecting fleet).
    let smallest = mix.iter().map(|&(v, _)| v as u64).min().unwrap();
    let slo_p99_ns = 1 + rng.range(0, 100 * MS);
    // Tier targets must order critical ≤ standard ≤ batch to validate.
    let tier_slo_p99_ns = [
        (slo_p99_ns / 2).max(1),
        slo_p99_ns,
        slo_p99_ns + rng.range(0, 100 * MS),
    ];
    FleetSpec {
        hosts: 1 + rng.index(8),
        threads_per_host: 1 + rng.index(8),
        overcommit_cap: smallest + rng.range(0, 16),
        arrival_mean_ns: 1 + rng.range(0, 500 * MS),
        lifetime_mean_ns: 1 + rng.range(0, 3_000 * MS),
        lifetime_max_ns: 1 + rng.range(0, 10_000 * MS),
        size_mix: mix,
        max_live_vms: 1 + rng.index(32),
        horizon_ns: 1 + rng.range(0, 30_000 * MS),
        slo_p99_ns,
        tier_slo_p99_ns,
        churn: ChurnModel::Stochastic,
    }
}

#[test]
fn fleet_spec_json_round_trips_exactly() {
    propcheck::forall(0xF1EE7, cases(32), |rng| {
        let spec = random_spec(rng);
        let back = FleetSpec::from_json(&spec.to_json()).expect("parses back");
        assert_eq!(spec, back);
        assert_eq!(spec.to_json(), back.to_json());
    });
}

#[test]
fn lifecycle_schedules_are_pure_functions_of_spec_and_seed() {
    propcheck::forall(0xF1EE8, cases(8), |rng| {
        let spec = random_spec(rng);
        let seed = rng.u64();
        assert_eq!(
            vsched_fleet::generate(&spec, seed),
            vsched_fleet::generate(&spec, seed)
        );
    });
}

/// Every policy, both guest modes: a churned cluster must satisfy the
/// fleet placement laws (overcommit cap respected on every placement,
/// each admitted VM placed at most once, departs match placements) *and*
/// the per-host conservation laws, with the bookkeeping identity
/// `admitted == placed + rejected` and `unplaced == rejected` holding at
/// the horizon.
#[test]
fn every_policy_and_mode_runs_clean_under_churn() {
    for policy in POLICIES {
        for mode in [GuestMode::Cfs, GuestMode::Vsched] {
            let mut spec = FleetSpec::small(3, 2, 2);
            spec.max_live_vms = 8;
            let mut c = Cluster::new(spec, mode, policy_by_name(policy).unwrap(), 17);
            let s = c.run();
            assert!(
                s.admitted > 0,
                "{policy}/{}: no churn generated",
                mode.label()
            );
            assert_eq!(
                s.admitted,
                s.placed + s.rejected,
                "{policy}/{}: admissions unaccounted",
                mode.label()
            );
            assert_eq!(
                s.violations,
                0,
                "{policy}/{}: law broken: {:?}",
                mode.label(),
                s.first_law
            );
            assert_eq!(s.unplaced, s.rejected as usize);
            assert!(s.completed > 0, "{policy}/{}: tenants idle", mode.label());
            assert!(s.trace_events > 0);
        }
    }
}

/// The overcommit cap binds: with a cap of one vCPU per host, multi-vCPU
/// VMs in the mix can never be placed, yet the run stays violation-free
/// because rejection (not over-placement) is the required response.
#[test]
fn saturated_cluster_rejects_instead_of_overcommitting() {
    let mut spec = FleetSpec::small(2, 2, 2);
    spec.overcommit_cap = 1;
    spec.max_live_vms = 16;
    let mut c = Cluster::new(
        spec,
        GuestMode::Cfs,
        policy_by_name("first-fit").unwrap(),
        9,
    );
    let s = c.run();
    assert!(s.rejected > 0);
    assert_eq!(s.violations, 0, "law broken: {:?}", s.first_law);
    for t in &s.tenants {
        assert_eq!(t.vcpus, 1, "only 1-vCPU VMs fit under a cap of 1");
    }
}

/// Two runs of the same `(spec, mode, policy, seed)` cell replay the
/// same schedule and land on bit-identical summaries — the property the
/// suite's sharded fleet job depends on.
#[test]
fn fleet_cells_are_deterministic() {
    let outcome = |seed: u64| {
        let mut c = Cluster::new(
            FleetSpec::small(2, 2, 1),
            GuestMode::Vsched,
            policy_by_name("probe-aware").unwrap(),
            seed,
        );
        let s = c.run();
        (
            s.admitted,
            s.placed,
            s.completed,
            s.dropped,
            s.p50_ms.to_bits(),
            s.p99_ms.to_bits(),
            s.worst_tenant_p99_ms.to_bits(),
            s.fairness.to_bits(),
            s.mean_util.to_bits(),
            s.peak_util.to_bits(),
            s.trace_events,
        )
    };
    assert_eq!(outcome(23), outcome(23));
    assert_ne!(outcome(23), outcome(24));
}

/// Resizes appear in schedules and only ever target live VMs — and a
/// churned run that includes them still satisfies every law.
#[test]
fn resizes_ride_along_cleanly() {
    let spec = FleetSpec::small(2, 4, 3);
    let schedule = vsched_fleet::generate(&spec, 101);
    let resizes = schedule
        .iter()
        .filter(|e| matches!(e.op, VmOp::Resize { .. }))
        .count();
    assert!(resizes > 0, "3s of churn should include resizes");
    let mut c = Cluster::new(
        spec,
        GuestMode::Vsched,
        policy_by_name("worst-fit").unwrap(),
        101,
    );
    let s = c.run();
    assert_eq!(s.violations, 0, "law broken: {:?}", s.first_law);
}
