//! Byte-identity of parallel cluster stepping.
//!
//! The stepping pool (`Cluster::run` with >1 effective worker) must be
//! invisible in every output: the same `(spec, mode, policy, seed)` run
//! at 1, 2, and N workers has to produce identical `SloSummary` fields,
//! checker verdicts, per-tenant snapshots, and per-host utilization
//! series — bit-for-bit on the floats, not approximately. One worker
//! takes the plain serial path, so these tests pin the parallel path to
//! the serial baseline directly.

use simcore::propcheck;
use simcore::time::MS;
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use vsched_fleet::{
    parse_fleet_threads, policy_by_name, ChurnModel, Cluster, FleetChaosPlan, FleetChaosSpec,
    FleetSpec, FleetTrace, GuestMode, MigrationMode, SloSummary,
};

/// Property case budget; `--features property-tests` widens the sweep.
fn cases(base: usize) -> usize {
    if cfg!(feature = "property-tests") {
        base * 8
    } else {
        base
    }
}

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

/// Every observable output of a run, rendered with float *bits* so "close
/// enough" can never pass: summary counters and percentiles, per-tier
/// tails, checker verdict, per-tenant snapshots, and the per-host
/// utilization series in host-id order.
fn digest(c: &Cluster, s: &SloSummary) -> String {
    let mut d = String::new();
    let _ = write!(
        d,
        "adm {} placed {} rej {} done {} drop {} ",
        s.admitted, s.placed, s.rejected, s.completed, s.dropped
    );
    let _ = write!(
        d,
        "p50 {:x} p99 {:x} worst {:x} fair {:x} mean {:x} peak {:x} ",
        s.p50_ms.to_bits(),
        s.p99_ms.to_bits(),
        s.worst_tenant_p99_ms.to_bits(),
        s.fairness.to_bits(),
        s.mean_util.to_bits(),
        s.peak_util.to_bits()
    );
    for (t, n) in s.tier_p99_ms.iter().zip(s.tier_tenants) {
        let _ = write!(d, "tier {:x}/{n} ", t.to_bits());
    }
    let _ = write!(
        d,
        "slo {}/{} events {} viol {} law {:?} unplaced {} | ",
        s.slo_violations, s.measured_tenants, s.trace_events, s.violations, s.first_law, s.unplaced
    );
    let _ = write!(
        d,
        "tierslo {:?} stranded {} fail {} mig {} evacfail {} shed {} | ",
        s.tier_slo_violations,
        s.stranded,
        s.host_failures,
        s.migrations,
        s.evacuations_failed,
        s.shed_admissions
    );
    for t in &s.tenants {
        let _ = write!(
            d,
            "t{}:{:?}v{}l{}c{}d{}e{} ",
            t.uid,
            t.prio,
            t.vcpus,
            t.lifetime_ns,
            t.completed,
            t.dropped,
            t.e2e.count()
        );
    }
    d.push('|');
    for host in c.host_util() {
        for u in host {
            let _ = write!(d, " {:x}", u.to_bits());
        }
        d.push(';');
    }
    d
}

fn run_digest(
    spec: &FleetSpec,
    mode: GuestMode,
    policy: &str,
    seed: u64,
    workers: usize,
) -> String {
    let mut c = Cluster::with_threads(
        spec.clone(),
        mode,
        policy_by_name(policy).expect("registered policy"),
        seed,
        nz(workers),
    );
    let s = c.run();
    digest(&c, &s)
}

fn random_spec(rng: &mut simcore::SimRng) -> FleetSpec {
    let mut spec = FleetSpec::small(1 + rng.index(6), 1 + rng.index(4), 1);
    spec.horizon_ns = 200 * MS + rng.range(0, 1_000 * MS);
    spec.arrival_mean_ns = 1 + rng.range(0, 120 * MS);
    spec.lifetime_mean_ns = 1 + rng.range(0, 600 * MS);
    spec.max_live_vms = 1 + rng.index(16);
    spec
}

#[test]
fn random_fleets_step_identically_at_1_2_and_n_workers() {
    propcheck::forall(0x9A57E9, cases(4), |rng| {
        let spec = random_spec(rng);
        let seed = rng.u64();
        let mode = if rng.index(2) == 0 {
            GuestMode::Cfs
        } else {
            GuestMode::Vsched
        };
        let policy = ["first-fit", "worst-fit", "probe-aware"][rng.index(3)];
        let serial = run_digest(&spec, mode, policy, seed, 1);
        assert_eq!(
            serial,
            run_digest(&spec, mode, policy, seed, 2),
            "2 workers diverged from serial ({policy}, {mode:?})"
        );
        assert_eq!(
            serial,
            run_digest(&spec, mode, policy, seed, 7),
            "7 workers diverged from serial ({policy}, {mode:?})"
        );
    });
}

#[test]
fn committed_sap_day_replays_identically_across_worker_counts() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/sap_day.trace.jsonl"
    ))
    .expect("committed example trace readable");
    let trace = FleetTrace::decode(&text).expect("committed example trace valid");
    let spec = vsched_fleet::spec_for_trace(&trace, 4, 4);
    assert!(matches!(spec.churn, ChurnModel::Trace(_)));
    let serial = run_digest(&spec, GuestMode::Vsched, "probe-aware", 42, 1);
    for workers in [2, 3, 8] {
        assert_eq!(
            serial,
            run_digest(&spec, GuestMode::Vsched, "probe-aware", 42, workers),
            "replayed day diverged at {workers} workers"
        );
    }
}

fn run_chaos_digest(
    spec: &FleetSpec,
    policy: &str,
    migration: MigrationMode,
    seed: u64,
    chaos_seed: u64,
    workers: usize,
) -> String {
    let mut c = Cluster::with_threads(
        spec.clone(),
        GuestMode::Vsched,
        policy_by_name(policy).expect("registered policy"),
        seed,
        nz(workers),
    );
    let cspec = FleetChaosSpec::for_fleet(spec.hosts as u16, spec.horizon_ns);
    c.set_chaos(FleetChaosPlan::generate(chaos_seed, &cspec));
    c.set_migration_mode(migration);
    let s = c.run();
    digest(&c, &s)
}

/// The tentpole's determinism gate: a chaos day — failures, evacuations,
/// retries, recoveries, degraded-mode sheds — must be byte-identical at
/// 1, 2, and N stepping workers, in both migration modes.
#[test]
fn chaos_days_step_identically_at_1_2_and_n_workers() {
    propcheck::forall(0xC4A05, cases(3), |rng| {
        let mut spec = random_spec(rng);
        // Long enough that the scaled fault window actually fires.
        spec.horizon_ns = 800 * MS + rng.range(0, 800 * MS);
        let seed = rng.u64();
        let chaos_seed = rng.u64();
        let policy = ["first-fit", "worst-fit", "probe-aware"][rng.index(3)];
        let migration = if rng.index(2) == 0 {
            MigrationMode::Handoff
        } else {
            MigrationMode::ColdReprobe
        };
        let serial = run_chaos_digest(&spec, policy, migration, seed, chaos_seed, 1);
        assert_eq!(
            serial,
            run_chaos_digest(&spec, policy, migration, seed, chaos_seed, 2),
            "2 workers diverged from serial ({policy}, {migration:?}, chaos {chaos_seed:#x})"
        );
        assert_eq!(
            serial,
            run_chaos_digest(&spec, policy, migration, seed, chaos_seed, 7),
            "7 workers diverged from serial ({policy}, {migration:?}, chaos {chaos_seed:#x})"
        );
    });
}

#[test]
fn fleet_threads_zero_is_rejected_with_a_named_field_error() {
    assert_eq!(
        parse_fleet_threads("0").unwrap_err(),
        "fleet_threads must be positive (got 0)"
    );
    assert_eq!(parse_fleet_threads("4").unwrap().get(), 4);
}
