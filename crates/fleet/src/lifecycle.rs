//! Seed-driven VM lifecycle churn and the fleet configuration.
//!
//! [`generate`] compiles a [`FleetSpec`] plus a seed into a sorted,
//! replayable schedule of [`LifecycleEvent`]s — the same idiom as
//! `hostsim::faults::FaultPlan`: per-process forked RNG streams so adding
//! one knob never shifts another stream's draws, and a schedule that is a
//! pure function of `(spec, seed)`.

use crate::trace_format::FleetTrace;
use simcore::json::Json;
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::collections::BinaryHeap;
use trace::PriorityClass;

/// Where a fleet's churn schedule comes from.
///
/// `Stochastic` is the PR 5 behaviour: a Poisson/exponential process
/// compiled from `(spec, seed)`. `Trace` replays a pre-generated
/// [`FleetTrace`] verbatim — the schedule is fixed by the trace alone, so
/// every placement policy and guest mode runs over the identical day.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnModel {
    /// Seed-driven Poisson arrivals / lognormal lifetimes (the default).
    Stochastic,
    /// Replay this trace's events verbatim.
    Trace(FleetTrace),
}

/// Fleet configuration. Round-trips through [`FleetSpec::to_json`] /
/// [`FleetSpec::from_json`] (exact-u64, like `FaultPlan`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of hosts in the cluster.
    pub hosts: usize,
    /// Hardware threads per host (flat topology, no SMT).
    pub threads_per_host: usize,
    /// Max committed (placed) vCPUs per host — the overcommit cap the
    /// trace checker enforces on every placement.
    pub overcommit_cap: u64,
    /// Mean VM interarrival time (Poisson-style exponential draws).
    pub arrival_mean_ns: u64,
    /// Mean VM lifetime (lognormal, right-skewed).
    pub lifetime_mean_ns: u64,
    /// Hard upper bound on a VM's lifetime.
    pub lifetime_max_ns: u64,
    /// Heavy-tailed VM size mix: `(vcpus, weight)` pairs.
    pub size_mix: Vec<(usize, u64)>,
    /// Admission bound: arrivals are skipped while this many VMs live.
    pub max_live_vms: usize,
    /// Simulated duration of the churn process.
    pub horizon_ns: u64,
    /// Per-tenant p99 end-to-end latency SLO (violation accounting).
    pub slo_p99_ns: u64,
    /// Per-tier p99 targets in `PRIORITY_CLASSES` order (critical,
    /// standard, batch). Critical runs tighter than the fleet-wide SLO,
    /// batch looser; [`FleetSpec::validate`] enforces the ordering.
    pub tier_slo_p99_ns: [u64; 3],
    /// Churn source: stochastic generation or trace replay.
    pub churn: ChurnModel,
}

/// Derived per-tier targets when a spec predates them: critical at half
/// the fleet-wide SLO, standard at it, batch at four times it.
fn derived_tier_slo(slo_p99_ns: u64) -> [u64; 3] {
    [
        (slo_p99_ns / 2).max(1),
        slo_p99_ns,
        slo_p99_ns.saturating_mul(4),
    ]
}

impl FleetSpec {
    /// A small overcommitted cluster sized for suite cells and tests:
    /// `hosts` flat `threads`-thread machines with a 1.5× vCPU overcommit
    /// cap, ~4 arrivals per simulated second, and a 1–4 vCPU size mix.
    pub fn small(hosts: usize, threads: usize, horizon_secs: u64) -> FleetSpec {
        FleetSpec {
            hosts,
            threads_per_host: threads,
            overcommit_cap: (threads as u64 * 3) / 2,
            arrival_mean_ns: 250 * MS,
            lifetime_mean_ns: 1_500 * MS,
            lifetime_max_ns: 5_000 * MS,
            size_mix: vec![(1, 5), (2, 3), (4, 2)],
            max_live_vms: hosts * threads,
            horizon_ns: horizon_secs * 1_000 * MS,
            slo_p99_ns: 20 * MS,
            tier_slo_p99_ns: derived_tier_slo(20 * MS),
            churn: ChurnModel::Stochastic,
        }
    }

    /// Structural sanity: every field a schedule generator divides by or
    /// indexes with must be usable. Errors name the offending field and
    /// the value it carried, so a bad spec file is fixable from the
    /// message alone.
    pub fn validate(&self) -> Result<(), String> {
        if self.hosts == 0 {
            return Err("hosts must be positive (got 0)".into());
        }
        if self.threads_per_host == 0 {
            return Err("threads_per_host must be positive (got 0)".into());
        }
        if self.overcommit_cap == 0 {
            return Err("overcommit_cap must be positive (got 0)".into());
        }
        if self.arrival_mean_ns == 0 {
            return Err("arrival_mean_ns must be positive (got 0)".into());
        }
        if self.lifetime_mean_ns == 0 {
            return Err("lifetime_mean_ns must be positive (got 0)".into());
        }
        if self.horizon_ns == 0 {
            return Err("horizon_ns must be positive (got 0)".into());
        }
        let [crit, std, batch] = self.tier_slo_p99_ns;
        if crit == 0 {
            return Err("slo_crit_p99_ns must be positive (got 0)".into());
        }
        if crit > std {
            return Err(format!(
                "slo_crit_p99_ns {crit} exceeds slo_std_p99_ns {std}: \
                 critical tenants must run a tighter SLO than standard"
            ));
        }
        if std > batch {
            return Err(format!(
                "slo_std_p99_ns {std} exceeds slo_batch_p99_ns {batch}: \
                 batch tenants must run the loosest SLO"
            ));
        }
        if self.size_mix.is_empty() {
            return Err("size_mix must not be empty".into());
        }
        for (i, &(v, w)) in self.size_mix.iter().enumerate() {
            if v == 0 || w == 0 {
                return Err(format!(
                    "size_mix[{i}] must have positive vcpus and weight (got vcpus {v}, weight {w})"
                ));
            }
        }
        let smallest = self
            .size_mix
            .iter()
            .map(|&(v, _)| v as u64)
            .min()
            .expect("size_mix checked non-empty");
        if smallest > self.overcommit_cap {
            return Err(format!(
                "overcommit_cap {} is below the smallest size_mix vcpus {smallest}: \
                 every arrival would be rejected",
                self.overcommit_cap
            ));
        }
        if let ChurnModel::Trace(t) = &self.churn {
            if t.horizon_ns != self.horizon_ns {
                return Err(format!(
                    "churn trace horizon_ns {} does not match spec horizon_ns {}",
                    t.horizon_ns, self.horizon_ns
                ));
            }
            t.validate().map_err(|e| format!("churn trace: {e}"))?;
        }
        Ok(())
    }

    /// Renders the spec as deterministic JSON (sorted keys, exact u64).
    pub fn to_json(&self) -> String {
        Json::obj([
            ("hosts", Json::Uint(self.hosts as u64)),
            ("threads_per_host", Json::Uint(self.threads_per_host as u64)),
            ("overcommit_cap", Json::Uint(self.overcommit_cap)),
            ("arrival_mean_ns", Json::Uint(self.arrival_mean_ns)),
            ("lifetime_mean_ns", Json::Uint(self.lifetime_mean_ns)),
            ("lifetime_max_ns", Json::Uint(self.lifetime_max_ns)),
            (
                "size_mix",
                Json::Arr(
                    self.size_mix
                        .iter()
                        .map(|&(v, w)| {
                            Json::obj([("vcpus", Json::Uint(v as u64)), ("weight", Json::Uint(w))])
                        })
                        .collect(),
                ),
            ),
            ("max_live_vms", Json::Uint(self.max_live_vms as u64)),
            ("horizon_ns", Json::Uint(self.horizon_ns)),
            ("slo_p99_ns", Json::Uint(self.slo_p99_ns)),
            ("slo_crit_p99_ns", Json::Uint(self.tier_slo_p99_ns[0])),
            ("slo_std_p99_ns", Json::Uint(self.tier_slo_p99_ns[1])),
            ("slo_batch_p99_ns", Json::Uint(self.tier_slo_p99_ns[2])),
            (
                "churn",
                match &self.churn {
                    ChurnModel::Stochastic => Json::Str("stochastic".into()),
                    ChurnModel::Trace(t) => t.to_json_value(),
                },
            ),
        ])
        .render()
    }

    /// Parses a spec previously written by [`FleetSpec::to_json`].
    pub fn from_json(text: &str) -> Result<FleetSpec, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let need =
            |v: Option<&Json>, what: &str| v.cloned().ok_or_else(|| format!("missing {what}"));
        let u = |v: &Json, what: &str| v.as_u64().ok_or_else(|| format!("{what} not a u64"));
        let field =
            |what: &'static str| -> Result<u64, String> { u(&need(doc.get(what), what)?, what) };
        let mut size_mix = Vec::new();
        for entry in need(doc.get("size_mix"), "size_mix")?
            .as_arr()
            .ok_or("size_mix not an array")?
        {
            let v = u(&need(entry.get("vcpus"), "size_mix.vcpus")?, "vcpus")? as usize;
            let w = u(&need(entry.get("weight"), "size_mix.weight")?, "weight")?;
            size_mix.push((v, w));
        }
        // Absent churn means the PR 5 spec shape: stochastic generation.
        let churn = match doc.get("churn") {
            None => ChurnModel::Stochastic,
            Some(Json::Str(s)) if s == "stochastic" => ChurnModel::Stochastic,
            Some(Json::Str(s)) => return Err(format!("churn: unknown model {s:?}")),
            Some(v) => ChurnModel::Trace(
                FleetTrace::from_json_value(v).map_err(|e| format!("churn trace: {e}"))?,
            ),
        };
        let slo_p99_ns = field("slo_p99_ns")?;
        // Absent tier keys mean the PR 5 spec shape: derive them from the
        // fleet-wide SLO so old spec files keep parsing.
        let derived = derived_tier_slo(slo_p99_ns);
        let tier = |key: &'static str, dflt: u64| -> Result<u64, String> {
            match doc.get(key) {
                None => Ok(dflt),
                Some(v) => u(v, key),
            }
        };
        let spec = FleetSpec {
            hosts: field("hosts")? as usize,
            threads_per_host: field("threads_per_host")? as usize,
            overcommit_cap: field("overcommit_cap")?,
            arrival_mean_ns: field("arrival_mean_ns")?,
            lifetime_mean_ns: field("lifetime_mean_ns")?,
            lifetime_max_ns: field("lifetime_max_ns")?,
            size_mix,
            max_live_vms: field("max_live_vms")? as usize,
            horizon_ns: field("horizon_ns")?,
            slo_p99_ns,
            tier_slo_p99_ns: [
                tier("slo_crit_p99_ns", derived[0])?,
                tier("slo_std_p99_ns", derived[1])?,
                tier("slo_batch_p99_ns", derived[2])?,
            ],
            churn,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// One lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmOp {
    /// A new VM requests admission.
    Arrive {
        /// Fleet-wide VM id.
        uid: u32,
        /// Nominal size.
        vcpus: usize,
        /// Tenant priority class (SLO reporting is sliced by tier).
        prio: PriorityClass,
    },
    /// A live VM leaves.
    Depart {
        /// Fleet-wide VM id.
        uid: u32,
    },
    /// A live VM's CPU allocation is resized in place (vertical resize via
    /// bandwidth caps; 100 restores the uncapped allocation).
    Resize {
        /// Fleet-wide VM id.
        uid: u32,
        /// New per-vCPU quota as a percentage of the period (1..=100).
        quota_pct: u8,
    },
}

/// A stamped lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// When the transition fires.
    pub at: SimTime,
    /// What happens.
    pub op: VmOp,
}

/// Floor on generated lifetimes: shorter than this and a VM departs
/// before its workload produces a single measurable request.
pub(crate) const MIN_LIFETIME_NS: u64 = 100 * MS;

/// Stochastic tier weights: most tenants are standard, a thin critical
/// slice, and a batch tail — drawn per arrival from a dedicated stream.
const TIER_WEIGHTS: [(PriorityClass, u64); 3] = [
    (PriorityClass::Critical, 2),
    (PriorityClass::Standard, 5),
    (PriorityClass::Batch, 3),
];

fn draw_tier(rng: &mut SimRng) -> PriorityClass {
    let total: u64 = TIER_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.range(0, total);
    for &(p, w) in &TIER_WEIGHTS {
        if pick < w {
            return p;
        }
        pick -= w;
    }
    PriorityClass::Standard
}

/// Compiles the churn schedule for `(spec, seed)`: a time-sorted event
/// list that is a pure function of its inputs. Arrivals that would push
/// the live population past `max_live_vms` are skipped (the bound on
/// open-loop growth); departures and resizes past the horizon are
/// dropped — those VMs simply live to the end of the run.
///
/// With [`ChurnModel::Trace`] the schedule is the trace's event list
/// verbatim: the seed does not reach it at all.
pub fn generate(spec: &FleetSpec, seed: u64) -> Vec<LifecycleEvent> {
    spec.validate().expect("valid spec");
    if let ChurnModel::Trace(t) = &spec.churn {
        return t.events.clone();
    }
    let mut root = SimRng::new(seed ^ 0xF1EE_7005);
    let mut arr = root.fork(0xA1);
    let mut size = root.fork(0x51);
    let mut life = root.fork(0x1F);
    let mut rsz = root.fork(0x25);
    // Appended after the PR 5 forks so their streams are unshifted.
    let mut pri = root.fork(0x9A);
    let total_weight: u64 = spec.size_mix.iter().map(|&(_, w)| w).sum();

    let mut events: Vec<LifecycleEvent> = Vec::new();
    // Min-heap of departure times (negated for BinaryHeap's max order) so
    // the generator can bound the live population deterministically.
    let mut departs: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
    let mut t = 0u64;
    let mut uid = 0u32;
    loop {
        t = t.saturating_add(arr.exp(spec.arrival_mean_ns as f64) as u64);
        if t >= spec.horizon_ns {
            break;
        }
        while matches!(departs.peek(), Some(&std::cmp::Reverse(d)) if d <= t) {
            departs.pop();
        }
        let mut pick = size.range(0, total_weight);
        let vcpus = spec
            .size_mix
            .iter()
            .find(|&&(_, w)| {
                if pick < w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .map(|&(v, _)| v)
            .expect("weights cover the range");
        // Lifetime and resize draws happen whether or not the arrival is
        // admitted, so the admission bound never shifts later streams.
        let lifetime = (life.lognormal(spec.lifetime_mean_ns as f64, 0.8) as u64)
            .clamp(MIN_LIFETIME_NS, spec.lifetime_max_ns);
        let resize_at = t + (lifetime as f64 * (0.25 + 0.5 * rsz.f64())) as u64;
        let resize_pct = if rsz.chance(0.5) { 50 } else { 75 };
        let wants_resize = rsz.chance(0.35);
        let prio = draw_tier(&mut pri);
        if departs.len() >= spec.max_live_vms {
            continue;
        }
        events.push(LifecycleEvent {
            at: SimTime::from_ns(t),
            op: VmOp::Arrive { uid, vcpus, prio },
        });
        let depart_at = t + lifetime;
        departs.push(std::cmp::Reverse(depart_at));
        if depart_at < spec.horizon_ns {
            events.push(LifecycleEvent {
                at: SimTime::from_ns(depart_at),
                op: VmOp::Depart { uid },
            });
        }
        if wants_resize && resize_at < depart_at.min(spec.horizon_ns) {
            events.push(LifecycleEvent {
                at: SimTime::from_ns(resize_at),
                op: VmOp::Resize {
                    uid,
                    quota_pct: resize_pct,
                },
            });
            // Restore the full allocation for the tail of the lifetime.
            let restore_at = resize_at + (depart_at - resize_at) / 2;
            if restore_at < depart_at.min(spec.horizon_ns) {
                events.push(LifecycleEvent {
                    at: SimTime::from_ns(restore_at),
                    op: VmOp::Resize {
                        uid,
                        quota_pct: 100,
                    },
                });
            }
        }
        uid += 1;
    }
    // Stable by timestamp: simultaneous events keep generation order
    // (arrive before its own resize/depart).
    events.sort_by_key(|e| e.at);
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FleetSpec {
        FleetSpec::small(4, 4, 4)
    }

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let a = generate(&spec(), 42);
        let b = generate(&spec(), 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(!a.is_empty(), "4 simulated seconds must produce churn");
        let c = generate(&spec(), 43);
        assert_ne!(a, c, "seed must reach the schedule");
    }

    #[test]
    fn every_depart_and_resize_follows_its_arrival() {
        let events = generate(&spec(), 7);
        let mut seen: Vec<u32> = Vec::new();
        for e in &events {
            match e.op {
                VmOp::Arrive { uid, vcpus, .. } => {
                    assert!(!seen.contains(&uid), "uid {uid} arrives once");
                    assert!(vcpus > 0);
                    seen.push(uid);
                }
                VmOp::Depart { uid } | VmOp::Resize { uid, .. } => {
                    assert!(seen.contains(&uid), "uid {uid} used before arrival");
                }
            }
        }
    }

    #[test]
    fn all_three_priority_tiers_appear() {
        let events = generate(&spec(), 11);
        let mut seen = [false; 3];
        for e in &events {
            if let VmOp::Arrive { prio, .. } = e.op {
                seen[prio.index()] = true;
            }
        }
        assert_eq!(seen, [true; 3], "every tier drawn over 4 seconds of churn");
    }

    #[test]
    fn validation_errors_name_the_field_and_value() {
        let mut zero_life = spec();
        zero_life.lifetime_mean_ns = 0;
        assert_eq!(
            zero_life.validate().unwrap_err(),
            "lifetime_mean_ns must be positive (got 0)"
        );

        let mut tiny_cap = spec();
        tiny_cap.size_mix = vec![(4, 1), (8, 1)];
        tiny_cap.overcommit_cap = 2;
        assert_eq!(
            tiny_cap.validate().unwrap_err(),
            "overcommit_cap 2 is below the smallest size_mix vcpus 4: \
             every arrival would be rejected"
        );
    }

    #[test]
    fn tier_slo_targets_validate_and_default() {
        let mut s = spec();
        s.tier_slo_p99_ns = [30 * MS, 20 * MS, 80 * MS];
        assert_eq!(
            s.validate().unwrap_err(),
            "slo_crit_p99_ns 30000000 exceeds slo_std_p99_ns 20000000: \
             critical tenants must run a tighter SLO than standard"
        );
        s.tier_slo_p99_ns = [5 * MS, 90 * MS, 80 * MS];
        assert_eq!(
            s.validate().unwrap_err(),
            "slo_std_p99_ns 90000000 exceeds slo_batch_p99_ns 80000000: \
             batch tenants must run the loosest SLO"
        );
        // A spec rendered before the tier keys existed still parses, with
        // targets derived from the fleet-wide SLO.
        let mut doc = Json::parse(&spec().to_json()).unwrap();
        if let Json::Obj(m) = &mut doc {
            m.remove("slo_crit_p99_ns");
            m.remove("slo_std_p99_ns");
            m.remove("slo_batch_p99_ns");
        }
        let back = FleetSpec::from_json(&doc.render()).unwrap();
        assert_eq!(back.tier_slo_p99_ns, [10 * MS, 20 * MS, 80 * MS]);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = spec();
        let back = FleetSpec::from_json(&s.to_json()).expect("parses back");
        assert_eq!(s, back);
        assert_eq!(s.to_json(), back.to_json());
    }

    #[test]
    fn from_json_rejects_malformed_specs() {
        assert!(FleetSpec::from_json("{}").is_err());
        assert!(FleetSpec::from_json("not json").is_err());
        // Structural validation: an empty size mix parses but is invalid.
        let mut s = spec();
        s.size_mix.clear();
        let mut doc = Json::parse(&spec().to_json()).unwrap();
        if let Json::Obj(m) = &mut doc {
            m.insert("size_mix".into(), Json::Arr(Vec::new()));
        }
        assert!(FleetSpec::from_json(&doc.render()).is_err());
    }
}
