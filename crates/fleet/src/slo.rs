//! Fleet-wide tenant SLO accounting.
//!
//! The cluster snapshots one [`TenantStats`] per VM at departure (or at
//! the horizon for still-live VMs); [`summarize`] folds those into an
//! [`SloSummary`]: fleet-merged latency percentiles (via
//! `metrics::Histogram::merge`), per-tenant p99 SLO violations, Jain's
//! fairness index over per-tenant throughput, and host-utilization
//! aggregates from the cluster's sampled timeseries.

use crate::lifecycle::FleetSpec;
use metrics::Histogram;
use simcore::time::MS;
use trace::PriorityClass;

/// Per-tenant accounting, snapshotted when the VM departs (or when the
/// run's horizon is reached for still-live VMs).
#[derive(Clone)]
pub struct TenantStats {
    /// Fleet-wide VM id.
    pub uid: u32,
    /// Tenant priority class (SLO reporting is sliced by tier).
    pub prio: PriorityClass,
    /// Nominal size in vCPUs.
    pub vcpus: usize,
    /// Time between placement and departure/horizon.
    pub lifetime_ns: u64,
    /// End-to-end request latency observed by the tenant's guest workload.
    pub e2e: Histogram,
    /// Requests completed over the tenant's lifetime.
    pub completed: u64,
    /// Requests dropped by the tenant's workload queue.
    pub dropped: u64,
}

impl TenantStats {
    /// Completed requests per simulated second — the throughput Jain's
    /// index is computed over.
    pub fn rate_per_sec(&self) -> f64 {
        if self.lifetime_ns == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e9 / self.lifetime_ns as f64
    }
}

/// Fleet-wide outcome of one cluster run.
#[derive(Clone)]
pub struct SloSummary {
    /// VMs that entered the placement pipeline.
    pub admitted: u64,
    /// VMs a policy successfully sited.
    pub placed: u64,
    /// VMs rejected (no host fit under its overcommit cap).
    pub rejected: u64,
    /// Requests completed fleet-wide.
    pub completed: u64,
    /// Requests dropped fleet-wide.
    pub dropped: u64,
    /// Fleet-merged median end-to-end latency, ms.
    pub p50_ms: f64,
    /// Fleet-merged tail end-to-end latency, ms.
    pub p99_ms: f64,
    /// The single worst tenant's p99, ms.
    pub worst_tenant_p99_ms: f64,
    /// Merged p99 per priority tier in [`PRIORITY_CLASSES`] order
    /// (critical, standard, batch); 0.0 for an unpopulated tier.
    pub tier_p99_ms: [f64; 3],
    /// Measured tenants per priority tier (same order).
    pub tier_tenants: [usize; 3],
    /// Tenants whose own p99 exceeded `spec.slo_p99_ns`.
    pub slo_violations: usize,
    /// Tenants whose own p99 exceeded their *tier's* target
    /// (`spec.tier_slo_p99_ns`), in [`PRIORITY_CLASSES`] order.
    pub tier_slo_violations: [usize; 3],
    /// Tenants with at least one completed request (the SLO denominator).
    pub measured_tenants: usize,
    /// Jain's fairness index over per-tenant completion rates
    /// (1.0 = perfectly fair, 1/n = one tenant gets everything).
    pub fairness: f64,
    /// Mean of the per-host mean utilizations (0..=1).
    pub mean_util: f64,
    /// Max single-window utilization across all hosts (0..=1).
    pub peak_util: f64,
    /// Trace events observed across fleet + per-host collectors.
    pub trace_events: u64,
    /// Invariant violations across fleet + per-host collectors.
    pub violations: u64,
    /// The first broken law's name, if any collector flagged one.
    pub first_law: Option<&'static str>,
    /// Admitted-but-unplaced VMs left in the fleet checker (should equal
    /// `rejected` on a clean run).
    pub unplaced: usize,
    /// VMs still placed on a failed host when the run ended (should be 0:
    /// the cluster force-departs unevacuable residents at the horizon).
    pub stranded: usize,
    /// Host crash/drain events the chaos plan actually injected.
    pub host_failures: u64,
    /// VMs live-migrated off a crashing or draining host.
    pub migrations: u64,
    /// Evacuations that exhausted their retry budget (victim departed).
    pub evacuations_failed: u64,
    /// Admissions shed by fleet degraded mode (Batch first, then
    /// Standard; Critical is never shed). Counted inside `rejected`.
    pub shed_admissions: u64,
    /// Per-tenant snapshots, in departure order.
    pub tenants: Vec<TenantStats>,
}

/// Folds per-tenant snapshots and host-utilization samples into the
/// fleet summary. `host_util` is one sampled-utilization series per host
/// (each sample 0..=1).
pub fn summarize(
    spec: &FleetSpec,
    tenants: Vec<TenantStats>,
    host_util: &[Vec<f64>],
    admitted: u64,
    placed: u64,
    rejected: u64,
) -> SloSummary {
    let mut fleet = Histogram::new();
    let mut tiers: [Histogram; 3] = [Histogram::new(), Histogram::new(), Histogram::new()];
    let mut tier_tenants = [0usize; 3];
    let mut completed = 0u64;
    let mut dropped = 0u64;
    let mut worst_p99 = 0u64;
    let mut slo_violations = 0usize;
    let mut tier_slo_violations = [0usize; 3];
    let mut measured = 0usize;
    for t in &tenants {
        fleet.merge(&t.e2e);
        tiers[t.prio.index()].merge(&t.e2e);
        completed += t.completed;
        dropped += t.dropped;
        if t.e2e.count() > 0 {
            measured += 1;
            tier_tenants[t.prio.index()] += 1;
            let p99 = t.e2e.p99();
            worst_p99 = worst_p99.max(p99);
            if p99 > spec.slo_p99_ns {
                slo_violations += 1;
            }
            if p99 > spec.tier_slo_p99_ns[t.prio.index()] {
                tier_slo_violations[t.prio.index()] += 1;
            }
        }
    }
    let mut tier_p99_ms = [0.0f64; 3];
    for (i, h) in tiers.iter().enumerate() {
        if h.count() > 0 {
            tier_p99_ms[i] = h.p99() as f64 / MS as f64;
        }
    }

    // Jain's index: (Σx)² / (n·Σx²) over tenants that lived long enough
    // to have a rate; empty fleets count as perfectly fair.
    let rates: Vec<f64> = tenants
        .iter()
        .map(TenantStats::rate_per_sec)
        .filter(|r| *r > 0.0)
        .collect();
    let fairness = if rates.is_empty() {
        1.0
    } else {
        let sum: f64 = rates.iter().sum();
        let sq: f64 = rates.iter().map(|r| r * r).sum();
        (sum * sum) / (rates.len() as f64 * sq)
    };

    let mut mean_util = 0.0;
    let mut peak_util = 0.0f64;
    if !host_util.is_empty() {
        let mut host_means = 0.0;
        for series in host_util {
            if !series.is_empty() {
                host_means += series.iter().sum::<f64>() / series.len() as f64;
            }
            for &u in series {
                peak_util = peak_util.max(u);
            }
        }
        mean_util = host_means / host_util.len() as f64;
    }

    SloSummary {
        admitted,
        placed,
        rejected,
        completed,
        dropped,
        p50_ms: fleet.p50() as f64 / MS as f64,
        p99_ms: fleet.p99() as f64 / MS as f64,
        worst_tenant_p99_ms: worst_p99 as f64 / MS as f64,
        tier_p99_ms,
        tier_tenants,
        slo_violations,
        tier_slo_violations,
        measured_tenants: measured,
        fairness,
        mean_util,
        peak_util,
        trace_events: 0,
        violations: 0,
        first_law: None,
        unplaced: 0,
        stranded: 0,
        host_failures: 0,
        migrations: 0,
        evacuations_failed: 0,
        shed_admissions: 0,
        tenants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::PRIORITY_CLASSES;

    fn tenant(uid: u32, latencies_ns: &[u64], lifetime_ns: u64) -> TenantStats {
        let mut e2e = Histogram::new();
        for &l in latencies_ns {
            e2e.record(l);
        }
        TenantStats {
            uid,
            prio: PRIORITY_CLASSES[uid as usize % 3],
            vcpus: 1,
            lifetime_ns,
            e2e,
            completed: latencies_ns.len() as u64,
            dropped: 0,
        }
    }

    #[test]
    fn summary_merges_tenants_and_counts_violations() {
        let spec = FleetSpec::small(2, 2, 1); // slo_p99_ns = 20ms
        let fast = tenant(0, &[MS, 2 * MS, 3 * MS], 1_000 * MS);
        let slow = tenant(1, &[40 * MS, 50 * MS], 1_000 * MS);
        let s = summarize(
            &spec,
            vec![fast, slow],
            &[vec![0.5, 0.7], vec![0.9]],
            3,
            2,
            1,
        );
        assert_eq!(s.completed, 5);
        assert_eq!(s.slo_violations, 1, "only the slow tenant busts 20ms");
        assert_eq!(s.measured_tenants, 2);
        assert!(s.worst_tenant_p99_ms >= 40.0);
        assert!(s.p99_ms >= s.p50_ms);
        assert!(s.fairness > 0.5 && s.fairness <= 1.0);
        assert!((s.mean_util - 0.75).abs() < 1e-9);
        assert!((s.peak_util - 0.9).abs() < 1e-9);
    }

    #[test]
    fn tier_targets_count_violations_per_class() {
        let spec = FleetSpec::small(2, 2, 1); // tiers: 10ms / 20ms / 80ms
        let crit = tenant(0, &[15 * MS], 1_000 * MS); // busts 10ms
        let std_ = tenant(1, &[15 * MS], 1_000 * MS); // within 20ms
        let batch = tenant(2, &[60 * MS], 1_000 * MS); // within 80ms
        let s = summarize(&spec, vec![crit, std_, batch], &[], 3, 3, 0);
        assert_eq!(s.tier_slo_violations, [1, 0, 0]);
        assert_eq!(
            s.slo_violations, 1,
            "fleet-wide 20ms SLO still counts the batch tenant"
        );
    }

    #[test]
    fn per_tier_p99_slices_by_priority_class() {
        let spec = FleetSpec::small(2, 2, 1);
        // uid % 3 picks the tier: 0 → critical, 1 → standard, 2 → batch.
        let crit = tenant(0, &[MS, 2 * MS], 1_000 * MS);
        let std_ = tenant(1, &[30 * MS], 1_000 * MS);
        let s = summarize(&spec, vec![crit, std_], &[], 2, 2, 0);
        assert_eq!(s.tier_tenants, [1, 1, 0]);
        assert!(s.tier_p99_ms[0] < s.tier_p99_ms[1], "{:?}", s.tier_p99_ms);
        assert_eq!(s.tier_p99_ms[2], 0.0, "empty tier reports 0");
    }

    #[test]
    fn fairness_is_one_when_rates_match_and_low_when_skewed() {
        let spec = FleetSpec::small(1, 2, 1);
        let even = vec![
            tenant(0, &[MS; 10], 1_000 * MS),
            tenant(1, &[MS; 10], 1_000 * MS),
        ];
        let s = summarize(&spec, even, &[], 2, 2, 0);
        assert!((s.fairness - 1.0).abs() < 1e-9);

        let mut hog = tenant(0, &[MS; 100], 1_000 * MS);
        hog.completed = 100;
        let starved = tenant(1, &[MS], 1_000 * MS);
        let s = summarize(&spec, vec![hog, starved], &[], 2, 2, 0);
        assert!(
            s.fairness < 0.6,
            "skewed rates must show up: {}",
            s.fairness
        );
    }

    #[test]
    fn empty_fleet_is_well_defined() {
        let spec = FleetSpec::small(1, 1, 1);
        let s = summarize(&spec, Vec::new(), &[], 0, 0, 0);
        assert_eq!(s.completed, 0);
        assert_eq!(s.slo_violations, 0);
        assert!((s.fairness - 1.0).abs() < 1e-9);
        assert_eq!(s.mean_util, 0.0);
    }
}
