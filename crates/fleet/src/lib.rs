//! Deterministic multi-host cluster simulation.
//!
//! The paper evaluates vSched on a single host, but its premise — the
//! guest must *probe* its vCPU abstraction because the cloud keeps
//! changing it — bites hardest under fleet dynamics: VMs arriving,
//! departing, and resizing while placement policies overcommit hosts.
//! This crate layers that on the existing stack:
//!
//! * [`cluster`] — a [`Cluster`] owning N [`hostsim::Machine`]s stepped in
//!   lockstep on the virtual clock ([`hostsim::Machine::step_until`]).
//! * [`lifecycle`] — a seed-driven open-loop arrival/departure/resize
//!   process (Poisson-style interarrivals, bounded lognormal lifetimes,
//!   heavy-tailed size mix) plus a [`FleetSpec`] config that round-trips
//!   through `simcore::json`.
//! * [`placement`] — pluggable policies behind [`PlacementPolicy`]:
//!   first-fit, worst-fit (load-balanced on nominal counts), and a
//!   probe-aware policy packing by *probed* vcap capacity. Every decision
//!   emits `trace` events so the invariant checker can assert no host
//!   exceeds its overcommit cap and every admitted VM is placed at most
//!   once.
//! * [`slo`] — fleet-wide tenant accounting on `metrics`: per-tenant
//!   p50/p99 latency from `workloads::latency` guests, host-utilization
//!   sampling, and a fairness/violation summary.
//!
//! Everything is deterministic in `(FleetSpec, seed)`: the same pair
//! replays the same churn schedule, placements, and latency histograms
//! byte-for-byte, which is what lets the experiment suite shard fleet
//! cells across workers.

pub mod cluster;
pub mod lifecycle;
pub mod placement;
pub mod slo;

pub use cluster::{Cluster, GuestMode};
pub use lifecycle::{generate, FleetSpec, LifecycleEvent, VmOp};
pub use placement::{
    policy_by_name, FirstFit, HostView, PlacementPolicy, PlacementReq, ProbeAware, WorstFit,
    POLICIES,
};
pub use slo::{SloSummary, TenantStats};
