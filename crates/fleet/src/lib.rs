//! Deterministic multi-host cluster simulation.
//!
//! The paper evaluates vSched on a single host, but its premise — the
//! guest must *probe* its vCPU abstraction because the cloud keeps
//! changing it — bites hardest under fleet dynamics: VMs arriving,
//! departing, and resizing while placement policies overcommit hosts.
//! This crate layers that on the existing stack:
//!
//! * [`cluster`] — a [`Cluster`] owning N [`hostsim::Machine`]s stepped in
//!   lockstep on the virtual clock ([`hostsim::Machine::step_until`]),
//!   sharded across a scoped worker pool with a join barrier at every
//!   epoch and placement event ([`threads`] resolves the worker count;
//!   output is byte-identical at any count).
//! * [`lifecycle`] — a seed-driven open-loop arrival/departure/resize
//!   process (Poisson-style interarrivals, bounded lognormal lifetimes,
//!   heavy-tailed size mix) plus a [`FleetSpec`] config that round-trips
//!   through `simcore::json`.
//! * [`placement`] — pluggable policies behind [`PlacementPolicy`]:
//!   first-fit, worst-fit (load-balanced on nominal counts), and a
//!   probe-aware policy packing by *probed* vcap capacity. Every decision
//!   emits `trace` events so the invariant checker can assert no host
//!   exceeds its overcommit cap and every admitted VM is placed at most
//!   once.
//! * [`slo`] — fleet-wide tenant accounting on `metrics`: per-tenant
//!   p50/p99 latency from `workloads::latency` guests, host-utilization
//!   sampling, and a fairness/violation summary.
//!
//! Everything is deterministic in `(FleetSpec, seed)`: the same pair
//! replays the same churn schedule, placements, and latency histograms
//! byte-for-byte, which is what lets the experiment suite shard fleet
//! cells across workers.
//!
//! On top of the stochastic churn sits trace-driven replay:
//!
//! * [`trace_format`] — the compact versioned [`FleetTrace`] JSONL format
//!   (line-precise validation, exact-u64 round-trip).
//! * [`generate`](mod@generate) — SAP-shaped workload [`Profile`]s:
//!   diurnal sinusoid arrivals × Pareto/lognormal lifetime mix ×
//!   priority tiers × bursty resize storms, all a pure function of
//!   `(profile, seed)`.
//! * [`replay`] — compiles a trace into a [`FleetSpec`] whose churn is
//!   the trace verbatim, so every policy × guest mode runs the same day.

pub mod chaos;
pub mod cluster;
pub mod generate;
pub mod lifecycle;
pub mod placement;
mod pstep;
pub mod replay;
pub mod slo;
pub mod threads;
pub mod trace_format;

pub use chaos::{FleetChaosPlan, FleetChaosSpec, HostFault, HostOp, MigrationMode, HOST_OPS};
pub use cluster::{Cluster, GuestMode};
pub use generate::{day_seed, profile_by_name, synthesize, Profile, PROFILES};
pub use lifecycle::{generate, ChurnModel, FleetSpec, LifecycleEvent, VmOp};
pub use placement::{
    policy_by_name, CacheAware, FirstFit, HostView, PlacementPolicy, PlacementReq, ProbeAware,
    WorstFit, POLICIES,
};
pub use replay::spec_for_trace;
pub use slo::{SloSummary, TenantStats};
pub use threads::{default_fleet_threads, parse_fleet_threads, set_default_fleet_threads};
pub use trace_format::{FleetTrace, TraceError, FORMAT_TAG, FORMAT_VERSION};
