//! Worker-count policy for parallel cluster stepping.
//!
//! [`Cluster::run`](crate::Cluster::run) shards host stepping across a
//! scoped worker pool; how many workers it uses is resolved here. The
//! default is the machine's `available_parallelism`, overridable either
//! process-wide (the `suite` binary's `--fleet-threads` flag lands in
//! [`set_default_fleet_threads`]) or per-cluster
//! ([`Cluster::with_threads`](crate::Cluster::with_threads)). Worker
//! count only ever changes wall clock, never output — the byte-identity
//! gates in `tests/parallel_step.rs` and `ci.sh` enforce exactly that —
//! so a process-wide knob cannot compromise determinism.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count; 0 means auto-size from
/// `available_parallelism`.
static DEFAULT_FLEET_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides (`Some(n)`) or restores (`None`) the process-wide default
/// worker count that [`Cluster::new`](crate::Cluster::new) picks up.
pub fn set_default_fleet_threads(n: Option<NonZeroUsize>) {
    DEFAULT_FLEET_THREADS.store(n.map_or(0, NonZeroUsize::get), Ordering::Relaxed);
}

/// The worker count a cluster built without an explicit override uses:
/// the process-wide setting if one is in effect, otherwise
/// `available_parallelism` (1 when that is unknowable).
pub fn default_fleet_threads() -> NonZeroUsize {
    match NonZeroUsize::new(DEFAULT_FLEET_THREADS.load(Ordering::Relaxed)) {
        Some(n) => n,
        None => std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
    }
}

/// Parses a `--fleet-threads` value. Errors name the field and the value
/// they carried, in the same style as [`FleetSpec::validate`]
/// (`"hosts must be positive (got 0)"`), so a bad flag is fixable from
/// the message alone.
///
/// [`FleetSpec::validate`]: crate::FleetSpec::validate
pub fn parse_fleet_threads(s: &str) -> Result<NonZeroUsize, String> {
    let n: usize = s
        .parse()
        .map_err(|_| format!("fleet_threads must be a positive integer (got {s:?})"))?;
    NonZeroUsize::new(n).ok_or_else(|| "fleet_threads must be positive (got 0)".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_positive_and_names_the_field_on_zero() {
        assert_eq!(parse_fleet_threads("3").unwrap().get(), 3);
        assert_eq!(
            parse_fleet_threads("0").unwrap_err(),
            "fleet_threads must be positive (got 0)"
        );
        assert_eq!(
            parse_fleet_threads("lots").unwrap_err(),
            "fleet_threads must be a positive integer (got \"lots\")"
        );
    }

    #[test]
    fn default_is_overridable_and_restorable() {
        // Relaxed global state: restore whatever we found so parallel test
        // binaries in this process see no residue.
        let auto = default_fleet_threads();
        set_default_fleet_threads(Some(NonZeroUsize::new(7).unwrap()));
        assert_eq!(default_fleet_threads().get(), 7);
        set_default_fleet_threads(None);
        assert_eq!(default_fleet_threads(), auto);
    }
}
