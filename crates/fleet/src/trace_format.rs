//! Compact, versioned fleet-trace format.
//!
//! A trace is a replayable day of VM lifecycle churn: timestamped
//! arrive/depart/resize records with tenant priority class and requested
//! vCPU shape. The on-disk shape is JSON-lines so validation errors can
//! point at the offending line:
//!
//! ```text
//! {"day_seed":7,"format":"vsched-fleet-trace","horizon_ns":...,"profile":"sap-diurnal","records":2,"version":1}
//! {"at":12000000,"op":"arrive","prio":"standard","uid":0,"vcpus":2}
//! {"at":52000000,"op":"depart","uid":0}
//! ```
//!
//! Every value is an integer or a short enum string, rendered through
//! [`simcore::json`] (sorted keys, exact u64), so `encode` is a pure
//! function of the trace and `decode(encode(t)) == t` exactly.

use crate::lifecycle::{LifecycleEvent, VmOp};
use simcore::json::Json;
use simcore::SimTime;
use std::collections::BTreeSet;
use std::fmt;
use trace::PriorityClass;

/// Format tag in the header line; anything else is rejected.
pub const FORMAT_TAG: &str = "vsched-fleet-trace";
/// Current (only) format version.
pub const FORMAT_VERSION: u64 = 1;

/// A decoded fleet trace: provenance (which generator profile and day
/// seed produced it) plus the event schedule itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetTrace {
    /// Generator profile name (or a free-form label for hand-written traces).
    pub profile: String,
    /// Seed the generator ran with — provenance only; replay never re-draws.
    pub day_seed: u64,
    /// Simulated duration the trace covers; every record's `at` is below it.
    pub horizon_ns: u64,
    /// Time-sorted lifecycle schedule.
    pub events: Vec<LifecycleEvent>,
}

/// A line-precise trace decode/validation error. Line 1 is the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number the error was detected on (0 = whole-file).
    pub line: usize,
    /// What was wrong.
    pub msg: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for TraceError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, TraceError> {
    Err(TraceError {
        line,
        msg: msg.into(),
    })
}

fn record_json(e: &LifecycleEvent) -> Json {
    let at = Json::Uint(e.at.ns());
    match e.op {
        VmOp::Arrive { uid, vcpus, prio } => Json::obj([
            ("at", at),
            ("op", Json::Str("arrive".into())),
            ("prio", Json::Str(prio.name().into())),
            ("uid", Json::Uint(uid as u64)),
            ("vcpus", Json::Uint(vcpus as u64)),
        ]),
        VmOp::Depart { uid } => Json::obj([
            ("at", at),
            ("op", Json::Str("depart".into())),
            ("uid", Json::Uint(uid as u64)),
        ]),
        VmOp::Resize { uid, quota_pct } => Json::obj([
            ("at", at),
            ("op", Json::Str("resize".into())),
            ("quota_pct", Json::Uint(quota_pct as u64)),
            ("uid", Json::Uint(uid as u64)),
        ]),
    }
}

fn parse_record(doc: &Json, line: usize) -> Result<LifecycleEvent, TraceError> {
    let u = |key: &str| -> Result<u64, TraceError> {
        match doc.get(key).and_then(|v| v.as_u64()) {
            Some(n) => Ok(n),
            None => err(line, format!("record field {key:?} missing or not a u64")),
        }
    };
    let at = SimTime::from_ns(u("at")?);
    let op = match doc.get("op").and_then(|v| v.as_str()) {
        Some("arrive") => {
            let prio_name = match doc.get("prio").and_then(|v| v.as_str()) {
                Some(s) => s,
                None => return err(line, "arrive record missing string field \"prio\""),
            };
            let prio = match PriorityClass::from_name(prio_name) {
                Some(p) => p,
                None => return err(line, format!("unknown priority class {prio_name:?}")),
            };
            VmOp::Arrive {
                uid: u("uid")? as u32,
                vcpus: u("vcpus")? as usize,
                prio,
            }
        }
        Some("depart") => VmOp::Depart {
            uid: u("uid")? as u32,
        },
        Some("resize") => VmOp::Resize {
            uid: u("uid")? as u32,
            quota_pct: u("quota_pct")? as u8,
        },
        Some(other) => return err(line, format!("unknown op {other:?}")),
        None => return err(line, "record missing string field \"op\""),
    };
    Ok(LifecycleEvent { at, op })
}

impl FleetTrace {
    /// Renders the trace as JSON-lines: header, then one record per line.
    /// Deterministic byte-for-byte (sorted keys, exact integers).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &Json::obj([
                ("day_seed", Json::Uint(self.day_seed)),
                ("format", Json::Str(FORMAT_TAG.into())),
                ("horizon_ns", Json::Uint(self.horizon_ns)),
                ("profile", Json::Str(self.profile.clone())),
                ("records", Json::Uint(self.events.len() as u64)),
                ("version", Json::Uint(FORMAT_VERSION)),
            ])
            .render(),
        );
        out.push('\n');
        for e in &self.events {
            out.push_str(&record_json(e).render());
            out.push('\n');
        }
        out
    }

    /// Parses and validates a trace written by [`FleetTrace::encode`].
    /// Errors carry the 1-based line they were detected on.
    pub fn decode(text: &str) -> Result<FleetTrace, TraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header_line) = match lines.next() {
            Some(pair) => pair,
            None => return err(0, "empty trace: missing header line"),
        };
        let header = Json::parse(header_line).map_err(|e| TraceError {
            line: 1,
            msg: format!("header is not valid JSON: {e}"),
        })?;
        match header.get("format").and_then(|v| v.as_str()) {
            Some(FORMAT_TAG) => {}
            Some(other) => return err(1, format!("format {other:?} is not {FORMAT_TAG:?}")),
            None => return err(1, "header missing string field \"format\""),
        }
        match header.get("version").and_then(|v| v.as_u64()) {
            Some(FORMAT_VERSION) => {}
            Some(v) => {
                return err(
                    1,
                    format!("unsupported version {v} (want {FORMAT_VERSION})"),
                )
            }
            None => return err(1, "header missing u64 field \"version\""),
        }
        let hu = |key: &str| -> Result<u64, TraceError> {
            match header.get(key).and_then(|v| v.as_u64()) {
                Some(n) => Ok(n),
                None => err(1, format!("header missing u64 field {key:?}")),
            }
        };
        let profile = match header.get("profile").and_then(|v| v.as_str()) {
            Some(s) => s.to_string(),
            None => return err(1, "header missing string field \"profile\""),
        };
        let declared = hu("records")? as usize;
        let mut events = Vec::with_capacity(declared);
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                return err(lineno, "blank line inside trace body");
            }
            let doc = Json::parse(line).map_err(|e| TraceError {
                line: lineno,
                msg: format!("record is not valid JSON: {e}"),
            })?;
            events.push(parse_record(&doc, lineno)?);
        }
        if events.len() != declared {
            return err(
                0,
                format!(
                    "header declares {declared} records but body has {}",
                    events.len()
                ),
            );
        }
        let trace = FleetTrace {
            profile,
            day_seed: hu("day_seed")?,
            horizon_ns: hu("horizon_ns")?,
            events,
        };
        trace.validate()?;
        Ok(trace)
    }

    /// Semantic validation: sorted timestamps inside the horizon, unique
    /// arrivals, and depart/resize only against live VMs. Errors name the
    /// offending record's line (header is line 1, so record `i` is line
    /// `i + 2`).
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.horizon_ns == 0 {
            return err(1, "horizon_ns must be positive (got 0)");
        }
        let mut last_at = 0u64;
        let mut live: BTreeSet<u32> = BTreeSet::new();
        let mut ever: BTreeSet<u32> = BTreeSet::new();
        for (i, e) in self.events.iter().enumerate() {
            let lineno = i + 2;
            let at = e.at.ns();
            if at < last_at {
                return err(
                    lineno,
                    format!("timestamp {at} goes backwards (previous record at {last_at})"),
                );
            }
            if at >= self.horizon_ns {
                return err(
                    lineno,
                    format!(
                        "timestamp {at} is at or past horizon_ns {}",
                        self.horizon_ns
                    ),
                );
            }
            last_at = at;
            match e.op {
                VmOp::Arrive { uid, vcpus, .. } => {
                    if vcpus == 0 {
                        return err(lineno, format!("vm {uid} arrives with 0 vcpus"));
                    }
                    if !ever.insert(uid) {
                        return err(lineno, format!("vm {uid} arrives twice"));
                    }
                    live.insert(uid);
                }
                VmOp::Depart { uid } => {
                    if !live.remove(&uid) {
                        return err(lineno, format!("vm {uid} departs while not live"));
                    }
                }
                VmOp::Resize { uid, quota_pct } => {
                    if !live.contains(&uid) {
                        return err(lineno, format!("vm {uid} resized while not live"));
                    }
                    if quota_pct == 0 || quota_pct > 100 {
                        return err(
                            lineno,
                            format!("vm {uid} resize quota_pct {quota_pct} outside 1..=100"),
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// The trace as a single JSON value, for embedding inside a
    /// [`crate::FleetSpec`]'s `churn` field.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("day_seed", Json::Uint(self.day_seed)),
            ("format", Json::Str(FORMAT_TAG.into())),
            (
                "events",
                Json::Arr(self.events.iter().map(record_json).collect()),
            ),
            ("horizon_ns", Json::Uint(self.horizon_ns)),
            ("profile", Json::Str(self.profile.clone())),
            ("version", Json::Uint(FORMAT_VERSION)),
        ])
    }

    /// Inverse of [`FleetTrace::to_json_value`]. Errors use record index
    /// (not line) positions since there is no line structure here.
    pub fn from_json_value(doc: &Json) -> Result<FleetTrace, TraceError> {
        match doc.get("format").and_then(|v| v.as_str()) {
            Some(FORMAT_TAG) => {}
            _ => return err(0, format!("embedded trace missing format {FORMAT_TAG:?}")),
        }
        match doc.get("version").and_then(|v| v.as_u64()) {
            Some(FORMAT_VERSION) => {}
            v => return err(0, format!("embedded trace version {v:?} unsupported")),
        }
        let u = |key: &str| -> Result<u64, TraceError> {
            match doc.get(key).and_then(|v| v.as_u64()) {
                Some(n) => Ok(n),
                None => err(0, format!("embedded trace missing u64 field {key:?}")),
            }
        };
        let profile = match doc.get("profile").and_then(|v| v.as_str()) {
            Some(s) => s.to_string(),
            None => return err(0, "embedded trace missing string field \"profile\""),
        };
        let records = match doc.get("events").and_then(|v| v.as_arr()) {
            Some(arr) => arr,
            None => return err(0, "embedded trace missing array field \"events\""),
        };
        let mut events = Vec::with_capacity(records.len());
        for (i, rec) in records.iter().enumerate() {
            // Reuse the line-oriented parser; report positions as if the
            // value were encoded (record i on line i + 2).
            events.push(parse_record(rec, i + 2)?);
        }
        let trace = FleetTrace {
            profile,
            day_seed: u("day_seed")?,
            horizon_ns: u("horizon_ns")?,
            events,
        };
        trace.validate()?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetTrace {
        FleetTrace {
            profile: "hand-written".into(),
            day_seed: 7,
            horizon_ns: 1_000_000_000,
            events: vec![
                LifecycleEvent {
                    at: SimTime::from_ns(10_000_000),
                    op: VmOp::Arrive {
                        uid: 0,
                        vcpus: 2,
                        prio: PriorityClass::Critical,
                    },
                },
                LifecycleEvent {
                    at: SimTime::from_ns(20_000_000),
                    op: VmOp::Resize {
                        uid: 0,
                        quota_pct: 50,
                    },
                },
                LifecycleEvent {
                    at: SimTime::from_ns(900_000_000),
                    op: VmOp::Depart { uid: 0 },
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let t = sample();
        let text = t.encode();
        let back = FleetTrace::decode(&text).expect("decodes");
        assert_eq!(t, back);
        assert_eq!(text, back.encode(), "re-encode is byte-identical");
    }

    #[test]
    fn json_value_embedding_round_trips() {
        let t = sample();
        let back = FleetTrace::from_json_value(&t.to_json_value()).expect("embeds");
        assert_eq!(t, back);
    }

    #[test]
    fn decode_errors_carry_line_numbers() {
        let t = sample();
        let text = t.encode();

        // Corrupt record 2 (line 3): flip "depart" to an unknown op.
        let corrupted = text.replace("\"depart\"", "\"explode\"");
        let e = FleetTrace::decode(&corrupted).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.msg.contains("unknown op"), "{e}");

        // Drop the last record: header count no longer matches.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        let truncated = lines.join("\n");
        let e = FleetTrace::decode(&truncated).unwrap_err();
        assert!(e.msg.contains("declares 3 records"), "{e}");

        // Bad header format tag.
        let bad_tag = text.replace(FORMAT_TAG, "other-format");
        let e = FleetTrace::decode(&bad_tag).unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn validate_rejects_semantic_violations() {
        let mut t = sample();
        t.events[2].op = VmOp::Depart { uid: 9 };
        let e = t.validate().unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.msg.contains("vm 9 departs while not live"), "{e}");

        let mut t = sample();
        t.events[1].at = SimTime::from_ns(5_000_000); // before the arrival
        assert!(t.validate().unwrap_err().msg.contains("goes backwards"));

        let mut t = sample();
        t.horizon_ns = 100_000_000; // depart lands past the horizon
        assert!(t.validate().unwrap_err().msg.contains("past horizon_ns"));
    }
}
