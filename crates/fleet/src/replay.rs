//! Trace replay: compiling a [`FleetTrace`] into a runnable [`FleetSpec`].
//!
//! The point of a trace is that the *day is fixed*: every placement
//! policy and guest mode must see the identical arrival/departure/resize
//! schedule. [`spec_for_trace`] builds a spec whose churn model is the
//! trace verbatim — `lifecycle::generate` then returns the trace's
//! events untouched, so the run seed reaches workload phases and host
//! streams but never the schedule.

use crate::lifecycle::{ChurnModel, FleetSpec, VmOp};
use crate::trace_format::FleetTrace;

/// Builds a spec that replays `trace` on a `hosts × threads` cluster.
///
/// Cluster shape (hosts, threads, overcommit cap) stays a caller choice —
/// the trace records *demand*, not the fleet it lands on. Rate-style
/// fields (`arrival_mean_ns`, …) keep their [`FleetSpec::small`] values;
/// they are dead knobs under trace churn but keep the spec's JSON shape
/// uniform. `max_live_vms` is lifted to the trace's own peak so the
/// admission bound never second-guesses a schedule that already chose
/// its population.
pub fn spec_for_trace(trace: &FleetTrace, hosts: usize, threads: usize) -> FleetSpec {
    let mut spec = FleetSpec::small(hosts, threads, 1);
    spec.horizon_ns = trace.horizon_ns;
    let mut live = 0usize;
    let mut peak = 0usize;
    for e in &trace.events {
        match e.op {
            VmOp::Arrive { .. } => {
                live += 1;
                peak = peak.max(live);
            }
            VmOp::Depart { .. } => live = live.saturating_sub(1),
            VmOp::Resize { .. } => {}
        }
    }
    spec.max_live_vms = peak.max(1);
    spec.churn = ChurnModel::Trace(trace.clone());
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, GuestMode};
    use crate::generate::{day_seed, profile_by_name, synthesize};
    use crate::lifecycle;
    use crate::placement::policy_by_name;
    use simcore::time::MS;

    #[test]
    fn replayed_schedule_is_the_trace_verbatim_for_any_seed() {
        let p = profile_by_name("sap-diurnal").unwrap();
        let trace = synthesize(p, 2_000 * MS, day_seed(p.name));
        let spec = spec_for_trace(&trace, 2, 2);
        spec.validate().expect("replay spec validates");
        let a = lifecycle::generate(&spec, 1);
        let b = lifecycle::generate(&spec, 999);
        assert_eq!(a, trace.events, "seed must not reach a replayed schedule");
        assert_eq!(a, b);
    }

    #[test]
    fn replay_spec_round_trips_through_json_with_embedded_trace() {
        let p = profile_by_name("sap-resize-storm").unwrap();
        let trace = synthesize(p, 1_000 * MS, day_seed(p.name));
        let spec = spec_for_trace(&trace, 2, 2);
        let back = FleetSpec::from_json(&spec.to_json()).expect("parses back");
        assert_eq!(spec, back);
        assert_eq!(spec.to_json(), back.to_json());
    }

    #[test]
    fn cluster_replays_a_trace_end_to_end_without_violations() {
        let p = profile_by_name("sap-diurnal").unwrap();
        let trace = synthesize(p, 1_000 * MS, day_seed(p.name));
        let spec = spec_for_trace(&trace, 2, 2);
        let mut c = Cluster::new(
            spec,
            GuestMode::Cfs,
            policy_by_name("first-fit").unwrap(),
            7,
        );
        let s = c.run();
        assert!(s.admitted > 0);
        assert_eq!(s.admitted, s.placed + s.rejected);
        assert_eq!(s.violations, 0, "first law broken: {:?}", s.first_law);
    }
}
