//! SAP-shaped synthetic workload generators.
//!
//! [`synthesize`] compiles a named [`Profile`] plus a seed into a
//! [`FleetTrace`]: a diurnal sinusoid modulates arrival intensity
//! (nonhomogeneous Poisson by thinning), lifetimes come from a
//! heavy-tail Pareto/lognormal mix, each tenant draws a priority tier,
//! and bursty "resize storms" sweep the live population with bandwidth
//! caps. The result is a pure function of `(profile, seed)` — the same
//! bytes on every run and under every `--jobs` setting — so a replayed
//! day is pinned by its trace alone.

use crate::lifecycle::{LifecycleEvent, VmOp, MIN_LIFETIME_NS};
use crate::trace_format::FleetTrace;
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::collections::BinaryHeap;
use trace::{PriorityClass, PRIORITY_CLASSES};

/// A named workload shape. All fields are fixed constants — profiles are
/// code, not config — so a profile name plus a seed fully pins a trace.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Stable identifier (CLI `--profile`, suite cell labels).
    pub name: &'static str,
    /// One-line description for `fleettrace profiles`.
    pub desc: &'static str,
    /// Mean interarrival at baseline intensity (the sinusoid midline).
    pub base_arrival_mean_ns: u64,
    /// Relative swing of the diurnal sinusoid, 0.0..1.0.
    pub diurnal_amplitude: f64,
    /// Period of one simulated "day" (compressed so quick runs see a
    /// full cycle).
    pub day_ns: u64,
    /// Fraction of lifetimes drawn from the Pareto tail (rest lognormal).
    pub pareto_frac: f64,
    /// Pareto shape; lower is heavier-tailed.
    pub pareto_alpha: f64,
    /// Pareto scale (minimum of the tail distribution).
    pub pareto_scale_ns: u64,
    /// Lognormal body mean lifetime.
    pub lognorm_mean_ns: u64,
    /// Lognormal sigma (log-space spread).
    pub lognorm_sigma: f64,
    /// Hard lifetime cap.
    pub lifetime_max_ns: u64,
    /// Priority-tier weights in [`PRIORITY_CLASSES`] order
    /// (critical, standard, batch).
    pub tier_weights: [u64; 3],
    /// `(vcpus, weight)` size mix.
    pub size_mix: &'static [(usize, u64)],
    /// Mean gap between resize-storm onsets.
    pub storm_gap_mean_ns: u64,
    /// Storm duration.
    pub storm_len_ns: u64,
    /// Per-live-VM probability a storm caps it.
    pub storm_hit: f64,
    /// Admission bound on the live population.
    pub max_live_vms: usize,
    /// Start of the maintenance-drain window (0 with `drain_len_ns == 0`
    /// means no drain). Arrivals are frozen inside the window, everything
    /// live at its start is evicted (staggered through the first half),
    /// and each evictee re-arrives after the window with its interrupted
    /// remainder — the mass-departure-then-refill shape a host drain
    /// imposes on a fleet.
    pub drain_at_ns: u64,
    /// Length of the maintenance-drain window.
    pub drain_len_ns: u64,
    /// Start of the flash-crowd window (meaningless with
    /// `surge_len_ns == 0`). A burst of *extra* short-lived tenants
    /// arrives on top of the baseline stream — the step-function demand
    /// spike of a flash crowd — bypassing the steady-state admission
    /// bound, which is precisely what makes the surge stress placement.
    pub surge_at_ns: u64,
    /// Length of the flash-crowd window.
    pub surge_len_ns: u64,
    /// Mean interarrival of the surge's extra tenants inside the window.
    pub surge_arrival_mean_ns: u64,
}

/// The built-in profiles, in CLI listing order.
pub const PROFILES: [Profile; 4] = [
    Profile {
        name: "sap-diurnal",
        desc: "strong day/night arrival swing, heavy Pareto lifetime tail, rare storms",
        base_arrival_mean_ns: 120 * MS,
        diurnal_amplitude: 0.8,
        day_ns: 4_000 * MS,
        pareto_frac: 0.30,
        pareto_alpha: 1.5,
        pareto_scale_ns: 400 * MS,
        lognorm_mean_ns: 1_200 * MS,
        lognorm_sigma: 0.8,
        lifetime_max_ns: 5_000 * MS,
        tier_weights: [2, 5, 3],
        size_mix: &[(1, 5), (2, 3), (4, 2)],
        storm_gap_mean_ns: 2_000 * MS,
        storm_len_ns: 200 * MS,
        storm_hit: 0.25,
        max_live_vms: 16,
        drain_at_ns: 0,
        drain_len_ns: 0,
        surge_at_ns: 0,
        surge_len_ns: 0,
        surge_arrival_mean_ns: 0,
    },
    Profile {
        name: "sap-resize-storm",
        desc: "flat arrivals, lognormal-dominated lifetimes, frequent bursty resize storms",
        base_arrival_mean_ns: 150 * MS,
        diurnal_amplitude: 0.25,
        day_ns: 4_000 * MS,
        pareto_frac: 0.10,
        pareto_alpha: 2.0,
        pareto_scale_ns: 500 * MS,
        lognorm_mean_ns: 1_500 * MS,
        lognorm_sigma: 0.6,
        lifetime_max_ns: 5_000 * MS,
        tier_weights: [3, 4, 3],
        size_mix: &[(1, 4), (2, 4), (4, 2)],
        storm_gap_mean_ns: 800 * MS,
        storm_len_ns: 300 * MS,
        storm_hit: 0.7,
        max_live_vms: 16,
        drain_at_ns: 0,
        drain_len_ns: 0,
        surge_at_ns: 0,
        surge_len_ns: 0,
        surge_arrival_mean_ns: 0,
    },
    Profile {
        name: "sap-maintenance-drain",
        desc: "mid-day maintenance freeze: mass departures, then staggered re-arrivals",
        base_arrival_mean_ns: 130 * MS,
        diurnal_amplitude: 0.3,
        day_ns: 4_000 * MS,
        pareto_frac: 0.15,
        pareto_alpha: 1.8,
        pareto_scale_ns: 500 * MS,
        lognorm_mean_ns: 1_600 * MS,
        lognorm_sigma: 0.6,
        lifetime_max_ns: 5_000 * MS,
        tier_weights: [2, 5, 3],
        size_mix: &[(1, 4), (2, 4), (4, 2)],
        storm_gap_mean_ns: 1_200 * MS,
        storm_len_ns: 250 * MS,
        storm_hit: 0.4,
        max_live_vms: 16,
        drain_at_ns: 1_500 * MS,
        drain_len_ns: 600 * MS,
        surge_at_ns: 0,
        surge_len_ns: 0,
        surge_arrival_mean_ns: 0,
    },
    Profile {
        name: "sap-flash-crowd",
        desc: "mid-day step-function surge: a burst of extra short-lived tenants on top of calm baseline arrivals",
        base_arrival_mean_ns: 200 * MS,
        diurnal_amplitude: 0.2,
        day_ns: 4_000 * MS,
        pareto_frac: 0.15,
        pareto_alpha: 1.8,
        pareto_scale_ns: 400 * MS,
        lognorm_mean_ns: 1_000 * MS,
        lognorm_sigma: 0.6,
        lifetime_max_ns: 5_000 * MS,
        tier_weights: [2, 5, 3],
        size_mix: &[(1, 5), (2, 3), (4, 2)],
        storm_gap_mean_ns: 1_500 * MS,
        storm_len_ns: 250 * MS,
        storm_hit: 0.3,
        max_live_vms: 16,
        drain_at_ns: 0,
        drain_len_ns: 0,
        surge_at_ns: 1_600 * MS,
        surge_len_ns: 500 * MS,
        surge_arrival_mean_ns: 15 * MS,
    },
];

/// Looks a profile up by its stable name.
pub fn profile_by_name(name: &str) -> Option<&'static Profile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// Canonical seed for a profile's replayed day: FNV-1a of the profile
/// name. Deliberately independent of suite cell seeds — a replayed day
/// is *one fixed day*, identical for every policy and guest mode.
pub fn day_seed(profile_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in profile_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn draw_tier(rng: &mut SimRng, weights: &[u64; 3]) -> PriorityClass {
    let total: u64 = weights.iter().sum();
    let mut pick = rng.range(0, total);
    for (i, &w) in weights.iter().enumerate() {
        if pick < w {
            return PRIORITY_CLASSES[i];
        }
        pick -= w;
    }
    PriorityClass::Standard
}

/// Synthesizes a trace: a pure function of `(profile, horizon_ns, seed)`.
///
/// Stream discipline mirrors `lifecycle::generate`: every distribution
/// has its own forked stream, and per-arrival draws happen whether or
/// not the arrival is admitted, so the admission bound never shifts a
/// later stream. Storms run as a second pass over the recorded live
/// intervals (uid order), so arrival draws are unaffected by storm
/// parameters.
pub fn synthesize(profile: &Profile, horizon_ns: u64, seed: u64) -> FleetTrace {
    assert!(horizon_ns > 0, "horizon must be positive");
    let mut root = SimRng::new(seed ^ 0x5A9_DA11);
    let mut arr = root.fork(0xA1);
    let mut size = root.fork(0x51);
    let mut life = root.fork(0x1F);
    let mut pri = root.fork(0x9A);
    let mut storm = root.fork(0x57);

    let total_weight: u64 = profile.size_mix.iter().map(|&(_, w)| w).sum();
    // Thinning: draw candidates at the peak rate, accept with
    // lambda(t)/lambda_max where lambda(t) tracks the sinusoid.
    let lambda_max = (1.0 + profile.diurnal_amplitude) / profile.base_arrival_mean_ns as f64;
    let peak_mean_ns = 1.0 / lambda_max;

    let mut events: Vec<LifecycleEvent> = Vec::new();
    // (uid, arrive_at, depart_at) for the storm pass.
    let mut intervals: Vec<(u32, u64, u64)> = Vec::new();
    let mut departs: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
    let mut t = 0u64;
    let mut uid = 0u32;
    loop {
        t = t.saturating_add(arr.exp(peak_mean_ns).max(1.0) as u64);
        if t >= horizon_ns {
            break;
        }
        let phase = (t % profile.day_ns) as f64 / profile.day_ns as f64;
        let lambda_t = (1.0 + profile.diurnal_amplitude * (phase * std::f64::consts::TAU).sin())
            / profile.base_arrival_mean_ns as f64;
        let accept = arr.chance(lambda_t / lambda_max);

        // Size, lifetime, and tier draw per candidate — admitted or not —
        // so knob changes never shift sibling streams.
        let mut pick = size.range(0, total_weight);
        let vcpus = profile
            .size_mix
            .iter()
            .find(|&&(_, w)| {
                if pick < w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .map(|&(v, _)| v)
            .expect("weights cover the range");
        let heavy = life.chance(profile.pareto_frac);
        let body = life.lognormal(profile.lognorm_mean_ns as f64, profile.lognorm_sigma);
        let tail = life.pareto(profile.pareto_scale_ns as f64, profile.pareto_alpha);
        let lifetime = (if heavy { tail } else { body } as u64)
            .clamp(MIN_LIFETIME_NS, profile.lifetime_max_ns);
        let prio = draw_tier(&mut pri, &profile.tier_weights);

        // A maintenance window freezes admission: candidates still burn
        // their draws (streams stay aligned), but none are admitted.
        let in_drain = profile.drain_len_ns > 0
            && t >= profile.drain_at_ns
            && t < profile.drain_at_ns + profile.drain_len_ns;
        if !accept || in_drain {
            continue;
        }
        while matches!(departs.peek(), Some(&std::cmp::Reverse(d)) if d <= t) {
            departs.pop();
        }
        if departs.len() >= profile.max_live_vms {
            continue;
        }
        events.push(LifecycleEvent {
            at: SimTime::from_ns(t),
            op: VmOp::Arrive { uid, vcpus, prio },
        });
        let depart_at = t + lifetime;
        departs.push(std::cmp::Reverse(depart_at));
        if depart_at < horizon_ns {
            events.push(LifecycleEvent {
                at: SimTime::from_ns(depart_at),
                op: VmOp::Depart { uid },
            });
        }
        intervals.push((uid, t, depart_at.min(horizon_ns)));
        uid += 1;
    }

    // Maintenance-drain pass: everything live at the window start is
    // evicted (departures staggered through the window's first half) and
    // re-admitted as a fresh tenant after the window with its
    // interrupted remainder. The drain stream forks *after* every other
    // stream, so profiles without a window synthesize byte-identical
    // traces to pre-drain builds. Runs before the storm pass so resizes
    // respect the shortened live intervals.
    if profile.drain_len_ns > 0 && profile.drain_at_ns < horizon_ns {
        let mut drain = root.fork(0xD7);
        let drain_end = profile.drain_at_ns.saturating_add(profile.drain_len_ns);
        let half = (profile.drain_len_ns / 2).max(1);
        let evictable = intervals.len();
        for i in 0..evictable {
            let (vm, arrive_at, live_until) = intervals[i];
            // Both staggers draw per candidate — live at the window or
            // not — so window tweaks never reshuffle who gets which slot.
            let out_at = profile.drain_at_ns + (drain.f64() * half as f64) as u64;
            let re_at = drain_end.saturating_add((drain.f64() * half as f64) as u64);
            if arrive_at >= profile.drain_at_ns || live_until <= out_at {
                continue;
            }
            let (vcpus, prio) = events
                .iter()
                .find_map(|e| match e.op {
                    VmOp::Arrive { uid, vcpus, prio } if uid == vm => Some((vcpus, prio)),
                    _ => None,
                })
                .expect("every interval has an arrival");
            // The eviction replaces the natural departure.
            events.retain(|e| !matches!(e.op, VmOp::Depart { uid } if uid == vm));
            if out_at < horizon_ns {
                events.push(LifecycleEvent {
                    at: SimTime::from_ns(out_at),
                    op: VmOp::Depart { uid: vm },
                });
            }
            let remainder = live_until.saturating_sub(out_at).max(MIN_LIFETIME_NS);
            intervals[i].2 = out_at.min(horizon_ns);
            if re_at < horizon_ns {
                events.push(LifecycleEvent {
                    at: SimTime::from_ns(re_at),
                    op: VmOp::Arrive { uid, vcpus, prio },
                });
                let redep = re_at.saturating_add(remainder);
                if redep < horizon_ns {
                    events.push(LifecycleEvent {
                        at: SimTime::from_ns(redep),
                        op: VmOp::Depart { uid },
                    });
                }
                intervals.push((uid, re_at, redep.min(horizon_ns)));
                uid += 1;
            }
        }
    }

    // Flash-crowd pass: a step-function burst of *extra* tenants inside
    // the surge window, drawn entirely from their own stream. The surge
    // stream forks *after* the drain stream (and the drain stream itself
    // only forks when a window exists), so profiles without a surge keep
    // synthesizing byte-identical traces to pre-surge builds. Runs before
    // the storm pass so storms can cap surge tenants too.
    if profile.surge_len_ns > 0 && profile.surge_at_ns < horizon_ns {
        let mut surge = root.fork(0xFC);
        let surge_end = profile
            .surge_at_ns
            .saturating_add(profile.surge_len_ns)
            .min(horizon_ns);
        let mut at = profile.surge_at_ns;
        loop {
            at = at.saturating_add(surge.exp(profile.surge_arrival_mean_ns as f64).max(1.0) as u64);
            if at >= surge_end {
                break;
            }
            // Surge tenants are small and short-lived: the crowd wants
            // capacity *now* and leaves soon after the event passes.
            let mut pick = surge.range(0, total_weight);
            let vcpus = profile
                .size_mix
                .iter()
                .find(|&&(_, w)| {
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .map(|&(v, _)| v)
                .expect("weights cover the range");
            let lifetime = (surge.lognormal(profile.lognorm_mean_ns as f64 / 2.0, 0.5) as u64)
                .clamp(MIN_LIFETIME_NS, profile.lifetime_max_ns);
            let prio = draw_tier(&mut surge, &profile.tier_weights);
            events.push(LifecycleEvent {
                at: SimTime::from_ns(at),
                op: VmOp::Arrive { uid, vcpus, prio },
            });
            let depart_at = at + lifetime;
            if depart_at < horizon_ns {
                events.push(LifecycleEvent {
                    at: SimTime::from_ns(depart_at),
                    op: VmOp::Depart { uid },
                });
            }
            intervals.push((uid, at, depart_at.min(horizon_ns)));
            uid += 1;
        }
    }

    // Storm pass: bursty windows that cap a random subset of whatever is
    // live, then restore. Strict `<` guards keep each resize inside its
    // VM's live interval so the trace validates.
    let mut storm_at = 0u64;
    loop {
        storm_at = storm_at.saturating_add(storm.exp(profile.storm_gap_mean_ns as f64) as u64);
        if storm_at >= horizon_ns {
            break;
        }
        let storm_end = (storm_at + profile.storm_len_ns).min(horizon_ns);
        let quota_pct: u8 = [40, 60, 80][storm.range(0, 3) as usize];
        for &(vm, arrive_at, live_until) in &intervals {
            let lo = storm_at.max(arrive_at);
            let hi = storm_end.min(live_until);
            if lo >= hi {
                continue;
            }
            if !storm.chance(profile.storm_hit) {
                continue;
            }
            let cap_at = lo + (storm.f64() * (hi - lo) as f64) as u64;
            if cap_at >= live_until {
                continue;
            }
            events.push(LifecycleEvent {
                at: SimTime::from_ns(cap_at),
                op: VmOp::Resize { uid: vm, quota_pct },
            });
            let restore_at = cap_at + (live_until - cap_at) / 2;
            if restore_at > cap_at && restore_at < live_until {
                events.push(LifecycleEvent {
                    at: SimTime::from_ns(restore_at),
                    op: VmOp::Resize {
                        uid: vm,
                        quota_pct: 100,
                    },
                });
            }
        }
    }

    // Stable by timestamp: an equal-time resize stays after its arrive
    // and before nothing it must precede (strict guards keep resizes off
    // depart timestamps).
    events.sort_by_key(|e| e.at);
    let trace = FleetTrace {
        profile: profile.name.to_string(),
        day_seed: seed,
        horizon_ns,
        events,
    };
    trace
        .validate()
        .expect("synthesized trace satisfies its own validator");
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_profile_synthesizes_a_valid_nonempty_trace() {
        for p in &PROFILES {
            let t = synthesize(p, 4_000 * MS, day_seed(p.name));
            assert!(!t.events.is_empty(), "{}: empty trace", p.name);
            t.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            let arrivals = t
                .events
                .iter()
                .filter(|e| matches!(e.op, VmOp::Arrive { .. }))
                .count();
            assert!(arrivals >= 10, "{}: only {arrivals} arrivals", p.name);
            let resizes = t
                .events
                .iter()
                .filter(|e| matches!(e.op, VmOp::Resize { .. }))
                .count();
            assert!(resizes > 0, "{}: storms never landed", p.name);
        }
    }

    #[test]
    fn synthesis_is_a_pure_function_of_profile_and_seed() {
        let p = profile_by_name("sap-diurnal").unwrap();
        let a = synthesize(p, 4_000 * MS, 7);
        let b = synthesize(p, 4_000 * MS, 7);
        assert_eq!(a, b);
        assert_eq!(a.encode(), b.encode());
        let c = synthesize(p, 4_000 * MS, 8);
        assert_ne!(a, c, "seed must reach the trace");
    }

    #[test]
    fn diurnal_profile_modulates_arrival_intensity() {
        let p = profile_by_name("sap-diurnal").unwrap();
        // Long horizon, no admission pressure: compare arrivals landing in
        // the rising half-day vs the falling half-day of the sinusoid.
        let mut relaxed = *p;
        relaxed.max_live_vms = 100_000;
        let t = synthesize(&relaxed, 40_000 * MS, 3);
        let (mut up, mut down) = (0u64, 0u64);
        for e in &t.events {
            if let VmOp::Arrive { .. } = e.op {
                let phase = (e.at.ns() % relaxed.day_ns) as f64 / relaxed.day_ns as f64;
                if phase < 0.5 {
                    up += 1;
                } else {
                    down += 1;
                }
            }
        }
        assert!(
            up as f64 > down as f64 * 1.5,
            "sinusoid peak half must out-arrive the trough half ({up} vs {down})"
        );
    }

    #[test]
    fn maintenance_drain_empties_then_refills() {
        let p = profile_by_name("sap-maintenance-drain").unwrap();
        let t = synthesize(p, 4_000 * MS, day_seed(p.name));
        let drain_end = p.drain_at_ns + p.drain_len_ns;
        let mut arrivals_in_window = 0usize;
        let mut departs_in_window = 0usize;
        let mut refills = 0usize;
        for e in &t.events {
            let at = e.at.ns();
            match e.op {
                VmOp::Arrive { .. } if at >= p.drain_at_ns && at < drain_end => {
                    arrivals_in_window += 1;
                }
                VmOp::Arrive { .. } if at >= drain_end && at < drain_end + p.drain_len_ns => {
                    refills += 1;
                }
                VmOp::Depart { .. } if at >= p.drain_at_ns && at < drain_end => {
                    departs_in_window += 1;
                }
                _ => {}
            }
        }
        assert_eq!(
            arrivals_in_window, 0,
            "admission must freeze inside the maintenance window"
        );
        assert!(
            departs_in_window >= 3,
            "drain must mass-depart the live population ({departs_in_window} departs)"
        );
        assert!(
            refills >= 3,
            "evictees must re-arrive after the window ({refills} arrivals)"
        );
    }

    #[test]
    fn committed_example_traces_pin_synthesis_bytes() {
        // The drain stream forks only when a window exists, so profiles
        // without one must keep synthesizing exactly the traces committed
        // before the drain pass existed — the examples/ files are goldens.
        for (file, profile) in [
            ("sap_day.trace.jsonl", "sap-diurnal"),
            ("sap_storm.trace.jsonl", "sap-resize-storm"),
            ("sap_drain.trace.jsonl", "sap-maintenance-drain"),
            ("sap_flash.trace.jsonl", "sap-flash-crowd"),
        ] {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/");
            let committed = std::fs::read_to_string(format!("{path}{file}"))
                .unwrap_or_else(|e| panic!("examples/{file}: {e}"));
            let p = profile_by_name(profile).unwrap();
            let t = synthesize(p, 4_000 * MS, day_seed(p.name));
            assert_eq!(
                committed.trim_end(),
                t.encode().trim_end(),
                "examples/{file} drifted from synthesize({profile})"
            );
        }
    }

    #[test]
    fn flash_crowd_steps_arrival_intensity() {
        let p = profile_by_name("sap-flash-crowd").unwrap();
        let t = synthesize(p, 4_000 * MS, day_seed(p.name));
        let surge_end = p.surge_at_ns + p.surge_len_ns;
        // Arrival rate inside the surge window vs the same-length window
        // right before it: the step must dominate, not merely nudge.
        let (mut inside, mut before) = (0u64, 0u64);
        for e in &t.events {
            if let VmOp::Arrive { .. } = e.op {
                let at = e.at.ns();
                if at >= p.surge_at_ns && at < surge_end {
                    inside += 1;
                } else if at >= p.surge_at_ns - p.surge_len_ns && at < p.surge_at_ns {
                    before += 1;
                }
            }
        }
        assert!(
            inside >= before.max(1) * 3,
            "surge window must out-arrive the calm window 3x ({inside} vs {before})"
        );
    }

    #[test]
    fn day_seed_is_stable_fnv() {
        assert_eq!(day_seed("sap-diurnal"), day_seed("sap-diurnal"));
        assert_ne!(day_seed("sap-diurnal"), day_seed("sap-resize-storm"));
    }
}
