//! The lockstep multi-host cluster.
//!
//! A [`Cluster`] owns N `hostsim::Machine`s plus a compiled churn
//! schedule and replays it deterministically: hosts advance in lockstep
//! on the shared virtual clock (each `Machine` keeps its own event queue,
//! stepped to a common barrier via [`hostsim::Machine::step_until`]), and
//! every placement decision is emitted into a fleet-scoped trace
//! collector whose invariant checker enforces the overcommit cap and
//! single-placement laws independently of the cluster's own bookkeeping.
//!
//! Hosts share no state *between* barriers, so [`Cluster::run`] shards
//! the stepping itself across a scoped worker pool ([`crate::pstep`]):
//! every epoch boundary and every placement event is a join barrier, and
//! all cross-host decisions (admission, placement, SLO accounting,
//! fleet-collector events) happen serially on the coordinator between
//! rounds. Worker count ([`Cluster::with_threads`], default
//! [`crate::threads::default_fleet_threads`]) never changes output —
//! per-host RNG streams are forked at construction, utilization samples
//! live per host, and checker reports fold in host-id order — which
//! `tests/parallel_step.rs` and the `ci.sh` fleet smoke pin down
//! byte-for-byte.
//!
//! Per-machine collectors stay separate from the fleet collector: vCPU
//! and task ids restart at zero on every host, so mixing their streams
//! would alias ids and trip the per-host conservation laws.
//!
//! [`Cluster::set_chaos`] layers a [`crate::chaos::FleetChaosPlan`] on
//! the run: crash/drain faults merge into the event loop (recoveries
//! first, then failures, then lifecycle on ties), degrade windows
//! compile to per-host script actions at install time, and a failed
//! host's machine simply stops being stepped — the same skip on the
//! serial and pooled paths, so worker count still never changes output.
//! Residents of a failing host are evacuated by live migration
//! ([`crate::chaos::MigrationMode`] decides whether drained vSched
//! guests hand their probe state to the destination); victims that find
//! no headroom retry with exponential backoff while the fleet sheds
//! Batch- then Standard-tier admissions (degraded mode), and depart if
//! the retry budget runs dry.

use crate::chaos::{FleetChaosPlan, HostFault, MigrationMode};
use crate::lifecycle::{self, FleetSpec, LifecycleEvent, VmOp};
use crate::placement::{HostView, PlacementPolicy, PlacementReq};
use crate::pstep::StepPool;
use crate::slo::{self, SloSummary, TenantStats};
use crate::threads;
use guestos::{GuestConfig, VcpuId};
use hostsim::scenario::ScenarioBuilder;
use hostsim::topology::HostSpec;
use hostsim::Machine;
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::num::NonZeroUsize;
use std::rc::Rc;
use trace::{Collector, EventKind, HostFailKind, PriorityClass, SharedCollector, TraceSink};
use vsched::VschedConfig;
use workloads::latency::{LatencyServer, LatencyServerCfg};
use workloads::{work_ms, LatencyStats};

/// Which guest scheduler the fleet's VMs boot with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestMode {
    /// Plain CFS guests: no probing, the placement layer sees nominal
    /// capacity only.
    Cfs,
    /// vSched guests (`VschedConfig::full()`): vcap probing feeds the
    /// probe-aware placement policy real capacity estimates.
    Vsched,
}

impl GuestMode {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            GuestMode::Cfs => "CFS",
            GuestMode::Vsched => "vSched",
        }
    }
}

/// Lockstep barrier granularity. Small enough that cross-host placement
/// decisions see fresh probing state, large enough to amortize the
/// per-host re-entry cost.
const EPOCH_NS: u64 = 50 * MS;

/// CFS bandwidth period used for vertical resizes.
const RESIZE_PERIOD_NS: u64 = 4 * MS;

/// Placement retries a stranded evacuee gets (exponential epoch backoff)
/// before the cluster gives up and departs it.
const EVAC_MAX_RETRIES: u32 = 3;

pub(crate) struct HostSim {
    m: Machine,
    collector: SharedCollector,
    /// Committed (placed, not departed) vCPUs — the checker re-verifies
    /// this via the occupancy carried on every `VmPlaced` event.
    committed: u64,
    /// Active-ns total at the previous utilization sample.
    prev_active_ns: u64,
    /// Sampled utilization per epoch (0..=1); capacity preallocated for
    /// the whole horizon at construction so epochs never reallocate.
    util: Vec<f64>,
    /// Down (crashed or draining): the machine is not stepped and the
    /// placement layer must not see the host. Flipped only between
    /// rounds on the coordinator, so every worker observes the same
    /// value for a whole round.
    failed: bool,
    /// When the current outage began (recovery reports the wall delta).
    failed_at_ns: u64,
}

impl HostSim {
    /// One host's share of a barrier round: step to the barrier and, on
    /// epoch boundaries, fold the utilization sample in place. Touches
    /// only this host's state, so rounds can run it from any worker.
    ///
    /// A failed host skips the stepping — its machine stays frozen at
    /// the failure barrier until recovery fast-forwards it — but still
    /// contributes a zero utilization sample, keeping every host's
    /// series the same length at any worker count.
    pub(crate) fn step_round(&mut self, until: SimTime, sample_now_ns: Option<u64>, threads: u64) {
        if self.failed {
            if sample_now_ns.is_some() {
                self.util.push(0.0);
            }
            return;
        }
        self.m.step_until(until);
        if let Some(now_ns) = sample_now_ns {
            // Δ active-ns across all of the host's vCPUs over
            // `threads × window`.
            let active = self.m.total_active_ns();
            let window = EPOCH_NS.min(now_ns.max(1));
            let used = active.saturating_sub(self.prev_active_ns);
            self.prev_active_ns = active;
            self.util.push(used as f64 / (threads * window) as f64);
        }
    }
}

struct LiveVm {
    uid: u32,
    prio: PriorityClass,
    vcpus: usize,
    host: usize,
    vm_idx: usize,
    stats: Rc<RefCell<LatencyStats>>,
    arrived_ns: u64,
}

/// Per-vCPU probe state captured from a draining source instance:
/// `(published capacity, core capacity)`, `None` for never-probed vCPUs.
type ProbeSnapshot = Vec<Option<(f64, f64)>>;

/// A victim of a failed host that found no headroom: it stays quiesced
/// on the (down) source — counted in its committed vCPUs — until a
/// backoff retry places it or the budget runs dry.
struct PendingEvac {
    uid: u32,
    retries: u32,
    next_retry_ns: u64,
    snapshot: Option<ProbeSnapshot>,
}

/// A deterministic multi-host cluster run: `(spec, mode, policy, seed)`
/// fully determines the churn schedule, every placement decision, and
/// every latency sample.
pub struct Cluster {
    spec: FleetSpec,
    mode: GuestMode,
    policy: Box<dyn PlacementPolicy>,
    hosts: Vec<HostSim>,
    schedule: Vec<LifecycleEvent>,
    fleet_sink: TraceSink,
    fleet_collector: SharedCollector,
    live: Vec<LiveVm>,
    tenants: Vec<TenantStats>,
    wl_rng: SimRng,
    /// Requested stepping workers; effective count also caps at the host
    /// count ([`Cluster::effective_workers`]).
    fleet_threads: NonZeroUsize,
    /// Reusable [`HostView`] buffer for placement decisions, preallocated
    /// at construction so arrivals never allocate a fresh snapshot.
    views_scratch: Vec<HostView>,
    admitted: u64,
    placed: u64,
    rejected: u64,
    /// Installed fault schedule, if any ([`Cluster::set_chaos`]).
    chaos: Option<FleetChaosPlan>,
    /// Probe-state policy for drained vSched guests.
    migration_mode: MigrationMode,
    /// Evacuees waiting for headroom, serviced at epoch barriers.
    pending_evac: Vec<PendingEvac>,
    /// Scheduled host recoveries: `(recover_at_ns, host)` min-heap.
    recoveries: BinaryHeap<Reverse<(u64, usize)>>,
    host_failures: u64,
    migrations: u64,
    evacuations_failed: u64,
    shed_admissions: u64,
}

impl Cluster {
    /// Builds the cluster with the process-default stepping worker count
    /// ([`threads::default_fleet_threads`]); see [`Cluster::with_threads`].
    pub fn new(
        spec: FleetSpec,
        mode: GuestMode,
        policy: Box<dyn PlacementPolicy>,
        seed: u64,
    ) -> Cluster {
        Self::with_threads(spec, mode, policy, seed, threads::default_fleet_threads())
    }

    /// Builds the cluster: N started machines with per-host trace
    /// checkers, the compiled churn schedule, and an empty fleet-level
    /// collector for placement events. `fleet_threads` bounds the
    /// stepping pool; any value produces byte-identical output.
    pub fn with_threads(
        spec: FleetSpec,
        mode: GuestMode,
        policy: Box<dyn PlacementPolicy>,
        seed: u64,
        fleet_threads: NonZeroUsize,
    ) -> Cluster {
        spec.validate().expect("valid spec");
        let schedule = lifecycle::generate(&spec, seed);
        // One sample per epoch plus the horizon remainder.
        let epochs = (spec.horizon_ns / EPOCH_NS + 2) as usize;
        let mut hosts = Vec::with_capacity(spec.hosts);
        for h in 0..spec.hosts {
            // Per-host seed: mixed so host streams are independent but a
            // host's stream is stable when the fleet size changes. Forked
            // here, never shared — each worker only ever advances the
            // streams of hosts it has claimed.
            let host_seed = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(h as u64 + 1));
            let mut m =
                ScenarioBuilder::new(HostSpec::flat(spec.threads_per_host), host_seed).build();
            let (_, collector) = TraceSink::shared(Collector::default().with_checker());
            m.attach_trace(&collector);
            m.start();
            hosts.push(HostSim {
                m,
                collector,
                committed: 0,
                prev_active_ns: 0,
                util: Vec::with_capacity(epochs),
                failed: false,
                failed_at_ns: 0,
            });
        }
        let (fleet_sink, fleet_collector) = TraceSink::shared(Collector::default().with_checker());
        let views_scratch = Vec::with_capacity(spec.hosts);
        Cluster {
            spec,
            mode,
            policy,
            hosts,
            schedule,
            fleet_sink,
            fleet_collector,
            live: Vec::new(),
            tenants: Vec::new(),
            wl_rng: SimRng::new(seed ^ 0x0F1E_E75E_ED00),
            fleet_threads,
            views_scratch,
            admitted: 0,
            placed: 0,
            rejected: 0,
            chaos: None,
            migration_mode: MigrationMode::Handoff,
            pending_evac: Vec::new(),
            recoveries: BinaryHeap::new(),
            host_failures: 0,
            migrations: 0,
            evacuations_failed: 0,
            shed_admissions: 0,
        }
    }

    /// Installs a fleet chaos plan. Must be called before [`Cluster::run`]:
    /// crash/drain faults merge into the run loop, and each host's degrade
    /// windows compile to machine script actions here (exactly once per
    /// machine — the plan's stressor reversals predict load arena ids).
    pub fn set_chaos(&mut self, plan: FleetChaosPlan) {
        assert!(
            self.live.is_empty() && self.tenants.is_empty(),
            "set_chaos must run before the cluster steps"
        );
        for (h, host) in self.hosts.iter_mut().enumerate() {
            if let Some(fp) = plan.degrade_plan_for_host(h as u16, self.spec.threads_per_host) {
                fp.apply(&mut host.m);
            }
        }
        self.chaos = Some(plan);
    }

    /// Chooses how drained vSched guests transfer probe state (the
    /// handoff-vs-cold-reprobe ablation). Default: [`MigrationMode::Handoff`].
    pub fn set_migration_mode(&mut self, mode: MigrationMode) {
        self.migration_mode = mode;
    }

    /// The compiled churn schedule (for tests and inspection).
    pub fn schedule(&self) -> &[LifecycleEvent] {
        &self.schedule
    }

    /// Simulation events dispatched across every host machine — the
    /// cluster-stepping throughput denominator the bench harness tracks.
    pub fn events_dispatched(&self) -> u64 {
        self.hosts.iter().map(|h| h.m.events_dispatched).sum()
    }

    /// Stepping workers a run actually uses: the requested count capped
    /// at the host count (a worker per host saturates every round).
    pub fn effective_workers(&self) -> usize {
        self.fleet_threads.get().min(self.hosts.len().max(1))
    }

    /// Per-host sampled utilization series, in host-id order (what the
    /// byte-identity tests compare across worker counts).
    pub fn host_util(&self) -> Vec<&[f64]> {
        self.hosts.iter().map(|h| h.util.as_slice()).collect()
    }

    /// Replays the whole schedule to the horizon and folds the outcome
    /// into an [`SloSummary`].
    ///
    /// With more than one effective worker the host stepping runs on a
    /// scoped pool kept alive for the whole run; one worker (or one
    /// host) takes the plain serial path, which doubles as the baseline
    /// the parallel path must match byte-for-byte.
    pub fn run(&mut self) -> SloSummary {
        let workers = self.effective_workers();
        if workers <= 1 {
            return self.run_with(None);
        }
        let pool = StepPool::new();
        std::thread::scope(|s| {
            // The coordinator claims round work too, so spawn one fewer.
            for _ in 0..workers - 1 {
                s.spawn(|| pool.worker_loop());
            }
            let out = self.run_with(Some(&pool));
            pool.shutdown();
            out
        })
    }

    fn run_with(&mut self, pool: Option<&StepPool>) -> SloSummary {
        let horizon = self.spec.horizon_ns;
        let schedule = std::mem::take(&mut self.schedule);
        let chaos_fails: Vec<HostFault> = self
            .chaos
            .as_ref()
            .map(|p| p.fail_events().copied().collect())
            .unwrap_or_default();
        let mut next = 0usize;
        let mut cnext = 0usize;
        let mut epoch_end = EPOCH_NS.min(horizon);
        loop {
            // Merge the three event sources in time order. Ties resolve
            // recovery → failure → lifecycle: a host recovering at the
            // same instant another fails (or a VM arrives) must be
            // usable before the decision is made.
            loop {
                let rt = self
                    .recoveries
                    .peek()
                    .map(|&Reverse((t, _))| t)
                    .filter(|&t| t <= epoch_end);
                let ct = chaos_fails
                    .get(cnext)
                    .map(|f| f.at.ns())
                    .filter(|&t| t <= epoch_end);
                let lt = schedule
                    .get(next)
                    .map(|e| e.at.ns())
                    .filter(|&t| t <= epoch_end);
                let Some(at) = [rt, ct, lt].iter().flatten().copied().min() else {
                    break;
                };
                // Placement/fault barrier: every host reaches the
                // decision instant before any cross-host state is read
                // or written.
                self.step_all(SimTime::from_ns(at), None, pool);
                if rt == Some(at) {
                    let Reverse((t, h)) = self.recoveries.pop().expect("peeked");
                    self.recover_host(t, h);
                } else if ct == Some(at) {
                    let f = chaos_fails[cnext];
                    cnext += 1;
                    self.fail_host(&f);
                } else {
                    let ev = schedule[next];
                    next += 1;
                    self.apply(ev);
                }
            }
            // Epoch barrier; the utilization sample folds into each host
            // on whichever worker stepped it. Backed-up evacuations are
            // retried here, after every host has settled.
            self.step_all(SimTime::from_ns(epoch_end), Some(epoch_end), pool);
            self.service_pending(epoch_end);
            if epoch_end >= horizon {
                break;
            }
            epoch_end = (epoch_end + EPOCH_NS).min(horizon);
        }
        self.schedule = schedule;
        // Hosts still down at the horizon would hold their stranded
        // evacuees forever; depart them so the run ends with zero
        // stranded placements (the checker's stranded_vms cross-checks).
        for p in std::mem::take(&mut self.pending_evac) {
            self.evacuations_failed += 1;
            self.force_depart(SimTime::from_ns(horizon), p.uid);
        }
        // Still-live tenants are snapshotted against the horizon; they
        // stay placed, which the checker permits (placement is released
        // only by an explicit depart).
        for i in 0..self.live.len() {
            let lifetime = horizon.saturating_sub(self.live[i].arrived_ns);
            let t = Self::snapshot(&self.live[i], lifetime);
            self.tenants.push(t);
        }
        self.summary()
    }

    /// Advances every host to the same barrier on the virtual clock,
    /// serially or through the stepping pool.
    fn step_all(&mut self, until: SimTime, sample_now_ns: Option<u64>, pool: Option<&StepPool>) {
        let threads = self.spec.threads_per_host as u64;
        match pool {
            Some(p) => p.run_round(&mut self.hosts, until, sample_now_ns, threads),
            None => {
                for h in &mut self.hosts {
                    h.step_round(until, sample_now_ns, threads);
                }
            }
        }
    }

    fn apply(&mut self, ev: LifecycleEvent) {
        match ev.op {
            VmOp::Arrive { uid, vcpus, prio } => self.arrive(ev.at, uid, vcpus, prio),
            VmOp::Depart { uid } => self.depart(ev.at, uid),
            VmOp::Resize { uid, quota_pct } => self.resize(uid, quota_pct),
        }
    }

    /// Refreshes the reusable snapshot of every host the policy can
    /// choose from (held in `views_scratch`; placement events are too
    /// frequent to allocate a fresh snapshot per decision). Failed hosts
    /// are excluded entirely — a policy cannot place onto a host it
    /// cannot see, which is what keeps the no-placement-onto-failed-host
    /// law structural. Views carry their host id, so lookups after a
    /// decision go through [`Cluster::ensure_fits`], never by index.
    fn refresh_host_views(&mut self) {
        let mode = self.mode;
        let views = &mut self.views_scratch;
        views.clear();
        for (h, host) in self.hosts.iter_mut().enumerate() {
            if host.failed {
                continue;
            }
            let mut probed = 0.0;
            for lv in self.live.iter().filter(|lv| lv.host == h) {
                probed += probed_capacity(&mut host.m, lv.vm_idx, lv.vcpus, mode);
            }
            views.push(HostView {
                host: h,
                threads: self.spec.threads_per_host,
                committed: host.committed,
                cap: self.spec.overcommit_cap,
                probed_capacity: probed,
                llc_pressure: host.m.llc_pressure(),
            });
        }
    }

    /// Verifies a placement decision against the destination's cap and
    /// liveness. The error names every field involved, so a policy bug —
    /// or a recovery re-admission onto a host that refilled while the VM
    /// was stranded — is diagnosable from the message alone instead of
    /// being silently accepted into an over-cap host.
    fn ensure_fits(&self, h: usize, req: &PlacementReq) -> Result<(), String> {
        let view = self
            .views_scratch
            .iter()
            .find(|v| v.host == h)
            .ok_or_else(|| {
                format!(
                    "policy placed uid {} on host {h} which is failed or unknown \
                 (views cover {} hosts)",
                    req.uid,
                    self.views_scratch.len()
                )
            })?;
        if !view.fits(req) {
            return Err(format!(
                "placement overflows host {h}: committed {} + vcpus {} \
                 exceeds overcommit_cap {} (uid {})",
                view.committed, req.vcpus, view.cap, req.uid
            ));
        }
        Ok(())
    }

    /// Current degraded-mode shed level: 1 while any evacuation is backed
    /// up (shed Batch admissions), 2 once an evacuee has been retried
    /// twice without finding headroom (shed Standard too). Critical
    /// admissions are never shed.
    fn shed_level(&self) -> u8 {
        if self.pending_evac.iter().any(|p| p.retries >= 2) {
            2
        } else if self.pending_evac.is_empty() {
            0
        } else {
            1
        }
    }

    fn arrive(&mut self, at: SimTime, uid: u32, vcpus: usize, prio: PriorityClass) {
        self.admitted += 1;
        self.fleet_sink.emit(
            at,
            EventKind::VmAdmitted {
                uid,
                vcpus: vcpus as u16,
                prio,
            },
        );
        // Fleet degraded mode: while evacuations are backed up, shed the
        // lowest tiers at admission instead of letting them compete with
        // evacuees for the remaining headroom.
        let shed = match self.shed_level() {
            2 => prio != PriorityClass::Critical,
            1 => prio == PriorityClass::Batch,
            _ => false,
        };
        if shed {
            self.rejected += 1;
            self.shed_admissions += 1;
            return;
        }
        self.refresh_host_views();
        let req = PlacementReq { uid, vcpus };
        let Some(h) = self.policy.place(&req, &self.views_scratch) else {
            self.rejected += 1;
            return;
        };
        self.ensure_fits(h, &req).unwrap_or_else(|e| panic!("{e}"));
        let threads = self.spec.threads_per_host;
        let vm_idx = self.hosts[h].m.add_vm(
            GuestConfig::new(vcpus),
            vec![(0..threads).collect(); vcpus],
            1024,
            None,
        );
        let stats = self.install_guest(h, vm_idx, uid, vcpus, None, None);
        self.hosts[h].committed += vcpus as u64;
        self.placed += 1;
        self.fleet_sink.emit(
            at,
            EventKind::VmPlaced {
                uid,
                host: h as u16,
                vcpus: vcpus as u16,
                occupied: self.hosts[h].committed,
                cap: self.spec.overcommit_cap,
            },
        );
        self.live.push(LiveVm {
            uid,
            prio,
            vcpus,
            host: h,
            vm_idx,
            stats,
            arrived_ns: at.ns(),
        });
    }

    /// Installs the guest scheduler and latency workload into a VM slot —
    /// shared by first placement (fresh stats), live migration (the
    /// tenant's histograms follow it), and post-outage resumption.
    /// `snapshot` seeds the fresh vSched instance's vcap from the source
    /// host's probe state (drain handoff); without one the instance
    /// probes from nominal, like a cold boot.
    fn install_guest(
        &mut self,
        h: usize,
        vm_idx: usize,
        uid: u32,
        vcpus: usize,
        stats: Option<Rc<RefCell<LatencyStats>>>,
        snapshot: Option<&ProbeSnapshot>,
    ) -> Rc<RefCell<LatencyStats>> {
        // Migration/resume forks are salted so they can never collide
        // with any uid's arrival fork; they are only drawn under chaos,
        // keeping fault-free runs byte-identical.
        let rng = match stats {
            None => self.wl_rng.fork(uid as u64),
            Some(_) => self.wl_rng.fork(uid as u64 ^ 0x4D16_8A7E),
        };
        let mode = self.mode;
        let host = &mut self.hosts[h];
        if mode == GuestMode::Vsched {
            host.m
                .with_vm(vm_idx, |g, p| vsched::install(g, p, VschedConfig::full()));
            if let Some(snap) = snapshot {
                host.m.with_vm(vm_idx, |g, _p| {
                    let vs = vsched::instance(g).expect("vsched just installed");
                    for (v, entry) in snap.iter().enumerate().take(vcpus) {
                        if let Some((cap, core)) = entry {
                            vs.vcap.seed_capacity(VcpuId(v), *cap, *core);
                        }
                    }
                });
            }
        }
        // Open-loop latency server at ~50% of the VM's nominal capacity:
        // the same load point the single-host experiments use.
        let service = work_ms(0.5);
        let interarrival = service / 1024.0 / vcpus as f64 / 0.5;
        let cfg = LatencyServerCfg::new(vcpus, service, interarrival);
        let stats = match stats {
            None => {
                let (server, stats) = LatencyServer::new(cfg, rng);
                host.m.set_workload(vm_idx, Box::new(server));
                stats
            }
            Some(stats) => {
                let server = LatencyServer::with_stats(cfg, rng, Rc::clone(&stats));
                host.m.set_workload(vm_idx, Box::new(server));
                stats
            }
        };
        host.m.start_vm_workload(vm_idx);
        stats
    }

    /// Takes a host down. Every resident is evacuated by live migration
    /// in arrival order; victims with no headroom anywhere go to the
    /// pending queue (quiesced on the dead source, still counted in its
    /// committed vCPUs). A failure landing on an already-down host is
    /// dropped silently — there is nothing further to take away.
    fn fail_host(&mut self, fault: &HostFault) {
        let h = fault.host as usize;
        if h >= self.hosts.len() || self.hosts[h].failed {
            return;
        }
        let kind = fault
            .op
            .fail_kind()
            .expect("degrade never reaches fail_host");
        let victims: Vec<u32> = self
            .live
            .iter()
            .filter(|lv| lv.host == h)
            .map(|lv| lv.uid)
            .collect();
        self.fleet_sink.emit(
            fault.at,
            EventKind::HostFailed {
                host: h as u16,
                kind,
                residents: victims.len() as u16,
            },
        );
        self.host_failures += 1;
        self.hosts[h].failed = true;
        self.hosts[h].failed_at_ns = fault.at.ns();
        self.recoveries
            .push(Reverse((fault.at.ns().saturating_add(fault.down_ns), h)));
        for uid in victims {
            let i = self
                .live
                .iter()
                .position(|lv| lv.uid == uid)
                .expect("victim is live");
            // Drain handoff: capture the source instance's probe state
            // before quiescing tears the hooks down. Crash victims
            // always re-probe cold — the state died with the host.
            let snapshot = (kind == HostFailKind::Drain
                && self.migration_mode == MigrationMode::Handoff
                && self.mode == GuestMode::Vsched)
                .then(|| self.capture_probe_state(i))
                .flatten();
            let vm_idx = self.live[i].vm_idx;
            self.hosts[h].m.quiesce_vm(vm_idx);
            if !self.try_migrate(fault.at, uid, snapshot.as_ref()) {
                self.pending_evac.push(PendingEvac {
                    uid,
                    retries: 0,
                    next_retry_ns: fault.at.ns() + EPOCH_NS,
                    snapshot,
                });
            }
        }
    }

    /// Reads the per-vCPU capacities a victim's vSched instance has
    /// published so far (`None` without an instance — CFS guests).
    fn capture_probe_state(&mut self, i: usize) -> Option<ProbeSnapshot> {
        let (host, vm_idx, vcpus) = {
            let lv = &self.live[i];
            (lv.host, lv.vm_idx, lv.vcpus)
        };
        self.hosts[host].m.with_vm(vm_idx, |g, _p| {
            vsched::instance(g).map(|vs| {
                (0..vcpus)
                    .map(|v| {
                        vs.vcap.cap[v]
                            .initialized()
                            .then(|| (vs.vcap.cap[v].get(), vs.vcap.core_cap[v]))
                    })
                    .collect()
            })
        })
    }

    /// Tries to re-place an evacuee through the normal placement policy
    /// (over views that exclude failed hosts). On success the VM boots on
    /// the destination and a `VmMigrated` event records the move with
    /// both hosts' post-move occupancy; `false` means no host had
    /// headroom and the caller keeps it pending.
    fn try_migrate(&mut self, at: SimTime, uid: u32, snapshot: Option<&ProbeSnapshot>) -> bool {
        let i = self
            .live
            .iter()
            .position(|lv| lv.uid == uid)
            .expect("evacuee is live");
        let (vcpus, from) = (self.live[i].vcpus, self.live[i].host);
        self.refresh_host_views();
        let req = PlacementReq { uid, vcpus };
        let Some(h) = self.policy.place(&req, &self.views_scratch) else {
            return false;
        };
        self.ensure_fits(h, &req).unwrap_or_else(|e| panic!("{e}"));
        let threads = self.spec.threads_per_host;
        let vm_idx = self.hosts[h].m.add_vm(
            GuestConfig::new(vcpus),
            vec![(0..threads).collect(); vcpus],
            1024,
            None,
        );
        let stats = Rc::clone(&self.live[i].stats);
        self.install_guest(h, vm_idx, uid, vcpus, Some(stats), snapshot);
        self.hosts[from].committed -= vcpus as u64;
        self.hosts[h].committed += vcpus as u64;
        self.fleet_sink.emit(
            at,
            EventKind::VmMigrated {
                uid,
                from: from as u16,
                to: h as u16,
                vcpus: vcpus as u16,
                from_occupied: self.hosts[from].committed,
                to_occupied: self.hosts[h].committed,
                cap: self.spec.overcommit_cap,
            },
        );
        self.live[i].host = h;
        self.live[i].vm_idx = vm_idx;
        self.migrations += 1;
        true
    }

    /// Brings a host back. Stranded evacuees still sited on it resume in
    /// place — they were never unplaced, so no event is emitted; they get
    /// a fresh guest boot (cold probing: the quiesced instance's state
    /// died with the outage) and leave the pending queue.
    fn recover_host(&mut self, at_ns: u64, h: usize) {
        debug_assert!(self.hosts[h].failed);
        self.hosts[h].failed = false;
        let down_ns = at_ns - self.hosts[h].failed_at_ns;
        self.fleet_sink.emit(
            SimTime::from_ns(at_ns),
            EventKind::HostRecovered {
                host: h as u16,
                down_ns,
            },
        );
        for p in std::mem::take(&mut self.pending_evac) {
            let i = self
                .live
                .iter()
                .position(|lv| lv.uid == p.uid)
                .expect("pending evacuee is live");
            if self.live[i].host != h {
                self.pending_evac.push(p);
                continue;
            }
            let (vm_idx, vcpus, stats) = (
                self.live[i].vm_idx,
                self.live[i].vcpus,
                Rc::clone(&self.live[i].stats),
            );
            self.install_guest(h, vm_idx, p.uid, vcpus, Some(stats), None);
        }
    }

    /// Retries backed-up evacuations at an epoch barrier: each due entry
    /// gets one placement attempt, then exponential epoch backoff, then —
    /// past [`EVAC_MAX_RETRIES`] — a forced departure.
    fn service_pending(&mut self, now_ns: u64) {
        if self.pending_evac.is_empty() {
            return;
        }
        for mut p in std::mem::take(&mut self.pending_evac) {
            if p.next_retry_ns > now_ns {
                self.pending_evac.push(p);
                continue;
            }
            if self.try_migrate(SimTime::from_ns(now_ns), p.uid, p.snapshot.as_ref()) {
                continue;
            }
            p.retries += 1;
            if p.retries > EVAC_MAX_RETRIES {
                // Out of retries: the tenant's session is lost.
                self.evacuations_failed += 1;
                self.force_depart(SimTime::from_ns(now_ns), p.uid);
            } else {
                p.next_retry_ns = now_ns + (EPOCH_NS << p.retries);
                self.pending_evac.push(p);
            }
        }
    }

    /// Departs a pending evacuee that will never be placed. Its VM was
    /// already quiesced when the host failed; only the bookkeeping and
    /// the departure event remain (departing from a failed host is legal
    /// — departure releases placement wherever the VM sits).
    fn force_depart(&mut self, at: SimTime, uid: u32) {
        let i = self
            .live
            .iter()
            .position(|lv| lv.uid == uid)
            .expect("pending evacuee is live");
        let lv = self.live.remove(i);
        self.hosts[lv.host].committed -= lv.vcpus as u64;
        self.fleet_sink.emit(
            at,
            EventKind::VmDeparted {
                uid,
                host: lv.host as u16,
                vcpus: lv.vcpus as u16,
            },
        );
        let lifetime = at.ns().saturating_sub(lv.arrived_ns);
        let t = Self::snapshot(&lv, lifetime);
        self.tenants.push(t);
    }

    fn depart(&mut self, at: SimTime, uid: u32) {
        // Rejected arrivals still get a Depart in the schedule; there is
        // nothing to tear down for them.
        let Some(i) = self.live.iter().position(|lv| lv.uid == uid) else {
            return;
        };
        let lv = self.live.remove(i);
        // A stranded evacuee can reach its scheduled departure while
        // still waiting for headroom: it was already quiesced when its
        // host failed, and its pending retry must be cancelled.
        if let Some(pi) = self.pending_evac.iter().position(|p| p.uid == uid) {
            self.pending_evac.remove(pi);
        } else {
            self.hosts[lv.host].m.quiesce_vm(lv.vm_idx);
        }
        let host = &mut self.hosts[lv.host];
        host.committed -= lv.vcpus as u64;
        self.fleet_sink.emit(
            at,
            EventKind::VmDeparted {
                uid,
                host: lv.host as u16,
                vcpus: lv.vcpus as u16,
            },
        );
        let lifetime = at.ns().saturating_sub(lv.arrived_ns);
        let t = Self::snapshot(&lv, lifetime);
        self.tenants.push(t);
    }

    /// Vertical resize via per-vCPU bandwidth caps: `quota_pct` of a
    /// fixed period per vCPU, 100 restoring the uncapped allocation.
    fn resize(&mut self, uid: u32, quota_pct: u8) {
        let Some(lv) = self.live.iter().find(|lv| lv.uid == uid) else {
            return;
        };
        // Nothing to throttle while the VM's host is down; its frozen
        // machine must not be touched at a stale local clock.
        if self.hosts[lv.host].failed {
            return;
        }
        let qp = if quota_pct >= 100 {
            None
        } else {
            Some((RESIZE_PERIOD_NS * quota_pct as u64 / 100, RESIZE_PERIOD_NS))
        };
        for v in 0..lv.vcpus {
            self.hosts[lv.host].m.set_bandwidth(lv.vm_idx, v, qp);
        }
    }

    fn snapshot(lv: &LiveVm, lifetime_ns: u64) -> TenantStats {
        let s = lv.stats.borrow();
        TenantStats {
            uid: lv.uid,
            prio: lv.prio,
            vcpus: lv.vcpus,
            lifetime_ns,
            e2e: s.e2e.clone(),
            completed: s.completed,
            dropped: s.dropped,
        }
    }

    fn summary(&self) -> SloSummary {
        let util: Vec<Vec<f64>> = self.hosts.iter().map(|h| h.util.clone()).collect();
        let mut s = slo::summarize(
            &self.spec,
            self.tenants.clone(),
            &util,
            self.admitted,
            self.placed,
            self.rejected,
        );
        // Fold order is fleet collector then hosts by ascending id — a
        // pure function of host id, never of which worker finished a
        // round first (`trace::CheckReport::fold` keeps the first
        // violation in fold order).
        let report = |c: &SharedCollector| {
            c.borrow()
                .checker
                .as_ref()
                .expect("collector has a checker")
                .report()
        };
        let fleet_report = report(&self.fleet_collector);
        let folded = trace::CheckReport::fold(
            std::iter::once(fleet_report.clone())
                .chain(self.hosts.iter().map(|h| report(&h.collector))),
        );
        s.trace_events = folded.events;
        s.violations = folded.violations;
        s.first_law = folded.first_law();
        s.unplaced = fleet_report.unplaced_admissions;
        s.stranded = fleet_report.stranded_vms;
        s.host_failures = self.host_failures;
        s.migrations = self.migrations;
        s.evacuations_failed = self.evacuations_failed;
        s.shed_admissions = self.shed_admissions;
        s
    }
}

/// What the placement layer believes this VM's vCPUs can deliver, in
/// vcap units (0..=1024 per vCPU). vSched guests report what their
/// probing measured; CFS guests (and vSched instances that have not
/// probed yet, whose vcap defaults to full capacity) report nominal.
fn probed_capacity(m: &mut Machine, vm_idx: usize, vcpus: usize, mode: GuestMode) -> f64 {
    match mode {
        GuestMode::Cfs => 1024.0 * vcpus as f64,
        GuestMode::Vsched => m.with_vm(vm_idx, |g, _p| match vsched::instance(g) {
            Some(vs) => (0..vcpus)
                .map(|i| vs.vcap.capacity(VcpuId(i)).clamp(0.0, 1024.0))
                .sum(),
            None => 1024.0 * vcpus as f64,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::policy_by_name;

    fn small_spec() -> FleetSpec {
        let mut s = FleetSpec::small(2, 2, 1);
        s.max_live_vms = 4;
        s
    }

    #[test]
    fn cluster_runs_clean_and_accounts_every_admission() {
        let mut c = Cluster::new(
            small_spec(),
            GuestMode::Vsched,
            policy_by_name("first-fit").unwrap(),
            11,
        );
        let s = c.run();
        assert!(s.admitted > 0, "1s of churn must admit something");
        assert_eq!(s.admitted, s.placed + s.rejected);
        assert_eq!(s.violations, 0, "first law broken: {:?}", s.first_law);
        assert_eq!(s.unplaced, s.rejected as usize);
        assert!(s.completed > 0, "placed tenants must complete requests");
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let mut c = Cluster::new(
                small_spec(),
                GuestMode::Cfs,
                policy_by_name("worst-fit").unwrap(),
                seed,
            );
            let s = c.run();
            (
                s.admitted,
                s.placed,
                s.rejected,
                s.completed,
                s.p50_ms.to_bits(),
                s.p99_ms.to_bits(),
                s.fairness.to_bits(),
                s.trace_events,
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "seed must reach the outcome");
    }

    #[test]
    fn pool_stepping_matches_serial_byte_for_byte() {
        let digest = |workers: usize| {
            let mut c = Cluster::with_threads(
                small_spec(),
                GuestMode::Vsched,
                policy_by_name("probe-aware").unwrap(),
                9,
                NonZeroUsize::new(workers).unwrap(),
            );
            let s = c.run();
            let util: Vec<Vec<u64>> = c
                .host_util()
                .iter()
                .map(|h| h.iter().map(|u| u.to_bits()).collect())
                .collect();
            (
                s.admitted,
                s.placed,
                s.completed,
                s.p50_ms.to_bits(),
                s.p99_ms.to_bits(),
                s.trace_events,
                s.violations,
                util,
            )
        };
        let serial = digest(1);
        assert_eq!(serial, digest(2));
        assert_eq!(serial, digest(8), "workers beyond host count are capped");
    }

    #[test]
    fn effective_workers_cap_at_host_count() {
        let c = Cluster::with_threads(
            small_spec(),
            GuestMode::Cfs,
            policy_by_name("first-fit").unwrap(),
            1,
            NonZeroUsize::new(16).unwrap(),
        );
        assert_eq!(c.effective_workers(), 2, "2 hosts bound the pool");
    }

    #[test]
    fn placement_overflow_error_names_every_field() {
        let mut c = Cluster::new(
            small_spec(),
            GuestMode::Cfs,
            policy_by_name("first-fit").unwrap(),
            1,
        );
        c.refresh_host_views();
        let req = PlacementReq { uid: 7, vcpus: 99 };
        assert_eq!(
            c.ensure_fits(0, &req).unwrap_err(),
            "placement overflows host 0: committed 0 + vcpus 99 \
             exceeds overcommit_cap 3 (uid 7)"
        );
        assert!(
            c.ensure_fits(5, &req)
                .unwrap_err()
                .contains("failed or unknown"),
            "out-of-range hosts are named too"
        );
    }

    #[test]
    fn chaos_day_evacuates_every_resident() {
        use crate::chaos::{FleetChaosPlan, FleetChaosSpec};
        let spec = FleetSpec::small(3, 4, 2);
        let plan = FleetChaosPlan::generate(21, &FleetChaosSpec::for_fleet(3, spec.horizon_ns));
        let mut c = Cluster::new(
            spec,
            GuestMode::Vsched,
            policy_by_name("worst-fit").unwrap(),
            21,
        );
        c.set_chaos(plan);
        let s = c.run();
        assert!(s.host_failures > 0, "2s of chaos must strike");
        assert_eq!(s.violations, 0, "law broken: {:?}", s.first_law);
        assert_eq!(s.stranded, 0, "every victim migrated or departed");
        assert_eq!(s.admitted, s.placed + s.rejected);
        assert!(s.completed > 0);
    }

    #[test]
    fn tiny_cap_forces_clean_rejections() {
        let mut spec = small_spec();
        spec.overcommit_cap = 1;
        let mut c = Cluster::new(
            spec,
            GuestMode::Cfs,
            policy_by_name("probe-aware").unwrap(),
            3,
        );
        let s = c.run();
        assert!(s.rejected > 0, "cap of 1 vCPU per host must reject");
        assert_eq!(s.violations, 0);
    }
}
