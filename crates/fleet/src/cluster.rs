//! The lockstep multi-host cluster.
//!
//! A [`Cluster`] owns N `hostsim::Machine`s plus a compiled churn
//! schedule and replays it deterministically: hosts advance in lockstep
//! on the shared virtual clock (each `Machine` keeps its own event queue,
//! stepped to a common barrier via [`hostsim::Machine::step_until`]), and
//! every placement decision is emitted into a fleet-scoped trace
//! collector whose invariant checker enforces the overcommit cap and
//! single-placement laws independently of the cluster's own bookkeeping.
//!
//! Hosts share no state *between* barriers, so [`Cluster::run`] shards
//! the stepping itself across a scoped worker pool ([`crate::pstep`]):
//! every epoch boundary and every placement event is a join barrier, and
//! all cross-host decisions (admission, placement, SLO accounting,
//! fleet-collector events) happen serially on the coordinator between
//! rounds. Worker count ([`Cluster::with_threads`], default
//! [`crate::threads::default_fleet_threads`]) never changes output —
//! per-host RNG streams are forked at construction, utilization samples
//! live per host, and checker reports fold in host-id order — which
//! `tests/parallel_step.rs` and the `ci.sh` fleet smoke pin down
//! byte-for-byte.
//!
//! Per-machine collectors stay separate from the fleet collector: vCPU
//! and task ids restart at zero on every host, so mixing their streams
//! would alias ids and trip the per-host conservation laws.

use crate::lifecycle::{self, FleetSpec, LifecycleEvent, VmOp};
use crate::placement::{HostView, PlacementPolicy, PlacementReq};
use crate::pstep::StepPool;
use crate::slo::{self, SloSummary, TenantStats};
use crate::threads;
use guestos::{GuestConfig, VcpuId};
use hostsim::scenario::ScenarioBuilder;
use hostsim::topology::HostSpec;
use hostsim::Machine;
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::cell::RefCell;
use std::num::NonZeroUsize;
use std::rc::Rc;
use trace::{Collector, EventKind, PriorityClass, SharedCollector, TraceSink};
use vsched::VschedConfig;
use workloads::latency::{LatencyServer, LatencyServerCfg};
use workloads::{work_ms, LatencyStats};

/// Which guest scheduler the fleet's VMs boot with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestMode {
    /// Plain CFS guests: no probing, the placement layer sees nominal
    /// capacity only.
    Cfs,
    /// vSched guests (`VschedConfig::full()`): vcap probing feeds the
    /// probe-aware placement policy real capacity estimates.
    Vsched,
}

impl GuestMode {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            GuestMode::Cfs => "CFS",
            GuestMode::Vsched => "vSched",
        }
    }
}

/// Lockstep barrier granularity. Small enough that cross-host placement
/// decisions see fresh probing state, large enough to amortize the
/// per-host re-entry cost.
const EPOCH_NS: u64 = 50 * MS;

/// CFS bandwidth period used for vertical resizes.
const RESIZE_PERIOD_NS: u64 = 4 * MS;

pub(crate) struct HostSim {
    m: Machine,
    collector: SharedCollector,
    /// Committed (placed, not departed) vCPUs — the checker re-verifies
    /// this via the occupancy carried on every `VmPlaced` event.
    committed: u64,
    /// Active-ns total at the previous utilization sample.
    prev_active_ns: u64,
    /// Sampled utilization per epoch (0..=1); capacity preallocated for
    /// the whole horizon at construction so epochs never reallocate.
    util: Vec<f64>,
}

impl HostSim {
    /// One host's share of a barrier round: step to the barrier and, on
    /// epoch boundaries, fold the utilization sample in place. Touches
    /// only this host's state, so rounds can run it from any worker.
    pub(crate) fn step_round(&mut self, until: SimTime, sample_now_ns: Option<u64>, threads: u64) {
        self.m.step_until(until);
        if let Some(now_ns) = sample_now_ns {
            // Δ active-ns across all of the host's vCPUs over
            // `threads × window`.
            let active = self.m.total_active_ns();
            let window = EPOCH_NS.min(now_ns.max(1));
            let used = active.saturating_sub(self.prev_active_ns);
            self.prev_active_ns = active;
            self.util.push(used as f64 / (threads * window) as f64);
        }
    }
}

struct LiveVm {
    uid: u32,
    prio: PriorityClass,
    vcpus: usize,
    host: usize,
    vm_idx: usize,
    stats: Rc<RefCell<LatencyStats>>,
    arrived_ns: u64,
}

/// A deterministic multi-host cluster run: `(spec, mode, policy, seed)`
/// fully determines the churn schedule, every placement decision, and
/// every latency sample.
pub struct Cluster {
    spec: FleetSpec,
    mode: GuestMode,
    policy: Box<dyn PlacementPolicy>,
    hosts: Vec<HostSim>,
    schedule: Vec<LifecycleEvent>,
    fleet_sink: TraceSink,
    fleet_collector: SharedCollector,
    live: Vec<LiveVm>,
    tenants: Vec<TenantStats>,
    wl_rng: SimRng,
    /// Requested stepping workers; effective count also caps at the host
    /// count ([`Cluster::effective_workers`]).
    fleet_threads: NonZeroUsize,
    /// Reusable [`HostView`] buffer for placement decisions, preallocated
    /// at construction so arrivals never allocate a fresh snapshot.
    views_scratch: Vec<HostView>,
    admitted: u64,
    placed: u64,
    rejected: u64,
}

impl Cluster {
    /// Builds the cluster with the process-default stepping worker count
    /// ([`threads::default_fleet_threads`]); see [`Cluster::with_threads`].
    pub fn new(
        spec: FleetSpec,
        mode: GuestMode,
        policy: Box<dyn PlacementPolicy>,
        seed: u64,
    ) -> Cluster {
        Self::with_threads(spec, mode, policy, seed, threads::default_fleet_threads())
    }

    /// Builds the cluster: N started machines with per-host trace
    /// checkers, the compiled churn schedule, and an empty fleet-level
    /// collector for placement events. `fleet_threads` bounds the
    /// stepping pool; any value produces byte-identical output.
    pub fn with_threads(
        spec: FleetSpec,
        mode: GuestMode,
        policy: Box<dyn PlacementPolicy>,
        seed: u64,
        fleet_threads: NonZeroUsize,
    ) -> Cluster {
        spec.validate().expect("valid spec");
        let schedule = lifecycle::generate(&spec, seed);
        // One sample per epoch plus the horizon remainder.
        let epochs = (spec.horizon_ns / EPOCH_NS + 2) as usize;
        let mut hosts = Vec::with_capacity(spec.hosts);
        for h in 0..spec.hosts {
            // Per-host seed: mixed so host streams are independent but a
            // host's stream is stable when the fleet size changes. Forked
            // here, never shared — each worker only ever advances the
            // streams of hosts it has claimed.
            let host_seed = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(h as u64 + 1));
            let mut m =
                ScenarioBuilder::new(HostSpec::flat(spec.threads_per_host), host_seed).build();
            let (_, collector) = TraceSink::shared(Collector::default().with_checker());
            m.attach_trace(&collector);
            m.start();
            hosts.push(HostSim {
                m,
                collector,
                committed: 0,
                prev_active_ns: 0,
                util: Vec::with_capacity(epochs),
            });
        }
        let (fleet_sink, fleet_collector) = TraceSink::shared(Collector::default().with_checker());
        let views_scratch = Vec::with_capacity(spec.hosts);
        Cluster {
            spec,
            mode,
            policy,
            hosts,
            schedule,
            fleet_sink,
            fleet_collector,
            live: Vec::new(),
            tenants: Vec::new(),
            wl_rng: SimRng::new(seed ^ 0x0F1E_E75E_ED00),
            fleet_threads,
            views_scratch,
            admitted: 0,
            placed: 0,
            rejected: 0,
        }
    }

    /// The compiled churn schedule (for tests and inspection).
    pub fn schedule(&self) -> &[LifecycleEvent] {
        &self.schedule
    }

    /// Simulation events dispatched across every host machine — the
    /// cluster-stepping throughput denominator the bench harness tracks.
    pub fn events_dispatched(&self) -> u64 {
        self.hosts.iter().map(|h| h.m.events_dispatched).sum()
    }

    /// Stepping workers a run actually uses: the requested count capped
    /// at the host count (a worker per host saturates every round).
    pub fn effective_workers(&self) -> usize {
        self.fleet_threads.get().min(self.hosts.len().max(1))
    }

    /// Per-host sampled utilization series, in host-id order (what the
    /// byte-identity tests compare across worker counts).
    pub fn host_util(&self) -> Vec<&[f64]> {
        self.hosts.iter().map(|h| h.util.as_slice()).collect()
    }

    /// Replays the whole schedule to the horizon and folds the outcome
    /// into an [`SloSummary`].
    ///
    /// With more than one effective worker the host stepping runs on a
    /// scoped pool kept alive for the whole run; one worker (or one
    /// host) takes the plain serial path, which doubles as the baseline
    /// the parallel path must match byte-for-byte.
    pub fn run(&mut self) -> SloSummary {
        let workers = self.effective_workers();
        if workers <= 1 {
            return self.run_with(None);
        }
        let pool = StepPool::new();
        std::thread::scope(|s| {
            // The coordinator claims round work too, so spawn one fewer.
            for _ in 0..workers - 1 {
                s.spawn(|| pool.worker_loop());
            }
            let out = self.run_with(Some(&pool));
            pool.shutdown();
            out
        })
    }

    fn run_with(&mut self, pool: Option<&StepPool>) -> SloSummary {
        let horizon = self.spec.horizon_ns;
        let schedule = std::mem::take(&mut self.schedule);
        let mut next = 0usize;
        let mut epoch_end = EPOCH_NS.min(horizon);
        loop {
            while next < schedule.len() && schedule[next].at.ns() <= epoch_end {
                let ev = schedule[next];
                next += 1;
                // Placement barrier: every host reaches the decision
                // instant before any cross-host state is read or written.
                self.step_all(ev.at, None, pool);
                self.apply(ev);
            }
            // Epoch barrier; the utilization sample folds into each host
            // on whichever worker stepped it.
            self.step_all(SimTime::from_ns(epoch_end), Some(epoch_end), pool);
            if epoch_end >= horizon {
                break;
            }
            epoch_end = (epoch_end + EPOCH_NS).min(horizon);
        }
        self.schedule = schedule;
        // Still-live tenants are snapshotted against the horizon; they
        // stay placed, which the checker permits (placement is released
        // only by an explicit depart).
        for i in 0..self.live.len() {
            let lifetime = horizon.saturating_sub(self.live[i].arrived_ns);
            let t = Self::snapshot(&self.live[i], lifetime);
            self.tenants.push(t);
        }
        self.summary()
    }

    /// Advances every host to the same barrier on the virtual clock,
    /// serially or through the stepping pool.
    fn step_all(&mut self, until: SimTime, sample_now_ns: Option<u64>, pool: Option<&StepPool>) {
        let threads = self.spec.threads_per_host as u64;
        match pool {
            Some(p) => p.run_round(&mut self.hosts, until, sample_now_ns, threads),
            None => {
                for h in &mut self.hosts {
                    h.step_round(until, sample_now_ns, threads);
                }
            }
        }
    }

    fn apply(&mut self, ev: LifecycleEvent) {
        match ev.op {
            VmOp::Arrive { uid, vcpus, prio } => self.arrive(ev.at, uid, vcpus, prio),
            VmOp::Depart { uid } => self.depart(ev.at, uid),
            VmOp::Resize { uid, quota_pct } => self.resize(uid, quota_pct),
        }
    }

    /// Refreshes the reusable snapshot of every host the policy can
    /// choose from (held in `views_scratch`; placement events are too
    /// frequent to allocate a fresh snapshot per decision).
    fn refresh_host_views(&mut self) {
        let mode = self.mode;
        let views = &mut self.views_scratch;
        views.clear();
        for (h, host) in self.hosts.iter_mut().enumerate() {
            let mut probed = 0.0;
            for lv in self.live.iter().filter(|lv| lv.host == h) {
                probed += probed_capacity(&mut host.m, lv.vm_idx, lv.vcpus, mode);
            }
            views.push(HostView {
                host: h,
                threads: self.spec.threads_per_host,
                committed: host.committed,
                cap: self.spec.overcommit_cap,
                probed_capacity: probed,
            });
        }
    }

    fn arrive(&mut self, at: SimTime, uid: u32, vcpus: usize, prio: PriorityClass) {
        self.admitted += 1;
        self.fleet_sink.emit(
            at,
            EventKind::VmAdmitted {
                uid,
                vcpus: vcpus as u16,
                prio,
            },
        );
        self.refresh_host_views();
        let req = PlacementReq { uid, vcpus };
        let Some(h) = self.policy.place(&req, &self.views_scratch) else {
            self.rejected += 1;
            return;
        };
        assert!(
            self.views_scratch[h].fits(&req),
            "policy must respect the cap"
        );
        let host = &mut self.hosts[h];
        let threads = self.spec.threads_per_host;
        let vm_idx = host.m.add_vm(
            GuestConfig::new(vcpus),
            vec![(0..threads).collect(); vcpus],
            1024,
            None,
        );
        if self.mode == GuestMode::Vsched {
            host.m
                .with_vm(vm_idx, |g, p| vsched::install(g, p, VschedConfig::full()));
        }
        // Open-loop latency server at ~50% of the VM's nominal capacity:
        // the same load point the single-host experiments use.
        let service = work_ms(0.5);
        let interarrival = service / 1024.0 / vcpus as f64 / 0.5;
        let (server, stats) = LatencyServer::new(
            LatencyServerCfg::new(vcpus, service, interarrival),
            self.wl_rng.fork(uid as u64),
        );
        host.m.set_workload(vm_idx, Box::new(server));
        host.m.start_vm_workload(vm_idx);
        host.committed += vcpus as u64;
        self.placed += 1;
        self.fleet_sink.emit(
            at,
            EventKind::VmPlaced {
                uid,
                host: h as u16,
                vcpus: vcpus as u16,
                occupied: host.committed,
                cap: self.spec.overcommit_cap,
            },
        );
        self.live.push(LiveVm {
            uid,
            prio,
            vcpus,
            host: h,
            vm_idx,
            stats,
            arrived_ns: at.ns(),
        });
    }

    fn depart(&mut self, at: SimTime, uid: u32) {
        // Rejected arrivals still get a Depart in the schedule; there is
        // nothing to tear down for them.
        let Some(i) = self.live.iter().position(|lv| lv.uid == uid) else {
            return;
        };
        let lv = self.live.remove(i);
        let host = &mut self.hosts[lv.host];
        host.m.quiesce_vm(lv.vm_idx);
        host.committed -= lv.vcpus as u64;
        self.fleet_sink.emit(
            at,
            EventKind::VmDeparted {
                uid,
                host: lv.host as u16,
                vcpus: lv.vcpus as u16,
            },
        );
        let lifetime = at.ns().saturating_sub(lv.arrived_ns);
        let t = Self::snapshot(&lv, lifetime);
        self.tenants.push(t);
    }

    /// Vertical resize via per-vCPU bandwidth caps: `quota_pct` of a
    /// fixed period per vCPU, 100 restoring the uncapped allocation.
    fn resize(&mut self, uid: u32, quota_pct: u8) {
        let Some(lv) = self.live.iter().find(|lv| lv.uid == uid) else {
            return;
        };
        let qp = if quota_pct >= 100 {
            None
        } else {
            Some((RESIZE_PERIOD_NS * quota_pct as u64 / 100, RESIZE_PERIOD_NS))
        };
        for v in 0..lv.vcpus {
            self.hosts[lv.host].m.set_bandwidth(lv.vm_idx, v, qp);
        }
    }

    fn snapshot(lv: &LiveVm, lifetime_ns: u64) -> TenantStats {
        let s = lv.stats.borrow();
        TenantStats {
            uid: lv.uid,
            prio: lv.prio,
            vcpus: lv.vcpus,
            lifetime_ns,
            e2e: s.e2e.clone(),
            completed: s.completed,
            dropped: s.dropped,
        }
    }

    fn summary(&self) -> SloSummary {
        let util: Vec<Vec<f64>> = self.hosts.iter().map(|h| h.util.clone()).collect();
        let mut s = slo::summarize(
            &self.spec,
            self.tenants.clone(),
            &util,
            self.admitted,
            self.placed,
            self.rejected,
        );
        // Fold order is fleet collector then hosts by ascending id — a
        // pure function of host id, never of which worker finished a
        // round first (`trace::CheckReport::fold` keeps the first
        // violation in fold order).
        let report = |c: &SharedCollector| {
            c.borrow()
                .checker
                .as_ref()
                .expect("collector has a checker")
                .report()
        };
        let fleet_report = report(&self.fleet_collector);
        let folded = trace::CheckReport::fold(
            std::iter::once(fleet_report.clone())
                .chain(self.hosts.iter().map(|h| report(&h.collector))),
        );
        s.trace_events = folded.events;
        s.violations = folded.violations;
        s.first_law = folded.first_law();
        s.unplaced = fleet_report.unplaced_admissions;
        s
    }
}

/// What the placement layer believes this VM's vCPUs can deliver, in
/// vcap units (0..=1024 per vCPU). vSched guests report what their
/// probing measured; CFS guests (and vSched instances that have not
/// probed yet, whose vcap defaults to full capacity) report nominal.
fn probed_capacity(m: &mut Machine, vm_idx: usize, vcpus: usize, mode: GuestMode) -> f64 {
    match mode {
        GuestMode::Cfs => 1024.0 * vcpus as f64,
        GuestMode::Vsched => m.with_vm(vm_idx, |g, _p| match vsched::instance(g) {
            Some(vs) => (0..vcpus)
                .map(|i| vs.vcap.capacity(VcpuId(i)).clamp(0.0, 1024.0))
                .sum(),
            None => 1024.0 * vcpus as f64,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::policy_by_name;

    fn small_spec() -> FleetSpec {
        let mut s = FleetSpec::small(2, 2, 1);
        s.max_live_vms = 4;
        s
    }

    #[test]
    fn cluster_runs_clean_and_accounts_every_admission() {
        let mut c = Cluster::new(
            small_spec(),
            GuestMode::Vsched,
            policy_by_name("first-fit").unwrap(),
            11,
        );
        let s = c.run();
        assert!(s.admitted > 0, "1s of churn must admit something");
        assert_eq!(s.admitted, s.placed + s.rejected);
        assert_eq!(s.violations, 0, "first law broken: {:?}", s.first_law);
        assert_eq!(s.unplaced, s.rejected as usize);
        assert!(s.completed > 0, "placed tenants must complete requests");
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let mut c = Cluster::new(
                small_spec(),
                GuestMode::Cfs,
                policy_by_name("worst-fit").unwrap(),
                seed,
            );
            let s = c.run();
            (
                s.admitted,
                s.placed,
                s.rejected,
                s.completed,
                s.p50_ms.to_bits(),
                s.p99_ms.to_bits(),
                s.fairness.to_bits(),
                s.trace_events,
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "seed must reach the outcome");
    }

    #[test]
    fn pool_stepping_matches_serial_byte_for_byte() {
        let digest = |workers: usize| {
            let mut c = Cluster::with_threads(
                small_spec(),
                GuestMode::Vsched,
                policy_by_name("probe-aware").unwrap(),
                9,
                NonZeroUsize::new(workers).unwrap(),
            );
            let s = c.run();
            let util: Vec<Vec<u64>> = c
                .host_util()
                .iter()
                .map(|h| h.iter().map(|u| u.to_bits()).collect())
                .collect();
            (
                s.admitted,
                s.placed,
                s.completed,
                s.p50_ms.to_bits(),
                s.p99_ms.to_bits(),
                s.trace_events,
                s.violations,
                util,
            )
        };
        let serial = digest(1);
        assert_eq!(serial, digest(2));
        assert_eq!(serial, digest(8), "workers beyond host count are capped");
    }

    #[test]
    fn effective_workers_cap_at_host_count() {
        let c = Cluster::with_threads(
            small_spec(),
            GuestMode::Cfs,
            policy_by_name("first-fit").unwrap(),
            1,
            NonZeroUsize::new(16).unwrap(),
        );
        assert_eq!(c.effective_workers(), 2, "2 hosts bound the pool");
    }

    #[test]
    fn tiny_cap_forces_clean_rejections() {
        let mut spec = small_spec();
        spec.overcommit_cap = 1;
        let mut c = Cluster::new(
            spec,
            GuestMode::Cfs,
            policy_by_name("probe-aware").unwrap(),
            3,
        );
        let s = c.run();
        assert!(s.rejected > 0, "cap of 1 vCPU per host must reject");
        assert_eq!(s.violations, 0);
    }
}
