//! The lockstep multi-host cluster.
//!
//! A [`Cluster`] owns N `hostsim::Machine`s plus a compiled churn
//! schedule and replays it deterministically: hosts advance in lockstep
//! on the shared virtual clock (each `Machine` keeps its own event queue,
//! stepped to a common barrier via [`hostsim::Machine::step_until`]), and
//! every placement decision is emitted into a fleet-scoped trace
//! collector whose invariant checker enforces the overcommit cap and
//! single-placement laws independently of the cluster's own bookkeeping.
//!
//! Per-machine collectors stay separate from the fleet collector: vCPU
//! and task ids restart at zero on every host, so mixing their streams
//! would alias ids and trip the per-host conservation laws.

use crate::lifecycle::{self, FleetSpec, LifecycleEvent, VmOp};
use crate::placement::{HostView, PlacementPolicy, PlacementReq};
use crate::slo::{self, SloSummary, TenantStats};
use guestos::{GuestConfig, VcpuId};
use hostsim::scenario::ScenarioBuilder;
use hostsim::topology::HostSpec;
use hostsim::Machine;
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use trace::{Collector, EventKind, PriorityClass, SharedCollector, TraceSink};
use vsched::VschedConfig;
use workloads::latency::{LatencyServer, LatencyServerCfg};
use workloads::{work_ms, LatencyStats};

/// Which guest scheduler the fleet's VMs boot with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestMode {
    /// Plain CFS guests: no probing, the placement layer sees nominal
    /// capacity only.
    Cfs,
    /// vSched guests (`VschedConfig::full()`): vcap probing feeds the
    /// probe-aware placement policy real capacity estimates.
    Vsched,
}

impl GuestMode {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            GuestMode::Cfs => "CFS",
            GuestMode::Vsched => "vSched",
        }
    }
}

/// Lockstep barrier granularity. Small enough that cross-host placement
/// decisions see fresh probing state, large enough to amortize the
/// per-host re-entry cost.
const EPOCH_NS: u64 = 50 * MS;

/// CFS bandwidth period used for vertical resizes.
const RESIZE_PERIOD_NS: u64 = 4 * MS;

struct HostSim {
    m: Machine,
    collector: SharedCollector,
    /// Committed (placed, not departed) vCPUs — the checker re-verifies
    /// this via the occupancy carried on every `VmPlaced` event.
    committed: u64,
    /// Active-ns total at the previous utilization sample.
    prev_active_ns: u64,
    /// Sampled utilization per epoch (0..=1).
    util: Vec<f64>,
}

struct LiveVm {
    uid: u32,
    prio: PriorityClass,
    vcpus: usize,
    host: usize,
    vm_idx: usize,
    stats: Rc<RefCell<LatencyStats>>,
    arrived_ns: u64,
}

/// A deterministic multi-host cluster run: `(spec, mode, policy, seed)`
/// fully determines the churn schedule, every placement decision, and
/// every latency sample.
pub struct Cluster {
    spec: FleetSpec,
    mode: GuestMode,
    policy: Box<dyn PlacementPolicy>,
    hosts: Vec<HostSim>,
    schedule: Vec<LifecycleEvent>,
    fleet_sink: TraceSink,
    fleet_collector: SharedCollector,
    live: Vec<LiveVm>,
    tenants: Vec<TenantStats>,
    wl_rng: SimRng,
    admitted: u64,
    placed: u64,
    rejected: u64,
}

impl Cluster {
    /// Builds the cluster: N started machines with per-host trace
    /// checkers, the compiled churn schedule, and an empty fleet-level
    /// collector for placement events.
    pub fn new(
        spec: FleetSpec,
        mode: GuestMode,
        policy: Box<dyn PlacementPolicy>,
        seed: u64,
    ) -> Cluster {
        spec.validate().expect("valid spec");
        let schedule = lifecycle::generate(&spec, seed);
        let mut hosts = Vec::with_capacity(spec.hosts);
        for h in 0..spec.hosts {
            // Per-host seed: mixed so host streams are independent but a
            // host's stream is stable when the fleet size changes.
            let host_seed = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(h as u64 + 1));
            let mut m =
                ScenarioBuilder::new(HostSpec::flat(spec.threads_per_host), host_seed).build();
            let (_, collector) = TraceSink::shared(Collector::default().with_checker());
            m.attach_trace(&collector);
            m.start();
            hosts.push(HostSim {
                m,
                collector,
                committed: 0,
                prev_active_ns: 0,
                util: Vec::new(),
            });
        }
        let (fleet_sink, fleet_collector) = TraceSink::shared(Collector::default().with_checker());
        Cluster {
            spec,
            mode,
            policy,
            hosts,
            schedule,
            fleet_sink,
            fleet_collector,
            live: Vec::new(),
            tenants: Vec::new(),
            wl_rng: SimRng::new(seed ^ 0x0F1E_E75E_ED00),
            admitted: 0,
            placed: 0,
            rejected: 0,
        }
    }

    /// The compiled churn schedule (for tests and inspection).
    pub fn schedule(&self) -> &[LifecycleEvent] {
        &self.schedule
    }

    /// Simulation events dispatched across every host machine — the
    /// cluster-stepping throughput denominator the bench harness tracks.
    pub fn events_dispatched(&self) -> u64 {
        self.hosts.iter().map(|h| h.m.events_dispatched).sum()
    }

    /// Replays the whole schedule to the horizon and folds the outcome
    /// into an [`SloSummary`].
    pub fn run(&mut self) -> SloSummary {
        let horizon = self.spec.horizon_ns;
        let schedule = std::mem::take(&mut self.schedule);
        let mut next = 0usize;
        let mut epoch_end = EPOCH_NS.min(horizon);
        loop {
            while next < schedule.len() && schedule[next].at.ns() <= epoch_end {
                let ev = schedule[next];
                next += 1;
                self.step_all(ev.at);
                self.apply(ev);
            }
            self.step_all(SimTime::from_ns(epoch_end));
            self.sample_util(epoch_end);
            if epoch_end >= horizon {
                break;
            }
            epoch_end = (epoch_end + EPOCH_NS).min(horizon);
        }
        self.schedule = schedule;
        // Still-live tenants are snapshotted against the horizon; they
        // stay placed, which the checker permits (placement is released
        // only by an explicit depart).
        for i in 0..self.live.len() {
            let lifetime = horizon.saturating_sub(self.live[i].arrived_ns);
            let t = Self::snapshot(&self.live[i], lifetime);
            self.tenants.push(t);
        }
        self.summary()
    }

    /// Advances every host to the same barrier on the virtual clock.
    fn step_all(&mut self, until: SimTime) {
        for h in &mut self.hosts {
            h.m.step_until(until);
        }
    }

    fn apply(&mut self, ev: LifecycleEvent) {
        match ev.op {
            VmOp::Arrive { uid, vcpus, prio } => self.arrive(ev.at, uid, vcpus, prio),
            VmOp::Depart { uid } => self.depart(ev.at, uid),
            VmOp::Resize { uid, quota_pct } => self.resize(uid, quota_pct),
        }
    }

    /// Snapshot of every host the policy can choose from.
    fn host_views(&mut self) -> Vec<HostView> {
        let mode = self.mode;
        let mut views = Vec::with_capacity(self.hosts.len());
        for (h, host) in self.hosts.iter_mut().enumerate() {
            let mut probed = 0.0;
            for lv in self.live.iter().filter(|lv| lv.host == h) {
                probed += probed_capacity(&mut host.m, lv.vm_idx, lv.vcpus, mode);
            }
            views.push(HostView {
                host: h,
                threads: self.spec.threads_per_host,
                committed: host.committed,
                cap: self.spec.overcommit_cap,
                probed_capacity: probed,
            });
        }
        views
    }

    fn arrive(&mut self, at: SimTime, uid: u32, vcpus: usize, prio: PriorityClass) {
        self.admitted += 1;
        self.fleet_sink.emit(
            at,
            EventKind::VmAdmitted {
                uid,
                vcpus: vcpus as u16,
                prio,
            },
        );
        let views = self.host_views();
        let req = PlacementReq { uid, vcpus };
        let Some(h) = self.policy.place(&req, &views) else {
            self.rejected += 1;
            return;
        };
        assert!(views[h].fits(&req), "policy must respect the cap");
        let host = &mut self.hosts[h];
        let threads = self.spec.threads_per_host;
        let vm_idx = host.m.add_vm(
            GuestConfig::new(vcpus),
            vec![(0..threads).collect(); vcpus],
            1024,
            None,
        );
        if self.mode == GuestMode::Vsched {
            host.m
                .with_vm(vm_idx, |g, p| vsched::install(g, p, VschedConfig::full()));
        }
        // Open-loop latency server at ~50% of the VM's nominal capacity:
        // the same load point the single-host experiments use.
        let service = work_ms(0.5);
        let interarrival = service / 1024.0 / vcpus as f64 / 0.5;
        let (server, stats) = LatencyServer::new(
            LatencyServerCfg::new(vcpus, service, interarrival),
            self.wl_rng.fork(uid as u64),
        );
        host.m.set_workload(vm_idx, Box::new(server));
        host.m.start_vm_workload(vm_idx);
        host.committed += vcpus as u64;
        self.placed += 1;
        self.fleet_sink.emit(
            at,
            EventKind::VmPlaced {
                uid,
                host: h as u16,
                vcpus: vcpus as u16,
                occupied: host.committed,
                cap: self.spec.overcommit_cap,
            },
        );
        self.live.push(LiveVm {
            uid,
            prio,
            vcpus,
            host: h,
            vm_idx,
            stats,
            arrived_ns: at.ns(),
        });
    }

    fn depart(&mut self, at: SimTime, uid: u32) {
        // Rejected arrivals still get a Depart in the schedule; there is
        // nothing to tear down for them.
        let Some(i) = self.live.iter().position(|lv| lv.uid == uid) else {
            return;
        };
        let lv = self.live.remove(i);
        let host = &mut self.hosts[lv.host];
        host.m.quiesce_vm(lv.vm_idx);
        host.committed -= lv.vcpus as u64;
        self.fleet_sink.emit(
            at,
            EventKind::VmDeparted {
                uid,
                host: lv.host as u16,
                vcpus: lv.vcpus as u16,
            },
        );
        let lifetime = at.ns().saturating_sub(lv.arrived_ns);
        let t = Self::snapshot(&lv, lifetime);
        self.tenants.push(t);
    }

    /// Vertical resize via per-vCPU bandwidth caps: `quota_pct` of a
    /// fixed period per vCPU, 100 restoring the uncapped allocation.
    fn resize(&mut self, uid: u32, quota_pct: u8) {
        let Some(lv) = self.live.iter().find(|lv| lv.uid == uid) else {
            return;
        };
        let qp = if quota_pct >= 100 {
            None
        } else {
            Some((RESIZE_PERIOD_NS * quota_pct as u64 / 100, RESIZE_PERIOD_NS))
        };
        for v in 0..lv.vcpus {
            self.hosts[lv.host].m.set_bandwidth(lv.vm_idx, v, qp);
        }
    }

    fn snapshot(lv: &LiveVm, lifetime_ns: u64) -> TenantStats {
        let s = lv.stats.borrow();
        TenantStats {
            uid: lv.uid,
            prio: lv.prio,
            vcpus: lv.vcpus,
            lifetime_ns,
            e2e: s.e2e.clone(),
            completed: s.completed,
            dropped: s.dropped,
        }
    }

    /// Per-host utilization over the last epoch: Δ active-ns across all
    /// of the host's vCPUs over `threads × window`.
    fn sample_util(&mut self, now_ns: u64) {
        let threads = self.spec.threads_per_host as u64;
        for h in &mut self.hosts {
            let active: u64 = (0..h.m.vcpus.len()).map(|gv| h.m.vcpu_active_ns(gv)).sum();
            let window = EPOCH_NS.min(now_ns.max(1));
            let used = active.saturating_sub(h.prev_active_ns);
            h.prev_active_ns = active;
            h.util.push(used as f64 / (threads * window) as f64);
        }
    }

    fn summary(&self) -> SloSummary {
        let util: Vec<Vec<f64>> = self.hosts.iter().map(|h| h.util.clone()).collect();
        let mut s = slo::summarize(
            &self.spec,
            self.tenants.clone(),
            &util,
            self.admitted,
            self.placed,
            self.rejected,
        );
        let reports: Vec<trace::CheckReport> = std::iter::once(&self.fleet_collector)
            .chain(self.hosts.iter().map(|h| &h.collector))
            .map(|c| {
                c.borrow()
                    .checker
                    .as_ref()
                    .expect("collector has a checker")
                    .report()
            })
            .collect();
        s.trace_events = reports.iter().map(|r| r.events).sum();
        s.violations = reports.iter().map(|r| r.violations).sum();
        s.first_law = reports.iter().find_map(|r| r.first_law());
        s.unplaced = reports[0].unplaced_admissions;
        s
    }
}

/// What the placement layer believes this VM's vCPUs can deliver, in
/// vcap units (0..=1024 per vCPU). vSched guests report what their
/// probing measured; CFS guests (and vSched instances that have not
/// probed yet, whose vcap defaults to full capacity) report nominal.
fn probed_capacity(m: &mut Machine, vm_idx: usize, vcpus: usize, mode: GuestMode) -> f64 {
    match mode {
        GuestMode::Cfs => 1024.0 * vcpus as f64,
        GuestMode::Vsched => m.with_vm(vm_idx, |g, _p| match vsched::instance(g) {
            Some(vs) => (0..vcpus)
                .map(|i| vs.vcap.capacity(VcpuId(i)).clamp(0.0, 1024.0))
                .sum(),
            None => 1024.0 * vcpus as f64,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::policy_by_name;

    fn small_spec() -> FleetSpec {
        let mut s = FleetSpec::small(2, 2, 1);
        s.max_live_vms = 4;
        s
    }

    #[test]
    fn cluster_runs_clean_and_accounts_every_admission() {
        let mut c = Cluster::new(
            small_spec(),
            GuestMode::Vsched,
            policy_by_name("first-fit").unwrap(),
            11,
        );
        let s = c.run();
        assert!(s.admitted > 0, "1s of churn must admit something");
        assert_eq!(s.admitted, s.placed + s.rejected);
        assert_eq!(s.violations, 0, "first law broken: {:?}", s.first_law);
        assert_eq!(s.unplaced, s.rejected as usize);
        assert!(s.completed > 0, "placed tenants must complete requests");
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let mut c = Cluster::new(
                small_spec(),
                GuestMode::Cfs,
                policy_by_name("worst-fit").unwrap(),
                seed,
            );
            let s = c.run();
            (
                s.admitted,
                s.placed,
                s.rejected,
                s.completed,
                s.p50_ms.to_bits(),
                s.p99_ms.to_bits(),
                s.fairness.to_bits(),
                s.trace_events,
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "seed must reach the outcome");
    }

    #[test]
    fn tiny_cap_forces_clean_rejections() {
        let mut spec = small_spec();
        spec.overcommit_cap = 1;
        let mut c = Cluster::new(
            spec,
            GuestMode::Cfs,
            policy_by_name("probe-aware").unwrap(),
            3,
        );
        let s = c.run();
        assert!(s.rejected > 0, "cap of 1 vCPU per host must reject");
        assert_eq!(s.violations, 0);
    }
}
