//! `fleettrace` — generate, validate, and replay fleet traces.
//!
//! ```text
//! fleettrace profiles
//! fleettrace gen --profile sap-diurnal [--seed N] [--horizon-secs S] [--out FILE]
//! fleettrace validate FILE
//! fleettrace replay FILE [--policy P] [--mode cfs|vsched] [--hosts N] [--threads N] [--seed N]
//!     [--fleet-threads N] [--chaos-seed N] [--migration handoff|cold-reprobe]
//! ```
//!
//! `gen` defaults the seed to the profile's canonical day seed, so
//! `fleettrace gen --profile X` always reproduces the same day the suite
//! replays. `validate` exits nonzero with a line-precise error for any
//! corrupt trace, and additionally gates the byte-level round trip: a
//! trace that parses but is not in the codec's canonical encoding is
//! rejected too. `replay` runs the trace through a full cluster and
//! exits nonzero if any trace law is violated; `--fleet-threads` bounds
//! the cluster's host-stepping worker pool (default: available
//! parallelism) and never changes the replay's output — only wall clock.
//! `--chaos-seed` overlays a seed-generated host-failure plan (crashes,
//! maintenance drains, transient degradations) on the replayed day;
//! `--migration` picks whether drain evacuations hand probe state to the
//! destination (`handoff`, the default) or re-probe cold.

use std::process::ExitCode;
use vsched_fleet::{
    day_seed, parse_fleet_threads, policy_by_name, profile_by_name, spec_for_trace, synthesize,
    Cluster, FleetChaosPlan, FleetChaosSpec, FleetTrace, GuestMode, MigrationMode, PROFILES,
};

const USAGE: &str = "usage:
  fleettrace profiles
  fleettrace gen --profile <name> [--seed <u64>] [--horizon-secs <u64>] [--out <file>]
  fleettrace validate <file>
  fleettrace replay <file> [--policy <name>] [--mode cfs|vsched] [--hosts <n>] [--threads <n>] [--seed <u64>]
      [--fleet-threads <n>]   host-stepping workers (default: available
                              parallelism; output is byte-identical at
                              any worker count)
      [--chaos-seed <u64>]    overlay a seed-generated host-failure plan
      [--migration handoff|cold-reprobe]
                              probe-state handling on drain evacuations
                              (default handoff)";

fn fail(msg: &str) -> ExitCode {
    eprintln!("fleettrace: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Pulls `--flag value` out of `args`, leaving positional args in place.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let v = args.remove(i + 1);
            args.remove(i);
            Ok(Some(v))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

fn parse_u64(v: Option<String>, flag: &str) -> Result<Option<u64>, String> {
    match v {
        None => Ok(None),
        Some(s) => s
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("{flag} must be a u64 (got {s:?})")),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = (if args.is_empty() {
        None
    } else {
        Some(args.remove(0))
    }) else {
        return fail("missing subcommand");
    };
    let run = match cmd.as_str() {
        "profiles" => cmd_profiles(),
        "gen" => cmd_gen(&mut args),
        "validate" => cmd_validate(&mut args),
        "replay" => cmd_replay(&mut args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return fail(&format!("unknown subcommand {other:?}")),
    };
    match run {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}

fn cmd_profiles() -> Result<ExitCode, String> {
    for p in &PROFILES {
        println!(
            "{:<18} day_seed={:#018x}  {}",
            p.name,
            day_seed(p.name),
            p.desc
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_gen(args: &mut Vec<String>) -> Result<ExitCode, String> {
    let profile_name =
        take_flag(args, "--profile")?.ok_or_else(|| "gen requires --profile".to_string())?;
    let profile = profile_by_name(&profile_name).ok_or_else(|| {
        let names: Vec<&str> = PROFILES.iter().map(|p| p.name).collect();
        format!(
            "unknown profile {profile_name:?} (have: {})",
            names.join(", ")
        )
    })?;
    let seed =
        parse_u64(take_flag(args, "--seed")?, "--seed")?.unwrap_or_else(|| day_seed(profile.name));
    let horizon_secs =
        parse_u64(take_flag(args, "--horizon-secs")?, "--horizon-secs")?.unwrap_or(4);
    if horizon_secs == 0 {
        return Err("--horizon-secs must be positive".into());
    }
    let out = take_flag(args, "--out")?;
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    let trace = synthesize(profile, horizon_secs * 1_000_000_000, seed);
    let text = trace.encode();
    match out {
        None => print!("{text}"),
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!(
                "wrote {path}: {} records over {horizon_secs}s (profile {}, seed {seed:#x})",
                trace.events.len(),
                profile.name
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn read_trace(args: &mut Vec<String>) -> Result<(String, String), String> {
    if args.is_empty() {
        return Err("missing trace file argument".into());
    }
    let path = args.remove(0);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path:?}: {e}"))?;
    Ok((path, text))
}

fn cmd_validate(args: &mut Vec<String>) -> Result<ExitCode, String> {
    let (path, text) = read_trace(args)?;
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    match FleetTrace::decode(&text) {
        Ok(t) => {
            // Byte-level round-trip gate: a committed trace must be in the
            // codec's canonical encoding, so decode -> encode reproduces
            // the file exactly. Anything else (hand edits, field
            // reordering, whitespace drift) is rejected even though it
            // parses — replay provenance depends on the bytes.
            if t.encode() != text {
                eprintln!(
                    "{path}: invalid trace: decodes but is not in canonical encoding \
                     (re-encoding differs; regenerate with `fleettrace gen`)"
                );
                return Ok(ExitCode::FAILURE);
            }
            println!(
                "{path}: ok — profile {:?}, {} records, horizon {}ms, day_seed {:#x}, \
                 round-trip clean",
                t.profile,
                t.events.len(),
                t.horizon_ns / 1_000_000,
                t.day_seed
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_replay(args: &mut Vec<String>) -> Result<ExitCode, String> {
    let (path, text) = read_trace(args)?;
    let policy_name = take_flag(args, "--policy")?.unwrap_or_else(|| "first-fit".to_string());
    let mode = match take_flag(args, "--mode")?.as_deref() {
        None | Some("vsched") => GuestMode::Vsched,
        Some("cfs") => GuestMode::Cfs,
        Some(other) => return Err(format!("--mode must be cfs or vsched (got {other:?})")),
    };
    let hosts = parse_u64(take_flag(args, "--hosts")?, "--hosts")?.unwrap_or(4) as usize;
    let threads = parse_u64(take_flag(args, "--threads")?, "--threads")?.unwrap_or(4) as usize;
    let seed = parse_u64(take_flag(args, "--seed")?, "--seed")?.unwrap_or(1);
    let fleet_threads = match take_flag(args, "--fleet-threads")? {
        None => None,
        Some(s) => Some(parse_fleet_threads(&s)?),
    };
    let chaos_seed = parse_u64(take_flag(args, "--chaos-seed")?, "--chaos-seed")?;
    let migration = match take_flag(args, "--migration")?.as_deref() {
        None => MigrationMode::Handoff,
        Some(name) => MigrationMode::from_name(name)
            .ok_or_else(|| format!("--migration must be handoff or cold-reprobe (got {name:?})"))?,
    };
    if hosts == 0 || threads == 0 {
        return Err("--hosts and --threads must be positive".into());
    }
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    let trace = match FleetTrace::decode(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let policy =
        policy_by_name(&policy_name).ok_or_else(|| format!("unknown policy {policy_name:?}"))?;
    let spec = spec_for_trace(&trace, hosts, threads);
    let mut cluster = match fleet_threads {
        Some(n) => Cluster::with_threads(spec, mode, policy, seed, n),
        None => Cluster::new(spec, mode, policy, seed),
    };
    let chaos = chaos_seed.map(|cs| {
        let cspec = FleetChaosSpec::for_fleet(hosts as u16, trace.horizon_ns);
        FleetChaosPlan::generate(cs, &cspec)
    });
    if let Some(plan) = &chaos {
        cluster.set_chaos(plan.clone());
        cluster.set_migration_mode(migration);
    }
    let s = cluster.run();
    println!(
        "replayed {path} (profile {:?}) on {hosts}x{threads} {} / {policy_name}",
        trace.profile,
        mode.label()
    );
    if let Some(plan) = &chaos {
        println!(
            "  chaos seed {:#x}: {} planned faults ({} migration); \
             failures {} migrated {} evac-failed {} shed {} stranded {}",
            plan.seed,
            plan.events.len(),
            migration.name(),
            s.host_failures,
            s.migrations,
            s.evacuations_failed,
            s.shed_admissions,
            s.stranded
        );
    }
    println!(
        "  admitted {} = placed {} + rejected {}; completed {} dropped {}",
        s.admitted, s.placed, s.rejected, s.completed, s.dropped
    );
    println!(
        "  p50 {:.3}ms p99 {:.3}ms worst-tenant p99 {:.3}ms fairness {:.3}",
        s.p50_ms, s.p99_ms, s.worst_tenant_p99_ms, s.fairness
    );
    println!(
        "  tier p99 ms: critical {:.3} standard {:.3} batch {:.3} (tenants {}/{}/{})",
        s.tier_p99_ms[0],
        s.tier_p99_ms[1],
        s.tier_p99_ms[2],
        s.tier_tenants[0],
        s.tier_tenants[1],
        s.tier_tenants[2]
    );
    println!(
        "  trace events {} violations {} slo violations {}/{} measured",
        s.trace_events, s.violations, s.slo_violations, s.measured_tenants
    );
    if s.violations > 0 {
        eprintln!(
            "replay violated trace laws: {} (first: {:?})",
            s.violations, s.first_law
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
