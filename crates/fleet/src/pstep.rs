//! The scoped worker pool behind parallel host stepping.
//!
//! A [`Cluster`](crate::Cluster) advances its hosts to a common barrier
//! many times per simulated second (every 50 ms epoch plus every
//! placement event). Spawning threads per barrier would dominate the
//! work, so [`Cluster::run`](crate::Cluster::run) keeps one pool of
//! workers alive for the whole run inside a `std::thread::scope` and
//! drives a *round* through it per barrier: the coordinator publishes the
//! host slice and barrier time, workers (and the coordinator itself)
//! claim host indices from a shared cursor under the pool mutex, step
//! their claims outside the lock, and the round ends only when every
//! host reached the barrier. Between rounds workers hold no borrow of
//! any host and block on a condvar, which is what lets the coordinator
//! run the serial phases (admission, placement, SLO accounting,
//! fleet-collector emission) with plain `&mut self` access.
//!
//! # Why this is sound without `Machine: Send`
//!
//! A [`HostSim`] is not `Send`: its machine, guest kernels, workload, and
//! per-host trace collector share `Rc<RefCell<…>>` handles. But that `Rc`
//! graph is *closed per host* — host `h`'s collector is shared only among
//! host `h`'s machine and guests, and a live VM's latency-stats handle is
//! shared only between the cluster's bookkeeping (which the coordinator
//! touches strictly between rounds) and the workload boxed inside host
//! `h`'s machine. During a round:
//!
//! * each host index is claimed exactly once (the cursor advances under
//!   the pool mutex), so exactly one thread touches host `h`'s graph;
//! * the coordinator does not return from [`StepPool::run_round`] until
//!   `remaining == 0`, so no worker still holds a host when the serial
//!   phase resumes, and the mutex hand-offs give the necessary
//!   happens-before edges for the non-atomic `Rc` counts and `RefCell`
//!   borrows;
//! * the host slice itself is never resized mid-round (arrivals reuse VM
//!   slots inside a machine; hosts are fixed at construction).
//!
//! Confinement in time, not `Sync`, is the invariant — which is why the
//! `unsafe impl Send` lives on the private [`HostsPtr`] wrapper here and
//! nowhere near the hot single-host emit paths.

use crate::cluster::HostSim;
use simcore::SimTime;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Base pointer of the round's host slice.
///
/// SAFETY (for the `Send` impl): the pointer is only dereferenced at an
/// index claimed from `PoolState::next` while `PoolState::remaining`
/// keeps the coordinator blocked inside [`StepPool::run_round`], so every
/// `HostSim` — and its host-closed `Rc` graph — is touched by exactly one
/// thread at a time, with mutex-mediated happens-before between owners.
struct HostsPtr(*mut HostSim);

unsafe impl Send for HostsPtr {}

/// One claimed unit of work: host `i` of the published slice, plus the
/// round parameters it must be stepped with.
struct Claim {
    ptr: *mut HostSim,
    i: usize,
    until: SimTime,
    sample_now_ns: Option<u64>,
    threads_per_host: u64,
}

struct PoolState {
    hosts: HostsPtr,
    len: usize,
    /// Next unclaimed host index; `next >= len` means no work available.
    next: usize,
    /// Hosts claimed but not yet stepped to the barrier this round.
    remaining: usize,
    until: SimTime,
    /// `Some(now_ns)` on epoch barriers: fold the utilization sample
    /// into the host right after stepping, on the same worker.
    sample_now_ns: Option<u64>,
    threads_per_host: u64,
    /// A claim panicked this round; the coordinator re-raises once the
    /// round has fully drained (so no worker still borrows a host).
    panicked: bool,
    shutdown: bool,
}

impl PoolState {
    /// Takes the next claim if the current round still has one.
    fn claim(&mut self) -> Option<Claim> {
        if self.next >= self.len {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(Claim {
            ptr: self.hosts.0,
            i,
            until: self.until,
            sample_now_ns: self.sample_now_ns,
            threads_per_host: self.threads_per_host,
        })
    }
}

/// A run-scoped stepping pool; see the module docs for the protocol.
pub(crate) struct StepPool {
    state: Mutex<PoolState>,
    /// Workers wait here for a new round (or shutdown).
    start: Condvar,
    /// The coordinator waits here for the round to drain.
    done: Condvar,
}

impl StepPool {
    pub(crate) fn new() -> StepPool {
        StepPool {
            state: Mutex::new(PoolState {
                hosts: HostsPtr(std::ptr::null_mut()),
                len: 0,
                next: 0,
                remaining: 0,
                until: SimTime(0),
                sample_now_ns: None,
                threads_per_host: 1,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Steps a claimed host outside the lock. Panics are caught so
    /// `remaining` always drains; the coordinator re-raises after the
    /// round.
    fn run_claim(&self, c: Claim) {
        // SAFETY: see `HostsPtr` — `c.i` was claimed exactly once under
        // the pool mutex and the slice outlives the round.
        let host = unsafe { &mut *c.ptr.add(c.i) };
        let ok = panic::catch_unwind(AssertUnwindSafe(|| {
            host.step_round(c.until, c.sample_now_ns, c.threads_per_host)
        }));
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        if ok.is_err() {
            st.panicked = true;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Worker body: claim → step → repeat, parked between rounds.
    pub(crate) fn worker_loop(&self) {
        loop {
            let claim = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if let Some(c) = st.claim() {
                        break c;
                    }
                    st = self.start.wait(st).unwrap();
                }
            };
            self.run_claim(claim);
        }
    }

    /// Runs one barrier round over `hosts`, stepping every host to
    /// `until` (and folding the epoch utilization sample when
    /// `sample_now_ns` is set). The coordinator claims work from the same
    /// cursor as the pool — on small fleets it steps most hosts itself —
    /// and does not return until every host reached the barrier.
    pub(crate) fn run_round(
        &self,
        hosts: &mut [HostSim],
        until: SimTime,
        sample_now_ns: Option<u64>,
        threads_per_host: u64,
    ) {
        if hosts.is_empty() {
            return;
        }
        {
            let mut st = self.state.lock().unwrap();
            debug_assert_eq!(st.remaining, 0, "previous round must have drained");
            st.hosts = HostsPtr(hosts.as_mut_ptr());
            st.len = hosts.len();
            st.next = 0;
            st.remaining = hosts.len();
            st.until = until;
            st.sample_now_ns = sample_now_ns;
            st.threads_per_host = threads_per_host;
            self.start.notify_all();
        }
        loop {
            // The guard must drop before stepping (`run_claim` relocks),
            // so take the claim in its own statement — a `while let`
            // scrutinee would keep the lock alive across the body.
            let claim = self.state.lock().unwrap().claim();
            match claim {
                Some(c) => self.run_claim(c),
                None => break,
            }
        }
        let panicked = {
            let mut st = self.state.lock().unwrap();
            while st.remaining > 0 {
                st = self.done.wait(st).unwrap();
            }
            st.len = 0;
            st.next = 0;
            st.hosts = HostsPtr(std::ptr::null_mut());
            std::mem::replace(&mut st.panicked, false)
        };
        if panicked {
            // Drained first, so no worker still borrows a host; release
            // the pool before unwinding or the scope join would deadlock
            // on workers parked in `start.wait`.
            self.shutdown();
            panic!("parallel host stepping: a worker panicked while stepping a host");
        }
    }

    /// Releases every parked worker; the scope join then completes.
    pub(crate) fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        self.start.notify_all();
    }
}
