//! Pluggable VM placement policies.
//!
//! A policy sees an immutable snapshot of every host ([`HostView`]) and
//! picks one (or rejects). The cluster enforces the overcommit cap
//! *before* calling the policy — a policy cannot place onto a host that
//! does not fit — and emits a `trace::EventKind::VmPlaced` event carrying
//! the post-placement occupancy so the invariant checker independently
//! re-verifies the cap on every decision.
//!
//! The interesting policy is [`ProbeAware`]: instead of packing by
//! nominal vCPU counts it packs by the *probed* vcap capacity the
//! vSched guests measured (the paper's vCPU abstraction), so a host
//! whose guests observed preempted/capped vCPUs looks fuller than its
//! nominal occupancy suggests.

/// An admission request the policy must site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementReq {
    /// Fleet-wide VM id (for tracing; policies may ignore it).
    pub uid: u32,
    /// Nominal size in vCPUs.
    pub vcpus: usize,
}

/// Immutable per-host snapshot handed to a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostView {
    /// Host index in the cluster.
    pub host: usize,
    /// Hardware threads on this host.
    pub threads: usize,
    /// vCPUs currently committed (placed and not departed).
    pub committed: u64,
    /// Overcommit cap: max committed vCPUs allowed.
    pub cap: u64,
    /// Sum of probed vcap capacities over the host's live guest vCPUs,
    /// in vsched's 0..=1024 per-vCPU units. CFS guests (no probing)
    /// contribute their nominal `1024 * vcpus`.
    pub probed_capacity: f64,
    /// Worst-socket LLC pressure in `[0, 1]` from the host's occupancy
    /// model: how full the busiest last-level cache is. 0.0 when no guest
    /// declares a working-set footprint.
    pub llc_pressure: f64,
}

impl HostView {
    /// Whether `req` fits under this host's overcommit cap.
    pub fn fits(&self, req: &PlacementReq) -> bool {
        self.committed + req.vcpus as u64 <= self.cap
    }

    /// Headroom in probed capacity units: physical supply
    /// (`threads * 1024`) minus what live guests have already claimed
    /// as probed capacity. Negative when probing shows the host is
    /// oversubscribed beyond its physical supply.
    pub fn probed_headroom(&self) -> f64 {
        self.threads as f64 * 1024.0 - self.probed_capacity
    }
}

/// A placement policy: pick a host for `req` out of `hosts`, or `None`
/// to reject. Implementations must be deterministic — ties broken by
/// host index, never by iteration order of anything unordered.
pub trait PlacementPolicy {
    /// Stable policy id used in cell labels and CLI filters.
    fn name(&self) -> &'static str;
    /// Choose a host index, or `None` if nothing fits.
    fn place(&mut self, req: &PlacementReq, hosts: &[HostView]) -> Option<usize>;
}

/// First host (by index) with room under its cap.
#[derive(Debug, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }
    fn place(&mut self, req: &PlacementReq, hosts: &[HostView]) -> Option<usize> {
        hosts.iter().find(|h| h.fits(req)).map(|h| h.host)
    }
}

/// Load balancer on nominal counts: the fitting host with the most free
/// committed-vCPU slots (lowest index wins ties).
#[derive(Debug, Default)]
pub struct WorstFit;

impl PlacementPolicy for WorstFit {
    fn name(&self) -> &'static str {
        "worst-fit"
    }
    fn place(&mut self, req: &PlacementReq, hosts: &[HostView]) -> Option<usize> {
        hosts
            .iter()
            .filter(|h| h.fits(req))
            .max_by_key(|h| (h.cap - h.committed, std::cmp::Reverse(h.host)))
            .map(|h| h.host)
    }
}

/// Packs by probed capacity: the fitting host with the most *probed*
/// headroom, i.e. it trusts what the vSched guests measured about their
/// vCPUs rather than the nominal abstraction. Ties (e.g. an empty
/// cluster, or all-CFS guests whose probed capacity equals nominal) fall
/// back to lowest host index, which makes it behave like first-fit until
/// probing differentiates the hosts.
#[derive(Debug, Default)]
pub struct ProbeAware;

impl PlacementPolicy for ProbeAware {
    fn name(&self) -> &'static str {
        "probe-aware"
    }
    fn place(&mut self, req: &PlacementReq, hosts: &[HostView]) -> Option<usize> {
        hosts
            .iter()
            .filter(|h| h.fits(req))
            .max_by(|a, b| {
                a.probed_headroom()
                    .total_cmp(&b.probed_headroom())
                    .then(b.host.cmp(&a.host))
            })
            .map(|h| h.host)
    }
}

/// Avoids cache-thrashed hosts: the fitting host with the lowest
/// worst-socket LLC pressure, breaking pressure ties by the most probed
/// headroom and then by lowest host index. Until any guest declares a
/// working-set footprint every host reports pressure 0.0, so the policy
/// degrades to probe-aware packing.
#[derive(Debug, Default)]
pub struct CacheAware;

impl PlacementPolicy for CacheAware {
    fn name(&self) -> &'static str {
        "cache-aware"
    }
    fn place(&mut self, req: &PlacementReq, hosts: &[HostView]) -> Option<usize> {
        hosts
            .iter()
            .filter(|h| h.fits(req))
            .min_by(|a, b| {
                a.llc_pressure
                    .total_cmp(&b.llc_pressure)
                    .then(b.probed_headroom().total_cmp(&a.probed_headroom()))
                    .then(a.host.cmp(&b.host))
            })
            .map(|h| h.host)
    }
}

/// Every registered policy name, in suite cell order.
pub const POLICIES: [&str; 4] = ["first-fit", "worst-fit", "probe-aware", "cache-aware"];

/// Instantiates a policy by its [`POLICIES`] name.
pub fn policy_by_name(name: &str) -> Option<Box<dyn PlacementPolicy>> {
    match name {
        "first-fit" => Some(Box::new(FirstFit)),
        "worst-fit" => Some(Box::new(WorstFit)),
        "probe-aware" => Some(Box::new(ProbeAware)),
        "cache-aware" => Some(Box::new(CacheAware)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(host: usize, committed: u64, probed: f64) -> HostView {
        HostView {
            host,
            threads: 4,
            committed,
            cap: 6,
            probed_capacity: probed,
            llc_pressure: 0.0,
        }
    }

    fn req(vcpus: usize) -> PlacementReq {
        PlacementReq { uid: 0, vcpus }
    }

    #[test]
    fn first_fit_takes_lowest_fitting_index() {
        let hosts = [view(0, 6, 0.0), view(1, 3, 0.0), view(2, 0, 0.0)];
        assert_eq!(FirstFit.place(&req(2), &hosts), Some(1));
        assert_eq!(FirstFit.place(&req(4), &hosts), Some(2));
        assert_eq!(FirstFit.place(&req(7), &hosts), None);
    }

    #[test]
    fn worst_fit_spreads_by_free_slots() {
        let hosts = [view(0, 4, 0.0), view(1, 1, 0.0), view(2, 1, 0.0)];
        // Hosts 1 and 2 tie on free slots; lowest index wins.
        assert_eq!(WorstFit.place(&req(1), &hosts), Some(1));
        let hosts = [view(0, 5, 0.0), view(1, 6, 0.0)];
        assert_eq!(WorstFit.place(&req(1), &hosts), Some(0));
        assert_eq!(WorstFit.place(&req(2), &hosts), None);
    }

    #[test]
    fn probe_aware_prefers_probed_headroom_over_nominal() {
        // Host 0 is nominally emptier (2 < 4 committed) but probing shows
        // its guests hold more real capacity; host 1's guests are being
        // throttled, so its probed headroom is larger.
        let hosts = [view(0, 2, 4000.0), view(1, 4, 1000.0)];
        assert_eq!(ProbeAware.place(&req(1), &hosts), Some(1));
        // Equal probing falls back to lowest index.
        let hosts = [view(0, 2, 2048.0), view(1, 2, 2048.0)];
        assert_eq!(ProbeAware.place(&req(1), &hosts), Some(0));
    }

    fn view_llc(host: usize, committed: u64, probed: f64, llc: f64) -> HostView {
        HostView {
            llc_pressure: llc,
            ..view(host, committed, probed)
        }
    }

    #[test]
    fn cache_aware_avoids_thrashed_hosts() {
        // Host 0 has more free slots and probed headroom, but its LLC is
        // nearly full; host 1's cache is quiet.
        let hosts = [view_llc(0, 1, 1000.0, 0.9), view_llc(1, 4, 3000.0, 0.1)];
        assert_eq!(CacheAware.place(&req(1), &hosts), Some(1));
        // A full host is never chosen, however quiet its cache.
        let hosts = [view_llc(0, 6, 0.0, 0.0), view_llc(1, 4, 3000.0, 0.8)];
        assert_eq!(CacheAware.place(&req(1), &hosts), Some(1));
        assert_eq!(CacheAware.place(&req(3), &hosts), None);
    }

    #[test]
    fn cache_aware_ties_break_by_probed_headroom_then_index() {
        // Equal pressure: the probed-emptier host wins.
        let hosts = [view_llc(0, 2, 3000.0, 0.4), view_llc(1, 2, 1000.0, 0.4)];
        assert_eq!(CacheAware.place(&req(1), &hosts), Some(1));
        // Fully tied: lowest index wins (and with all pressures at 0.0 the
        // policy degrades to probe-aware packing).
        let hosts = [view_llc(0, 2, 2048.0, 0.0), view_llc(1, 2, 2048.0, 0.0)];
        assert_eq!(CacheAware.place(&req(1), &hosts), Some(0));
    }

    #[test]
    fn policies_resolve_by_name() {
        for name in POLICIES {
            assert_eq!(policy_by_name(name).expect("registered").name(), name);
        }
        assert!(policy_by_name("round-robin").is_none());
    }
}
