//! Fleet-level chaos: host failures, maintenance drains, and transient
//! host degradation.
//!
//! A [`FleetChaosPlan`] is the cluster-scale sibling of
//! [`hostsim::faults::FaultPlan`]: a seed-driven, fully precomputed
//! schedule of *host* misbehaviour, generated before the run so a given
//! `(seed, spec)` pair replays the same faulted day byte for byte at any
//! stepping worker count. Three operations exist:
//!
//! * [`HostOp::Crash`] — the host drops out abruptly. Residents are
//!   evacuated cold: whatever probe state their vSched instances held is
//!   lost with the host.
//! * [`HostOp::Drain`] — an orderly maintenance drain. Residents migrate
//!   off while the source is still coherent, so their probe state can be
//!   handed to the destination ([`MigrationMode::Handoff`]).
//! * [`HostOp::Degrade`] — the host stays up but misbehaves for the
//!   window: the plan compiles the window into machine-wide
//!   [`hostsim::faults`] actions (stressor bursts, DVFS capacity steps,
//!   probe noise) via [`FleetChaosPlan::degrade_plan_for_host`].
//!
//! Crash and drain each carry a `down_ns` after which the host recovers
//! and may accept placements again. The cluster turns these into
//! `HostFailed`/`HostRecovered`/`VmMigrated` trace events whose laws the
//! streaming checker enforces (no placement onto a failed host, occupancy
//! conserved across migration, every resident migrated or departed).

use hostsim::faults::{ChaosSpec, FaultPlan, InjectedFault};
use simcore::json::Json;
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::fmt;
use trace::{FaultClass, HostFailKind};

/// What a planned host fault does to its host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostOp {
    /// Abrupt host loss; residents evacuate cold.
    Crash,
    /// Orderly maintenance drain; residents migrate with state handoff.
    Drain,
    /// Transient degradation; the host stays up but misbehaves.
    Degrade,
}

/// Every host operation, in stable order.
pub const HOST_OPS: [HostOp; 3] = [HostOp::Crash, HostOp::Drain, HostOp::Degrade];

impl HostOp {
    /// Stable serialization name (fleet chaos plans store these).
    pub fn name(&self) -> &'static str {
        match self {
            HostOp::Crash => "Crash",
            HostOp::Drain => "Drain",
            HostOp::Degrade => "Degrade",
        }
    }

    /// Inverse of [`HostOp::name`].
    pub fn from_name(name: &str) -> Option<HostOp> {
        Some(match name {
            "Crash" => HostOp::Crash,
            "Drain" => HostOp::Drain,
            "Degrade" => HostOp::Degrade,
            _ => return None,
        })
    }

    /// The trace-level failure kind, for ops that take the host down.
    pub fn fail_kind(&self) -> Option<HostFailKind> {
        match self {
            HostOp::Crash => Some(HostFailKind::Crash),
            HostOp::Drain => Some(HostFailKind::Drain),
            HostOp::Degrade => None,
        }
    }
}

/// Stable per-op RNG stream tag (independent of declaration order).
fn op_tag(op: HostOp) -> u64 {
    match op {
        HostOp::Crash => 1,
        HostOp::Drain => 2,
        HostOp::Degrade => 3,
    }
}

/// How a live migration transfers vSched probe state.
///
/// The measurable ablation the `fleet-chaos` suite job reports: drained
/// VMs either hand their probed per-vCPU capacities to the destination
/// instance (which then converges *from* them) or re-probe from the
/// nominal 1024 like a fresh boot. Crash victims always re-probe cold —
/// their source host is gone, there is nothing to hand off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationMode {
    /// Seed the destination's vcap with the source's published estimates.
    Handoff,
    /// Start the destination from nominal capacity (fresh-boot probing).
    ColdReprobe,
}

impl MigrationMode {
    /// Stable name used in cell labels and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            MigrationMode::Handoff => "handoff",
            MigrationMode::ColdReprobe => "cold-reprobe",
        }
    }

    /// Inverse of [`MigrationMode::name`].
    pub fn from_name(name: &str) -> Option<MigrationMode> {
        Some(match name {
            "handoff" => MigrationMode::Handoff,
            "cold-reprobe" => MigrationMode::ColdReprobe,
            _ => return None,
        })
    }
}

/// Which hosts and when a fleet chaos plan may strike.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetChaosSpec {
    /// Hosts in the cluster (faults pick uniformly among them).
    pub hosts: u16,
    /// Faults are injected in `[start, start + horizon)`.
    pub start: SimTime,
    /// Injection horizon length in nanoseconds.
    pub horizon_ns: u64,
    /// Mean gap between consecutive faults of one op (ns).
    pub mean_gap_ns: u64,
    /// Shortest outage/degradation window (ns).
    pub min_down_ns: u64,
    /// Longest outage/degradation window (ns).
    pub max_down_ns: u64,
    /// Enabled operations.
    pub ops: Vec<HostOp>,
}

impl FleetChaosSpec {
    /// A spec covering a whole fleet: every op enabled, with the fault
    /// window scaled to the day so even a short (smoke-scale) horizon
    /// sees crashes and drains. Warm-up takes the first tenth of the day
    /// (at most 400 ms), injection stops at ~85% of the remainder so
    /// most recoveries land inside the day, gaps run a quarter of the
    /// window (at most 700 ms), and outages span horizon/10..horizon/4
    /// clamped to 300–900 ms.
    pub fn for_fleet(hosts: u16, horizon_ns: u64) -> Self {
        let start = (horizon_ns / 10).clamp(MS, 400 * MS);
        let window = horizon_ns.saturating_sub(start).saturating_mul(17) / 20;
        let min_down = (horizon_ns / 10).clamp(MS, 300 * MS);
        Self {
            hosts,
            start: SimTime::from_ns(start),
            horizon_ns: window,
            mean_gap_ns: (window / 4).clamp(MS, 700 * MS),
            min_down_ns: min_down,
            max_down_ns: (horizon_ns / 4).clamp(min_down, 900 * MS),
            ops: HOST_OPS.to_vec(),
        }
    }

    /// Restricts the plan to a single operation.
    pub fn only(mut self, op: HostOp) -> Self {
        self.ops = vec![op];
        self
    }

    /// Overrides the mean inter-fault gap.
    pub fn mean_gap(mut self, ns: u64) -> Self {
        self.mean_gap_ns = ns;
        self
    }
}

/// One planned host fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostFault {
    /// Injection time.
    pub at: SimTime,
    /// Struck host.
    pub host: u16,
    /// What happens to it.
    pub op: HostOp,
    /// Outage (crash/drain) or degradation window length.
    pub down_ns: u64,
}

impl fmt::Display for HostFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} {:?} host={} down={}",
            self.at.ns(),
            self.op,
            self.host,
            self.down_ns
        )
    }
}

/// A replayable fleet fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetChaosPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// Planned faults, sorted by injection time (ties keep op order).
    pub events: Vec<HostFault>,
    spec: FleetChaosSpec,
}

impl FleetChaosPlan {
    /// Generates the plan. Each enabled op draws from its own forked RNG
    /// stream (derived only from `(seed, op)`), so enabling or disabling
    /// one op never perturbs the schedule of another — the same
    /// independence the per-host chaos plans have.
    pub fn generate(seed: u64, spec: &FleetChaosSpec) -> FleetChaosPlan {
        let mut events: Vec<HostFault> = Vec::new();
        for &op in &spec.ops {
            let mut rng = SimRng::new(seed ^ 0xF1EE_7C05).fork(op_tag(op));
            Self::plan_op(&mut rng, spec, op, &mut events);
        }
        // Stable sort: simultaneous faults keep op order, fixed by
        // `spec.ops`.
        events.sort_by_key(|e| e.at);
        FleetChaosPlan {
            seed,
            events,
            spec: spec.clone(),
        }
    }

    fn plan_op(rng: &mut SimRng, spec: &FleetChaosSpec, op: HostOp, out: &mut Vec<HostFault>) {
        // Saturating horizon arithmetic, same rationale as the host-level
        // planner: near-MAX specs clip the window rather than wrap it.
        let end = spec.start.ns().saturating_add(spec.horizon_ns);
        let span = spec.max_down_ns.saturating_sub(spec.min_down_ns);
        let mut t = spec
            .start
            .ns()
            .saturating_add(rng.exp(spec.mean_gap_ns as f64) as u64);
        while t < end {
            let host = rng.index(spec.hosts.max(1) as usize) as u16;
            let down_ns = spec.min_down_ns + rng.range(0, span + 1);
            out.push(HostFault {
                at: SimTime::from_ns(t),
                host,
                op,
                down_ns: down_ns.max(MS),
            });
            t = t.saturating_add(rng.exp(spec.mean_gap_ns as f64).max(1.0) as u64);
        }
    }

    /// The spec the plan was generated against.
    pub fn spec(&self) -> &FleetChaosSpec {
        &self.spec
    }

    /// A plan with the same seed and spec but a different fault list.
    /// The shrinker tests subsets with this; `events` must preserve the
    /// original relative order (any subsequence does).
    pub fn with_events(&self, events: Vec<HostFault>) -> FleetChaosPlan {
        debug_assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        FleetChaosPlan {
            seed: self.seed,
            events,
            spec: self.spec.clone(),
        }
    }

    /// The plan truncated to its first `k` faults.
    pub fn prefix(&self, k: usize) -> FleetChaosPlan {
        self.with_events(self.events[..k.min(self.events.len())].to_vec())
    }

    /// The crash/drain faults, in time order — what the cluster's run
    /// loop merges with the lifecycle schedule. Degrade windows are not
    /// loop events; they compile to per-host script actions instead.
    pub fn fail_events(&self) -> impl Iterator<Item = &HostFault> {
        self.events.iter().filter(|e| e.op != HostOp::Degrade)
    }

    /// Compiles this plan's Degrade windows on one host into a single
    /// machine-level [`FaultPlan`] of machine-wide faults: a stressor
    /// burst, a DVFS capacity step, and probe noise per window, each
    /// reversed at the window's end so the host returns to nominal.
    ///
    /// One plan per host, because stressor reversals predict load arena
    /// ids — the cluster applies the result exactly once per machine.
    /// Pure in `(plan, host, threads)`, independent of every other host.
    pub fn degrade_plan_for_host(&self, host: u16, threads: usize) -> Option<FaultPlan> {
        let windows: Vec<&HostFault> = self
            .events
            .iter()
            .filter(|e| e.op == HostOp::Degrade && e.host == host)
            .collect();
        if windows.is_empty() {
            return None;
        }
        let nr = threads.max(1);
        let cspec = ChaosSpec {
            vm: 0,
            nr_vcpus: nr,
            threads: (0..nr).collect(),
            cores: (0..nr).collect(),
            // Emptied class list: the events below are hand-compiled from
            // the degrade windows, not drawn by the host-level planner.
            classes: Vec::new(),
            start: self.spec.start,
            horizon_ns: self.spec.horizon_ns,
            mean_interval_ns: self.spec.mean_gap_ns,
        };
        let mut rng = SimRng::new(self.seed ^ 0x00DE_64AD).fork(host as u64 + 1);
        let mut events = Vec::with_capacity(windows.len() * 3);
        for w in windows {
            let end = w.at.ns().saturating_add(w.down_ns);
            // One of each machine-wide fault per window: a host stressor
            // at 2×–8× a vCPU's default weight, a DVFS step to 350–900 ‰
            // of nominal, and ±15 %–±50 % probe noise.
            let picks = [
                (
                    FaultClass::StressorBurst,
                    rng.index(nr),
                    1024 * rng.range(2, 9),
                ),
                (FaultClass::CapacityStep, rng.index(nr), rng.range(350, 901)),
                (FaultClass::ProbeNoise, 0, rng.range(150, 501)),
            ];
            // Stagger each fault into the window's first quarter; every
            // one lasts until the window closes.
            for (class, vcpu, magnitude) in picks {
                let at = w.at.ns() + rng.range(0, (w.down_ns / 4).max(1));
                events.push(InjectedFault {
                    at: SimTime::from_ns(at),
                    class,
                    vcpu,
                    duration_ns: end.saturating_sub(at).max(MS),
                    magnitude,
                });
            }
        }
        events.sort_by_key(|e| e.at);
        Some(FaultPlan::generate(self.seed, &cspec).with_events(events))
    }

    /// Serializes the plan — spec, seed, fault list — as JSON. This is
    /// the fleet chaos repro format (`suite --shrink` writes it for
    /// fleet laws); integers round-trip exactly.
    pub fn to_json(&self) -> String {
        let spec = &self.spec;
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::obj([
                    ("at_ns", Json::Uint(e.at.ns())),
                    ("host", Json::Uint(e.host as u64)),
                    ("op", e.op.name().into()),
                    ("down_ns", Json::Uint(e.down_ns)),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("seed", Json::Uint(self.seed)),
            (
                "spec",
                Json::obj([
                    ("hosts", Json::Uint(spec.hosts as u64)),
                    ("start_ns", Json::Uint(spec.start.ns())),
                    ("horizon_ns", Json::Uint(spec.horizon_ns)),
                    ("mean_gap_ns", Json::Uint(spec.mean_gap_ns)),
                    ("min_down_ns", Json::Uint(spec.min_down_ns)),
                    ("max_down_ns", Json::Uint(spec.max_down_ns)),
                    (
                        "ops",
                        Json::Arr(spec.ops.iter().map(|o| o.name().into()).collect()),
                    ),
                ]),
            ),
            ("events", Json::Arr(events)),
        ])
        .render()
    }

    /// Parses a plan previously written by [`FleetChaosPlan::to_json`].
    pub fn from_json(text: &str) -> Result<FleetChaosPlan, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let need =
            |v: Option<&Json>, what: &str| v.cloned().ok_or_else(|| format!("missing {what}"));
        let u = |v: &Json, what: &str| v.as_u64().ok_or_else(|| format!("{what} not a u64"));
        let op_of = |v: &Json| -> Result<HostOp, String> {
            let name = v.as_str().ok_or("op not a string")?;
            HostOp::from_name(name).ok_or_else(|| format!("unknown host op '{name}'"))
        };

        let sj = need(doc.get("spec"), "spec")?;
        let spec = FleetChaosSpec {
            hosts: u(&need(sj.get("hosts"), "spec.hosts")?, "spec.hosts")? as u16,
            start: SimTime::from_ns(u(&need(sj.get("start_ns"), "spec.start_ns")?, "start_ns")?),
            horizon_ns: u(
                &need(sj.get("horizon_ns"), "spec.horizon_ns")?,
                "horizon_ns",
            )?,
            mean_gap_ns: u(
                &need(sj.get("mean_gap_ns"), "spec.mean_gap_ns")?,
                "mean_gap_ns",
            )?,
            min_down_ns: u(
                &need(sj.get("min_down_ns"), "spec.min_down_ns")?,
                "min_down_ns",
            )?,
            max_down_ns: u(
                &need(sj.get("max_down_ns"), "spec.max_down_ns")?,
                "max_down_ns",
            )?,
            ops: need(sj.get("ops"), "spec.ops")?
                .as_arr()
                .ok_or("spec.ops not an array")?
                .iter()
                .map(op_of)
                .collect::<Result<_, _>>()?,
        };
        let mut events = Vec::new();
        for ej in need(doc.get("events"), "events")?
            .as_arr()
            .ok_or("events not an array")?
        {
            let host = u(&need(ej.get("host"), "event.host")?, "host")? as u16;
            if host >= spec.hosts {
                return Err(format!(
                    "event host {host} out of range (spec.hosts {})",
                    spec.hosts
                ));
            }
            events.push(HostFault {
                at: SimTime::from_ns(u(&need(ej.get("at_ns"), "event.at_ns")?, "at_ns")?),
                host,
                op: op_of(&need(ej.get("op"), "event.op")?)?,
                down_ns: u(&need(ej.get("down_ns"), "event.down_ns")?, "down_ns")?,
            });
        }
        if !events.windows(2).all(|w| w[0].at <= w[1].at) {
            return Err("events not sorted by at_ns".into());
        }
        Ok(FleetChaosPlan {
            seed: u(&need(doc.get("seed"), "seed")?, "seed")?,
            events,
            spec,
        })
    }

    /// Stable one-line-per-fault rendering; determinism gates compare
    /// this byte-for-byte across runs and processes.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::propcheck;

    fn spec(hosts: u16) -> FleetChaosSpec {
        FleetChaosSpec::for_fleet(hosts, 3_000 * MS)
    }

    #[test]
    fn same_seed_same_plan() {
        let s = spec(4);
        let a = FleetChaosPlan::generate(7, &s);
        let b = FleetChaosPlan::generate(7, &s);
        assert_eq!(a, b);
        assert_eq!(a.describe(), b.describe());
        assert!(!a.events.is_empty(), "horizon long enough to draw faults");
        assert_ne!(
            a.describe(),
            FleetChaosPlan::generate(8, &s).describe(),
            "seed must matter"
        );
    }

    #[test]
    fn op_streams_are_independent() {
        let full = FleetChaosPlan::generate(11, &spec(6));
        let only = FleetChaosPlan::generate(11, &spec(6).only(HostOp::Drain));
        let full_drains: Vec<_> = full
            .events
            .iter()
            .filter(|e| e.op == HostOp::Drain)
            .copied()
            .collect();
        assert_eq!(full_drains, only.events);
    }

    #[test]
    fn events_sorted_and_bounded() {
        propcheck::forall(0xF1EE7, 16, |rng| {
            let s = spec(1 + rng.index(16) as u16);
            let plan = FleetChaosPlan::generate(rng.u64(), &s);
            let end = s.start.ns() + s.horizon_ns;
            let mut prev = 0;
            for e in &plan.events {
                assert!(e.at.ns() >= prev, "sorted");
                prev = e.at.ns();
                assert!(e.at >= s.start && e.at.ns() < end, "inside horizon");
                assert!(e.host < s.hosts);
                assert!(e.down_ns >= s.min_down_ns.min(MS) && e.down_ns <= s.max_down_ns);
            }
        });
    }

    #[test]
    fn json_round_trips_exactly() {
        propcheck::forall(0xF1EE8, 16, |rng| {
            let s = spec(1 + rng.index(8) as u16);
            let plan = FleetChaosPlan::generate(rng.u64(), &s);
            let back = FleetChaosPlan::from_json(&plan.to_json()).expect("parses back");
            assert_eq!(plan, back);
            assert_eq!(plan.to_json(), back.to_json());
        });
    }

    #[test]
    fn from_json_rejects_malformed_plans() {
        assert!(FleetChaosPlan::from_json("{}").is_err());
        assert!(FleetChaosPlan::from_json("not json").is_err());
        // Unsorted events are rejected.
        let plan = FleetChaosPlan::generate(5, &spec(4));
        assert!(plan.events.len() >= 2);
        let mut doc = Json::parse(&plan.to_json()).unwrap();
        if let Json::Obj(m) = &mut doc {
            if let Some(Json::Arr(events)) = m.get_mut("events") {
                events.reverse();
            }
        }
        assert!(FleetChaosPlan::from_json(&doc.render()).is_err());
        // Out-of-range hosts are rejected.
        let mut doc = Json::parse(&plan.to_json()).unwrap();
        if let Json::Obj(m) = &mut doc {
            if let Some(Json::Obj(sj)) = m.get_mut("spec") {
                sj.insert("hosts".into(), Json::Uint(1));
            }
        }
        assert!(
            FleetChaosPlan::from_json(&doc.render()).is_err(),
            "4-host plan must not parse under a 1-host spec"
        );
    }

    #[test]
    fn subsets_preserve_identity_and_order() {
        let plan = FleetChaosPlan::generate(9, &spec(6));
        let n = plan.events.len();
        assert!(n >= 4, "want a non-trivial plan");
        let half: Vec<_> = plan.events.iter().step_by(2).copied().collect();
        let sub = plan.with_events(half.clone());
        assert_eq!(sub.seed, plan.seed);
        assert_eq!(sub.spec(), plan.spec());
        assert_eq!(sub.events, half);
        assert_eq!(plan.prefix(3).events, plan.events[..3].to_vec());
        assert_eq!(plan.prefix(n + 10).events.len(), n);
    }

    #[test]
    fn degrade_windows_compile_to_machine_wide_faults() {
        // A plan with only Degrade ops compiles per-host FaultPlans of
        // machine-wide classes (no VM state touched), each fault inside
        // its window and reversed by the window's end.
        let s = spec(3).only(HostOp::Degrade);
        let plan = FleetChaosPlan::generate(13, &s);
        assert!(plan.fail_events().next().is_none(), "no crash/drain");
        let mut compiled = 0;
        for host in 0..3u16 {
            let Some(fp) = plan.degrade_plan_for_host(host, 4) else {
                continue;
            };
            compiled += 1;
            let again = plan.degrade_plan_for_host(host, 4).unwrap();
            assert_eq!(fp.describe(), again.describe(), "deterministic per host");
            let windows: Vec<_> = plan
                .events
                .iter()
                .filter(|e| e.op == HostOp::Degrade && e.host == host)
                .collect();
            assert_eq!(fp.events.len(), windows.len() * 3);
            for e in &fp.events {
                assert!(
                    matches!(
                        e.class,
                        FaultClass::StressorBurst
                            | FaultClass::CapacityStep
                            | FaultClass::ProbeNoise
                    ),
                    "machine-wide classes only, got {:?}",
                    e.class
                );
                assert!(
                    windows
                        .iter()
                        .any(|w| e.at >= w.at
                            && e.at.ns() + e.duration_ns <= w.at.ns() + w.down_ns + MS),
                    "fault outside every window: {e}"
                );
            }
        }
        assert!(compiled > 0, "some host drew a degrade window");
        assert!(
            plan.degrade_plan_for_host(200, 4).is_none(),
            "unstruck host compiles to nothing"
        );
    }
}
