//! Measurement primitives shared by the vSched simulator and its experiment
//! harness.
//!
//! The crate is deliberately dependency-free: every collector here is driven
//! by the deterministic simulation clock, never by wall-clock time, so that
//! experiments are exactly reproducible from a seed.
//!
//! Provided collectors:
//!
//! * [`Histogram`] — log-bucketed latency histogram with percentile queries
//!   (an HDR-histogram-like layout with bounded relative error).
//! * [`Ema`] — exponential moving average, the estimator `vcap` uses for
//!   vCPU capacity (EuroSys '25 paper, §3.1).
//! * [`TimeSeries`] — windowed counter series for live-throughput plots
//!   (Figures 16 and 17 of the paper).
//! * [`Counter`] / [`MeanTracker`] — simple scalar accumulators.
//! * [`table`] — fixed-width text-table rendering used by every bench target
//!   to print the rows of the paper's tables and figures.

pub mod ema;
pub mod histogram;
pub mod stats;
pub mod table;
pub mod timeseries;

pub use ema::Ema;
pub use histogram::Histogram;
pub use stats::{Counter, MeanTracker};
pub use table::{fmt_ns, fmt_pct_change, Table};
pub use timeseries::TimeSeries;
