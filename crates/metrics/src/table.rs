//! Fixed-width text tables.
//!
//! Every bench target regenerates a paper table or figure by printing rows;
//! [`Table`] gives them a uniform, aligned rendering without pulling in a
//! formatting dependency.

use std::fmt;

/// A simple text table with a header row and aligned columns.
///
/// # Examples
///
/// ```
/// use vsched_metrics::Table;
///
/// let mut t = Table::new(&["benchmark", "p95 (ms)"]);
/// t.row(&["Img-dnn", "12.4"]);
/// t.row(&["Silo", "4.2"]);
/// let text = t.to_string();
/// assert!(text.contains("Img-dnn"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept and
    /// widen the table.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                write!(f, " {cell:width$} |")?;
            }
            writeln!(f)
        };
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for width in &w {
                write!(f, "{}+", "-".repeat(width + 2))?;
            }
            writeln!(f)
        };
        rule(f)?;
        write_row(f, &self.header)?;
        rule(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        rule(f)
    }
}

/// Formats nanoseconds as a human-readable duration with adaptive units.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Formats a ratio as a signed percentage change, e.g. `+42.0%`.
pub fn fmt_pct_change(new: f64, old: f64) -> String {
    if old == 0.0 {
        return "n/a".to_string();
    }
    let pct = (new / old - 1.0) * 100.0;
    format!("{pct:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxxxx", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        let s = t.to_string();
        assert!(s.contains('3'));
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(5), "5 ns");
        assert_eq!(fmt_ns(5_000), "5.00 us");
        assert_eq!(fmt_ns(5_000_000), "5.00 ms");
        assert_eq!(fmt_ns(5_000_000_000), "5.00 s");
    }

    #[test]
    fn fmt_pct_change_signs() {
        assert_eq!(fmt_pct_change(150.0, 100.0), "+50.0%");
        assert_eq!(fmt_pct_change(50.0, 100.0), "-50.0%");
        assert_eq!(fmt_pct_change(1.0, 0.0), "n/a");
    }

    #[test]
    fn empty_table_prints_header_only() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 4);
    }
}
