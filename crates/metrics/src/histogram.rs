//! Log-bucketed histogram with percentile queries.
//!
//! The layout follows the HDR-histogram idea: values are split into
//! power-of-two magnitude groups, and each group is subdivided into a fixed
//! number of linear sub-buckets. With 32 sub-buckets per group the relative
//! quantization error is bounded by 1/32 ≈ 3.1%, which is far below the
//! run-to-run variance of any scheduling experiment.

/// Number of linear sub-buckets per power-of-two magnitude group.
const SUB_BUCKETS: usize = 32;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 5;
/// Number of magnitude groups; group `g >= 1` spans `[2^(g+4), 2^(g+5))`,
/// so 60 groups cover the full `u64` range.
const GROUPS: usize = 60;

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Recording is O(1); percentile queries are O(buckets). Values larger than
/// the representable maximum are clamped into the last bucket.
///
/// # Examples
///
/// ```
/// use vsched_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((450..=550).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; GROUPS * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        // Values below SUB_BUCKETS go into group 0 exactly (one value per
        // bucket); larger values keep their top SUB_BITS bits of precision.
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros(); // >= SUB_BITS
        let group = (magnitude - SUB_BITS + 1) as usize;
        let sub = ((value >> (magnitude - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
        let idx = group * SUB_BUCKETS + sub;
        idx.min(GROUPS * SUB_BUCKETS - 1)
    }

    /// Returns a representative (midpoint) value for a bucket index.
    fn value_of(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let group = (index / SUB_BUCKETS) as u32;
        let sub = (index % SUB_BUCKETS) as u64;
        // Group `g` spans [2^(g + SUB_BITS - 1), 2^(g + SUB_BITS)), i.e.
        // `base` values split across SUB_BUCKETS buckets of width
        // `base / SUB_BUCKETS`.
        let base: u64 = 1u64 << (group + SUB_BITS - 1);
        let width = (base >> SUB_BITS).max(1);
        // Saturate: the topmost bucket's midpoint would overflow u64.
        base.saturating_add(sub.saturating_mul(width))
            .saturating_add(width / 2)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_of(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(value);
        self.buckets[idx] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns the value at the given percentile (0.0–100.0).
    ///
    /// The result is exact for the recorded min/max and otherwise accurate to
    /// the bucket's relative quantization error. Returns 0 for an empty
    /// histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let v = Self::value_of(idx);
                return v.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience accessor for the 95th percentile (the paper's headline
    /// tail-latency metric).
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// Convenience accessor for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Convenience accessor for the median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(95.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        for p in [0.0, 50.0, 95.0, 100.0] {
            let v = h.percentile(p);
            let err = (v as f64 - 1_000_000.0).abs() / 1_000_000.0;
            assert!(err < 0.04, "p{p} = {v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.percentile(100.0), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            // Cheap xorshift so the test needs no RNG dependency.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 10_000_000);
        }
        let mut prev = 0;
        for p in (0..=100).step_by(5) {
            let v = h.percentile(p as f64);
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        for exp in 0..40u32 {
            let v = 1u64 << exp;
            h.clear();
            h.record(v);
            let got = h.percentile(50.0);
            let err = (got as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.05, "value {v}: got {got}, err {err}");
        }
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..1000u64 {
            let val = v * 17 + 3;
            if v % 2 == 0 {
                a.record(val);
            } else {
                b.record(val);
            }
            all.record(val);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.percentile(95.0), all.percentile(95.0));
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(777, 100);
        for _ in 0..100 {
            b.record(777);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = Histogram::new();
        h.record(42);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn huge_values_are_clamped_not_lost() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
    }
}
