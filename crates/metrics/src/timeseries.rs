//! Windowed counter series for live-throughput plots.
//!
//! The adaptability and multi-tenancy experiments (Figures 16 and 17) plot
//! Nginx's live throughput in fixed windows as the host configuration
//! changes. [`TimeSeries`] accumulates event counts (or sums) into windows of
//! simulated time and exposes the per-window rates.

/// A series of fixed-width time windows accumulating a sum per window.
///
/// Times are `u64` nanoseconds of simulated time. Windows are created lazily
/// and gaps are filled with zeroes, so a quiet period shows up as zero
/// throughput rather than being skipped.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window_ns: u64,
    origin: u64,
    windows: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given window width (ns) starting at `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn new(window_ns: u64, origin: u64) -> Self {
        assert!(window_ns > 0, "window width must be positive");
        Self {
            window_ns,
            origin,
            windows: Vec::new(),
        }
    }

    /// Adds `amount` at simulated time `now`. Times before `origin` are
    /// folded into the first window.
    pub fn add(&mut self, now: u64, amount: f64) {
        let idx = (now.saturating_sub(self.origin) / self.window_ns) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, 0.0);
        }
        self.windows[idx] += amount;
    }

    /// Convenience: adds 1.0 at `now` (e.g. one completed request).
    pub fn tick(&mut self, now: u64) {
        self.add(now, 1.0);
    }

    /// Window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Per-window sums in chronological order.
    pub fn windows(&self) -> &[f64] {
        &self.windows
    }

    /// Per-window rates in events per second of simulated time.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let scale = 1e9 / self.window_ns as f64;
        self.windows.iter().map(|w| w * scale).collect()
    }

    /// Mean rate (events/s) across a window index range, clamped to the
    /// available data. Returns 0.0 for an empty intersection.
    pub fn mean_rate(&self, from: usize, to: usize) -> f64 {
        let to = to.min(self.windows.len());
        if from >= to {
            return 0.0;
        }
        let sum: f64 = self.windows[from..to].iter().sum();
        sum * 1e9 / (self.window_ns as f64 * (to - from) as f64)
    }

    /// Total accumulated amount.
    pub fn total(&self) -> f64 {
        self.windows.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn events_land_in_their_window() {
        let mut ts = TimeSeries::new(SEC, 0);
        ts.tick(100);
        ts.tick(SEC + 1);
        ts.tick(SEC + 2);
        assert_eq!(ts.windows(), &[1.0, 2.0]);
    }

    #[test]
    fn gaps_are_zero_filled() {
        let mut ts = TimeSeries::new(SEC, 0);
        ts.tick(0);
        ts.tick(3 * SEC);
        assert_eq!(ts.windows(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn rates_scale_by_window_width() {
        let mut ts = TimeSeries::new(SEC / 2, 0);
        ts.add(0, 50.0);
        assert_eq!(ts.rates_per_sec()[0], 100.0);
    }

    #[test]
    fn origin_offsets_window_zero() {
        let mut ts = TimeSeries::new(SEC, 10 * SEC);
        ts.tick(10 * SEC + 5);
        ts.tick(11 * SEC + 5);
        assert_eq!(ts.windows(), &[1.0, 1.0]);
    }

    #[test]
    fn before_origin_folds_into_first_window() {
        let mut ts = TimeSeries::new(SEC, 5 * SEC);
        ts.tick(0);
        assert_eq!(ts.windows(), &[1.0]);
    }

    #[test]
    fn mean_rate_over_range() {
        let mut ts = TimeSeries::new(SEC, 0);
        ts.add(0, 10.0);
        ts.add(SEC, 20.0);
        ts.add(2 * SEC, 30.0);
        assert_eq!(ts.mean_rate(0, 3), 20.0);
        assert_eq!(ts.mean_rate(1, 2), 20.0);
        assert_eq!(ts.mean_rate(5, 9), 0.0);
    }

    #[test]
    fn total_sums_everything() {
        let mut ts = TimeSeries::new(SEC, 0);
        ts.add(1, 2.5);
        ts.add(2 * SEC, 2.5);
        assert_eq!(ts.total(), 5.0);
    }
}
