//! Scalar accumulators: counters and running means.

/// A monotonically increasing event counter.
///
/// Used for scheduler statistics the paper profiles directly: task
/// migrations (Figure 11b), inter-processor interrupts (Figure 13), vCPU
/// preemptions (`vact`'s preemption counter, §3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self(0)
    }

    /// Increments by one and returns the new value.
    pub fn inc(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero and returns the previous value (the read-and-reset
    /// pattern `vact` uses on its preemption counter each sampling period).
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

/// A running mean with sample count, for cheap averaged metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanTracker {
    sum: f64,
    n: u64,
}

impl MeanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, sample: f64) {
        self.sum += sample;
        self.n += 1;
    }

    /// Mean of the samples so far; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments_and_takes() {
        let mut c = Counter::new();
        assert_eq!(c.inc(), 1);
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn mean_tracker_basics() {
        let mut m = MeanTracker::new();
        assert_eq!(m.mean(), 0.0);
        m.add(2.0);
        m.add(4.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum(), 6.0);
        m.reset();
        assert_eq!(m.count(), 0);
    }
}
