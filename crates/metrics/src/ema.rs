//! Exponential moving average.
//!
//! `vcap` smooths probed vCPU capacity with an EMA that "considers the past
//! while prioritizing the present" (paper §3.1), preventing capacity spikes
//! from triggering task-migration storms. The paper's tunable is expressed as
//! a half-life: "50% decay per 2 sampling periods" (Table 1);
//! [`Ema::from_half_life`] converts that form into a per-sample weight.

/// An exponential moving average over `f64` samples.
///
/// # Examples
///
/// ```
/// use vsched_metrics::Ema;
///
/// // The paper's vcap setting: history halves every 2 samples.
/// let mut ema = Ema::from_half_life(2.0);
/// ema.update(1024.0);
/// ema.update(0.0);
/// ema.update(0.0);
/// // After two zero samples, the initial reading has decayed to ~50%.
/// assert!((ema.get() - 512.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// Creates an EMA with the given per-sample weight `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range: {alpha}");
        Self { alpha, value: None }
    }

    /// Creates an EMA whose history decays to 50% after `samples` updates.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is not strictly positive.
    pub fn from_half_life(samples: f64) -> Self {
        assert!(samples > 0.0, "half-life must be positive");
        let alpha = 1.0 - 0.5f64.powf(1.0 / samples);
        Self::new(alpha)
    }

    /// Feeds one sample; the first sample initializes the average exactly.
    pub fn update(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        };
        self.value = Some(next);
        next
    }

    /// Current average; 0.0 before the first sample.
    pub fn get(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Whether at least one sample has been recorded.
    pub fn initialized(&self) -> bool {
        self.value.is_some()
    }

    /// The per-sample weight.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Forgets all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_exactly() {
        let mut e = Ema::new(0.1);
        assert_eq!(e.update(500.0), 500.0);
        assert_eq!(e.get(), 500.0);
    }

    #[test]
    fn half_life_semantics() {
        let mut e = Ema::from_half_life(2.0);
        e.update(100.0);
        e.update(0.0);
        e.update(0.0);
        // First sample initializes exactly; two decays halve it.
        assert!((e.get() - 50.0).abs() < 1e-9, "got {}", e.get());
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ema::new(0.3);
        e.update(0.0);
        for _ in 0..100 {
            e.update(42.0);
        }
        assert!((e.get() - 42.0).abs() < 1e-6);
    }

    #[test]
    fn alpha_one_tracks_input_exactly() {
        let mut e = Ema::new(1.0);
        e.update(5.0);
        e.update(9.0);
        assert_eq!(e.get(), 9.0);
    }

    #[test]
    #[should_panic]
    fn zero_alpha_is_rejected() {
        let _ = Ema::new(0.0);
    }

    #[test]
    fn reset_forgets_history() {
        let mut e = Ema::new(0.5);
        e.update(10.0);
        e.reset();
        assert!(!e.initialized());
        assert_eq!(e.update(3.0), 3.0);
    }

    #[test]
    fn smoothing_lies_between_old_and_new() {
        let mut e = Ema::new(0.25);
        e.update(0.0);
        let v = e.update(100.0);
        assert!(v > 0.0 && v < 100.0);
        assert_eq!(v, 25.0);
    }
}
