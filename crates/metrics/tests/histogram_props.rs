//! Property tests on the log-bucket histogram.
//!
//! Every latency number in EXPERIMENTS.md flows through this structure, so
//! its quantile math gets adversarial treatment: conservation, monotonicity,
//! bounded relative error, and merge associativity.

use proptest::prelude::*;
use vsched_metrics::Histogram;

proptest! {
    /// Count is conserved and min/max bracket every recorded value's bucket.
    #[test]
    fn count_and_bounds_conserved(values in prop::collection::vec(0u64..u64::MAX / 2, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let lo = *values.iter().min().expect("non-empty");
        let hi = *values.iter().max().expect("non-empty");
        // Bucket midpoints stay within ~6.25% of the true value (32
        // sub-buckets per doubling), with slack for the smallest buckets.
        let tol_lo = lo / 8 + 2;
        let tol_hi = hi / 8 + 2;
        prop_assert!(h.min() <= lo + tol_lo, "min {} vs {}", h.min(), lo);
        prop_assert!(h.max() + tol_hi >= hi, "max {} vs {}", h.max(), hi);
    }

    /// Percentiles are monotone in `p` and stay within the recorded range
    /// (modulo bucket rounding).
    #[test]
    fn percentiles_monotone(values in prop::collection::vec(0u64..1_000_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let ps = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0];
        let mut last = 0u64;
        for &p in &ps {
            let q = h.percentile(p);
            prop_assert!(q >= last, "p{p} = {q} < previous {last}");
            last = q;
        }
        prop_assert!(h.percentile(100.0) <= h.max());
        prop_assert!(h.percentile(0.0) >= h.min());
    }

    /// The median of a recorded set lands within one bucket of the true
    /// median (relative error ≤ ~7%).
    #[test]
    fn median_relative_error_bounded(values in prop::collection::vec(100u64..1_000_000_000, 3..300)) {
        let mut h = Histogram::new();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        let truth = sorted[(sorted.len() - 1) / 2] as f64;
        let got = h.p50() as f64;
        prop_assert!((got - truth).abs() <= 0.07 * truth + 2.0,
            "p50 {got} vs true median {truth}");
    }

    /// Merging histograms equals recording the union, and merge order
    /// does not matter.
    #[test]
    fn merge_is_union_and_commutative(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.count(), hu.count());
        prop_assert_eq!(ab.count(), ba.count());
        for &p in &[50.0, 95.0, 99.0] {
            prop_assert_eq!(ab.percentile(p), hu.percentile(p));
            prop_assert_eq!(ab.percentile(p), ba.percentile(p));
        }
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
    }

    /// `record_n` equals `n` separate `record`s.
    #[test]
    fn record_n_equals_repeated_record(v in 0u64..10_000_000, n in 1u64..1000) {
        let mut bulk = Histogram::new();
        bulk.record_n(v, n);
        let mut single = Histogram::new();
        for _ in 0..n {
            single.record(v);
        }
        prop_assert_eq!(bulk.count(), single.count());
        prop_assert_eq!(bulk.p50(), single.p50());
        prop_assert_eq!(bulk.mean(), single.mean());
    }

    /// The mean tracks the true mean within bucket resolution.
    #[test]
    fn mean_tracks_truth(values in prop::collection::vec(1000u64..100_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let truth = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - truth).abs() <= 0.05 * truth,
            "mean {} vs {}", h.mean(), truth);
    }

    /// `clear` returns the histogram to its pristine state.
    #[test]
    fn clear_resets(values in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        h.clear();
        prop_assert_eq!(h.count(), 0);
        let fresh = Histogram::new();
        prop_assert_eq!(h.p99(), fresh.p99());
    }
}
