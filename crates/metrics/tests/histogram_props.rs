//! Property tests on the log-bucket histogram.
//!
//! Every latency number in EXPERIMENTS.md flows through this structure, so
//! its quantile math gets adversarial treatment: conservation, monotonicity,
//! bounded relative error, and merge associativity. Driven by simcore's
//! in-tree `propcheck` harness (deterministic, offline).

use simcore::propcheck::{forall, vec_of};
use vsched_metrics::Histogram;

fn cases(base: usize) -> usize {
    if cfg!(feature = "property-tests") {
        base * 8
    } else {
        base
    }
}

/// Count is conserved and min/max bracket every recorded value's bucket.
#[test]
fn count_and_bounds_conserved() {
    forall(0x61, cases(64), |rng| {
        let values = vec_of(rng, 1, 500, |r| r.range(0, u64::MAX / 2));
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        let lo = *values.iter().min().expect("non-empty");
        let hi = *values.iter().max().expect("non-empty");
        // Bucket midpoints stay within ~6.25% of the true value (32
        // sub-buckets per doubling), with slack for the smallest buckets.
        let tol_lo = lo / 8 + 2;
        let tol_hi = hi / 8 + 2;
        assert!(h.min() <= lo + tol_lo, "min {} vs {}", h.min(), lo);
        assert!(h.max() + tol_hi >= hi, "max {} vs {}", h.max(), hi);
    });
}

/// Percentiles are monotone in `p` and stay within the recorded range
/// (modulo bucket rounding).
#[test]
fn percentiles_monotone() {
    forall(0x62, cases(64), |rng| {
        let values = vec_of(rng, 1, 300, |r| r.range(0, 1_000_000_000));
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let ps = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0];
        let mut last = 0u64;
        for &p in &ps {
            let q = h.percentile(p);
            assert!(q >= last, "p{p} = {q} < previous {last}");
            last = q;
        }
        assert!(h.percentile(100.0) <= h.max());
        assert!(h.percentile(0.0) >= h.min());
    });
}

/// The median of a recorded set lands within one bucket of the true
/// median (relative error ≤ ~7%).
#[test]
fn median_relative_error_bounded() {
    forall(0x63, cases(64), |rng| {
        let values = vec_of(rng, 3, 300, |r| r.range(100, 1_000_000_000));
        let mut h = Histogram::new();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        let truth = sorted[(sorted.len() - 1) / 2] as f64;
        let got = h.p50() as f64;
        assert!(
            (got - truth).abs() <= 0.07 * truth + 2.0,
            "p50 {got} vs true median {truth}"
        );
    });
}

/// Merging histograms equals recording the union, and merge order
/// does not matter.
#[test]
fn merge_is_union_and_commutative() {
    forall(0x64, cases(64), |rng| {
        let a = vec_of(rng, 0, 200, |r| r.range(0, 1_000_000));
        let b = vec_of(rng, 0, 200, |r| r.range(0, 1_000_000));
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        assert_eq!(ab.count(), hu.count());
        assert_eq!(ab.count(), ba.count());
        for &p in &[50.0, 95.0, 99.0] {
            assert_eq!(ab.percentile(p), hu.percentile(p));
            assert_eq!(ab.percentile(p), ba.percentile(p));
        }
        assert_eq!(ab.min(), ba.min());
        assert_eq!(ab.max(), ba.max());
    });
}

/// Merge is associative and count-preserving: `(a ⊎ b) ⊎ c` and
/// `a ⊎ (b ⊎ c)` agree on every observable, and the merged count is the
/// exact sum of the inputs. Fleet SLO accounting folds per-host and
/// per-tenant histograms in whatever order cells complete, so this is the
/// law that makes that reduction order-insensitive.
#[test]
fn merge_is_associative_and_count_preserving() {
    forall(0x68, cases(64), |rng| {
        let sets: Vec<Vec<u64>> = (0..3)
            .map(|_| vec_of(rng, 0, 150, |r| r.range(0, 1_000_000_000)))
            .collect();
        let hs: Vec<Histogram> = sets
            .iter()
            .map(|vals| {
                let mut h = Histogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            })
            .collect();
        // (a ⊎ b) ⊎ c
        let mut left = hs[0].clone();
        left.merge(&hs[1]);
        left.merge(&hs[2]);
        // a ⊎ (b ⊎ c)
        let mut bc = hs[1].clone();
        bc.merge(&hs[2]);
        let mut right = hs[0].clone();
        right.merge(&bc);
        let total: u64 = sets.iter().map(|s| s.len() as u64).sum();
        assert_eq!(left.count(), total, "merge must preserve counts exactly");
        assert_eq!(right.count(), total);
        assert_eq!(left.min(), right.min());
        assert_eq!(left.max(), right.max());
        assert_eq!(left.mean().to_bits(), right.mean().to_bits());
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(
                left.percentile(p),
                right.percentile(p),
                "p{p} differs between association orders"
            );
        }
    });
}

/// `record_n` equals `n` separate `record`s.
#[test]
fn record_n_equals_repeated_record() {
    forall(0x65, cases(128), |rng| {
        let v = rng.range(0, 10_000_000);
        let n = rng.range(1, 1000);
        let mut bulk = Histogram::new();
        bulk.record_n(v, n);
        let mut single = Histogram::new();
        for _ in 0..n {
            single.record(v);
        }
        assert_eq!(bulk.count(), single.count());
        assert_eq!(bulk.p50(), single.p50());
        assert_eq!(bulk.mean(), single.mean());
    });
}

/// The mean tracks the true mean within bucket resolution.
#[test]
fn mean_tracks_truth() {
    forall(0x66, cases(64), |rng| {
        let values = vec_of(rng, 1, 300, |r| r.range(1000, 100_000_000));
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let truth = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        assert!(
            (h.mean() - truth).abs() <= 0.05 * truth,
            "mean {} vs {}",
            h.mean(),
            truth
        );
    });
}

/// `clear` returns the histogram to its pristine state.
#[test]
fn clear_resets() {
    forall(0x67, cases(64), |rng| {
        let values = vec_of(rng, 1, 100, |r| r.range(0, 1_000_000));
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        h.clear();
        assert_eq!(h.count(), 0);
        let fresh = Histogram::new();
        assert_eq!(h.p99(), fresh.p99());
    });
}
