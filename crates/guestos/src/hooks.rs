//! Scheduler extension hooks.
//!
//! The paper implements `bvs` and `ivh` by inserting BPF hooks into CFS's
//! CPU-selection path and scheduler-tick handler, "to bypass the original
//! code paths" (§4) rather than adding a new scheduling class. This trait is
//! that hook surface: `vsched` installs an implementation into the guest;
//! every method has a no-op default so partial configurations (e.g. probers
//! without bvs) install only what they need.

use crate::kernel::{Kernel, VcpuId};
use crate::platform::Platform;
use crate::task::TaskId;

/// Hook points mirroring the paper's BPF attachment sites.
pub trait SchedHooks {
    /// Downcasting support so harnesses can read statistics back out of an
    /// installed hook set.
    fn as_any(&mut self) -> &mut dyn std::any::Any;

    /// Wake-up CPU selection override. Returning `Some(cpu)` bypasses the
    /// CFS heuristic entirely (bvs's aggressive first-fit search, §3.2);
    /// `None` falls through to `select_task_rq_fair`.
    fn select_cpu(
        &mut self,
        _kern: &mut Kernel,
        _plat: &mut dyn Platform,
        _task: TaskId,
        _prev: VcpuId,
    ) -> Option<VcpuId> {
        None
    }

    /// Called from the scheduler tick after regular tick accounting; ivh
    /// initiates proactive running-task migration from here (§3.3), and
    /// vact records its heartbeat timestamp (§3.1).
    fn on_tick(&mut self, _kern: &mut Kernel, _plat: &mut dyn Platform, _v: VcpuId) {}

    /// Called when the host starts executing vCPU `v` (the guest observes
    /// this as "we are running again"); ivh completes pending pull requests
    /// here.
    fn on_vcpu_start(&mut self, _kern: &mut Kernel, _plat: &mut dyn Platform, _v: VcpuId) {}

    /// Called when the host preempts or halts vCPU `v`.
    fn on_vcpu_stop(&mut self, _kern: &mut Kernel, _plat: &mut dyn Platform, _v: VcpuId) {}

    /// A timer armed with a token `>= HOOK_TIMER_BASE` fired (vProber
    /// sampling periods).
    fn on_timer(&mut self, _kern: &mut Kernel, _plat: &mut dyn Platform, _token: u64) {}

    /// A built-in (prober) task finished its refill quantum; gives the hook
    /// owner a chance to account prober progress.
    fn on_builtin_burst(&mut self, _kern: &mut Kernel, _plat: &mut dyn Platform, _task: TaskId) {}
}

/// The inert hook set: plain CFS behaviour.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl SchedHooks for NoHooks {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
