//! cgroup-cpuset-style placement restrictions.
//!
//! `rwc` (relaxed work conservation, paper §3.4) hides problematic vCPUs
//! from task placement "using cgroups": straggler vCPUs are restricted to
//! best-effort (`SCHED_IDLE`) tasks so `vcap` can keep probing them, while
//! all but one vCPU of each stacking group are banned outright (only `vtop`
//! probers, which carry the bypass flag, may run there).

use crate::cpumask::CpuMask;
use crate::task::Policy;

/// The placement permissions currently in force.
#[derive(Debug, Clone, Copy)]
pub struct CpuAllow {
    /// vCPUs where normal (non-`SCHED_IDLE`) tasks may run.
    pub normal: CpuMask,
    /// vCPUs where any task (including `SCHED_IDLE`) may run.
    pub any: CpuMask,
}

impl CpuAllow {
    /// Everything allowed everywhere — the default, work-conserving state.
    pub fn unrestricted(nr_vcpus: usize) -> Self {
        let all = CpuMask::first_n(nr_vcpus);
        Self {
            normal: all,
            any: all,
        }
    }

    /// The set of vCPUs a task with `policy` may be placed on.
    ///
    /// Tasks with the cgroup-bypass flag (vtop probers) should use their raw
    /// affinity instead of consulting this.
    pub fn allowed_for(&self, policy: &Policy) -> CpuMask {
        if policy.is_idle() {
            self.any
        } else {
            self.normal
        }
    }

    /// Restricts vCPU `v` to best-effort tasks only (straggler handling).
    pub fn restrict_to_idle(&mut self, v: usize) {
        self.normal.clear(v);
        self.any.set(v);
    }

    /// Bans vCPU `v` for all tasks (stacked-vCPU handling).
    pub fn ban(&mut self, v: usize) {
        self.normal.clear(v);
        self.any.clear(v);
    }

    /// Lifts any restriction on vCPU `v`.
    pub fn allow(&mut self, v: usize) {
        self.normal.set(v);
        self.any.set(v);
    }

    /// vCPUs banned for every task.
    pub fn fully_banned(&self, nr_vcpus: usize) -> CpuMask {
        CpuMask::first_n(nr_vcpus).minus(&self.any)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_allows_everything() {
        let c = CpuAllow::unrestricted(4);
        assert_eq!(c.allowed_for(&Policy::default()).count(), 4);
        assert_eq!(c.allowed_for(&Policy::Idle).count(), 4);
    }

    #[test]
    fn straggler_restriction_keeps_idle_tasks() {
        let mut c = CpuAllow::unrestricted(4);
        c.restrict_to_idle(2);
        assert!(!c.allowed_for(&Policy::default()).contains(2));
        assert!(c.allowed_for(&Policy::Idle).contains(2));
    }

    #[test]
    fn ban_removes_for_all_policies() {
        let mut c = CpuAllow::unrestricted(4);
        c.ban(1);
        assert!(!c.allowed_for(&Policy::default()).contains(1));
        assert!(!c.allowed_for(&Policy::Idle).contains(1));
        assert_eq!(c.fully_banned(4), CpuMask::single(1));
    }

    #[test]
    fn allow_lifts_restrictions() {
        let mut c = CpuAllow::unrestricted(4);
        c.ban(3);
        c.allow(3);
        assert!(c.allowed_for(&Policy::default()).contains(3));
        assert!(c.fully_banned(4).is_empty());
    }
}
