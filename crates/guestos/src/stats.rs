//! Guest scheduler statistics.
//!
//! Counters and histograms behind the paper's profiled metrics: task
//! migrations (Figure 11b), rescheduling/migration IPIs (Figure 13), and
//! runqueue latency (Table 3's queue-time breakdown).

use metrics::{Counter, Histogram};

/// Aggregated scheduler statistics for one guest.
#[derive(Default)]
pub struct KernelStats {
    /// Task migrations triggered at wakeup placement.
    pub wake_migrations: Counter,
    /// Task migrations triggered by (periodic or idle) load balancing.
    pub balance_migrations: Counter,
    /// Running-task migrations (active balance / ivh).
    pub active_migrations: Counter,
    /// Rescheduling IPIs sent to other vCPUs.
    pub resched_ipis: Counter,
    /// IPIs that crossed an LLC boundary at send time (physical placement).
    pub cross_llc_ipis: Counter,
    /// Context switches performed.
    pub context_switches: Counter,
    /// Wakeup-to-first-run runqueue latency (ns).
    pub queue_latency: Histogram,
    /// ivh migrations attempted (hook-maintained).
    pub ivh_attempts: Counter,
    /// ivh migrations completed (hook-maintained).
    pub ivh_completed: Counter,
    /// ivh migrations abandoned because the pull arrived too late.
    pub ivh_abandoned: Counter,
}

impl KernelStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total task migrations of any kind.
    pub fn total_migrations(&self) -> u64 {
        self.wake_migrations.get() + self.balance_migrations.get() + self.active_migrations.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_categories() {
        let mut s = KernelStats::new();
        s.wake_migrations.add(2);
        s.balance_migrations.add(3);
        s.active_migrations.add(5);
        assert_eq!(s.total_migrations(), 10);
    }
}
