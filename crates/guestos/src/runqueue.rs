//! Per-vCPU CFS runqueues.
//!
//! A red-black-tree-equivalent ordered set keyed by `(vruntime, TaskId)`.
//! The queue holds *waiting* tasks only; the current task is tracked by the
//! kernel separately (as in Linux, where `curr` is dequeued from the tree).

use crate::task::TaskId;
use simcore::SimTime;
use std::collections::BTreeSet;

/// A CFS runqueue for one vCPU.
#[derive(Debug, Clone, Default)]
pub struct CfsRq {
    tree: BTreeSet<(u64, TaskId)>,
    /// Cached leftmost `(vruntime, task)` — Linux's `rb_leftmost`. Pick-next
    /// peeks the queue on every context switch; the cache makes that O(1)
    /// instead of a tree descent, and is refreshed only when the leftmost
    /// entry itself is removed.
    leftmost: Option<(u64, TaskId)>,
    /// Monotonic floor of vruntime on this queue; new arrivals are placed
    /// relative to it.
    pub min_vruntime: u64,
    /// Sum of weights of queued tasks (excluding current).
    pub weight_sum: u64,
    /// Sum of PELT load of queued tasks, maintained approximately (refreshed
    /// by the balancer).
    pub load_sum: f64,
    /// Number of queued `SCHED_IDLE` tasks.
    pub nr_idle: usize,
    /// Number of queued normal tasks.
    pub nr_normal: usize,
    /// When this vCPU last had nothing to run (None while busy).
    pub idle_since: Option<SimTime>,
}

impl CfsRq {
    /// Creates an empty runqueue.
    pub fn new() -> Self {
        Self {
            idle_since: Some(SimTime::ZERO),
            ..Self::default()
        }
    }

    /// Number of waiting tasks.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether no tasks are waiting.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Whether only `SCHED_IDLE` tasks are waiting (and at least one is).
    pub fn only_idle_policy(&self) -> bool {
        self.nr_normal == 0 && self.nr_idle > 0
    }

    /// Inserts a task with its (already adjusted) vruntime.
    pub fn enqueue(&mut self, task: TaskId, vruntime: u64, weight: u64, is_idle: bool, load: f64) {
        let inserted = self.tree.insert((vruntime, task));
        debug_assert!(inserted, "task {task:?} double-enqueued");
        if self.leftmost.is_none_or(|lm| (vruntime, task) < lm) {
            self.leftmost = Some((vruntime, task));
        }
        self.weight_sum += weight;
        self.load_sum += load;
        if is_idle {
            self.nr_idle += 1;
        } else {
            self.nr_normal += 1;
        }
    }

    /// Removes a specific task; returns whether it was present.
    pub fn dequeue(
        &mut self,
        task: TaskId,
        vruntime: u64,
        weight: u64,
        is_idle: bool,
        load: f64,
    ) -> bool {
        let removed = self.tree.remove(&(vruntime, task));
        if removed {
            if self.leftmost == Some((vruntime, task)) {
                self.leftmost = self.tree.first().copied();
            }
            self.weight_sum = self.weight_sum.saturating_sub(weight);
            // Enqueue/dequeue pair up add/sub of the same PELT load, but the
            // float sums accumulate rounding drift over long runs; clamp the
            // residue at zero so consumers never see a negative queue load.
            let next = self.load_sum - load;
            debug_assert!(
                next > -1.0,
                "load_sum drifted far negative: {} - {load}",
                self.load_sum
            );
            self.load_sum = next.max(0.0);
            if is_idle {
                self.nr_idle -= 1;
            } else {
                self.nr_normal -= 1;
            }
        }
        removed
    }

    /// The task with the smallest vruntime, without removing it.
    pub fn peek(&self) -> Option<TaskId> {
        self.leftmost.map(|(_, t)| t)
    }

    /// The smallest queued vruntime.
    pub fn min_queued_vruntime(&self) -> Option<u64> {
        self.leftmost.map(|(v, _)| v)
    }

    /// Iterates `(vruntime, task)` in increasing vruntime order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, TaskId)> + '_ {
        self.tree.iter().copied()
    }

    /// Advances `min_vruntime` to track the leftmost entity, as
    /// `update_min_vruntime` does in Linux. `curr_vruntime` is the running
    /// task's vruntime if one exists.
    pub fn update_min_vruntime(&mut self, curr_vruntime: Option<u64>) {
        let mut candidate = curr_vruntime;
        if let Some(leftmost) = self.min_queued_vruntime() {
            candidate = Some(match candidate {
                Some(c) => c.min(leftmost),
                None => leftmost,
            });
        }
        if let Some(c) = candidate {
            self.min_vruntime = self.min_vruntime.max(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u32) -> TaskId {
        TaskId(n)
    }

    #[test]
    fn orders_by_vruntime() {
        let mut rq = CfsRq::new();
        rq.enqueue(tid(1), 300, 1024, false, 0.0);
        rq.enqueue(tid(2), 100, 1024, false, 0.0);
        rq.enqueue(tid(3), 200, 1024, false, 0.0);
        assert_eq!(rq.peek(), Some(tid(2)));
        assert_eq!(rq.len(), 3);
    }

    #[test]
    fn ties_break_by_task_id() {
        let mut rq = CfsRq::new();
        rq.enqueue(tid(9), 100, 1024, false, 0.0);
        rq.enqueue(tid(1), 100, 1024, false, 0.0);
        assert_eq!(rq.peek(), Some(tid(1)));
    }

    #[test]
    fn dequeue_updates_sums() {
        let mut rq = CfsRq::new();
        rq.enqueue(tid(1), 10, 1024, false, 512.0);
        rq.enqueue(tid(2), 20, 3, true, 4.0);
        assert!(rq.dequeue(tid(1), 10, 1024, false, 512.0));
        assert_eq!(rq.weight_sum, 3);
        assert_eq!(rq.nr_normal, 0);
        assert_eq!(rq.nr_idle, 1);
        assert!(rq.only_idle_policy());
        assert!(!rq.dequeue(tid(1), 10, 1024, false, 512.0));
    }

    #[test]
    fn min_vruntime_is_monotone() {
        let mut rq = CfsRq::new();
        rq.enqueue(tid(1), 500, 1024, false, 0.0);
        rq.update_min_vruntime(None);
        assert_eq!(rq.min_vruntime, 500);
        // A lower-vruntime arrival cannot move the floor backwards.
        rq.enqueue(tid(2), 100, 1024, false, 0.0);
        rq.update_min_vruntime(None);
        assert_eq!(rq.min_vruntime, 500);
        // Current task with higher vruntime but leftmost lower: floor stays.
        rq.update_min_vruntime(Some(900));
        assert_eq!(rq.min_vruntime, 500);
    }

    #[test]
    fn only_idle_policy_detection() {
        let mut rq = CfsRq::new();
        assert!(!rq.only_idle_policy());
        rq.enqueue(tid(1), 0, 3, true, 0.0);
        assert!(rq.only_idle_policy());
        rq.enqueue(tid(2), 0, 1024, false, 0.0);
        assert!(!rq.only_idle_policy());
    }

    #[test]
    fn load_sum_clamps_float_drift_at_zero() {
        let mut rq = CfsRq::new();
        // Loads whose sum is not exactly representable: repeated add/sub
        // pairs leave a tiny residue that must never surface as a negative
        // queue load.
        let loads = [0.1, 0.2, 0.3, 511.7, 1e-9];
        for round in 0..10_000 {
            for (i, &l) in loads.iter().enumerate() {
                rq.enqueue(tid(i as u32), round, 1024, false, l);
            }
            for (i, &l) in loads.iter().enumerate() {
                rq.dequeue(tid(i as u32), round, 1024, false, l);
            }
            assert!(
                rq.load_sum >= 0.0,
                "round {round}: load_sum {}",
                rq.load_sum
            );
        }
        assert!(rq.is_empty());
        assert!(rq.load_sum >= 0.0 && rq.load_sum < 1e-3, "{}", rq.load_sum);
    }

    #[test]
    fn leftmost_cache_tracks_tree() {
        // Interleaved enqueue/dequeue, checking the cached leftmost against
        // a full tree walk after every operation.
        let mut rq = CfsRq::new();
        let mut rng = simcore::SimRng::new(0xCAFE);
        let mut live: Vec<(u64, u32)> = Vec::new();
        for i in 0..2000u32 {
            if live.is_empty() || rng.f64() < 0.6 {
                let v = rng.u64() % 1000;
                rq.enqueue(tid(i), v, 1024, false, 0.0);
                live.push((v, i));
            } else {
                let k = rng.index(live.len());
                let (v, id) = live.swap_remove(k);
                assert!(rq.dequeue(tid(id), v, 1024, false, 0.0));
            }
            let expect = rq.iter().next();
            assert_eq!(
                rq.min_queued_vruntime(),
                expect.map(|(v, _)| v),
                "after op {i}"
            );
            assert_eq!(rq.peek(), expect.map(|(_, t)| t), "after op {i}");
        }
    }

    #[test]
    fn iter_is_sorted() {
        let mut rq = CfsRq::new();
        for (i, v) in [(1u32, 50u64), (2, 10), (3, 30)] {
            rq.enqueue(tid(i), v, 1024, false, 0.0);
        }
        let order: Vec<u64> = rq.iter().map(|(v, _)| v).collect();
        assert_eq!(order, vec![10, 30, 50]);
    }
}
