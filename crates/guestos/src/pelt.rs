//! Per-entity load tracking (PELT).
//!
//! Linux tracks each task's recent CPU utilization with a geometric series
//! whose half-life is 32 ms. Both `bvs` and `ivh` "utilize per-entity load
//! tracking (PELT) to classify tasks" (paper §3): `bvs` wants *small*
//! latency-sensitive tasks (low `util_avg`); `ivh` wants *CPU-intensive*
//! tasks (high `util_avg`).
//!
//! We implement PELT as its continuous-time equivalent: an exponential
//! average with the same 32 ms half-life, updated lazily over the intervals
//! between scheduler events. The discrete 1024 µs period of the kernel
//! implementation is an artifact of fixed-point arithmetic; the continuous
//! form has identical steady-state and transient behaviour.

use simcore::SimTime;

/// PELT half-life: 32 ms, as in Linux.
pub const PELT_HALF_LIFE_NS: f64 = 32.0 * 1_000_000.0;

/// Maximum utilization value (a task running 100% of the time).
pub const UTIL_MAX: f64 = 1024.0;

/// What the entity was doing over an accounting interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeltState {
    /// Actively executing on a vCPU that is running on a core.
    Running,
    /// On a runqueue (or current on a preempted vCPU) but not executing.
    Runnable,
    /// Sleeping or blocked.
    Sleeping,
}

/// Per-entity load tracking state.
#[derive(Debug, Clone, Copy)]
pub struct Pelt {
    /// Utilization average: fraction of time spent *running*, scaled to
    /// [`UTIL_MAX`].
    util_avg: f64,
    /// Load average: fraction of time runnable (running + waiting), scaled
    /// to [`UTIL_MAX`] — weighting by task weight is applied by callers.
    load_avg: f64,
    last_update: SimTime,
}

impl Pelt {
    /// Creates a fresh tracker at `now` with zero history.
    pub fn new(now: SimTime) -> Self {
        Self {
            util_avg: 0.0,
            load_avg: 0.0,
            last_update: now,
        }
    }

    /// Creates a tracker pre-charged as if the task had been running
    /// continuously (Linux initializes new tasks with full load so they are
    /// not mistaken for small tasks before they build history).
    pub fn new_full(now: SimTime) -> Self {
        Self {
            util_avg: UTIL_MAX / 2.0,
            load_avg: UTIL_MAX / 2.0,
            last_update: now,
        }
    }

    /// Accounts the interval `[last_update, now]` spent in `state`.
    pub fn update(&mut self, now: SimTime, state: PeltState) {
        let dt = now.since(self.last_update);
        if dt == 0 {
            return;
        }
        let decay = 0.5f64.powf(dt as f64 / PELT_HALF_LIFE_NS);
        let running_target = match state {
            PeltState::Running => UTIL_MAX,
            _ => 0.0,
        };
        let runnable_target = match state {
            PeltState::Running | PeltState::Runnable => UTIL_MAX,
            PeltState::Sleeping => 0.0,
        };
        self.util_avg = self.util_avg * decay + running_target * (1.0 - decay);
        self.load_avg = self.load_avg * decay + runnable_target * (1.0 - decay);
        self.last_update = now;
    }

    /// Accounts a mixed interval ending at `now` during which the entity
    /// was *current* on a vCPU but only executed for `active_ns` of it (the
    /// rest stolen by the host). The active part is charged as Running and
    /// the remainder as Runnable — the stalled-running-task situation of
    /// paper §2.3.
    pub fn update_mixed(&mut self, now: SimTime, active_ns: u64) {
        let total = now.since(self.last_update);
        let active = active_ns.min(total);
        let boundary = self.last_update.after(active);
        self.update(boundary, PeltState::Running);
        self.update(now, PeltState::Runnable);
    }

    /// Utilization average in `[0, UTIL_MAX]`.
    pub fn util(&self) -> f64 {
        self.util_avg
    }

    /// Load (runnable) average in `[0, UTIL_MAX]`.
    pub fn load(&self) -> f64 {
        self.load_avg
    }

    /// Timestamp of the last accounting.
    pub fn last_update(&self) -> SimTime {
        self.last_update
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::MS;

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn always_running_converges_to_max() {
        let mut p = Pelt::new(t(0));
        for i in 1..=300 {
            p.update(t(i), PeltState::Running);
        }
        assert!(p.util() > 0.99 * UTIL_MAX, "util {}", p.util());
    }

    #[test]
    fn half_life_is_32ms() {
        let mut p = Pelt::new_full(t(0));
        let start = p.util();
        p.update(SimTime::from_ns(32 * MS), PeltState::Sleeping);
        assert!((p.util() - start / 2.0).abs() < 1.0, "util {}", p.util());
    }

    #[test]
    fn runnable_counts_toward_load_not_util() {
        let mut p = Pelt::new(t(0));
        p.update(t(200), PeltState::Runnable);
        assert!(p.util() < 1.0);
        assert!(p.load() > 0.9 * UTIL_MAX);
    }

    #[test]
    fn duty_cycle_half_gives_half_util() {
        let mut p = Pelt::new(t(0));
        // 1 ms running / 1 ms sleeping, alternating for 400 ms.
        for i in 0..200 {
            p.update(t(2 * i + 1), PeltState::Running);
            p.update(t(2 * i + 2), PeltState::Sleeping);
        }
        let util = p.util();
        assert!(
            (util - UTIL_MAX / 2.0).abs() < 0.1 * UTIL_MAX,
            "util {util}"
        );
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut p = Pelt::new_full(t(5));
        let before = p.util();
        p.update(t(5), PeltState::Sleeping);
        assert_eq!(p.util(), before);
    }

    #[test]
    fn new_full_is_half_charged() {
        let p = Pelt::new_full(t(0));
        assert_eq!(p.util(), UTIL_MAX / 2.0);
    }
}
