//! Per-entity load tracking (PELT).
//!
//! Linux tracks each task's recent CPU utilization with a geometric series
//! whose half-life is 32 ms. Both `bvs` and `ivh` "utilize per-entity load
//! tracking (PELT) to classify tasks" (paper §3): `bvs` wants *small*
//! latency-sensitive tasks (low `util_avg`); `ivh` wants *CPU-intensive*
//! tasks (high `util_avg`).
//!
//! We implement PELT as its continuous-time equivalent: an exponential
//! average with the same 32 ms half-life, updated lazily over the intervals
//! between scheduler events. The discrete 1024 µs period of the kernel
//! implementation is an artifact of fixed-point arithmetic; the continuous
//! form has identical steady-state and transient behaviour.

use simcore::SimTime;

/// PELT half-life: 32 ms, as in Linux.
pub const PELT_HALF_LIFE_NS: f64 = 32.0 * 1_000_000.0;

/// Sub-half-life resolution of the precomputed decay table: one half-life
/// is split into 64 steps, as Linux splits its 32 ms half-life into 32
/// 1024 µs periods (`runnable_avg_yN_inv`), just finer.
const DECAY_STEPS: usize = 64;

/// `round(2^32 * 0.5^(i / 64))` for `i in 0..=64`: one half-life of decay
/// factors in Q32 fixed point. The last entry is exactly `2^31` (one full
/// half-life), so chaining whole half-lives reduces to an exponent shift.
/// `decay_accuracy_vs_powf` in the tests below pins every entry (and the
/// interpolation between entries) against the closed-form `powf` path.
const DECAY_TABLE: [u64; DECAY_STEPS + 1] = [
    4294967296, 4248701965, 4202935003, 4157661043, 4112874773, 4068570940, 4024744348, 3981389855,
    3938502376, 3896076880, 3854108391, 3812591987, 3771522796, 3730896002, 3690706840, 3650950594,
    3611622603, 3572718252, 3534232978, 3496162267, 3458501653, 3421246719, 3384393094, 3347936457,
    3311872529, 3276197082, 3240905930, 3205994934, 3171459999, 3137297074, 3103502151, 3070071267,
    3037000500, 3004285971, 2971923842, 2939910317, 2908241642, 2876914102, 2845924021, 2815267765,
    2784941738, 2754942382, 2725266179, 2695909648, 2666869345, 2638141863, 2609723834, 2581611923,
    2553802834, 2526293303, 2499080105, 2472160047, 2445529972, 2419186755, 2393127307, 2367348571,
    2341847524, 2316621173, 2291666561, 2266980759, 2242560872, 2218404036, 2194507417, 2170868212,
    2147483648,
];

/// Decay below this is indistinguishable from zero at `UTIL_MAX` scale
/// (2^-64 × 1024 « f64 epsilon of any accumulated average).
const DECAY_ZERO_HALF_LIVES: f64 = 64.0;

/// `0.5^(dt / half_life)` via the fixed-point table: whole half-lives
/// become an exponent decrement, the fractional part a linear interpolation
/// between adjacent table entries. Replaces a `powf` call (tens of ns) with
/// a table lookup (~ns) on the per-event accounting path; relative error
/// against the closed form is < 2e-5 (see `decay_accuracy_vs_powf`).
#[inline]
fn decay_factor(dt_ns: u64) -> f64 {
    let half_lives = dt_ns as f64 * (1.0 / PELT_HALF_LIFE_NS);
    if half_lives >= DECAY_ZERO_HALF_LIVES {
        return 0.0;
    }
    let scaled = half_lives * DECAY_STEPS as f64;
    let idx = scaled as usize; // floor: scaled >= 0
    let frac = scaled - idx as f64;
    let whole = idx / DECAY_STEPS;
    let step = idx % DECAY_STEPS;
    let lo = DECAY_TABLE[step] as f64;
    let hi = DECAY_TABLE[step + 1] as f64;
    let interp = lo + (hi - lo) * frac;
    // 2^-whole, exact for whole < 64: build the f64 exponent directly.
    let pow2 = f64::from_bits((1023 - whole as u64) << 52);
    interp * (1.0 / 4294967296.0) * pow2
}

/// Maximum utilization value (a task running 100% of the time).
pub const UTIL_MAX: f64 = 1024.0;

/// What the entity was doing over an accounting interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeltState {
    /// Actively executing on a vCPU that is running on a core.
    Running,
    /// On a runqueue (or current on a preempted vCPU) but not executing.
    Runnable,
    /// Sleeping or blocked.
    Sleeping,
}

/// Per-entity load tracking state.
#[derive(Debug, Clone, Copy)]
pub struct Pelt {
    /// Utilization average: fraction of time spent *running*, scaled to
    /// [`UTIL_MAX`].
    util_avg: f64,
    /// Load average: fraction of time runnable (running + waiting), scaled
    /// to [`UTIL_MAX`] — weighting by task weight is applied by callers.
    load_avg: f64,
    last_update: SimTime,
}

impl Pelt {
    /// Creates a fresh tracker at `now` with zero history.
    pub fn new(now: SimTime) -> Self {
        Self {
            util_avg: 0.0,
            load_avg: 0.0,
            last_update: now,
        }
    }

    /// Creates a tracker pre-charged as if the task had been running
    /// continuously (Linux initializes new tasks with full load so they are
    /// not mistaken for small tasks before they build history).
    pub fn new_full(now: SimTime) -> Self {
        Self {
            util_avg: UTIL_MAX / 2.0,
            load_avg: UTIL_MAX / 2.0,
            last_update: now,
        }
    }

    /// Accounts the interval `[last_update, now]` spent in `state`.
    pub fn update(&mut self, now: SimTime, state: PeltState) {
        let dt = now.since(self.last_update);
        if dt == 0 {
            return;
        }
        let decay = decay_factor(dt);
        let running_target = match state {
            PeltState::Running => UTIL_MAX,
            _ => 0.0,
        };
        let runnable_target = match state {
            PeltState::Running | PeltState::Runnable => UTIL_MAX,
            PeltState::Sleeping => 0.0,
        };
        self.util_avg = self.util_avg * decay + running_target * (1.0 - decay);
        self.load_avg = self.load_avg * decay + runnable_target * (1.0 - decay);
        self.last_update = now;
    }

    /// Accounts a mixed interval ending at `now` during which the entity
    /// was *current* on a vCPU but only executed for `active_ns` of it (the
    /// rest stolen by the host). The active part is charged as Running and
    /// the remainder as Runnable — the stalled-running-task situation of
    /// paper §2.3.
    pub fn update_mixed(&mut self, now: SimTime, active_ns: u64) {
        let total = now.since(self.last_update);
        let active = active_ns.min(total);
        let boundary = self.last_update.after(active);
        self.update(boundary, PeltState::Running);
        self.update(now, PeltState::Runnable);
    }

    /// Utilization average in `[0, UTIL_MAX]`.
    pub fn util(&self) -> f64 {
        self.util_avg
    }

    /// Load (runnable) average in `[0, UTIL_MAX]`.
    pub fn load(&self) -> f64 {
        self.load_avg
    }

    /// Timestamp of the last accounting.
    pub fn last_update(&self) -> SimTime {
        self.last_update
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::MS;

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn always_running_converges_to_max() {
        let mut p = Pelt::new(t(0));
        for i in 1..=300 {
            p.update(t(i), PeltState::Running);
        }
        assert!(p.util() > 0.99 * UTIL_MAX, "util {}", p.util());
    }

    #[test]
    fn half_life_is_32ms() {
        let mut p = Pelt::new_full(t(0));
        let start = p.util();
        p.update(SimTime::from_ns(32 * MS), PeltState::Sleeping);
        assert!((p.util() - start / 2.0).abs() < 1.0, "util {}", p.util());
    }

    #[test]
    fn runnable_counts_toward_load_not_util() {
        let mut p = Pelt::new(t(0));
        p.update(t(200), PeltState::Runnable);
        assert!(p.util() < 1.0);
        assert!(p.load() > 0.9 * UTIL_MAX);
    }

    #[test]
    fn duty_cycle_half_gives_half_util() {
        let mut p = Pelt::new(t(0));
        // 1 ms running / 1 ms sleeping, alternating for 400 ms.
        for i in 0..200 {
            p.update(t(2 * i + 1), PeltState::Running);
            p.update(t(2 * i + 2), PeltState::Sleeping);
        }
        let util = p.util();
        assert!(
            (util - UTIL_MAX / 2.0).abs() < 0.1 * UTIL_MAX,
            "util {util}"
        );
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut p = Pelt::new_full(t(5));
        let before = p.util();
        p.update(t(5), PeltState::Sleeping);
        assert_eq!(p.util(), before);
    }

    #[test]
    fn new_full_is_half_charged() {
        let p = Pelt::new_full(t(0));
        assert_eq!(p.util(), UTIL_MAX / 2.0);
    }

    #[test]
    fn decay_accuracy_vs_powf() {
        // The fixed-point table must track the closed form to < 1e-3
        // relative error over 0..16 half-lives, sampled densely enough to
        // hit every table entry and the interpolated points between them.
        let max_dt = (16.0 * PELT_HALF_LIFE_NS) as u64;
        let step = max_dt / 4096;
        let mut worst = 0.0f64;
        for i in 0..=4096u64 {
            let dt = i * step;
            let exact = 0.5f64.powf(dt as f64 / PELT_HALF_LIFE_NS);
            let table = decay_factor(dt);
            let rel = (table - exact).abs() / exact;
            worst = worst.max(rel);
            assert!(
                rel < 1e-3,
                "dt {dt} ns: table {table} vs exact {exact} (rel {rel:.2e})"
            );
        }
        // The table is far better than the requirement; catch regressions
        // that would silently coarsen it.
        assert!(worst < 1e-4, "worst relative error {worst:.2e}");
    }

    #[test]
    fn decay_edge_cases() {
        assert_eq!(decay_factor(0), 1.0);
        // One exact half-life: table entry 64 is exactly 2^31 / 2^32.
        assert_eq!(decay_factor(PELT_HALF_LIFE_NS as u64), 0.5);
        // Past the cutoff the factor clamps to zero rather than denormals.
        assert_eq!(decay_factor((65.0 * PELT_HALF_LIFE_NS) as u64), 0.0);
        // Just below the cutoff stays positive.
        assert!(decay_factor((63.5 * PELT_HALF_LIFE_NS) as u64) > 0.0);
    }
}
