//! The guest kernel: CFS core, context switching, and the hook dispatcher.
//!
//! [`Kernel`] holds the scheduler state (task arena, per-vCPU runqueues,
//! domains, cgroup masks) and implements the CFS mechanics: enqueue/dequeue
//! with sleeper placement, vruntime accounting from platform run deltas,
//! tick-driven preemption, and migration primitives. [`GuestOs`] wraps a
//! kernel together with an optional [`SchedHooks`] implementation and
//! dispatches the hook points, mirroring how the paper's BPF programs attach
//! to a stock CFS.

use crate::balance;
use crate::cgroup::CpuAllow;
use crate::cpumask::CpuMask;
use crate::domains::{DomainTree, PerceivedTopology};
use crate::hooks::SchedHooks;
use crate::pelt::{Pelt, PeltState};
use crate::platform::{CommDistance, Platform, RunDelta};
use crate::runqueue::CfsRq;
use crate::select;
use crate::stats::KernelStats;
use crate::task::{SpawnSpec, Task, TaskId, TaskState};
use crate::weight::calc_delta_vruntime;
use simcore::SimTime;
use trace::{EventKind, SwitchReason, TraceSink};

pub use trace::MigrateKind;

/// Identifies a vCPU within one guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcpuId(pub usize);

/// Work remaining below this threshold (capacity-ns) counts as complete.
pub const WORK_EPSILON: f64 = 0.5;

/// Renormalizes a vruntime across runqueues: `vrt - from_min + to_min` in
/// signed arithmetic (clamped at 0), as Linux does with its signed
/// vruntimes. Unsigned saturation here would ratchet the vruntime upward on
/// every migration and starve the task.
fn renorm_vruntime(vrt: u64, from_min: u64, to_min: u64) -> u64 {
    let v = vrt as i128 - from_min as i128 + to_min as i128;
    v.clamp(0, u64::MAX as i128) as u64
}

/// Burst size given to built-in spin tasks; effectively infinite.
pub const BUILTIN_SPIN_WORK: f64 = 1.0e16;

/// Cache-refill work charged to a cache-sensitive task when its vCPU
/// resumes after a pollution-length inactive period (≈50 µs of a reference
/// core — an L2-scale refill).
pub const CACHE_REFILL_WORK: f64 = 1024.0 * 50_000.0;

/// Guest scheduler tunables (Linux defaults scaled for a 1 ms tick).
#[derive(Debug, Clone)]
pub struct GuestConfig {
    /// Number of vCPUs.
    pub nr_vcpus: usize,
    /// Scheduler tick period (ns).
    pub tick_ns: u64,
    /// Minimum time a task runs before tick preemption (ns).
    pub min_granularity_ns: u64,
    /// Wakeup preemption granularity: vruntime advantage required (ns).
    pub wakeup_granularity_ns: u64,
    /// Targeted scheduling latency; sleeper placement credit is half (ns).
    pub sched_latency_ns: u64,
    /// Run periodic load balancing every this many ticks.
    pub balance_interval_ticks: u64,
    /// Cache-hot window: a task enqueued more recently than this is not
    /// migrated by the balancer (Linux's `sched_migration_cost`).
    pub migration_cost_ns: u64,
    /// Work-rate multiplier for communicating tasks placed cross-socket.
    pub cross_socket_comm_factor: f64,
    /// Work-rate multiplier for communicating tasks in one LLC.
    pub same_llc_comm_factor: f64,
}

impl GuestConfig {
    /// Default configuration for a VM with `nr_vcpus` vCPUs.
    pub fn new(nr_vcpus: usize) -> Self {
        Self {
            nr_vcpus,
            tick_ns: 1_000_000,
            min_granularity_ns: 1_500_000,
            wakeup_granularity_ns: 1_000_000,
            sched_latency_ns: 6_000_000,
            balance_interval_ticks: 4,
            migration_cost_ns: 500_000,
            cross_socket_comm_factor: 0.78,
            same_llc_comm_factor: 0.97,
        }
    }
}

/// Per-vCPU scheduler state.
pub struct VcpuData {
    /// Waiting tasks.
    pub rq: CfsRq,
    /// The task currently selected on this vCPU (may be stalled if the host
    /// preempted the vCPU).
    pub curr: Option<TaskId>,
    /// CFS's *perceived* capacity of this vCPU (1024 scale), from tick-time
    /// steal observation — the inaccurate baseline view.
    observed_cap: f64,
    /// When the observation was last refreshed.
    observed_at: SimTime,
    /// Probed capacity installed by vcap's kernel module, overriding the
    /// baseline observation.
    pub cap_override: Option<f64>,
    /// Consecutive balance attempts that found imbalance but nothing to
    /// pull (Linux's `nr_balance_failed`, which eventually triggers active
    /// balance of a running task).
    pub balance_failed: u32,
    /// Steal counter at the last tick (for per-tick steal deltas).
    pub last_tick_steal: u64,
    /// Time of the last tick on this vCPU.
    pub last_tick_at: SimTime,
    /// Ticks delivered to this vCPU.
    pub tick_count: u64,
}

impl VcpuData {
    fn new(now: SimTime) -> Self {
        Self {
            rq: CfsRq::new(),
            curr: None,
            observed_cap: 1024.0,
            observed_at: now,
            cap_override: None,
            balance_failed: 0,
            last_tick_steal: 0,
            last_tick_at: now,
            tick_count: 0,
        }
    }
}

/// Why the current task is being taken off a vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PutReason {
    /// Preempted inside the guest; goes back on this runqueue.
    Preempt,
    /// Going to sleep on a timer.
    Sleep,
    /// Blocking on a workload event.
    Block,
    /// Exiting.
    Exit,
    /// Being migrated; the caller re-enqueues elsewhere.
    Migrate,
}

impl PutReason {
    fn switch_reason(self) -> SwitchReason {
        match self {
            PutReason::Preempt => SwitchReason::Preempt,
            PutReason::Sleep => SwitchReason::Sleep,
            PutReason::Block => SwitchReason::Block,
            PutReason::Exit => SwitchReason::Exit,
            PutReason::Migrate => SwitchReason::Migrate,
        }
    }
}

/// The guest scheduler state and CFS mechanics.
pub struct Kernel {
    /// Tunables.
    pub cfg: GuestConfig,
    /// Per-vCPU state, indexed by [`VcpuId`].
    pub vcpus: Vec<VcpuData>,
    /// Task arena; slots of dead tasks are retired, not reused.
    pub tasks: Vec<Task>,
    /// Current schedule-domain hierarchy.
    pub domains: DomainTree,
    /// cgroup placement restrictions (driven by rwc).
    pub cgroup: CpuAllow,
    /// Scheduler statistics.
    pub stats: KernelStats,
    /// Trace emission sink; [`TraceSink::Off`] (the default) makes every
    /// emit site a branch over a stack value.
    pub trace: TraceSink,
    /// Tasks per communication group (so locality factors don't scan the
    /// whole arena).
    comm_groups: Vec<(u32, Vec<TaskId>)>,
    /// Whether the perceived topology declares asymmetric CPU capacities
    /// (Linux's `SD_ASYM_CPUCAPACITY`). Misfit/active capacity balancing
    /// only runs when set; a stock x86 VM never sets it — vcap's kernel
    /// module does when probing reveals real asymmetry.
    pub asym_capacity: bool,
}

impl Kernel {
    /// Creates a guest kernel with the default flat/UMA domain tree.
    pub fn new(cfg: GuestConfig, now: SimTime) -> Self {
        let nr = cfg.nr_vcpus;
        Self {
            cfg,
            vcpus: (0..nr).map(|_| VcpuData::new(now)).collect(),
            tasks: Vec::new(),
            domains: DomainTree::flat(nr),
            cgroup: CpuAllow::unrestricted(nr),
            stats: KernelStats::new(),
            trace: TraceSink::default(),
            comm_groups: Vec::new(),
            asym_capacity: false,
        }
    }

    /// Immutable task accessor.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn task(&self, t: TaskId) -> &Task {
        &self.tasks[t.0 as usize]
    }

    /// Mutable task accessor.
    pub fn task_mut(&mut self, t: TaskId) -> &mut Task {
        &mut self.tasks[t.0 as usize]
    }

    /// Creates a task in the Blocked state; wake it to start it.
    pub fn spawn(&mut self, now: SimTime, spec: SpawnSpec) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task {
            id,
            policy: spec.policy,
            state: TaskState::Blocked,
            affinity: spec.affinity,
            program: spec.program,
            vruntime: 0,
            pelt: Pelt::new_full(now),
            remaining: 0.0,
            latency_sensitive: spec.latency_sensitive,
            comm_group: spec.comm_group,
            cache_sensitive: spec.cache_sensitive,
            bypass_cgroup: spec.bypass_cgroup,
            enqueued_at: now,
            wakeup_pending: false,
            last_queue_ns: 0,
            run_started: now,
            last_vcpu: VcpuId(spec.affinity.first().unwrap_or(0)),
            total_active_ns: 0,
            total_work: 0.0,
            migrations: 0,
        });
        if let Some(g) = self.task(id).comm_group {
            match self.comm_groups.iter_mut().find(|(gid, _)| *gid == g) {
                Some((_, members)) => members.push(id),
                None => self.comm_groups.push((g, vec![id])),
            }
        }
        id
    }

    /// Whether vCPU `v` has nothing to run (guest-idle).
    pub fn vcpu_is_idle(&self, v: VcpuId) -> bool {
        let d = &self.vcpus[v.0];
        d.curr.is_none() && d.rq.is_empty()
    }

    /// The vCPUs a task may be placed on under current cgroup rules.
    pub fn placement_mask(&self, t: TaskId) -> CpuMask {
        let task = self.task(t);
        let allowed = if task.bypass_cgroup {
            CpuMask::first_n(self.cfg.nr_vcpus)
        } else {
            self.cgroup.allowed_for(&task.policy)
        };
        let mask = task.affinity.and(&allowed);
        if mask.is_empty() {
            // A task must be runnable somewhere; fall back to raw affinity
            // (Linux cpusets behave the same when a cpuset empties).
            task.affinity
        } else {
            mask
        }
    }

    /// The capacity CFS currently believes vCPU `v` has. Baseline: steal is
    /// only visible while the vCPU is busy, so an idle vCPU's observation
    /// relaxes back toward full capacity — the mismatch Figure 11
    /// demonstrates. A vcap override, when installed, is authoritative.
    pub fn capacity_of(&self, v: VcpuId, now: SimTime) -> f64 {
        let d = &self.vcpus[v.0];
        if let Some(cap) = d.cap_override {
            return cap;
        }
        if self.vcpu_is_idle(v) {
            // No steal is observed while halted: the stale observation
            // relaxes toward full capacity (25 ms half-life), so a weak
            // vCPU soon *appears* strong again — the adverse-migration
            // driver of Figure 11b.
            let dt = now.since(d.observed_at) as f64;
            let decay = 0.5f64.powf(dt / 25.0e6);
            1024.0 - (1024.0 - d.observed_cap) * decay
        } else {
            d.observed_cap
        }
    }

    /// Sum of queued weights plus the current task's weight, as a load
    /// proxy for balancing decisions.
    pub fn rq_weight(&self, v: VcpuId) -> u64 {
        let d = &self.vcpus[v.0];
        let curr_w = d.curr.map(|t| self.task(t).weight()).unwrap_or(0);
        d.rq.weight_sum + curr_w
    }

    // ------------------------------------------------------------------
    // Enqueue / dequeue / context switch
    // ------------------------------------------------------------------

    /// Places a woken (or migrated) task on vCPU `v`'s runqueue.
    ///
    /// `wakeup` selects sleeper placement: the task's vruntime is advanced
    /// to just below the queue's `min_vruntime` so sleepers get a fair boost
    /// without starving the queue.
    pub fn enqueue_task(&mut self, plat: &mut dyn Platform, t: TaskId, v: VcpuId, wakeup: bool) {
        let now = plat.now();
        let min_vruntime = self.vcpus[v.0].rq.min_vruntime;
        let latency_half = self.cfg.sched_latency_ns / 2;
        let slept_on = self.task(t).last_vcpu;
        let slept_min = self.vcpus[slept_on.0].rq.min_vruntime;
        if wakeup {
            // Decay the task's PELT signal across the idle gap, and report
            // the decay to the trace so the monotonicity law (load never
            // grows while sleeping) stays checkable.
            let (load_before, idle_ns) = {
                let task = self.task(t);
                (task.pelt.load(), now.since(task.pelt.last_update()))
            };
            self.task_mut(t).pelt.update(now, PeltState::Sleeping);
            if idle_ns > 0 {
                self.trace.emit(
                    now,
                    EventKind::PeltDecay {
                        task: t.0,
                        load_before,
                        load_after: self.task(t).pelt.load(),
                        idle_ns,
                    },
                );
            }
        }
        let task = self.task_mut(t);
        debug_assert!(
            !task.on_rq(),
            "enqueue of task already on rq: {:?}",
            task.id
        );
        if wakeup {
            // Linux keeps the absolute vruntime across a sleep: the old
            // queue's min_vruntime advances past long sleepers, so any
            // fairness debt decays naturally. A wake onto a *different*
            // queue renormalizes against the old queue's current floor
            // (migrate_task_rq_fair).
            let abs = if slept_on == v {
                task.vruntime
            } else {
                renorm_vruntime(task.vruntime, slept_min, min_vruntime)
            };
            let placed = min_vruntime.saturating_sub(latency_half);
            task.vruntime = abs.max(placed);
            task.wakeup_pending = true;
        }
        task.enqueued_at = now;
        task.state = TaskState::Runnable(v);
        let migrated = task.last_vcpu != v;
        if migrated {
            task.migrations += 1;
        }
        task.last_vcpu = v;
        if migrated && wakeup {
            self.stats.wake_migrations.inc();
            self.trace.emit(
                now,
                EventKind::TaskMigrate {
                    task: t.0,
                    from: slept_on.0 as u16,
                    to: v.0 as u16,
                    kind: MigrateKind::Wake,
                },
            );
        }
        let (vrt, w, is_idle, load) = {
            let task = self.task(t);
            (
                task.vruntime,
                task.weight(),
                task.policy.is_idle(),
                task.pelt.load(),
            )
        };
        let d = &mut self.vcpus[v.0];
        d.rq.enqueue(t, vrt, w, is_idle, load);
        d.rq.idle_since = None;
    }

    /// Removes a waiting task from its runqueue. Returns false if the task
    /// was not queued (e.g. it is current).
    pub fn dequeue_task(&mut self, t: TaskId) -> bool {
        let task = self.task(t);
        let v = match task.state {
            TaskState::Runnable(v) => v,
            _ => return false,
        };
        let (vrt, w, is_idle, load) = (
            task.vruntime,
            task.weight(),
            task.policy.is_idle(),
            task.pelt.load(),
        );
        self.vcpus[v.0].rq.dequeue(t, vrt, w, is_idle, load)
    }

    /// Charges a run delta to a task: vruntime, PELT, work, statistics.
    fn charge(&mut self, now: SimTime, t: TaskId, delta: RunDelta) {
        let vcpu = {
            let task = self.task_mut(t);
            task.vruntime = task
                .vruntime
                .saturating_add(calc_delta_vruntime(delta.active_ns, task.weight()));
            task.pelt.update_mixed(now, delta.active_ns);
            task.remaining = (task.remaining - delta.work).max(0.0);
            task.total_active_ns += delta.active_ns;
            task.total_work += delta.work;
            task.last_vcpu
        };
        if delta.active_ns > 0 || delta.work > 0.0 {
            self.trace.emit(
                now,
                EventKind::TaskCharge {
                    task: t.0,
                    vcpu: vcpu.0 as u16,
                    active_ns: delta.active_ns,
                    work: delta.work,
                },
            );
        }
    }

    /// Makes `t` current on `v`, informing the platform so work accrues.
    fn set_curr(&mut self, plat: &mut dyn Platform, v: VcpuId, t: TaskId) {
        let now = plat.now();
        debug_assert!(
            self.vcpus[v.0].curr.is_none(),
            "set_curr over existing curr"
        );
        // Settle waiting-time PELT and record queue latency.
        let queue_ns = {
            let task = self.task_mut(t);
            task.pelt.update(now, PeltState::Runnable);
            let q = if task.wakeup_pending {
                task.wakeup_pending = false;
                let q = now.since(task.enqueued_at);
                task.last_queue_ns = q;
                Some(q)
            } else {
                None
            };
            task.state = TaskState::Running(v);
            task.run_started = now;
            task.last_vcpu = v;
            q
        };
        if let Some(q) = queue_ns {
            self.stats.queue_latency.record(q);
        }
        self.vcpus[v.0].curr = Some(t);
        self.stats.context_switches.inc();
        self.trace.emit(
            now,
            EventKind::ContextSwitch {
                vcpu: v.0 as u16,
                prev: None,
                next: Some(t.0),
                reason: SwitchReason::Pick,
                min_vruntime: self.vcpus[v.0].rq.min_vruntime,
            },
        );
        let factor = self.comm_factor(plat, t, v);
        let remaining = self.task(t).remaining;
        let penalty = if self.task(t).cache_sensitive {
            CACHE_REFILL_WORK
        } else {
            0.0
        };
        plat.run_task(v, t, remaining, factor, penalty);
    }

    /// Stops the current task on `v` for `reason`, charging its run delta.
    /// Returns the task. For `Migrate`, the caller must re-enqueue it.
    fn put_curr(
        &mut self,
        plat: &mut dyn Platform,
        v: VcpuId,
        reason: PutReason,
    ) -> Option<TaskId> {
        let t = self.vcpus[v.0].curr.take()?;
        let delta = plat.stop_task(v);
        let now = plat.now();
        self.charge(now, t, delta);
        let vrt = self.task(t).vruntime;
        self.vcpus[v.0].rq.update_min_vruntime(Some(vrt));
        self.trace.emit(
            now,
            EventKind::ContextSwitch {
                vcpu: v.0 as u16,
                prev: Some(t.0),
                next: None,
                reason: reason.switch_reason(),
                min_vruntime: self.vcpus[v.0].rq.min_vruntime,
            },
        );
        match reason {
            PutReason::Preempt => {
                self.task_mut(t).state = TaskState::Blocked; // transient; enqueue fixes it
                self.enqueue_task(plat, t, v, false);
            }
            PutReason::Sleep => self.task_mut(t).state = TaskState::Sleeping,
            PutReason::Block => self.task_mut(t).state = TaskState::Blocked,
            PutReason::Exit => self.task_mut(t).state = TaskState::Dead,
            PutReason::Migrate => self.task_mut(t).state = TaskState::Blocked, // transient
        }
        Some(t)
    }

    /// Picks and installs the next task on `v`; halts the vCPU when the
    /// queue is empty. Call only when `curr` is `None`. Before going idle,
    /// new-idle balancing tries to pull work (work conservation).
    pub fn schedule(&mut self, plat: &mut dyn Platform, v: VcpuId) {
        debug_assert!(self.vcpus[v.0].curr.is_none());
        if self.vcpus[v.0].rq.is_empty() {
            balance::newidle_balance(self, plat, v);
        }
        match self.vcpus[v.0].rq.peek() {
            Some(next) => {
                let removed = self.dequeue_task(next);
                debug_assert!(removed);
                self.set_curr(plat, v, next);
            }
            None => {
                let now = plat.now();
                let d = &mut self.vcpus[v.0];
                if d.rq.idle_since.is_none() {
                    d.rq.idle_since = Some(now);
                }
                plat.vcpu_idle(v);
            }
        }
    }

    /// Context-switches `v` from its current task to the leftmost waiting
    /// task (guest-level preemption).
    pub fn resched(&mut self, plat: &mut dyn Platform, v: VcpuId) {
        self.put_curr(plat, v, PutReason::Preempt);
        self.schedule(plat, v);
    }

    // ------------------------------------------------------------------
    // Wakeups
    // ------------------------------------------------------------------

    /// Wakes task `t` onto vCPU `v` (already selected). `waker` is the vCPU
    /// context issuing the wakeup, if any, for IPI accounting.
    pub fn wake_to(
        &mut self,
        plat: &mut dyn Platform,
        t: TaskId,
        v: VcpuId,
        waker: Option<VcpuId>,
    ) {
        match self.task(t).state {
            TaskState::Sleeping | TaskState::Blocked => {}
            _ => return, // spurious wake
        }
        self.trace.emit(
            plat.now(),
            EventKind::TaskWake {
                task: t.0,
                vcpu: v.0 as u16,
                waker: waker.map(|w| w.0 as u32),
            },
        );
        let was_idle = self.vcpu_is_idle(v);
        self.enqueue_task(plat, t, v, true);
        if let Some(w) = waker {
            if w != v {
                self.stats.resched_ipis.inc();
                self.trace.emit(
                    plat.now(),
                    EventKind::ReschedIpi {
                        from: Some(w.0 as u16),
                        to: v.0 as u16,
                    },
                );
                if plat.comm_distance(w, v) == CommDistance::CrossSocket {
                    self.stats.cross_llc_ipis.inc();
                }
            }
        }
        if was_idle {
            // The guest kicks the halted vCPU; it will pick the task when
            // the host runs it (vCPU wakeup latency applies here).
            plat.kick(v);
            return;
        }
        // Wakeup preemption check against the current task.
        if let Some(curr) = self.vcpus[v.0].curr {
            if self.should_preempt_wakeup(t, curr) && plat.vcpu_active(v) {
                self.resched(plat, v);
            } else if waker != Some(v) {
                plat.send_ipi(v);
            }
        }
    }

    /// Linux's `check_preempt_wakeup`: a waking normal task always preempts
    /// a `SCHED_IDLE` current; otherwise it preempts when its vruntime
    /// advantage exceeds the wakeup granularity.
    fn should_preempt_wakeup(&self, waking: TaskId, curr: TaskId) -> bool {
        let wt = self.task(waking);
        let ct = self.task(curr);
        if ct.policy.is_idle() && !wt.policy.is_idle() {
            return true;
        }
        if wt.policy.is_idle() && !ct.policy.is_idle() {
            return false;
        }
        ct.vruntime > wt.vruntime.saturating_add(self.cfg.wakeup_granularity_ns)
    }

    // ------------------------------------------------------------------
    // Tick
    // ------------------------------------------------------------------

    /// Scheduler tick on vCPU `v` (fires only while the vCPU is active).
    /// Performs runtime accounting, baseline capacity observation, tick
    /// preemption, and periodic balancing.
    pub fn tick(&mut self, plat: &mut dyn Platform, v: VcpuId) {
        let now = plat.now();
        // Baseline capacity observation from the steal counter. Only a busy
        // vCPU sees steal (paper §5.3).
        let steal = plat.steal_ns(v);
        {
            let d = &mut self.vcpus[v.0];
            let wall = now.since(d.last_tick_at).max(1);
            let stolen = steal.saturating_sub(d.last_tick_steal).min(wall);
            let inst = 1024.0 * (1.0 - stolen as f64 / wall as f64);
            if d.curr.is_some() {
                // Time-decayed average (16 ms half-life), as scale_rt-style
                // capacity tracking does; floored so capacity never
                // collapses to zero on a burst of fully-stolen ticks.
                let decay = 0.5f64.powf(wall as f64 / 16.0e6);
                d.observed_cap = (d.observed_cap * decay + inst * (1.0 - decay)).max(64.0);
                d.observed_at = now;
            }
            d.last_tick_steal = steal;
            d.last_tick_at = now;
            d.tick_count += 1;
        }

        if let Some(curr) = self.vcpus[v.0].curr {
            let delta = plat.poll_task(v);
            self.charge(now, curr, delta);
            let vrt = self.task(curr).vruntime;
            self.vcpus[v.0].rq.update_min_vruntime(Some(vrt));
            // Tick preemption.
            if let Some(next) = self.vcpus[v.0].rq.peek() {
                let ran = now.since(self.task(curr).run_started);
                let curr_idle = self.task(curr).policy.is_idle();
                let next_normal = !self.task(next).policy.is_idle();
                let vrt_next = self.task(next).vruntime;
                let vrt_curr = self.task(curr).vruntime;
                let preempt = (curr_idle && next_normal)
                    || (ran >= self.cfg.min_granularity_ns
                        && vrt_curr > vrt_next.saturating_add(self.cfg.wakeup_granularity_ns));
                if preempt {
                    self.resched(plat, v);
                }
            }
        }

        if self.vcpus[v.0]
            .tick_count
            .is_multiple_of(self.cfg.balance_interval_ticks)
        {
            balance::periodic_balance(self, plat, v);
        }
    }

    // ------------------------------------------------------------------
    // Burst lifecycle (called by the platform driver)
    // ------------------------------------------------------------------

    /// The current task on `v` completed its burst: settle accounting and
    /// return the task so the VM driver can ask the workload what's next.
    pub fn on_burst_complete(&mut self, plat: &mut dyn Platform, v: VcpuId) -> Option<TaskId> {
        let t = self.vcpus[v.0].curr?;
        let delta = plat.stop_task(v);
        self.charge(plat.now(), t, delta);
        self.task_mut(t).remaining = 0.0;
        Some(t)
    }

    /// Continues the current task on `v` with a fresh burst of `work`.
    pub fn continue_curr(&mut self, plat: &mut dyn Platform, v: VcpuId, work: f64) {
        let t = self.vcpus[v.0].curr.expect("continue_curr without curr");
        self.task_mut(t).remaining = work;
        let factor = self.comm_factor(plat, t, v);
        let penalty = if self.task(t).cache_sensitive {
            CACHE_REFILL_WORK
        } else {
            0.0
        };
        plat.run_task(v, t, work, factor, penalty);
    }

    /// The current task on `v` goes to sleep; schedules the next task.
    /// Call after [`Self::on_burst_complete`] (accounting already settled).
    pub fn curr_sleeps(&mut self, plat: &mut dyn Platform, v: VcpuId) -> Option<TaskId> {
        let t = self.put_curr_settled(plat.now(), v, PutReason::Sleep)?;
        self.schedule(plat, v);
        Some(t)
    }

    /// The current task on `v` blocks on a workload event.
    pub fn curr_blocks(&mut self, plat: &mut dyn Platform, v: VcpuId) -> Option<TaskId> {
        let t = self.put_curr_settled(plat.now(), v, PutReason::Block)?;
        self.schedule(plat, v);
        Some(t)
    }

    /// The current task on `v` exits.
    pub fn curr_exits(&mut self, plat: &mut dyn Platform, v: VcpuId) -> Option<TaskId> {
        let t = self.put_curr_settled(plat.now(), v, PutReason::Exit)?;
        self.schedule(plat, v);
        Some(t)
    }

    /// Removes `curr` without consulting the platform (accounting was
    /// settled by `on_burst_complete`).
    fn put_curr_settled(&mut self, now: SimTime, v: VcpuId, reason: PutReason) -> Option<TaskId> {
        let t = self.vcpus[v.0].curr.take()?;
        let vrt = self.task(t).vruntime;
        self.vcpus[v.0].rq.update_min_vruntime(Some(vrt));
        self.trace.emit(
            now,
            EventKind::ContextSwitch {
                vcpu: v.0 as u16,
                prev: Some(t.0),
                next: None,
                reason: reason.switch_reason(),
                min_vruntime: self.vcpus[v.0].rq.min_vruntime,
            },
        );
        self.task_mut(t).state = match reason {
            PutReason::Sleep => TaskState::Sleeping,
            PutReason::Block => TaskState::Blocked,
            PutReason::Exit => TaskState::Dead,
            _ => unreachable!("put_curr_settled only handles terminal reasons"),
        };
        Some(t)
    }

    // ------------------------------------------------------------------
    // Migration
    // ------------------------------------------------------------------

    /// Migrates a *waiting* task to vCPU `to`, renormalizing vruntime
    /// across queues as Linux does. `kind` labels the migration in traces.
    pub fn migrate_runnable(
        &mut self,
        plat: &mut dyn Platform,
        t: TaskId,
        to: VcpuId,
        kind: MigrateKind,
    ) {
        let from = match self.task(t).state {
            TaskState::Runnable(v) => v,
            _ => return,
        };
        if from == to {
            return;
        }
        if !self.dequeue_task(t) {
            return;
        }
        let from_min = self.vcpus[from.0].rq.min_vruntime;
        let to_min = self.vcpus[to.0].rq.min_vruntime;
        {
            let task = self.task_mut(t);
            task.vruntime = renorm_vruntime(task.vruntime, from_min, to_min);
            task.state = TaskState::Blocked; // transient
        }
        let was_idle = self.vcpu_is_idle(to);
        self.enqueue_task(plat, t, to, false);
        self.trace.emit(
            plat.now(),
            EventKind::TaskMigrate {
                task: t.0,
                from: from.0 as u16,
                to: to.0 as u16,
                kind,
            },
        );
        if was_idle {
            plat.kick(to);
        }
    }

    /// Migrates the *running* task off `src` onto `to` (active balance and
    /// ivh's stopper-thread migration). Counts an active migration and a
    /// migration IPI. Returns the migrated task.
    pub fn migrate_running(
        &mut self,
        plat: &mut dyn Platform,
        src: VcpuId,
        to: VcpuId,
        kind: MigrateKind,
    ) -> Option<TaskId> {
        if src == to {
            return None;
        }
        let t = self.put_curr(plat, src, PutReason::Migrate)?;
        let src_min = self.vcpus[src.0].rq.min_vruntime;
        let to_min = self.vcpus[to.0].rq.min_vruntime;
        {
            let task = self.task_mut(t);
            task.vruntime = renorm_vruntime(task.vruntime, src_min, to_min);
        }
        let was_idle = self.vcpu_is_idle(to);
        self.enqueue_task(plat, t, to, false);
        self.trace.emit(
            plat.now(),
            EventKind::TaskMigrate {
                task: t.0,
                from: src.0 as u16,
                to: to.0 as u16,
                kind,
            },
        );
        self.stats.active_migrations.inc();
        if plat.comm_distance(src, to) == CommDistance::CrossSocket {
            self.stats.cross_llc_ipis.inc();
        }
        if was_idle {
            plat.kick(to);
        } else {
            plat.send_ipi(to);
        }
        self.schedule(plat, src);
        Some(t)
    }

    /// Forces a task into the Blocked state regardless of where it is
    /// (probers are parked this way between sampling windows).
    pub fn block_task(&mut self, plat: &mut dyn Platform, t: TaskId) {
        match self.task(t).state {
            TaskState::Running(v) => {
                self.put_curr(plat, v, PutReason::Block);
                self.schedule(plat, v);
            }
            TaskState::Runnable(_) => {
                self.dequeue_task(t);
                self.task_mut(t).state = TaskState::Blocked;
            }
            TaskState::Sleeping => self.task_mut(t).state = TaskState::Blocked,
            TaskState::Blocked | TaskState::Dead => {}
        }
    }

    /// How long vCPU `v` has had nothing to run, or `None` while busy.
    pub fn idle_duration(&self, v: VcpuId, now: SimTime) -> Option<u64> {
        if self.vcpu_is_idle(v) {
            self.vcpus[v.0].rq.idle_since.map(|t| now.since(t))
        } else {
            None
        }
    }

    /// Terminates a task regardless of state (used to retire probers).
    pub fn kill_task(&mut self, plat: &mut dyn Platform, t: TaskId) {
        match self.task(t).state {
            TaskState::Running(v) => {
                self.put_curr(plat, v, PutReason::Exit);
                self.schedule(plat, v);
            }
            TaskState::Runnable(_) => {
                self.dequeue_task(t);
                self.task_mut(t).state = TaskState::Dead;
            }
            TaskState::Sleeping | TaskState::Blocked => {
                self.task_mut(t).state = TaskState::Dead;
            }
            TaskState::Dead => {}
        }
    }

    // ------------------------------------------------------------------
    // Communication locality
    // ------------------------------------------------------------------

    /// Work-rate multiplier for `t` when running on `v`, from the physical
    /// distance to the other *running* members of its communication group.
    pub fn comm_factor(&self, plat: &mut dyn Platform, t: TaskId, v: VcpuId) -> f64 {
        let group = match self.task(t).comm_group {
            Some(g) => g,
            None => return 1.0,
        };
        let members = match self.comm_groups.iter().find(|(gid, _)| *gid == group) {
            Some((_, m)) => m,
            None => return 1.0,
        };
        let mut worst = 1.0f64;
        for &other_id in members {
            if other_id == t {
                continue;
            }
            let other = self.task(other_id);
            if let TaskState::Running(ov) = other.state {
                let f = match plat.comm_distance(v, ov) {
                    CommDistance::CrossSocket => self.cfg.cross_socket_comm_factor,
                    CommDistance::SameLlc => self.cfg.same_llc_comm_factor,
                    _ => 1.0,
                };
                worst = worst.min(f);
            }
        }
        worst
    }

    /// Installs a probed topology: rebuilds the schedule domains (the
    /// paper's kernel module calling `rebuild_sched_domains`).
    pub fn install_topology(&mut self, topo: &PerceivedTopology) {
        self.domains = DomainTree::rebuild(topo);
    }

    /// Default CFS CPU selection (used when no hook overrides).
    pub fn select_cpu_fair(&self, plat: &mut dyn Platform, t: TaskId, now: SimTime) -> VcpuId {
        select::select_cpu_fair(self, plat, t, now, None)
    }

    /// CFS CPU selection with a waker context (wake-affine).
    pub fn select_cpu_fair_from(
        &self,
        plat: &mut dyn Platform,
        t: TaskId,
        now: SimTime,
        waker: Option<VcpuId>,
    ) -> VcpuId {
        select::select_cpu_fair(self, plat, t, now, waker)
    }
}

// ----------------------------------------------------------------------
// GuestOs: kernel + hooks dispatcher
// ----------------------------------------------------------------------

/// A guest kernel bundled with its (optional) vSched hook set.
///
/// All entry points from the platform driver and from workloads go through
/// this wrapper so hook dispatch is uniform.
pub struct GuestOs {
    /// The scheduler state.
    pub kern: Kernel,
    hooks: Option<Box<dyn SchedHooks>>,
}

impl GuestOs {
    /// Creates a guest with no hooks installed (stock CFS).
    pub fn new(cfg: GuestConfig, now: SimTime) -> Self {
        Self {
            kern: Kernel::new(cfg, now),
            hooks: None,
        }
    }

    /// Installs a hook set (vSched's BPF-equivalent attach).
    pub fn install_hooks(&mut self, hooks: Box<dyn SchedHooks>) {
        self.hooks = Some(hooks);
    }

    /// Removes and returns the installed hooks.
    pub fn take_hooks(&mut self) -> Option<Box<dyn SchedHooks>> {
        self.hooks.take()
    }

    /// Whether hooks are installed.
    pub fn has_hooks(&self) -> bool {
        self.hooks.is_some()
    }

    /// Mutable access to the installed hooks (for reading statistics back).
    pub fn hooks_mut(&mut self) -> Option<&mut (dyn SchedHooks + 'static)> {
        match self.hooks.as_mut() {
            Some(h) => Some(h.as_mut()),
            None => None,
        }
    }

    fn with_hooks<R>(
        &mut self,
        plat: &mut dyn Platform,
        f: impl FnOnce(&mut dyn SchedHooks, &mut Kernel, &mut dyn Platform) -> R,
    ) -> Option<R> {
        let mut hooks = self.hooks.take()?;
        let r = f(hooks.as_mut(), &mut self.kern, plat);
        self.hooks = Some(hooks);
        Some(r)
    }

    /// Spawns a task (Blocked until woken).
    pub fn spawn(&mut self, plat: &mut dyn Platform, spec: SpawnSpec) -> TaskId {
        self.kern.spawn(plat.now(), spec)
    }

    /// Wakes a task: hook-first CPU selection, then CFS fallback.
    pub fn wake_task(&mut self, plat: &mut dyn Platform, t: TaskId, waker: Option<VcpuId>) {
        match self.kern.task(t).state {
            TaskState::Sleeping | TaskState::Blocked => {}
            _ => return,
        }
        let prev = self.kern.task(t).last_vcpu;
        let hook_choice = self
            .with_hooks(plat, |h, k, p| h.select_cpu(k, p, t, prev))
            .flatten();
        let v = match hook_choice {
            Some(v) => v,
            None => {
                let now = plat.now();
                self.kern.select_cpu_fair_from(plat, t, now, waker)
            }
        };
        self.kern.wake_to(plat, t, v, waker);
    }

    /// Scheduler tick entry point.
    pub fn tick(&mut self, plat: &mut dyn Platform, v: VcpuId) {
        self.kern.tick(plat, v);
        self.with_hooks(plat, |h, k, p| h.on_tick(k, p, v));
    }

    /// The host started executing vCPU `v`.
    pub fn vcpu_started(&mut self, plat: &mut dyn Platform, v: VcpuId) {
        self.with_hooks(plat, |h, k, p| h.on_vcpu_start(k, p, v));
        if self.kern.vcpus[v.0].curr.is_none() {
            self.kern.schedule(plat, v);
        }
    }

    /// The host preempted or halted vCPU `v`.
    pub fn vcpu_stopped(&mut self, plat: &mut dyn Platform, v: VcpuId) {
        self.with_hooks(plat, |h, k, p| h.on_vcpu_stop(k, p, v));
    }

    /// Delivers a hook timer (token >= `HOOK_TIMER_BASE`).
    pub fn deliver_hook_timer(&mut self, plat: &mut dyn Platform, token: u64) {
        self.with_hooks(plat, |h, k, p| h.on_timer(k, p, token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Policy, TaskProgram};

    /// A minimal single-"core" platform for kernel unit tests: every vCPU is
    /// always active at capacity 1024, and run/stop deltas are synthesized
    /// from wall time.
    struct TestPlat {
        now: SimTime,
        running: Vec<Option<(TaskId, SimTime)>>,
        kicks: Vec<VcpuId>,
        idles: Vec<VcpuId>,
    }

    impl TestPlat {
        fn new(nr: usize) -> Self {
            Self {
                now: SimTime::ZERO,
                running: vec![None; nr],
                kicks: Vec::new(),
                idles: Vec::new(),
            }
        }

        fn advance(&mut self, ns: u64) {
            self.now = self.now.after(ns);
        }
    }

    impl Platform for TestPlat {
        fn now(&self) -> SimTime {
            self.now
        }
        fn steal_ns(&self, _v: VcpuId) -> u64 {
            0
        }
        fn vcpu_active(&self, _v: VcpuId) -> bool {
            true
        }
        fn kick(&mut self, v: VcpuId) {
            self.kicks.push(v);
        }
        fn vcpu_idle(&mut self, v: VcpuId) {
            self.idles.push(v);
        }
        fn run_task(&mut self, v: VcpuId, t: TaskId, _remaining: f64, _factor: f64, _pen: f64) {
            self.running[v.0] = Some((t, self.now));
        }
        fn stop_task(&mut self, v: VcpuId) -> RunDelta {
            match self.running[v.0].take() {
                Some((_, since)) => {
                    let wall = self.now.since(since);
                    RunDelta {
                        wall_ns: wall,
                        active_ns: wall,
                        work: wall as f64,
                    }
                }
                None => RunDelta::default(),
            }
        }
        fn poll_task(&mut self, v: VcpuId) -> RunDelta {
            match self.running[v.0].as_mut() {
                Some((_, since)) => {
                    let wall = self.now.since(*since);
                    *since = self.now;
                    RunDelta {
                        wall_ns: wall,
                        active_ns: wall,
                        work: wall as f64,
                    }
                }
                None => RunDelta::default(),
            }
        }
        fn update_factor(&mut self, _v: VcpuId, _f: f64) {}
        fn send_ipi(&mut self, _to: VcpuId) {}
        fn comm_distance(&self, _a: VcpuId, _b: VcpuId) -> CommDistance {
            CommDistance::SameLlc
        }
        fn cacheline_latency_ns(&mut self, _a: VcpuId, _b: VcpuId) -> Option<f64> {
            Some(50.0)
        }
        fn set_timer(&mut self, _token: u64, _at: SimTime) {}
    }

    fn setup(nr: usize) -> (Kernel, TestPlat) {
        (
            Kernel::new(GuestConfig::new(nr), SimTime::ZERO),
            TestPlat::new(nr),
        )
    }

    fn spawn_normal(k: &mut Kernel, nr: usize) -> TaskId {
        k.spawn(SimTime::ZERO, SpawnSpec::normal(nr))
    }

    #[test]
    fn wake_onto_idle_vcpu_kicks_and_runs_on_start() {
        let (mut k, mut p) = setup(2);
        let t = spawn_normal(&mut k, 2);
        k.wake_to(&mut p, t, VcpuId(0), None);
        assert_eq!(p.kicks, vec![VcpuId(0)]);
        assert!(matches!(k.task(t).state, TaskState::Runnable(VcpuId(0))));
        // Host runs the vCPU: the guest picks the task.
        k.schedule(&mut p, VcpuId(0));
        assert!(matches!(k.task(t).state, TaskState::Running(VcpuId(0))));
        assert_eq!(k.vcpus[0].curr, Some(t));
    }

    #[test]
    fn idle_vcpu_halts_when_nothing_to_run() {
        let (mut k, mut p) = setup(1);
        k.schedule(&mut p, VcpuId(0));
        assert_eq!(p.idles, vec![VcpuId(0)]);
        assert!(k.vcpu_is_idle(VcpuId(0)));
    }

    #[test]
    fn normal_task_preempts_idle_policy_curr() {
        let (mut k, mut p) = setup(1);
        let bg = k.spawn(SimTime::ZERO, SpawnSpec::normal(1).policy(Policy::Idle));
        k.wake_to(&mut p, bg, VcpuId(0), None);
        k.schedule(&mut p, VcpuId(0));
        k.task_mut(bg).remaining = 1e12;
        assert_eq!(k.vcpus[0].curr, Some(bg));

        p.advance(100_000);
        let t = spawn_normal(&mut k, 1);
        k.wake_to(&mut p, t, VcpuId(0), None);
        assert_eq!(
            k.vcpus[0].curr,
            Some(t),
            "normal task must preempt idle policy"
        );
        assert!(matches!(k.task(bg).state, TaskState::Runnable(VcpuId(0))));
    }

    #[test]
    fn tick_preemption_round_robins_equal_tasks() {
        let (mut k, mut p) = setup(1);
        let a = spawn_normal(&mut k, 1);
        let b = spawn_normal(&mut k, 1);
        k.wake_to(&mut p, a, VcpuId(0), None);
        k.schedule(&mut p, VcpuId(0));
        k.task_mut(a).remaining = 1e12;
        p.advance(10_000);
        k.wake_to(&mut p, b, VcpuId(0), None);
        k.task_mut(b).remaining = 1e12;
        let first = k.vcpus[0].curr.unwrap();
        // Tick until the scheduler switches.
        let mut switched = false;
        for _ in 0..20 {
            p.advance(1_000_000);
            k.tick(&mut p, VcpuId(0));
            if k.vcpus[0].curr != Some(first) {
                switched = true;
                break;
            }
        }
        assert!(switched, "equal-weight tasks must round-robin");
    }

    #[test]
    fn vruntime_advances_with_execution() {
        let (mut k, mut p) = setup(1);
        let t = spawn_normal(&mut k, 1);
        k.wake_to(&mut p, t, VcpuId(0), None);
        k.schedule(&mut p, VcpuId(0));
        k.task_mut(t).remaining = 1e12;
        let v0 = k.task(t).vruntime;
        p.advance(5_000_000);
        k.tick(&mut p, VcpuId(0));
        assert_eq!(k.task(t).vruntime, v0 + 5_000_000);
        assert_eq!(k.task(t).total_active_ns, 5_000_000);
    }

    #[test]
    fn queue_latency_recorded_once_per_wakeup() {
        let (mut k, mut p) = setup(1);
        let a = spawn_normal(&mut k, 1);
        let b = spawn_normal(&mut k, 1);
        k.wake_to(&mut p, a, VcpuId(0), None);
        k.schedule(&mut p, VcpuId(0));
        k.task_mut(a).remaining = 1e12;
        p.advance(1000);
        k.wake_to(&mut p, b, VcpuId(0), None); // waits behind a
        p.advance(3_000_000);
        k.tick(&mut p, VcpuId(0)); // a preempted eventually
                                   // b should have run by now or soon; force it.
        for _ in 0..10 {
            p.advance(1_000_000);
            k.tick(&mut p, VcpuId(0));
        }
        assert!(k.stats.queue_latency.count() >= 1);
        assert!(k.task(b).last_queue_ns >= 3_000_000);
    }

    #[test]
    fn migrate_runnable_renormalizes_vruntime() {
        let (mut k, mut p) = setup(2);
        let a = spawn_normal(&mut k, 2);
        let b = spawn_normal(&mut k, 2);
        k.wake_to(&mut p, a, VcpuId(0), None);
        k.schedule(&mut p, VcpuId(0));
        k.task_mut(a).remaining = 1e12;
        p.advance(10_000);
        k.wake_to(&mut p, b, VcpuId(0), None);
        k.vcpus[1].rq.min_vruntime = 500_000_000;
        k.migrate_runnable(&mut p, b, VcpuId(1), MigrateKind::Balance);
        assert!(matches!(k.task(b).state, TaskState::Runnable(VcpuId(1))));
        assert!(k.task(b).vruntime >= 500_000_000 - k.cfg.sched_latency_ns);
        assert_eq!(k.task(b).migrations, 1);
    }

    #[test]
    fn migrate_running_moves_curr_and_reschedules() {
        let (mut k, mut p) = setup(2);
        let a = spawn_normal(&mut k, 2);
        k.wake_to(&mut p, a, VcpuId(0), None);
        k.schedule(&mut p, VcpuId(0));
        k.task_mut(a).remaining = 1e12;
        p.advance(2_000_000);
        let moved = k.migrate_running(&mut p, VcpuId(0), VcpuId(1), MigrateKind::Active);
        assert_eq!(moved, Some(a));
        assert!(k.vcpus[0].curr.is_none());
        assert!(matches!(k.task(a).state, TaskState::Runnable(VcpuId(1))));
        assert_eq!(k.stats.active_migrations.get(), 1);
        // Target was idle → kicked.
        assert!(p.kicks.contains(&VcpuId(1)));
    }

    #[test]
    fn burst_complete_then_sleep_schedules_next() {
        let (mut k, mut p) = setup(1);
        let a = spawn_normal(&mut k, 1);
        let b = spawn_normal(&mut k, 1);
        k.wake_to(&mut p, a, VcpuId(0), None);
        k.schedule(&mut p, VcpuId(0));
        k.task_mut(a).remaining = 1_000_000.0;
        p.advance(5_000);
        k.wake_to(&mut p, b, VcpuId(0), None);
        k.task_mut(b).remaining = 1e12;
        p.advance(1_000_000);
        let done = k.on_burst_complete(&mut p, VcpuId(0));
        assert_eq!(done, Some(a));
        k.curr_sleeps(&mut p, VcpuId(0));
        assert!(matches!(k.task(a).state, TaskState::Sleeping));
        assert_eq!(k.vcpus[0].curr, Some(b));
    }

    #[test]
    fn kill_task_in_every_state() {
        let (mut k, mut p) = setup(2);
        let running = spawn_normal(&mut k, 2);
        let queued = spawn_normal(&mut k, 2);
        let blocked = spawn_normal(&mut k, 2);
        k.wake_to(&mut p, running, VcpuId(0), None);
        k.schedule(&mut p, VcpuId(0));
        k.task_mut(running).remaining = 1e12;
        k.wake_to(&mut p, queued, VcpuId(0), None);
        k.kill_task(&mut p, running);
        assert!(matches!(k.task(running).state, TaskState::Dead));
        // The queued task took over.
        assert_eq!(k.vcpus[0].curr, Some(queued));
        k.kill_task(&mut p, queued);
        assert!(matches!(k.task(queued).state, TaskState::Dead));
        k.kill_task(&mut p, blocked);
        assert!(matches!(k.task(blocked).state, TaskState::Dead));
    }

    #[test]
    fn capacity_drifts_to_full_when_idle() {
        let (mut k, mut p) = setup(1);
        k.vcpus[0].observed_cap = 200.0;
        k.vcpus[0].observed_at = SimTime::ZERO;
        // Busy: capacity stays at the observation.
        let t = spawn_normal(&mut k, 1);
        k.wake_to(&mut p, t, VcpuId(0), None);
        k.schedule(&mut p, VcpuId(0));
        k.task_mut(t).remaining = 1e12;
        assert_eq!(k.capacity_of(VcpuId(0), SimTime::from_ms(500)), 200.0);
        // Idle: observation relaxes toward 1024.
        k.kill_task(&mut p, t);
        let relaxed = k.capacity_of(VcpuId(0), SimTime::from_ms(500));
        assert!(
            relaxed > 950.0,
            "idle capacity should drift up, got {relaxed}"
        );
    }

    #[test]
    fn cap_override_is_authoritative() {
        let (mut k, _p) = setup(1);
        k.vcpus[0].cap_override = Some(333.0);
        assert_eq!(k.capacity_of(VcpuId(0), SimTime::from_secs(10)), 333.0);
    }

    #[test]
    fn placement_mask_respects_cgroup_and_bypass() {
        let (mut k, _p) = setup(4);
        let t = k.spawn(SimTime::ZERO, SpawnSpec::normal(4));
        let mut prober_spec = SpawnSpec::normal(4);
        prober_spec.bypass_cgroup = true;
        prober_spec.program = TaskProgram::BuiltinSpin;
        let prober = k.spawn(SimTime::ZERO, prober_spec);
        k.cgroup.ban(2);
        assert!(!k.placement_mask(t).contains(2));
        assert!(k.placement_mask(prober).contains(2));
    }

    #[test]
    fn empty_placement_falls_back_to_affinity() {
        let (mut k, _p) = setup(2);
        let t = k.spawn(
            SimTime::ZERO,
            SpawnSpec::normal(2).affinity(CpuMask::single(1)),
        );
        k.cgroup.ban(1);
        // cgroup would leave nothing; affinity wins.
        assert_eq!(k.placement_mask(t), CpuMask::single(1));
    }

    #[test]
    fn sched_idle_task_does_not_preempt_normal() {
        let (mut k, mut p) = setup(1);
        let a = spawn_normal(&mut k, 1);
        k.wake_to(&mut p, a, VcpuId(0), None);
        k.schedule(&mut p, VcpuId(0));
        k.task_mut(a).remaining = 1e12;
        p.advance(1000);
        let bg = k.spawn(SimTime::ZERO, SpawnSpec::normal(1).policy(Policy::Idle));
        k.wake_to(&mut p, bg, VcpuId(0), None);
        assert_eq!(k.vcpus[0].curr, Some(a));
    }
}
