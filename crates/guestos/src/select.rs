//! Wake-up CPU selection (`select_task_rq_fair`).
//!
//! The baseline heuristic mirrors Linux: prefer the previous CPU if idle,
//! then search the previous CPU's LLC domain for an idle core (SMT-aware,
//! only when an SMT domain level exists) or an idle CPU, preferring
//! candidates whose *perceived* capacity fits the task's utilization;
//! otherwise fall back to the least-loaded allowed CPU.
//!
//! Under the default flat abstraction the LLC domain spans every vCPU and
//! no SMT level exists, so both the LLC scoping and the idle-core preference
//! are inert — the paper's "existing optimizations cannot function as
//! expected". `vtop`'s domain rebuild re-activates them.

use crate::kernel::{Kernel, VcpuId};
use crate::platform::Platform;
use crate::task::TaskId;
use simcore::SimTime;

/// Capacity fitness margin: a CPU "fits" a task when the task's util is at
/// most 80% of the CPU's capacity (Linux's `fits_capacity`).
const FITS_MARGIN: f64 = 0.8;

/// Whether vCPU `v` counts as idle for wake placement: truly idle, or
/// running only `SCHED_IDLE` tasks (Linux's `sched_idle_cpu()` — a CPU
/// occupied purely by best-effort work is as good as idle for a normal
/// task, which preempts immediately).
pub(crate) fn idle_like(kern: &Kernel, v: VcpuId) -> bool {
    let d = &kern.vcpus[v.0];
    let curr_ok = match d.curr {
        None => true,
        Some(t) => kern.task(t).policy.is_idle(),
    };
    curr_ok && d.rq.nr_normal == 0
}

/// Whether vCPU `v` is idle and, when an SMT level exists, its whole core is
/// idle.
fn is_idle_core(kern: &Kernel, v: VcpuId) -> bool {
    if !idle_like(kern, v) {
        return false;
    }
    match kern.domains.smt_group(v) {
        Some(group) => group.iter().all(|s| idle_like(kern, VcpuId(s))),
        None => true,
    }
}

/// Selects a vCPU for a waking task, Linux-style. `waker` is the vCPU of
/// the task issuing the wakeup, if any (wake-affine: communicating tasks
/// are drawn into the waker's LLC domain).
pub fn select_cpu_fair(
    kern: &Kernel,
    _plat: &mut dyn Platform,
    t: TaskId,
    now: SimTime,
    waker: Option<VcpuId>,
) -> VcpuId {
    let allowed = kern.placement_mask(t);
    let prev = kern.task(t).last_vcpu;
    let util = kern.task(t).pelt.util();

    let fits = |v: VcpuId| util <= FITS_MARGIN * kern.capacity_of(v, now);

    // Wake-affine home domain: the waker's LLC when a waker exists (Linux
    // selects the target around the waker and only keeps prev when it
    // shares the target's cache), else the previous CPU's.
    let home = waker
        .filter(|w| allowed.intersects(kern.domains.llc_group(*w)))
        .unwrap_or(prev);
    let home_llc = *kern.domains.llc_group(home);

    // 1. Previous CPU if idle(-like), fitting, and within the home LLC
    //    (cache-hot fast path, `available_idle_cpu(prev)`). SMT spreading
    //    is the balancer's job (SD_PREFER_SIBLING), not the wake path's.
    if allowed.contains(prev.0) && home_llc.contains(prev.0) && idle_like(kern, prev) && fits(prev)
    {
        return prev;
    }
    // Prev idle but "not fitting": only migrate for a *material* capacity
    // gain (15%), else stay cache-hot. Under the inaccurate abstraction an
    // idle vCPU elsewhere often *appears* stronger (steal unobservable
    // while idle), which is exactly the adverse-migration pattern vcap
    // eliminates (paper §5.3, Figure 11b).
    let prev_idle_cap = if allowed.contains(prev.0) && idle_like(kern, prev) {
        Some(kern.capacity_of(prev, now))
    } else {
        None
    };
    let materially_better = |cap: f64| match prev_idle_cap {
        Some(pc) => cap > 1.15 * pc,
        None => true,
    };

    // 2. Search the home LLC domain: idle core first (SMT-aware), then any
    //    idle vCPU, preferring capacity fit.
    let llc = home_llc.and(&allowed);
    // Scans start at a task-dependent rotating offset, like Linux's
    // per-CPU cursors: ties spread instead of piling onto vCPU 0.
    let scan_start = (t.0 as usize).wrapping_mul(7) % kern.cfg.nr_vcpus.max(1);
    let search = |mask: &crate::cpumask::CpuMask| -> Option<VcpuId> {
        // Rank candidates by (whole core idle, capacity fit); ties keep the
        // first hit in scan order, like Linux's first-fit idle scans — a
        // stable choice that avoids wake-to-wake bouncing. On systems with
        // declared capacity asymmetry, a materially higher capacity (15%)
        // breaks ties instead (Linux's `select_idle_capacity`), so wake
        // placement and misfit balancing pull in the same direction.
        let mut best: Option<(VcpuId, (bool, bool), f64)> = None;
        for c in mask.iter_from(scan_start) {
            let v = VcpuId(c);
            if !idle_like(kern, v) {
                continue;
            }
            let key = (kern.domains.has_smt && is_idle_core(kern, v), fits(v));
            let cap = kern.capacity_of(v, now);
            let replace = match &best {
                None => true,
                Some((_, k0, c0)) => {
                    // The capacity tiebreak only applies among *non-fitting*
                    // candidates (Linux falls back to select_idle_capacity
                    // only when the fitting scan fails); fitting candidates
                    // stay first-fit so small tasks spread.
                    key > *k0 || (key == *k0 && !key.1 && kern.asym_capacity && cap > 1.15 * c0)
                }
            };
            if replace {
                best = Some((v, key, cap));
            }
        }
        best.map(|(v, _, _)| v)
    };

    if let Some(v) = search(&llc) {
        // Wake-affine pull: when prev lies outside the home LLC, the local
        // candidate wins outright (communicating tasks gather in the
        // waker's cache domain). Within the LLC, prev keeps the tie unless
        // the candidate is materially stronger.
        if !llc.contains(prev.0) || materially_better(kern.capacity_of(v, now)) {
            return v;
        }
        return prev;
    }

    // 3. Any idle vCPU in the machine.
    if let Some(v) = search(&allowed) {
        if materially_better(kern.capacity_of(v, now)) {
            return v;
        }
        return prev;
    }
    if prev_idle_cap.is_some() {
        return prev;
    }

    // 4. Least-loaded allowed vCPU (weight per unit of perceived capacity).
    let mut best = prev;
    let mut best_score = f64::INFINITY;
    for c in allowed.iter() {
        let v = VcpuId(c);
        let load = kern.rq_weight(v) as f64;
        let cap = kern.capacity_of(v, now).max(1.0);
        let score = load / cap;
        if score < best_score {
            best_score = score;
            best = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::PerceivedTopology;
    use crate::kernel::GuestConfig;
    use crate::platform::{CommDistance, RunDelta};
    use crate::task::SpawnSpec;

    struct NullPlat;
    impl Platform for NullPlat {
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn steal_ns(&self, _v: VcpuId) -> u64 {
            0
        }
        fn vcpu_active(&self, _v: VcpuId) -> bool {
            true
        }
        fn kick(&mut self, _v: VcpuId) {}
        fn vcpu_idle(&mut self, _v: VcpuId) {}
        fn run_task(&mut self, _v: VcpuId, _t: TaskId, _r: f64, _f: f64, _p: f64) {}
        fn stop_task(&mut self, _v: VcpuId) -> RunDelta {
            RunDelta::default()
        }
        fn poll_task(&mut self, _v: VcpuId) -> RunDelta {
            RunDelta::default()
        }
        fn update_factor(&mut self, _v: VcpuId, _f: f64) {}
        fn send_ipi(&mut self, _to: VcpuId) {}
        fn comm_distance(&self, _a: VcpuId, _b: VcpuId) -> CommDistance {
            CommDistance::SameLlc
        }
        fn cacheline_latency_ns(&mut self, _a: VcpuId, _b: VcpuId) -> Option<f64> {
            None
        }
        fn set_timer(&mut self, _token: u64, _at: SimTime) {}
    }

    fn kern_with(nr: usize) -> Kernel {
        Kernel::new(GuestConfig::new(nr), SimTime::ZERO)
    }

    fn occupy(k: &mut Kernel, v: usize) {
        let mut p = NullPlat;
        let t = k.spawn(SimTime::ZERO, SpawnSpec::normal(k.cfg.nr_vcpus));
        k.wake_to(&mut p, t, VcpuId(v), None);
        if k.vcpus[v].curr.is_none() {
            k.schedule(&mut p, VcpuId(v));
        }
        k.task_mut(t).remaining = 1e12;
    }

    #[test]
    fn prefers_previous_cpu_when_idle() {
        let mut k = kern_with(4);
        let mut p = NullPlat;
        let t = k.spawn(SimTime::ZERO, SpawnSpec::normal(4));
        k.task_mut(t).last_vcpu = VcpuId(2);
        assert_eq!(
            select_cpu_fair(&k, &mut p, t, SimTime::ZERO, None),
            VcpuId(2)
        );
    }

    #[test]
    fn avoids_busy_previous_cpu() {
        let mut k = kern_with(4);
        let mut p = NullPlat;
        occupy(&mut k, 2);
        let t = k.spawn(SimTime::ZERO, SpawnSpec::normal(4));
        k.task_mut(t).last_vcpu = VcpuId(2);
        let v = select_cpu_fair(&k, &mut p, t, SimTime::ZERO, None);
        assert_ne!(v, VcpuId(2));
        assert!(k.vcpu_is_idle(v));
    }

    #[test]
    fn smt_aware_selection_prefers_idle_core() {
        // 4 vCPUs as 2 SMT pairs: (0,1) and (2,3). Busy vCPU 0 makes vCPU 1
        // an idle thread on a busy core; with SMT domains, a wake from vCPU
        // 1's neighborhood should land on the fully idle core (2 or 3).
        let mut k = kern_with(4);
        let topo = PerceivedTopology::from_groups(4, &[], &[vec![0, 1], vec![2, 3]], &[]);
        k.install_topology(&topo);
        let _p = NullPlat;
        occupy(&mut k, 0);
        let t = k.spawn(SimTime::ZERO, SpawnSpec::normal(4));
        k.task_mut(t).last_vcpu = VcpuId(1);
        // prev (1) is idle and fits, so step 1 would take it; make the task
        // bigger than half a core to test the LLC search… instead verify
        // directly that 2/3 are idle cores and 1 is not.
        assert!(!is_idle_core(&k, VcpuId(1)), "sibling of busy vCPU 0");
        assert!(is_idle_core(&k, VcpuId(2)));
        assert!(is_idle_core(&k, VcpuId(3)));
    }

    #[test]
    fn without_smt_domains_idle_thread_looks_fine() {
        // Same physical situation, flat abstraction: vCPU 1 appears to be an
        // idle core — the paper's inert SMT-awareness.
        let mut k = kern_with(4);
        occupy(&mut k, 0);
        assert!(is_idle_core(&k, VcpuId(1)));
    }

    #[test]
    fn capacity_fit_steers_away_from_weak_vcpus() {
        let mut k = kern_with(2);
        let mut p = NullPlat;
        // vCPU 0 has tiny probed capacity; vCPU 1 is strong.
        k.vcpus[0].cap_override = Some(100.0);
        k.vcpus[1].cap_override = Some(1024.0);
        let t = k.spawn(SimTime::ZERO, SpawnSpec::normal(2));
        k.task_mut(t).last_vcpu = VcpuId(0);
        // The task's PELT starts at 512 (new_full) > 0.8*100, so prev does
        // not fit and the search must choose vCPU 1.
        assert_eq!(
            select_cpu_fair(&k, &mut p, t, SimTime::ZERO, None),
            VcpuId(1)
        );
    }

    #[test]
    fn all_busy_falls_back_to_least_loaded() {
        let mut k = kern_with(2);
        let mut p = NullPlat;
        occupy(&mut k, 0);
        occupy(&mut k, 0); // two tasks on vCPU 0
        occupy(&mut k, 1);
        let t = k.spawn(SimTime::ZERO, SpawnSpec::normal(2));
        k.task_mut(t).last_vcpu = VcpuId(0);
        assert_eq!(
            select_cpu_fair(&k, &mut p, t, SimTime::ZERO, None),
            VcpuId(1)
        );
    }

    #[test]
    fn cgroup_bans_exclude_candidates() {
        let mut k = kern_with(2);
        let mut p = NullPlat;
        k.cgroup.ban(1);
        let t = k.spawn(SimTime::ZERO, SpawnSpec::normal(2));
        k.task_mut(t).last_vcpu = VcpuId(1);
        let v = select_cpu_fair(&k, &mut p, t, SimTime::ZERO, None);
        assert_eq!(v, VcpuId(0));
    }
}
