//! Load balancing.
//!
//! Periodic balancing walks the domain hierarchy lowest-level-first and
//! pulls waiting tasks toward the balancing vCPU when the load-to-capacity
//! imbalance warrants it; new-idle balancing does the same the moment a vCPU
//! runs out of work (this is what makes baseline CFS *work-conserving* —
//! and what rwc's cgroup bans deliberately relax); misfit balancing moves a
//! *running* task whose utilization exceeds its vCPU's perceived capacity to
//! an idle vCPU with more (Linux's active balance, which Figure 11a shows
//! steering work to high-capacity vCPUs only when capacity is probed
//! correctly).

use crate::kernel::{Kernel, MigrateKind, VcpuId};
use crate::platform::Platform;
use crate::task::{TaskId, TaskState};

/// Imbalance factor: the busiest queue must be this much more loaded than
/// the destination before a pull happens (Linux's `imbalance_pct` = 125).
const IMBALANCE_PCT: f64 = 1.25;

/// Capacity-fit margin for misfit detection (`fits_capacity`).
const FITS_MARGIN: f64 = 0.8;

/// Capacity advantage required of the destination in a misfit migration.
const MISFIT_CAP_ADVANTAGE: f64 = 1.15;

/// Load of a vCPU's queue per unit of perceived capacity.
fn load_ratio(kern: &Kernel, v: VcpuId, now: simcore::SimTime) -> f64 {
    kern.rq_weight(v) as f64 / kern.capacity_of(v, now).max(1.0)
}

/// Finds the first waiting task on `src` that may run on `dst`, skipping
/// cache-hot tasks (enqueued within `migration_cost_ns`, Linux's
/// `can_migrate_task` heat check — this also prevents a freshly migrated
/// task from ping-ponging straight back).
fn movable_task(kern: &Kernel, src: VcpuId, dst: VcpuId, now: simcore::SimTime) -> Option<TaskId> {
    for (_, t) in kern.vcpus[src.0].rq.iter() {
        let task = kern.task(t);
        if matches!(task.state, TaskState::Runnable(_))
            && kern.placement_mask(t).contains(dst.0)
            && now.since(task.enqueued_at) >= kern.cfg.migration_cost_ns
        {
            return Some(t);
        }
    }
    None
}

/// Outcome of one pull attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PullResult {
    /// A task moved.
    Pulled,
    /// No imbalance worth acting on.
    Balanced,
    /// Imbalance exists but the busiest queue had nothing movable
    /// (Linux increments `nr_balance_failed` here).
    NothingMovable(VcpuId),
}

/// Attempts one pull into `dst` from the busiest other vCPU in `span`.
fn try_pull(
    kern: &mut Kernel,
    plat: &mut dyn Platform,
    dst: VcpuId,
    span: &crate::cpumask::CpuMask,
) -> PullResult {
    let now = plat.now();
    let dst_ratio = load_ratio(kern, dst, now);

    // The busiest vCPU by load ratio — considering the running task too,
    // since active balance may target it.
    let mut busiest: Option<(VcpuId, f64)> = None;
    for c in span.iter() {
        let v = VcpuId(c);
        if v == dst || (kern.vcpus[v.0].rq.is_empty() && kern.vcpus[v.0].curr.is_none()) {
            continue;
        }
        let r = load_ratio(kern, v, now);
        if busiest.map(|(_, b)| r > b).unwrap_or(true) {
            busiest = Some((v, r));
        }
    }
    let (src, src_ratio) = match busiest {
        Some(b) => b,
        None => return PullResult::Balanced,
    };

    let dst_idle = kern.vcpu_is_idle(dst);
    if src_ratio <= IMBALANCE_PCT * dst_ratio || (!dst_idle && src_ratio <= dst_ratio + 0.5) {
        return PullResult::Balanced;
    }
    if dst_idle && kern.vcpus[src.0].rq.is_empty() {
        // Only the running task could move: that is active balance's job.
        return PullResult::NothingMovable(src);
    }
    let t = match movable_task(kern, src, dst, now) {
        Some(t) => t,
        None => {
            // Linux's LBF_ALL_PINNED: when every queued task is barred by
            // affinity/cgroup (not merely cache-hot), the CPU is excluded
            // from balancing instead of escalating to active balance.
            let any_placeable = kern.vcpus[src.0]
                .rq
                .iter()
                .any(|(_, t)| kern.placement_mask(t).contains(dst.0));
            if !any_placeable {
                return PullResult::Balanced;
            }
            return PullResult::NothingMovable(src);
        }
    };
    // Require strict improvement so tasks do not ping-pong.
    let tw = kern.task(t).weight() as f64;
    let src_cap = kern.capacity_of(src, now).max(1.0);
    let dst_cap = kern.capacity_of(dst, now).max(1.0);
    let new_src = (kern.rq_weight(src) as f64 - tw) / src_cap;
    let new_dst = (kern.rq_weight(dst) as f64 + tw) / dst_cap;
    if new_dst.max(new_src) >= src_ratio.max(dst_ratio) && !dst_idle {
        return PullResult::Balanced;
    }
    kern.migrate_runnable(plat, t, dst, MigrateKind::Balance);
    kern.stats.balance_migrations.inc();
    PullResult::Pulled
}

/// Linux's active balance after repeated failed attempts: when the balance
/// pass keeps finding imbalance with nothing pullable, the *running* task
/// of the busiest vCPU is pushed to the balancer. Under the inaccurate
/// baseline capacity view, perceived ratios diverge even on symmetric
/// hosts, producing the adverse migration churn Figure 11b profiles.
const BALANCE_FAILED_THRESHOLD: u32 = 3;

fn maybe_active_balance(
    kern: &mut Kernel,
    plat: &mut dyn Platform,
    dst: VcpuId,
    src: VcpuId,
) -> bool {
    // Linux only reaches active balance when the busiest CPU is genuinely
    // overloaded (waiting tasks it cannot hand over); a CPU running a
    // single task is "fully busy", not "overloaded", and is left alone.
    if kern.vcpus[src.0].rq.is_empty() {
        return false;
    }
    kern.vcpus[src.0].balance_failed += 1;
    if kern.vcpus[src.0].balance_failed < BALANCE_FAILED_THRESHOLD {
        return false;
    }
    let Some(curr) = kern.vcpus[src.0].curr else {
        return false;
    };
    if !kern.placement_mask(curr).contains(dst.0) {
        return false;
    }
    kern.vcpus[src.0].balance_failed = 0;
    kern.migrate_running(plat, src, dst, MigrateKind::Active)
        .is_some()
}

/// Misfit / active balance: if `dst` is idle and some vCPU runs a task too
/// big for its perceived capacity, and `dst` has materially more capacity,
/// migrate the running task here. Gated on the asymmetric-capacity flag
/// (`SD_ASYM_CPUCAPACITY`): a stock x86 VM never balances on misfit;
/// vcap's module enables it when probing reveals real asymmetry.
fn try_misfit(kern: &mut Kernel, plat: &mut dyn Platform, dst: VcpuId) -> bool {
    if !kern.asym_capacity || !kern.vcpu_is_idle(dst) {
        return false;
    }
    let now = plat.now();
    let dst_cap = kern.capacity_of(dst, now);
    let nr = kern.cfg.nr_vcpus;
    for c in 0..nr {
        let src = VcpuId(c);
        if src == dst {
            continue;
        }
        let curr = match kern.vcpus[c].curr {
            Some(t) => t,
            None => continue,
        };
        let src_cap = kern.capacity_of(src, now);
        let util = kern.task(curr).pelt.util();
        let misfit = util > FITS_MARGIN * src_cap;
        let worth_it = dst_cap > MISFIT_CAP_ADVANTAGE * src_cap
            && kern.placement_mask(curr).contains(dst.0)
            // Cache-hot gate: leave freshly (re)started tasks alone.
            && now.since(kern.task(curr).run_started) >= kern.cfg.migration_cost_ns;
        if misfit && worth_it {
            kern.migrate_running(plat, src, dst, MigrateKind::Active);
            return true;
        }
    }
    false
}

/// SMT spreading (Linux's SD_PREFER_SIBLING): if `dst` sits on a fully
/// idle core while some core runs tasks on both its hardware threads,
/// migrate one of them here — actively if necessary. Returns true on a
/// migration.
fn try_smt_spread(kern: &mut Kernel, plat: &mut dyn Platform, dst: VcpuId) -> bool {
    if !kern.domains.has_smt || !kern.vcpu_is_idle(dst) {
        return false;
    }
    let Some(dst_group) = kern.domains.smt_group(dst).copied() else {
        return false;
    };
    if !dst_group.iter().all(|s| kern.vcpu_is_idle(VcpuId(s))) {
        return false;
    }
    let now = plat.now();
    for c in 0..kern.cfg.nr_vcpus {
        let src = VcpuId(c);
        if dst_group.contains(c) {
            continue;
        }
        let Some(group) = kern.domains.smt_group(src).copied() else {
            continue;
        };
        // Both hardware threads of src's core busy with normal tasks?
        let busy_siblings = group
            .iter()
            .filter(|&s| {
                kern.vcpus[s]
                    .curr
                    .map(|t| !kern.task(t).policy.is_idle())
                    .unwrap_or(false)
            })
            .count();
        if busy_siblings < 2 {
            continue;
        }
        // Prefer a queued task; otherwise actively migrate the running one.
        if let Some(t) = movable_task(kern, src, dst, now) {
            kern.migrate_runnable(plat, t, dst, MigrateKind::Balance);
            kern.stats.balance_migrations.inc();
            return true;
        }
        if let Some(curr) = kern.vcpus[src.0].curr {
            if kern.placement_mask(curr).contains(dst.0) {
                return kern
                    .migrate_running(plat, src, dst, MigrateKind::Active)
                    .is_some();
            }
        }
    }
    false
}

/// Periodic balance, run from the tick of vCPU `v` every
/// `balance_interval_ticks` ticks. Also performs a round of *nohz idle
/// balancing*: halted vCPUs cannot balance for themselves, so a busy vCPU
/// runs the pass on behalf of one idle vCPU (Linux's nohz balancer kick).
pub fn periodic_balance(kern: &mut Kernel, plat: &mut dyn Platform, v: VcpuId) {
    let spans: Vec<crate::cpumask::CpuMask> = kern
        .domains
        .levels()
        .iter()
        .filter_map(|l| l.group_of(v).copied())
        .collect();
    let mut done = false;
    for span in &spans {
        if span.count() <= 1 {
            continue;
        }
        match try_pull(kern, plat, v, span) {
            PullResult::Pulled => {
                done = true;
                break;
            }
            PullResult::Balanced => {}
            PullResult::NothingMovable(src) => {
                if maybe_active_balance(kern, plat, v, src) {
                    done = true;
                    break;
                }
            }
        }
    }
    if !done {
        try_misfit(kern, plat, v);
    }
    // nohz idle balance on behalf of one idle vCPU, rotating with the tick.
    let nr = kern.cfg.nr_vcpus;
    let start = (kern.vcpus[v.0].tick_count as usize).wrapping_mul(3) % nr.max(1);
    for off in 0..nr {
        let cand = VcpuId((start + off) % nr);
        if cand != v && kern.vcpu_is_idle(cand) {
            if try_smt_spread(kern, plat, cand) || try_misfit(kern, plat, cand) {
                return;
            }
            break;
        }
    }
}

/// New-idle balance: called when vCPU `v` is about to go idle; pulls a task
/// from anywhere allowed (work conservation) or performs a misfit pull.
/// Returns true if work arrived.
pub fn newidle_balance(kern: &mut Kernel, plat: &mut dyn Platform, v: VcpuId) -> bool {
    let spans: Vec<crate::cpumask::CpuMask> = kern
        .domains
        .levels()
        .iter()
        .filter_map(|l| l.group_of(v).copied())
        .collect();
    for span in &spans {
        if span.count() <= 1 {
            continue;
        }
        match try_pull(kern, plat, v, span) {
            PullResult::Pulled => return true,
            PullResult::Balanced | PullResult::NothingMovable(_) => {}
        }
    }
    try_smt_spread(kern, plat, v) || try_misfit(kern, plat, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GuestConfig;
    use crate::platform::{CommDistance, RunDelta};
    use crate::task::SpawnSpec;
    use simcore::SimTime;

    struct NullPlat {
        now: SimTime,
    }
    impl Platform for NullPlat {
        fn now(&self) -> SimTime {
            self.now
        }
        fn steal_ns(&self, _v: VcpuId) -> u64 {
            0
        }
        fn vcpu_active(&self, _v: VcpuId) -> bool {
            true
        }
        fn kick(&mut self, _v: VcpuId) {}
        fn vcpu_idle(&mut self, _v: VcpuId) {}
        fn run_task(&mut self, _v: VcpuId, _t: TaskId, _r: f64, _f: f64, _p: f64) {}
        fn stop_task(&mut self, _v: VcpuId) -> RunDelta {
            RunDelta::default()
        }
        fn poll_task(&mut self, _v: VcpuId) -> RunDelta {
            RunDelta::default()
        }
        fn update_factor(&mut self, _v: VcpuId, _f: f64) {}
        fn send_ipi(&mut self, _to: VcpuId) {}
        fn comm_distance(&self, _a: VcpuId, _b: VcpuId) -> CommDistance {
            CommDistance::SameLlc
        }
        fn cacheline_latency_ns(&mut self, _a: VcpuId, _b: VcpuId) -> Option<f64> {
            None
        }
        fn set_timer(&mut self, _token: u64, _at: SimTime) {}
    }

    fn setup(nr: usize) -> (Kernel, NullPlat) {
        (
            Kernel::new(GuestConfig::new(nr), SimTime::ZERO),
            NullPlat { now: SimTime::ZERO },
        )
    }

    /// Wakes `n` infinite tasks onto vCPU `v`; the first becomes current.
    fn load_vcpu(k: &mut Kernel, p: &mut NullPlat, v: usize, n: usize) -> Vec<TaskId> {
        let mut ids = Vec::new();
        for _ in 0..n {
            let t = k.spawn(SimTime::ZERO, SpawnSpec::normal(k.cfg.nr_vcpus));
            k.wake_to(p, t, VcpuId(v), None);
            k.task_mut(t).remaining = 1e12;
            ids.push(t);
        }
        if k.vcpus[v].curr.is_none() {
            k.schedule(p, VcpuId(v));
        }
        ids
    }

    #[test]
    fn newidle_pulls_from_busy_queue() {
        let (mut k, mut p) = setup(2);
        load_vcpu(&mut k, &mut p, 0, 3);
        assert_eq!(k.vcpus[0].rq.len(), 2);
        p.now = SimTime::from_ms(1); // let queued tasks go cache-cold
        let pulled = newidle_balance(&mut k, &mut p, VcpuId(1));
        assert!(pulled);
        assert_eq!(k.vcpus[0].rq.len(), 1);
        assert_eq!(k.stats.balance_migrations.get(), 1);
    }

    #[test]
    fn no_pull_when_balanced() {
        let (mut k, mut p) = setup(2);
        load_vcpu(&mut k, &mut p, 0, 1);
        load_vcpu(&mut k, &mut p, 1, 1);
        // Both vCPUs run one task with empty queues: nothing to pull.
        assert!(!newidle_balance(&mut k, &mut p, VcpuId(1)));
        assert_eq!(k.stats.balance_migrations.get(), 0);
    }

    #[test]
    fn periodic_balance_evens_out_queues() {
        let (mut k, mut p) = setup(2);
        load_vcpu(&mut k, &mut p, 0, 4);
        load_vcpu(&mut k, &mut p, 1, 1);
        p.now = SimTime::from_ms(1); // let queued tasks go cache-cold
        periodic_balance(&mut k, &mut p, VcpuId(1));
        assert_eq!(k.vcpus[0].rq.len(), 2);
        assert_eq!(k.vcpus[1].rq.len(), 1);
    }

    #[test]
    fn misfit_moves_running_task_to_big_idle_vcpu() {
        let (mut k, mut p) = setup(2);
        k.asym_capacity = true; // probed asymmetry enables misfit balancing
        k.vcpus[0].cap_override = Some(300.0);
        k.vcpus[1].cap_override = Some(1024.0);
        let ids = load_vcpu(&mut k, &mut p, 0, 1);
        p.now = SimTime::from_ms(1); // past the cache-hot gate
                                     // PELT starts at 512 > 0.8 * 300 → misfit.
        assert!(newidle_balance(&mut k, &mut p, VcpuId(1)));
        assert!(matches!(
            k.task(ids[0]).state,
            TaskState::Runnable(VcpuId(1))
        ));
        assert_eq!(k.stats.active_migrations.get(), 1);
    }

    #[test]
    fn misfit_needs_capacity_advantage() {
        let (mut k, mut p) = setup(2);
        k.vcpus[0].cap_override = Some(1000.0);
        k.vcpus[1].cap_override = Some(1024.0);
        load_vcpu(&mut k, &mut p, 0, 1);
        // util 512 < 0.8*1000 → no misfit; also no queue → no pull.
        assert!(!newidle_balance(&mut k, &mut p, VcpuId(1)));
    }

    #[test]
    fn cgroup_ban_blocks_pull() {
        let (mut k, mut p) = setup(2);
        load_vcpu(&mut k, &mut p, 0, 3);
        p.now = SimTime::from_ms(1);
        k.cgroup.ban(1);
        // Banned vCPU cannot receive tasks: placement mask excludes it.
        assert!(!newidle_balance(&mut k, &mut p, VcpuId(1)));
        assert_eq!(k.vcpus[0].rq.len(), 2);
    }

    #[test]
    fn affinity_blocks_pull() {
        let (mut k, mut p) = setup(2);
        let t = k.spawn(
            SimTime::ZERO,
            SpawnSpec::normal(2).affinity(crate::cpumask::CpuMask::single(0)),
        );
        let mut p2 = NullPlat { now: SimTime::ZERO };
        k.wake_to(&mut p2, t, VcpuId(0), None);
        let t2 = k.spawn(
            SimTime::ZERO,
            SpawnSpec::normal(2).affinity(crate::cpumask::CpuMask::single(0)),
        );
        k.wake_to(&mut p2, t2, VcpuId(0), None);
        k.schedule(&mut p2, VcpuId(0));
        assert!(!newidle_balance(&mut k, &mut p, VcpuId(1)));
    }
}
