//! The hypervisor/platform interface seen by the guest.
//!
//! The guest kernel (and vSched, which runs inside the guest) interacts with
//! the world below it only through this trait. The methods are split into
//! two groups:
//!
//! * **Guest-visible signals** — things a real Linux guest on KVM can
//!   observe without hypervisor modification: the clock (`now`), the
//!   paravirtual steal-time counter (`steal_ns`), and physical measurements
//!   it can perform itself, such as cache-line transfer latency
//!   (`cacheline_latency_ns`, which `vtop` uses). vSched restricts itself to
//!   these.
//! * **Simulator mechanics** — the machinery by which the simulation runs
//!   tasks and accrues work (`run_task`/`stop_task`/`poll_task`), which in a
//!   real system is simply "the CPU executes instructions". `vcpu_active` is
//!   ground truth used by mechanics and assertions; probing code must not
//!   consult it (vact estimates it from heartbeats instead).

use crate::kernel::VcpuId;
use crate::task::TaskId;
use simcore::SimTime;

/// What happened to the task that was current on a vCPU since accounting
/// last settled.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunDelta {
    /// Wall-clock nanoseconds elapsed.
    pub wall_ns: u64,
    /// Nanoseconds the vCPU was actually executing on a core (excludes
    /// steal). This is what CFS charges to vruntime under paravirtual time
    /// accounting.
    pub active_ns: u64,
    /// Work completed, in capacity-ns.
    pub work: f64,
}

/// Physical distance between the cores currently hosting two vCPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommDistance {
    /// Same hardware thread (stacked vCPUs).
    Stacked,
    /// Sibling hardware threads of one core.
    SmtSibling,
    /// Different cores in one socket (shared LLC).
    SameLlc,
    /// Different sockets.
    CrossSocket,
}

/// The world below the guest kernel.
pub trait Platform {
    /// Current simulated time (the guest's `sched_clock()`; kvmclock
    /// semantics — advances in wall time even while the vCPU is preempted).
    fn now(&self) -> SimTime;

    /// Cumulative steal time of `v`: total time the vCPU spent
    /// runnable-but-preempted on the host. Guest-visible (paravirtual
    /// steal counter).
    fn steal_ns(&self, v: VcpuId) -> u64;

    /// Ground truth: whether `v` is executing on a core right now.
    /// Simulator mechanics only — probing code must use heartbeats.
    fn vcpu_active(&self, v: VcpuId) -> bool;

    /// Makes a halted vCPU runnable on the host (the guest "kicks" it when
    /// placing work there). No-op if already runnable/running.
    fn kick(&mut self, v: VcpuId);

    /// Tells the host the guest has nothing to run on `v`; the vCPU halts
    /// and stops consuming (and stealing) host CPU.
    fn vcpu_idle(&mut self, v: VcpuId);

    /// Starts accruing work for `t` as the current task of `v`:
    /// `remaining` capacity-ns at the vCPU's capacity scaled by `factor`
    /// (communication-locality penalty). `cache_penalty` is extra work (ns)
    /// charged each time the vCPU resumes after an inactive period long
    /// enough for co-running vCPUs to have polluted the cache (paper §2.1:
    /// "a vCPU doesn't have an intact private cache"); 0 for insensitive
    /// tasks. The platform fires a burst-complete event into the VM when
    /// the work finishes.
    fn run_task(&mut self, v: VcpuId, t: TaskId, remaining: f64, factor: f64, cache_penalty: f64);

    /// Stops accrual on `v` and settles: the returned delta covers the
    /// interval since `run_task`/the last `poll_task`.
    fn stop_task(&mut self, v: VcpuId) -> RunDelta;

    /// Settles accrual on `v` without stopping it (tick-time accounting).
    fn poll_task(&mut self, v: VcpuId) -> RunDelta;

    /// Updates the communication-locality factor of the task currently
    /// accruing on `v`.
    fn update_factor(&mut self, v: VcpuId, factor: f64);

    /// Sends a rescheduling IPI to `v` (counted; kicks the vCPU if halted).
    fn send_ipi(&mut self, to: VcpuId);

    /// Physical distance between the cores hosting two vCPUs *right now*
    /// (used for communication-cost modelling; changes as the host
    /// migrates vCPUs).
    fn comm_distance(&self, a: VcpuId, b: VcpuId) -> CommDistance;

    /// Performs one physical cache-line transfer measurement between `a`
    /// and `b` as `vtop`'s prober pair would observe it *if both vCPUs are
    /// currently active*: returns the transfer latency in nanoseconds, or
    /// `None` when the two vCPUs are not simultaneously active (the prober
    /// spins). The measurement includes realistic noise.
    fn cacheline_latency_ns(&mut self, a: VcpuId, b: VcpuId) -> Option<f64>;

    /// Performs one timed pointer-chase micro-probe on the vCPU `v` as
    /// `vcache`'s prober would observe it *if the vCPU is currently
    /// active*: returns the mean per-access latency in nanoseconds (LLC
    /// hit when the socket's cache is quiet, drifting toward a miss/DRAM
    /// latency as neighbours thrash it), or `None` when the vCPU is off
    /// core. The measurement includes realistic noise. The default is
    /// `None` — platforms without an LLC occupancy model give the prober
    /// nothing to see.
    fn llc_probe_ns(&mut self, v: VcpuId) -> Option<f64> {
        let _ = v;
        None
    }

    /// Arms a one-shot timer that will be delivered back into this VM
    /// (routed to the workload or to vSched by token range).
    fn set_timer(&mut self, token: u64, at: SimTime);
}

/// Timer tokens at or above this value are routed to the installed
/// [`crate::hooks::SchedHooks`] (vSched); below it, to the VM's workload.
pub const HOOK_TIMER_BASE: u64 = 1 << 63;
