//! Schedule domains.
//!
//! Linux groups CPUs into a hierarchy of *schedule domains* based on shared
//! resources — SMT siblings at the bottom, LLC/socket groups above, the whole
//! machine at the top — and scopes its balancing and wake-placement
//! heuristics to them.
//!
//! Inside a cloud VM the hypervisor exposes vCPUs as flat, symmetric,
//! UMA-topology CPUs (paper §1), so the default [`DomainTree`] built here is
//! a single level spanning every vCPU: SMT-aware and LLC-aware optimizations
//! are inert, exactly as the paper observes. `vtop` rebuilds the tree at
//! runtime from probed topology (the paper's kernel module calls
//! `rebuild_sched_domains`), which switches those heuristics back on.

use crate::cpumask::CpuMask;
use crate::kernel::VcpuId;

/// The perceived vCPU topology, as three sibling lists per vCPU — the exact
/// representation the paper's kernel module stores ("the probed topology is
/// stored as three lists for each vCPU", §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerceivedTopology {
    /// Number of vCPUs.
    pub nr_vcpus: usize,
    /// For each vCPU, the set of vCPUs stacked on the same hardware thread
    /// (including itself when stacked; empty set = not stacked).
    pub stacked: Vec<CpuMask>,
    /// For each vCPU, the set of vCPUs on the same physical core (SMT
    /// siblings, including itself).
    pub smt: Vec<CpuMask>,
    /// For each vCPU, the set of vCPUs in the same socket / LLC domain
    /// (including itself).
    pub socket: Vec<CpuMask>,
}

impl PerceivedTopology {
    /// The default abstraction a VM boots with: no SMT siblings, no
    /// stacking, and one UMA domain spanning all vCPUs.
    pub fn flat(nr_vcpus: usize) -> Self {
        let all = CpuMask::first_n(nr_vcpus);
        Self {
            nr_vcpus,
            stacked: vec![CpuMask::empty(); nr_vcpus],
            smt: (0..nr_vcpus).map(CpuMask::single).collect(),
            socket: vec![all; nr_vcpus],
        }
    }

    /// Builds a topology from explicit SMT sibling groups and socket groups.
    /// Groups must partition `0..nr_vcpus`; vCPUs not mentioned in
    /// `smt_groups` are their own core, and vCPUs not mentioned in
    /// `socket_groups` share one socket with all other unmentioned vCPUs.
    pub fn from_groups(
        nr_vcpus: usize,
        stacked_groups: &[Vec<usize>],
        smt_groups: &[Vec<usize>],
        socket_groups: &[Vec<usize>],
    ) -> Self {
        let mut t = Self::flat(nr_vcpus);
        for g in stacked_groups {
            let m = CpuMask::from_iter(g.iter().copied());
            for &v in g {
                t.stacked[v] = m;
            }
        }
        for g in smt_groups {
            let m = CpuMask::from_iter(g.iter().copied());
            for &v in g {
                t.smt[v] = m;
            }
        }
        if !socket_groups.is_empty() {
            let mentioned: Vec<usize> = socket_groups.iter().flatten().copied().collect();
            let rest: Vec<usize> = (0..nr_vcpus).filter(|v| !mentioned.contains(v)).collect();
            let rest_mask = CpuMask::from_iter(rest.iter().copied());
            for &v in &rest {
                t.socket[v] = rest_mask;
            }
            for g in socket_groups {
                let m = CpuMask::from_iter(g.iter().copied());
                for &v in g {
                    t.socket[v] = m;
                }
            }
        }
        t
    }

    /// Whether vCPU `v` is stacked with any other vCPU.
    pub fn is_stacked(&self, v: VcpuId) -> bool {
        self.stacked[v.0].count() > 1
    }
}

/// One level of the domain hierarchy: a partition of the vCPUs into groups.
#[derive(Debug, Clone)]
pub struct DomainLevel {
    /// Human-readable level name ("SMT", "LLC", "MC").
    pub name: &'static str,
    /// Disjoint vCPU groups at this level.
    pub groups: Vec<CpuMask>,
}

impl DomainLevel {
    /// The group containing `v`, if any.
    pub fn group_of(&self, v: VcpuId) -> Option<&CpuMask> {
        self.groups.iter().find(|g| g.contains(v.0))
    }
}

/// The full domain hierarchy, lowest (most local) level first.
#[derive(Debug, Clone)]
pub struct DomainTree {
    levels: Vec<DomainLevel>,
    /// Whether an SMT level exists (enables SMT-aware idle-core search).
    pub has_smt: bool,
}

impl DomainTree {
    /// The default single-level tree for the flat/UMA abstraction.
    pub fn flat(nr_vcpus: usize) -> Self {
        Self {
            levels: vec![DomainLevel {
                name: "MC",
                groups: vec![CpuMask::first_n(nr_vcpus)],
            }],
            has_smt: false,
        }
    }

    /// Rebuilds the hierarchy from a perceived topology
    /// (`rebuild_sched_domains` in the paper's kernel module).
    ///
    /// SMT groups with more than one member form the SMT level; socket
    /// groups form the LLC level; a machine-wide level is always present.
    pub fn rebuild(topo: &PerceivedTopology) -> Self {
        let mut levels = Vec::new();
        let mut has_smt = false;

        let mut smt_groups: Vec<CpuMask> = Vec::new();
        let mut seen = CpuMask::empty();
        for v in 0..topo.nr_vcpus {
            if seen.contains(v) {
                continue;
            }
            let g = topo.smt[v];
            if g.count() > 1 {
                has_smt = true;
            }
            smt_groups.push(g);
            seen = seen.or(&g);
        }
        if has_smt {
            levels.push(DomainLevel {
                name: "SMT",
                groups: smt_groups,
            });
        }

        let mut socket_groups: Vec<CpuMask> = Vec::new();
        let mut seen = CpuMask::empty();
        for v in 0..topo.nr_vcpus {
            if seen.contains(v) {
                continue;
            }
            let g = topo.socket[v];
            socket_groups.push(g);
            seen = seen.or(&g);
        }
        let multi_socket = socket_groups.len() > 1;
        if multi_socket {
            levels.push(DomainLevel {
                name: "LLC",
                groups: socket_groups,
            });
        }

        levels.push(DomainLevel {
            name: "MC",
            groups: vec![CpuMask::first_n(topo.nr_vcpus)],
        });

        Self { levels, has_smt }
    }

    /// Levels lowest-first.
    pub fn levels(&self) -> &[DomainLevel] {
        &self.levels
    }

    /// The SMT sibling group of `v`, if an SMT level exists.
    pub fn smt_group(&self, v: VcpuId) -> Option<&CpuMask> {
        if !self.has_smt {
            return None;
        }
        self.levels
            .iter()
            .find(|l| l.name == "SMT")
            .and_then(|l| l.group_of(v))
    }

    /// The LLC (socket) group of `v` — falls back to the machine level when
    /// no LLC level exists, which reproduces Linux treating the whole VM as
    /// one cache domain under the flat abstraction.
    pub fn llc_group(&self, v: VcpuId) -> &CpuMask {
        self.levels
            .iter()
            .find(|l| l.name == "LLC")
            .and_then(|l| l.group_of(v))
            .unwrap_or_else(|| {
                self.levels
                    .last()
                    .and_then(|l| l.group_of(v))
                    .expect("machine level always contains every vCPU")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_is_one_level() {
        let t = DomainTree::flat(8);
        assert_eq!(t.levels().len(), 1);
        assert!(!t.has_smt);
        assert_eq!(t.llc_group(VcpuId(3)).count(), 8);
        assert!(t.smt_group(VcpuId(3)).is_none());
    }

    #[test]
    fn rebuild_with_smt_and_sockets() {
        // 8 vCPUs: SMT pairs (0,1)(2,3)(4,5)(6,7), sockets {0..3},{4..7}.
        let topo = PerceivedTopology::from_groups(
            8,
            &[],
            &[vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]],
            &[vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
        );
        let t = DomainTree::rebuild(&topo);
        assert!(t.has_smt);
        assert_eq!(t.levels().len(), 3);
        assert_eq!(t.smt_group(VcpuId(2)).unwrap().count(), 2);
        assert!(t.smt_group(VcpuId(2)).unwrap().contains(3));
        assert_eq!(t.llc_group(VcpuId(5)).count(), 4);
        assert!(t.llc_group(VcpuId(5)).contains(7));
        assert!(!t.llc_group(VcpuId(5)).contains(0));
    }

    #[test]
    fn rebuild_single_socket_has_no_llc_level() {
        let topo =
            PerceivedTopology::from_groups(4, &[], &[vec![0, 1], vec![2, 3]], &[vec![0, 1, 2, 3]]);
        let t = DomainTree::rebuild(&topo);
        assert_eq!(t.levels().len(), 2); // SMT + MC
        assert_eq!(t.llc_group(VcpuId(0)).count(), 4);
    }

    #[test]
    fn stacked_detection() {
        let topo = PerceivedTopology::from_groups(4, &[vec![2, 3]], &[], &[]);
        assert!(!topo.is_stacked(VcpuId(0)));
        assert!(topo.is_stacked(VcpuId(2)));
        assert!(topo.is_stacked(VcpuId(3)));
    }

    #[test]
    fn flat_perceived_topology_matches_paper_default() {
        let topo = PerceivedTopology::flat(4);
        assert_eq!(topo.smt[0].count(), 1);
        assert_eq!(topo.socket[0].count(), 4);
        assert!(topo.stacked[0].is_empty());
    }

    #[test]
    fn rebuild_from_flat_matches_flat_tree() {
        let t = DomainTree::rebuild(&PerceivedTopology::flat(6));
        assert!(!t.has_smt);
        assert_eq!(t.levels().len(), 1);
    }
}
