//! The workload interface.
//!
//! A [`Workload`] is the application running inside a VM: it spawns tasks,
//! reacts to timers (request arrivals, phase changes), and decides what each
//! task does when its current CPU burst completes. Synchronization between
//! tasks (barriers, locks, queues) is workload-internal: a task blocks via
//! [`TaskAction::Block`] and the workload later wakes it through the guest
//! API.

use crate::kernel::GuestOs;
use crate::platform::Platform;
use crate::task::TaskId;

/// What a task does next, decided when its previous burst completes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskAction {
    /// Execute `work` capacity-ns of CPU work.
    Compute {
        /// Amount of work in capacity-ns (1024 × wall-ns on a reference
        /// core).
        work: f64,
    },
    /// Sleep for a duration (I/O, think time); the platform wakes the task.
    Sleep {
        /// Sleep duration in nanoseconds.
        ns: u64,
    },
    /// Block on a workload-level event; the workload must wake the task
    /// explicitly.
    Block,
    /// Exit; the task's arena slot is retired.
    Exit,
}

/// Application logic hosted by a VM.
pub trait Workload {
    /// Called once at simulation start; spawn initial tasks and arm timers.
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform);

    /// A timer armed through [`Platform::set_timer`] with a token below
    /// `HOOK_TIMER_BASE` fired.
    fn on_timer(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform, token: u64);

    /// Task `t` finished its burst (or was just spawned and needs its first
    /// action): decide what it does next.
    fn next_action(
        &mut self,
        guest: &mut GuestOs,
        plat: &mut dyn Platform,
        t: TaskId,
    ) -> TaskAction;

    /// Whether the workload has run to completion (drivers may stop the
    /// simulation early when every workload reports finished).
    fn finished(&self) -> bool {
        false
    }

    /// Whether this workload owns task `t`. Single workloads own every
    /// task of their VM (the default); combinators use this to route
    /// `next_action` to the right child.
    fn owns_task(&self, _t: TaskId) -> bool {
        true
    }

    /// Short label for reports.
    fn label(&self) -> &str {
        "workload"
    }
}

/// A trivial workload hosting no tasks; useful as a placeholder in tests.
#[derive(Debug, Default)]
pub struct IdleWorkload;

impl Workload for IdleWorkload {
    fn start(&mut self, _guest: &mut GuestOs, _plat: &mut dyn Platform) {}

    fn on_timer(&mut self, _guest: &mut GuestOs, _plat: &mut dyn Platform, _token: u64) {}

    fn next_action(
        &mut self,
        _guest: &mut GuestOs,
        _plat: &mut dyn Platform,
        _t: TaskId,
    ) -> TaskAction {
        TaskAction::Exit
    }

    fn finished(&self) -> bool {
        true
    }

    fn label(&self) -> &str {
        "idle"
    }
}
