//! CPU bitmasks.
//!
//! A fixed 256-bit mask covering every vCPU a guest (or hardware thread a
//! host) can have in this reproduction. The hpvm profile uses 32 vCPUs and
//! the evaluation host has 160 hardware threads, so 256 bits leaves ample
//! headroom.

/// Number of `u64` words backing the mask.
const WORDS: usize = 4;
/// Maximum number of CPUs representable.
pub const MAX_CPUS: usize = WORDS * 64;

/// A set of CPU indices in `0..MAX_CPUS`.
///
/// # Examples
///
/// ```
/// use vsched_guestos::CpuMask;
///
/// let mut m = CpuMask::empty();
/// m.set(3);
/// m.set(7);
/// assert!(m.contains(3));
/// assert_eq!(m.count(), 2);
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuMask {
    words: [u64; WORDS],
}

impl Default for CpuMask {
    fn default() -> Self {
        Self::empty()
    }
}

impl CpuMask {
    /// The empty set.
    pub const fn empty() -> Self {
        Self { words: [0; WORDS] }
    }

    /// The set `{0, 1, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_CPUS`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_CPUS, "mask size {n} exceeds {MAX_CPUS}");
        let mut m = Self::empty();
        for i in 0..n {
            m.set(i);
        }
        m
    }

    /// A singleton set.
    pub fn single(cpu: usize) -> Self {
        let mut m = Self::empty();
        m.set(cpu);
        m
    }

    /// Builds a mask from an iterator of indices.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut m = Self::empty();
        for cpu in iter {
            m.set(cpu);
        }
        m
    }

    /// Adds `cpu` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `cpu >= MAX_CPUS`.
    pub fn set(&mut self, cpu: usize) {
        assert!(cpu < MAX_CPUS, "cpu {cpu} out of range");
        self.words[cpu / 64] |= 1u64 << (cpu % 64);
    }

    /// Removes `cpu` from the set.
    pub fn clear(&mut self, cpu: usize) {
        if cpu < MAX_CPUS {
            self.words[cpu / 64] &= !(1u64 << (cpu % 64));
        }
    }

    /// Whether `cpu` is in the set.
    pub fn contains(&self, cpu: usize) -> bool {
        cpu < MAX_CPUS && self.words[cpu / 64] & (1u64 << (cpu % 64)) != 0
    }

    /// Number of CPUs in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set intersection.
    pub fn and(&self, other: &CpuMask) -> CpuMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
        out
    }

    /// Set union.
    pub fn or(&self, other: &CpuMask) -> CpuMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
        out
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &CpuMask) -> CpuMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
        out
    }

    /// Whether the two sets intersect.
    pub fn intersects(&self, other: &CpuMask) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Whether `self` is a subset of `other`.
    pub fn subset_of(&self, other: &CpuMask) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// The lowest CPU in the set, if any.
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates the set in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let words = self.words;
        (0..MAX_CPUS).filter(move |&c| words[c / 64] & (1u64 << (c % 64)) != 0)
    }

    /// Iterates the set cyclically starting at `start` (wrapping around),
    /// as Linux's idle-CPU scans do with their rotating cursors.
    pub fn iter_from(&self, start: usize) -> impl Iterator<Item = usize> + '_ {
        let words = self.words;
        (0..MAX_CPUS)
            .map(move |i| (start + i) % MAX_CPUS)
            .filter(move |&c| words[c / 64] & (1u64 << (c % 64)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_contains() {
        let mut m = CpuMask::empty();
        assert!(!m.contains(5));
        m.set(5);
        assert!(m.contains(5));
        m.clear(5);
        assert!(!m.contains(5));
    }

    #[test]
    fn first_n_counts() {
        let m = CpuMask::first_n(100);
        assert_eq!(m.count(), 100);
        assert!(m.contains(0));
        assert!(m.contains(99));
        assert!(!m.contains(100));
    }

    #[test]
    fn boolean_algebra() {
        let a = CpuMask::from_iter([1, 2, 3]);
        let b = CpuMask::from_iter([3, 4]);
        assert_eq!(a.and(&b), CpuMask::single(3));
        assert_eq!(a.or(&b), CpuMask::from_iter([1, 2, 3, 4]));
        assert_eq!(a.minus(&b), CpuMask::from_iter([1, 2]));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&CpuMask::single(9)));
    }

    #[test]
    fn subset_relation() {
        let a = CpuMask::from_iter([1, 2]);
        let b = CpuMask::from_iter([1, 2, 3]);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(CpuMask::empty().subset_of(&a));
    }

    #[test]
    fn first_and_iter_order() {
        let m = CpuMask::from_iter([70, 3, 130]);
        assert_eq!(m.first(), Some(3));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![3, 70, 130]);
    }

    #[test]
    fn cross_word_boundaries() {
        let mut m = CpuMask::empty();
        m.set(63);
        m.set(64);
        m.set(255);
        assert_eq!(m.count(), 3);
        assert!(m.contains(63) && m.contains(64) && m.contains(255));
    }

    #[test]
    #[should_panic]
    fn out_of_range_set_panics() {
        let mut m = CpuMask::empty();
        m.set(MAX_CPUS);
    }

    #[test]
    fn clear_out_of_range_is_noop() {
        let mut m = CpuMask::first_n(4);
        m.clear(9999);
        assert_eq!(m.count(), 4);
    }
}
