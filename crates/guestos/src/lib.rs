//! Guest OS scheduler substrate.
//!
//! This crate implements the *inside-the-VM* half of the vSched reproduction:
//! a faithful model of the Linux Completely Fair Scheduler (CFS) operating on
//! vCPUs, with every mechanism the paper's techniques hook into:
//!
//! * per-vCPU runqueues ordered by virtual runtime, with the standard
//!   nice-to-weight table and the `SCHED_IDLE` policy ([`runqueue`],
//!   [`weight`], [`task`]);
//! * per-entity load tracking (PELT) for task-size classification
//!   ([`pelt`]);
//! * hierarchical schedule domains built from the *perceived* topology —
//!   flat/UMA by default, exactly the inaccurate abstraction the paper
//!   diagnoses, rebuildable at runtime from probed topology ([`domains`]);
//! * wake-up CPU selection and periodic/idle load balancing, including
//!   misfit (active-balance) migration ([`select`], [`balance`]);
//! * a cgroup-cpuset-like mechanism for hiding vCPUs from task placement
//!   ([`cgroup`]), which `rwc` drives;
//! * extension points mirroring the paper's BPF hooks ([`hooks::SchedHooks`])
//!   through which `vsched` installs `bvs` and `ivh` without replacing the
//!   scheduling class.
//!
//! The hypervisor below is abstracted as [`platform::Platform`]; the
//! `hostsim` crate provides the production implementation. Workload logic
//! plugs in through [`workload::Workload`].

pub mod balance;
pub mod cgroup;
pub mod cpumask;
pub mod domains;
pub mod hooks;
pub mod kernel;
pub mod pelt;
pub mod platform;
pub mod runqueue;
pub mod select;
pub mod stats;
pub mod task;
pub mod weight;
pub mod workload;

pub use cgroup::CpuAllow;
pub use cpumask::CpuMask;
pub use domains::{DomainTree, PerceivedTopology};
pub use hooks::SchedHooks;
pub use kernel::{GuestConfig, GuestOs, Kernel, MigrateKind, VcpuId};
pub use pelt::Pelt;
pub use platform::{CommDistance, Platform, RunDelta};
pub use stats::KernelStats;
pub use task::{Policy, SpawnSpec, Task, TaskId, TaskProgram, TaskState};
pub use workload::{TaskAction, Workload};
