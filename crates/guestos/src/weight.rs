//! Nice-to-weight mapping.
//!
//! The same table Linux uses (`sched_prio_to_weight`): each nice step scales
//! CPU share by ≈1.25×, nice 0 is 1024, and `SCHED_IDLE` entities get the
//! fixed minuscule weight 3 so they only consume otherwise-idle cycles —
//! the property `vcap`'s light-phase probers and the paper's best-effort
//! workloads rely on.

/// Weight of a nice-0 task; the unit of load and capacity scaling.
pub const NICE_0_WEIGHT: u64 = 1024;

/// Weight of a `SCHED_IDLE` task (Linux's `WEIGHT_IDLEPRIO`).
pub const IDLE_WEIGHT: u64 = 3;

/// Linux's `sched_prio_to_weight` for nice -20..=19.
const PRIO_TO_WEIGHT: [u64; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

/// Returns the CFS weight for a nice value.
///
/// # Panics
///
/// Panics if `nice` is outside `-20..=19`.
pub fn weight_of_nice(nice: i32) -> u64 {
    assert!((-20..=19).contains(&nice), "nice {nice} out of range");
    PRIO_TO_WEIGHT[(nice + 20) as usize]
}

/// Converts an executed-time delta to a vruntime delta for a given weight:
/// `delta * NICE_0_WEIGHT / weight`, saturating.
pub fn calc_delta_vruntime(delta_ns: u64, weight: u64) -> u64 {
    if weight == 0 {
        return u64::MAX;
    }
    ((delta_ns as u128 * NICE_0_WEIGHT as u128) / weight as u128).min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_zero_is_1024() {
        assert_eq!(weight_of_nice(0), 1024);
    }

    #[test]
    fn table_endpoints() {
        assert_eq!(weight_of_nice(-20), 88761);
        assert_eq!(weight_of_nice(19), 15);
    }

    #[test]
    fn each_step_scales_about_25_percent() {
        for n in -20..19 {
            let ratio = weight_of_nice(n) as f64 / weight_of_nice(n + 1) as f64;
            assert!((1.15..1.40).contains(&ratio), "nice {n} ratio {ratio}");
        }
    }

    #[test]
    fn vruntime_scales_inversely_with_weight() {
        // A nice-0 task accrues vruntime at 1:1.
        assert_eq!(calc_delta_vruntime(1000, NICE_0_WEIGHT), 1000);
        // A heavy task accrues more slowly.
        assert!(calc_delta_vruntime(1000, 88761) < 20);
        // An idle task accrues very fast.
        assert_eq!(calc_delta_vruntime(3, IDLE_WEIGHT), 1024);
    }

    #[test]
    fn zero_weight_saturates() {
        assert_eq!(calc_delta_vruntime(1, 0), u64::MAX);
    }

    #[test]
    #[should_panic]
    fn out_of_range_nice_panics() {
        weight_of_nice(20);
    }
}
