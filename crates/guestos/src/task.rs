//! Tasks: the schedulable entities inside a VM.

use crate::cpumask::CpuMask;
use crate::pelt::Pelt;
use crate::weight::{IDLE_WEIGHT, NICE_0_WEIGHT};
use simcore::SimTime;

/// Identifies a task within one guest. Indexes the kernel's task arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// Scheduling policy of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// `SCHED_NORMAL` (CFS) with an explicit weight; use
    /// [`Policy::nice`] for the standard table.
    Normal {
        /// CFS weight (1024 = nice 0).
        weight: u64,
    },
    /// `SCHED_IDLE`: only runs when nothing else wants the CPU.
    Idle,
}

impl Policy {
    /// CFS policy at the given nice level.
    ///
    /// # Panics
    ///
    /// Panics if `nice` is outside `-20..=19`.
    pub fn nice(nice: i32) -> Policy {
        Policy::Normal {
            weight: crate::weight::weight_of_nice(nice),
        }
    }

    /// The entity's CFS weight.
    pub fn weight(&self) -> u64 {
        match self {
            Policy::Normal { weight } => *weight,
            Policy::Idle => IDLE_WEIGHT,
        }
    }

    /// Whether this is the best-effort `SCHED_IDLE` policy.
    pub fn is_idle(&self) -> bool {
        matches!(self, Policy::Idle)
    }
}

impl Default for Policy {
    fn default() -> Self {
        Policy::Normal {
            weight: NICE_0_WEIGHT,
        }
    }
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Currently selected on a vCPU (note: the vCPU itself may be preempted
    /// by the host — the *stalled running task* of paper §2.3).
    Running(crate::kernel::VcpuId),
    /// Waiting on a runqueue.
    Runnable(crate::kernel::VcpuId),
    /// Sleeping on a timer (will be woken by the platform).
    Sleeping,
    /// Blocked on a workload-level event (barrier, lock, queue).
    Blocked,
    /// Exited; the arena slot is retired.
    Dead,
}

impl TaskState {
    /// The vCPU this task occupies, if on one.
    pub fn vcpu(&self) -> Option<crate::kernel::VcpuId> {
        match self {
            TaskState::Running(v) | TaskState::Runnable(v) => Some(*v),
            _ => None,
        }
    }
}

/// Who supplies the task's behaviour when a CPU burst completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskProgram {
    /// The VM's [`crate::workload::Workload`] decides the next action.
    Workload,
    /// A built-in infinite spin loop (used by `vcap`/`vtop` prober threads);
    /// bursts are refilled internally and never consult the workload.
    BuiltinSpin,
}

/// Parameters for creating a task.
#[derive(Debug, Clone)]
pub struct SpawnSpec {
    /// Scheduling policy.
    pub policy: Policy,
    /// Allowed vCPUs.
    pub affinity: CpuMask,
    /// Behaviour source.
    pub program: TaskProgram,
    /// Marks small latency-sensitive tasks (the paper identifies these with
    /// PELT plus user-space tools such as latency-nice / uclamp).
    pub latency_sensitive: bool,
    /// Communication group for locality modelling (tasks in a group exchange
    /// data; cross-LLC placement costs IPIs and work-rate penalty).
    pub comm_group: Option<u32>,
    /// Whether the task loses cache warmth across vCPU inactive periods.
    pub cache_sensitive: bool,
    /// May be placed on vCPUs banned by cgroup (only `vtop` probers).
    pub bypass_cgroup: bool,
}

impl SpawnSpec {
    /// A default CFS task allowed everywhere.
    pub fn normal(nr_vcpus: usize) -> Self {
        Self {
            policy: Policy::default(),
            affinity: CpuMask::first_n(nr_vcpus),
            program: TaskProgram::Workload,
            latency_sensitive: false,
            comm_group: None,
            cache_sensitive: false,
            bypass_cgroup: false,
        }
    }

    /// Sets the policy.
    pub fn policy(mut self, p: Policy) -> Self {
        self.policy = p;
        self
    }

    /// Restricts the task to the given vCPUs.
    pub fn affinity(mut self, m: CpuMask) -> Self {
        self.affinity = m;
        self
    }

    /// Marks the task latency-sensitive.
    pub fn latency_sensitive(mut self) -> Self {
        self.latency_sensitive = true;
        self
    }

    /// Assigns a communication group.
    pub fn comm_group(mut self, g: u32) -> Self {
        self.comm_group = Some(g);
        self
    }

    /// Marks the task cache-sensitive.
    pub fn cache_sensitive(mut self) -> Self {
        self.cache_sensitive = true;
        self
    }
}

/// A schedulable entity.
#[derive(Debug, Clone)]
pub struct Task {
    /// This task's id.
    pub id: TaskId,
    /// Scheduling policy.
    pub policy: Policy,
    /// Lifecycle state.
    pub state: TaskState,
    /// Allowed vCPUs.
    pub affinity: CpuMask,
    /// Behaviour source.
    pub program: TaskProgram,
    /// CFS virtual runtime (ns, weight-scaled).
    pub vruntime: u64,
    /// PELT tracking.
    pub pelt: Pelt,
    /// Remaining work of the current CPU burst, in capacity-ns (1024 ·
    /// seconds-on-a-reference-core per 10^9 units).
    pub remaining: f64,
    /// Latency-sensitivity hint.
    pub latency_sensitive: bool,
    /// Communication group.
    pub comm_group: Option<u32>,
    /// Cache-sensitivity flag.
    pub cache_sensitive: bool,
    /// cgroup bypass flag (vtop probers).
    pub bypass_cgroup: bool,
    /// When the task was last enqueued (for runqueue-latency accounting).
    pub enqueued_at: SimTime,
    /// Whether the current enqueue was a wakeup (vs a preemption), so queue
    /// latency is recorded once per wakeup.
    pub wakeup_pending: bool,
    /// Runqueue latency of the most recent wakeup (ns).
    pub last_queue_ns: u64,
    /// When the task last became current on a vCPU.
    pub run_started: SimTime,
    /// The vCPU the task last ran on (for wake placement affinity).
    pub last_vcpu: crate::kernel::VcpuId,
    /// Total guest-visible active execution time (ns).
    pub total_active_ns: u64,
    /// Total work completed (capacity-ns).
    pub total_work: f64,
    /// Number of cross-vCPU migrations.
    pub migrations: u64,
}

impl Task {
    /// Whether the task is currently on a runqueue or running.
    pub fn on_rq(&self) -> bool {
        matches!(self.state, TaskState::Running(_) | TaskState::Runnable(_))
    }

    /// The CFS weight.
    pub fn weight(&self) -> u64 {
        self.policy.weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_weights() {
        assert_eq!(Policy::default().weight(), 1024);
        assert_eq!(Policy::Idle.weight(), 3);
        assert_eq!(Policy::nice(-20).weight(), 88761);
        assert!(Policy::Idle.is_idle());
        assert!(!Policy::default().is_idle());
    }

    #[test]
    fn state_vcpu_accessor() {
        use crate::kernel::VcpuId;
        assert_eq!(TaskState::Running(VcpuId(3)).vcpu(), Some(VcpuId(3)));
        assert_eq!(TaskState::Runnable(VcpuId(1)).vcpu(), Some(VcpuId(1)));
        assert_eq!(TaskState::Sleeping.vcpu(), None);
        assert_eq!(TaskState::Blocked.vcpu(), None);
    }

    #[test]
    fn spawn_spec_builder() {
        let s = SpawnSpec::normal(8)
            .policy(Policy::Idle)
            .latency_sensitive()
            .comm_group(2)
            .cache_sensitive();
        assert!(s.policy.is_idle());
        assert!(s.latency_sensitive);
        assert_eq!(s.comm_group, Some(2));
        assert!(s.cache_sensitive);
        assert_eq!(s.affinity.count(), 8);
    }
}
