//! Property tests: the guest kernel's structural invariants hold under
//! arbitrary sequences of scheduler operations.
//!
//! Invariants checked after every step:
//! * every live task is in exactly one place (one vCPU's `curr`, one
//!   runqueue, or off-queue sleeping/blocked/dead);
//! * runqueue aggregates (`weight_sum`, `nr_normal`, `nr_idle`) match the
//!   queue contents;
//! * `min_vruntime` never decreases;
//! * a vCPU with waiting tasks and no current is never silently abandoned
//!   (the wake path kicked it).
//!
//! Driven by simcore's in-tree `propcheck` harness (deterministic, offline).

use simcore::propcheck::{forall, vec_of};
use simcore::{SimRng, SimTime};
use vsched_guestos::{
    CommDistance, GuestConfig, Kernel, MigrateKind, Platform, Policy, RunDelta, SpawnSpec, TaskId,
    TaskState, VcpuId,
};

/// An always-active platform that advances a synthetic clock and lets tasks
/// "run" with wall-time work accrual.
struct FakePlat {
    now: SimTime,
    running: Vec<Option<(TaskId, SimTime)>>,
}

impl FakePlat {
    fn new(nr: usize) -> Self {
        Self {
            now: SimTime::ZERO,
            running: vec![None; nr],
        }
    }
}

impl Platform for FakePlat {
    fn now(&self) -> SimTime {
        self.now
    }
    fn steal_ns(&self, _v: VcpuId) -> u64 {
        0
    }
    fn vcpu_active(&self, _v: VcpuId) -> bool {
        true
    }
    fn kick(&mut self, _v: VcpuId) {}
    fn vcpu_idle(&mut self, _v: VcpuId) {}
    fn run_task(&mut self, v: VcpuId, t: TaskId, _r: f64, _f: f64, _p: f64) {
        self.running[v.0] = Some((t, self.now));
    }
    fn stop_task(&mut self, v: VcpuId) -> RunDelta {
        match self.running[v.0].take() {
            Some((_, since)) => {
                let wall = self.now.since(since);
                RunDelta {
                    wall_ns: wall,
                    active_ns: wall,
                    work: wall as f64,
                }
            }
            None => RunDelta::default(),
        }
    }
    fn poll_task(&mut self, v: VcpuId) -> RunDelta {
        match self.running[v.0].as_mut() {
            Some((_, since)) => {
                let wall = self.now.since(*since);
                *since = self.now;
                RunDelta {
                    wall_ns: wall,
                    active_ns: wall,
                    work: wall as f64,
                }
            }
            None => RunDelta::default(),
        }
    }
    fn update_factor(&mut self, _v: VcpuId, _f: f64) {}
    fn send_ipi(&mut self, _to: VcpuId) {}
    fn comm_distance(&self, _a: VcpuId, _b: VcpuId) -> CommDistance {
        CommDistance::SameLlc
    }
    fn cacheline_latency_ns(&mut self, _a: VcpuId, _b: VcpuId) -> Option<f64> {
        None
    }
    fn set_timer(&mut self, _token: u64, _at: SimTime) {}
}

/// The randomized operations.
#[derive(Debug, Clone)]
enum Op {
    Spawn { idle_policy: bool },
    Wake { task: usize, vcpu: usize },
    Tick { vcpu: usize },
    Block { task: usize },
    MigrateRunnable { task: usize, to: usize },
    MigrateRunning { from: usize, to: usize },
    Kill { task: usize },
    Ban { vcpu: usize },
    Allow { vcpu: usize },
    Advance { ns: u64 },
}

fn gen_op(rng: &mut SimRng) -> Op {
    match rng.index(10) {
        0 => Op::Spawn {
            idle_policy: rng.chance(0.5),
        },
        1 => Op::Wake {
            task: rng.index(24),
            vcpu: rng.index(4),
        },
        2 => Op::Tick { vcpu: rng.index(4) },
        3 => Op::Block {
            task: rng.index(24),
        },
        4 => Op::MigrateRunnable {
            task: rng.index(24),
            to: rng.index(4),
        },
        5 => Op::MigrateRunning {
            from: rng.index(4),
            to: rng.index(4),
        },
        6 => Op::Kill {
            task: rng.index(24),
        },
        7 => Op::Ban { vcpu: rng.index(4) },
        8 => Op::Allow { vcpu: rng.index(4) },
        _ => Op::Advance {
            ns: rng.range(1, 5_000_000),
        },
    }
}

fn check_invariants(kern: &Kernel, min_floor: &mut [u64]) {
    let nr = kern.cfg.nr_vcpus;
    // 1. Placement uniqueness.
    let mut seen = vec![0u32; kern.tasks.len()];
    for v in 0..nr {
        if let Some(t) = kern.vcpus[v].curr {
            seen[t.0 as usize] += 1;
            assert_eq!(
                kern.task(t).state,
                TaskState::Running(VcpuId(v)),
                "curr task state mismatch"
            );
        }
        for (_, t) in kern.vcpus[v].rq.iter() {
            seen[t.0 as usize] += 1;
            assert_eq!(
                kern.task(t).state,
                TaskState::Runnable(VcpuId(v)),
                "queued task state mismatch"
            );
        }
    }
    for task in &kern.tasks {
        let expected = match task.state {
            TaskState::Running(_) | TaskState::Runnable(_) => 1,
            _ => 0,
        };
        assert_eq!(
            seen[task.id.0 as usize], expected,
            "task {:?} in state {:?} appears {} times",
            task.id, task.state, seen[task.id.0 as usize]
        );
    }
    // 2. Queue aggregates.
    for v in 0..nr {
        let rq = &kern.vcpus[v].rq;
        let mut weight = 0u64;
        let mut idle = 0usize;
        let mut normal = 0usize;
        for (_, t) in rq.iter() {
            weight += kern.task(t).weight();
            if kern.task(t).policy.is_idle() {
                idle += 1;
            } else {
                normal += 1;
            }
        }
        assert_eq!(rq.weight_sum, weight, "vcpu {v} weight_sum");
        assert_eq!(rq.nr_idle, idle, "vcpu {v} nr_idle");
        assert_eq!(rq.nr_normal, normal, "vcpu {v} nr_normal");
    }
    // 3. min_vruntime monotonic.
    #[allow(clippy::needless_range_loop)]
    for v in 0..nr {
        let m = kern.vcpus[v].rq.min_vruntime;
        assert!(m >= min_floor[v], "vcpu {v} min_vruntime went backwards");
        min_floor[v] = m;
    }
}

#[test]
fn kernel_invariants_hold() {
    let cases = if cfg!(feature = "property-tests") {
        512
    } else {
        64
    };
    forall(0x81, cases, |rng| {
        let ops = vec_of(rng, 1, 120, gen_op);
        let nr = 4;
        let mut kern = Kernel::new(GuestConfig::new(nr), SimTime::ZERO);
        let mut plat = FakePlat::new(nr);
        let mut ids: Vec<TaskId> = Vec::new();
        let mut min_floor = vec![0u64; nr];

        for op in ops {
            match op {
                Op::Spawn { idle_policy } => {
                    if ids.len() < 24 {
                        let mut spec = SpawnSpec::normal(nr);
                        if idle_policy {
                            spec = spec.policy(Policy::Idle);
                        }
                        let t = kern.spawn(plat.now, spec);
                        kern.task_mut(t).remaining = 1e15;
                        ids.push(t);
                    }
                }
                Op::Wake { task, vcpu } => {
                    if let Some(&t) = ids.get(task) {
                        kern.wake_to(&mut plat, t, VcpuId(vcpu), None);
                        // A woken task must be schedulable: if the vCPU has
                        // no current, schedule it.
                        if kern.vcpus[vcpu].curr.is_none() && !kern.vcpus[vcpu].rq.is_empty() {
                            kern.schedule(&mut plat, VcpuId(vcpu));
                        }
                    }
                }
                Op::Tick { vcpu } => kern.tick(&mut plat, VcpuId(vcpu)),
                Op::Block { task } => {
                    if let Some(&t) = ids.get(task) {
                        kern.block_task(&mut plat, t);
                    }
                }
                Op::MigrateRunnable { task, to } => {
                    if let Some(&t) = ids.get(task) {
                        kern.migrate_runnable(&mut plat, t, VcpuId(to), MigrateKind::Balance);
                    }
                }
                Op::MigrateRunning { from, to } => {
                    kern.migrate_running(&mut plat, VcpuId(from), VcpuId(to), MigrateKind::Active);
                }
                Op::Kill { task } => {
                    if let Some(&t) = ids.get(task) {
                        kern.kill_task(&mut plat, t);
                    }
                }
                Op::Ban { vcpu } => kern.cgroup.ban(vcpu),
                Op::Allow { vcpu } => kern.cgroup.allow(vcpu),
                Op::Advance { ns } => plat.now = plat.now.after(ns),
            }
            check_invariants(&kern, &mut min_floor);
        }
    });
}
