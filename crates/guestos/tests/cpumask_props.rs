//! Property tests on the 256-bit CPU mask.
//!
//! Every placement decision — wake selection, domain membership, cgroup
//! restriction — goes through this type; its set algebra and cyclic
//! iteration must be exact.

use proptest::prelude::*;
use std::collections::BTreeSet;
use vsched_guestos::CpuMask;

const MAX: usize = 256;

fn to_set(m: &CpuMask) -> BTreeSet<usize> {
    m.iter().collect()
}

prop_compose! {
    fn cpu_set()(bits in prop::collection::btree_set(0usize..MAX, 0..64)) -> BTreeSet<usize> {
        bits
    }
}

proptest! {
    /// `from_iter` / `iter` round-trip exactly.
    #[test]
    fn iter_roundtrip(s in cpu_set()) {
        let m = CpuMask::from_iter(s.iter().copied());
        prop_assert_eq!(to_set(&m), s.clone());
        prop_assert_eq!(m.count(), s.len());
        prop_assert_eq!(m.is_empty(), s.is_empty());
        prop_assert_eq!(m.first(), s.iter().next().copied());
    }

    /// and/or/minus agree with BTreeSet set algebra.
    #[test]
    fn set_algebra_matches(a in cpu_set(), b in cpu_set()) {
        let ma = CpuMask::from_iter(a.iter().copied());
        let mb = CpuMask::from_iter(b.iter().copied());
        let inter: BTreeSet<_> = a.intersection(&b).copied().collect();
        let union: BTreeSet<_> = a.union(&b).copied().collect();
        let diff: BTreeSet<_> = a.difference(&b).copied().collect();
        prop_assert_eq!(to_set(&ma.and(&mb)), inter.clone());
        prop_assert_eq!(to_set(&ma.or(&mb)), union);
        prop_assert_eq!(to_set(&ma.minus(&mb)), diff);
        prop_assert_eq!(ma.intersects(&mb), !inter.is_empty());
        prop_assert_eq!(ma.subset_of(&mb), a.is_subset(&b));
    }

    /// set/clear/contains behave like single-bit mutations.
    #[test]
    fn set_clear_contains(s in cpu_set(), cpu in 0usize..MAX) {
        let mut m = CpuMask::from_iter(s.iter().copied());
        m.set(cpu);
        prop_assert!(m.contains(cpu));
        prop_assert_eq!(m.count(), s.len() + usize::from(!s.contains(&cpu)));
        m.clear(cpu);
        prop_assert!(!m.contains(cpu));
        let mut expect = s.clone();
        expect.remove(&cpu);
        prop_assert_eq!(to_set(&m), expect);
    }

    /// `iter_from(start)` visits every set bit exactly once, beginning with
    /// the first set bit at or after `start`, wrapping cyclically.
    #[test]
    fn iter_from_is_a_cyclic_permutation(s in cpu_set(), start in 0usize..MAX) {
        let m = CpuMask::from_iter(s.iter().copied());
        let visited: Vec<usize> = m.iter_from(start).collect();
        // Exactly the set, once each.
        let as_set: BTreeSet<usize> = visited.iter().copied().collect();
        prop_assert_eq!(visited.len(), s.len(), "duplicates or misses");
        prop_assert_eq!(as_set, s.clone());
        // Ordering: all >= start first (ascending), then the wrap (ascending).
        if let Some(split) = visited.iter().position(|&c| c < start) {
            let (hi, lo) = visited.split_at(split);
            prop_assert!(hi.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(lo.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(hi.iter().all(|&c| c >= start));
            prop_assert!(lo.iter().all(|&c| c < start));
        } else {
            prop_assert!(visited.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// `first_n` is the interval `[0, n)`.
    #[test]
    fn first_n_is_prefix(n in 0usize..MAX) {
        let m = CpuMask::first_n(n);
        prop_assert_eq!(m.count(), n);
        for c in 0..MAX {
            prop_assert_eq!(m.contains(c), c < n);
        }
    }

    /// De Morgan-ish sanity: `a.minus(b)` and `a.and(b)` partition `a`.
    #[test]
    fn minus_and_partition(a in cpu_set(), b in cpu_set()) {
        let ma = CpuMask::from_iter(a.iter().copied());
        let mb = CpuMask::from_iter(b.iter().copied());
        let kept = ma.and(&mb);
        let dropped = ma.minus(&mb);
        prop_assert!(!kept.intersects(&dropped));
        prop_assert_eq!(to_set(&kept.or(&dropped)), a);
    }
}
