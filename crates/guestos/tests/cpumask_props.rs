//! Property tests on the 256-bit CPU mask.
//!
//! Every placement decision — wake selection, domain membership, cgroup
//! restriction — goes through this type; its set algebra and cyclic
//! iteration must be exact. Driven by simcore's in-tree `propcheck`
//! harness (deterministic, offline).

use simcore::propcheck::forall;
use simcore::SimRng;
use std::collections::BTreeSet;
use vsched_guestos::CpuMask;

const MAX: usize = 256;

fn cases(base: usize) -> usize {
    if cfg!(feature = "property-tests") {
        base * 8
    } else {
        base
    }
}

fn to_set(m: &CpuMask) -> BTreeSet<usize> {
    m.iter().collect()
}

fn cpu_set(rng: &mut SimRng) -> BTreeSet<usize> {
    let n = rng.index(64);
    (0..n).map(|_| rng.index(MAX)).collect()
}

/// `from_iter` / `iter` round-trip exactly.
#[test]
fn iter_roundtrip() {
    forall(0x71, cases(64), |rng| {
        let s = cpu_set(rng);
        let m = CpuMask::from_iter(s.iter().copied());
        assert_eq!(to_set(&m), s);
        assert_eq!(m.count(), s.len());
        assert_eq!(m.is_empty(), s.is_empty());
        assert_eq!(m.first(), s.iter().next().copied());
    });
}

/// and/or/minus agree with BTreeSet set algebra.
#[test]
fn set_algebra_matches() {
    forall(0x72, cases(64), |rng| {
        let a = cpu_set(rng);
        let b = cpu_set(rng);
        let ma = CpuMask::from_iter(a.iter().copied());
        let mb = CpuMask::from_iter(b.iter().copied());
        let inter: BTreeSet<_> = a.intersection(&b).copied().collect();
        let union: BTreeSet<_> = a.union(&b).copied().collect();
        let diff: BTreeSet<_> = a.difference(&b).copied().collect();
        assert_eq!(to_set(&ma.and(&mb)), inter);
        assert_eq!(to_set(&ma.or(&mb)), union);
        assert_eq!(to_set(&ma.minus(&mb)), diff);
        assert_eq!(ma.intersects(&mb), !inter.is_empty());
        assert_eq!(ma.subset_of(&mb), a.is_subset(&b));
    });
}

/// set/clear/contains behave like single-bit mutations.
#[test]
fn set_clear_contains() {
    forall(0x73, cases(64), |rng| {
        let s = cpu_set(rng);
        let cpu = rng.index(MAX);
        let mut m = CpuMask::from_iter(s.iter().copied());
        m.set(cpu);
        assert!(m.contains(cpu));
        assert_eq!(m.count(), s.len() + usize::from(!s.contains(&cpu)));
        m.clear(cpu);
        assert!(!m.contains(cpu));
        let mut expect = s.clone();
        expect.remove(&cpu);
        assert_eq!(to_set(&m), expect);
    });
}

/// `iter_from(start)` visits every set bit exactly once, beginning with
/// the first set bit at or after `start`, wrapping cyclically.
#[test]
fn iter_from_is_a_cyclic_permutation() {
    forall(0x74, cases(64), |rng| {
        let s = cpu_set(rng);
        let start = rng.index(MAX);
        let m = CpuMask::from_iter(s.iter().copied());
        let visited: Vec<usize> = m.iter_from(start).collect();
        // Exactly the set, once each.
        let as_set: BTreeSet<usize> = visited.iter().copied().collect();
        assert_eq!(visited.len(), s.len(), "duplicates or misses");
        assert_eq!(as_set, s);
        // Ordering: all >= start first (ascending), then the wrap (ascending).
        if let Some(split) = visited.iter().position(|&c| c < start) {
            let (hi, lo) = visited.split_at(split);
            assert!(hi.windows(2).all(|w| w[0] < w[1]));
            assert!(lo.windows(2).all(|w| w[0] < w[1]));
            assert!(hi.iter().all(|&c| c >= start));
            assert!(lo.iter().all(|&c| c < start));
        } else {
            assert!(visited.windows(2).all(|w| w[0] < w[1]));
        }
    });
}

/// `first_n` is the interval `[0, n)`.
#[test]
fn first_n_is_prefix() {
    forall(0x75, cases(64), |rng| {
        let n = rng.index(MAX + 1);
        let m = CpuMask::first_n(n);
        assert_eq!(m.count(), n);
        for c in 0..MAX {
            assert_eq!(m.contains(c), c < n);
        }
    });
}

/// De Morgan-ish sanity: `a.minus(b)` and `a.and(b)` partition `a`.
#[test]
fn minus_and_partition() {
    forall(0x76, cases(64), |rng| {
        let a = cpu_set(rng);
        let b = cpu_set(rng);
        let ma = CpuMask::from_iter(a.iter().copied());
        let mb = CpuMask::from_iter(b.iter().copied());
        let kept = ma.and(&mb);
        let dropped = ma.minus(&mb);
        assert!(!kept.intersects(&dropped));
        assert_eq!(to_set(&kept.or(&dropped)), a);
    });
}
