//! Typed prober errors.
//!
//! The vProbers run against a host that may lie, churn, or take vCPUs away
//! mid-probe; conditions that used to be `unwrap()`/`expect()` panics are
//! recoverable states of the environment, not programming errors. Every
//! prober entry point reachable from `Machine::run` returns a
//! [`ProbeError`] instead of panicking; callers fall back to the last good
//! estimate (or the vanilla-CFS default) and report the error to the
//! resilience layer, which may enter degraded mode.

use std::fmt;
use trace::ProbeKind;

/// A recoverable prober failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeError {
    /// A sampling window closed with no usable sample (e.g. every vCPU
    /// skipped or offline); previous estimates stay in force.
    NoSamples(ProbeKind),
    /// Prober-internal state was inconsistent with the world (a finished
    /// session without an outcome, an unresolved socket, an empty stacking
    /// group). The probe pass is aborted and its results discarded.
    Inconsistent(ProbeKind, &'static str),
}

impl ProbeError {
    /// Which prober failed.
    pub fn probe(&self) -> ProbeKind {
        match self {
            ProbeError::NoSamples(p) | ProbeError::Inconsistent(p, _) => *p,
        }
    }
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::NoSamples(p) => write!(f, "{p:?}: window produced no samples"),
            ProbeError::Inconsistent(p, what) => write!(f, "{p:?}: inconsistent state: {what}"),
        }
    }
}
