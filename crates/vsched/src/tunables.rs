//! vSched tunables.
//!
//! [`Tunables::paper`] reproduces Table 1 of the paper exactly; the extra
//! fields below the table are constants the paper mentions in prose (e.g.
//! the 2 ms ivh threshold "aligned with the scheduler tick", the 10× rwc
//! straggler criterion) or thresholds any implementation needs but the
//! paper leaves to the artifact.

use simcore::time::{MS, SEC, US};

/// All vSched knobs, with the paper's chosen values as defaults.
#[derive(Debug, Clone)]
pub struct Tunables {
    // ------ Table 1 ------
    /// vcap sampling period (Table 1: 100 ms).
    pub vcap_sampling_period_ns: u64,
    /// vcap light sampling frequency (Table 1: every 1 second).
    pub vcap_light_every_ns: u64,
    /// vcap heavy sampling frequency (Table 1: every 5 light samplings).
    pub vcap_heavy_every: u32,
    /// vcap EMA decay (Table 1: 50% per 2 periods), as a half-life in
    /// samples.
    pub vcap_ema_half_life: f64,
    /// vtop sampling frequency (Table 1: every 2 seconds).
    pub vtop_period_ns: u64,
    /// vtop targeted cache transfers (Table 1: 500).
    pub vtop_target_transfers: f64,
    /// vtop cache transfer timeout (Table 1: 15000 transfer attempts).
    pub vtop_timeout_attempts: f64,
    /// ivh migration threshold (Table 1: after 2 milliseconds).
    pub ivh_migration_threshold_ns: u64,

    // ------ Constants from prose / implementation thresholds ------
    /// Steal-time jump below this is filtered as noise (vact, §3.1:
    /// "small jumps are filtered out").
    pub vact_steal_jump_ns: u64,
    /// Heartbeat staleness (in ticks) before a vCPU is considered inactive.
    pub vact_stale_ticks: u64,
    /// PELT utilization below which a latency-sensitive task counts as
    /// "small" for bvs.
    pub bvs_small_task_util: f64,
    /// Minimum idle duration for bvs's empty-runqueue path (0 accepts any
    /// idle low-latency vCPU; raise to require prolonged idleness).
    pub bvs_min_idle_ns: u64,
    /// PELT utilization above which ivh considers a task CPU-intensive.
    pub ivh_min_util: f64,
    /// Cooldown between ivh migrations of the same task.
    pub ivh_cooldown_ns: u64,
    /// Pending pre-wake pull requests older than this are dropped.
    pub ivh_pull_timeout_ns: u64,
    /// rwc straggler criterion: capacity below this fraction of the mean
    /// (§3.4: "significantly lower (e.g., 10x lower)").
    pub rwc_straggler_factor: f64,
    /// vtop: latency below this is an SMT sibling (ns).
    pub vtop_smt_threshold_ns: f64,
    /// vtop: latency below this is same-socket; above, cross-socket (ns).
    pub vtop_socket_threshold_ns: f64,
    /// vtop: cost of one failed (spinning) transfer attempt (ns).
    pub vtop_spin_attempt_ns: f64,
    /// vtop: maximum timeout extensions before concluding.
    pub vtop_max_extensions: u8,

    // ------ vcache (the follow-up paper's LLC abstraction) ------
    /// vcache probing period.
    pub vcache_period_ns: u64,
    /// Timed pointer-chase samples taken per window (per LLC domain).
    pub vcache_samples: u32,
    /// Gap between successive samples inside a window.
    pub vcache_sample_gap_ns: u64,
    /// Latency anchor for an LLC hit on a quiet socket (ns).
    pub vcache_hit_ns: f64,
    /// Latency anchor for a fully thrashed socket — a DRAM-ish line
    /// fill (ns).
    pub vcache_miss_ns: f64,
    /// Domain pressure estimates older than this are ignored by
    /// cache-aware bvs (stale abstraction must not steer placement).
    pub vcache_staleness_ns: u64,
    /// Cache-aware bvs accepts a candidate whose domain pressure is
    /// within this margin of the best published pressure. Must match the
    /// trace checker's `CACHE_PICK_MARGIN` law.
    pub vcache_pick_margin: f64,
}

impl Tunables {
    /// The values from Table 1 of the paper.
    pub fn paper() -> Self {
        Self {
            vcap_sampling_period_ns: 100 * MS,
            vcap_light_every_ns: SEC,
            vcap_heavy_every: 5,
            vcap_ema_half_life: 2.0,
            vtop_period_ns: 2 * SEC,
            vtop_target_transfers: 500.0,
            vtop_timeout_attempts: 15_000.0,
            ivh_migration_threshold_ns: 2 * MS,
            vact_steal_jump_ns: 300 * US,
            vact_stale_ticks: 3,
            bvs_small_task_util: 200.0,
            bvs_min_idle_ns: 0,
            ivh_min_util: 400.0,
            ivh_cooldown_ns: 2 * MS,
            ivh_pull_timeout_ns: 20 * MS,
            rwc_straggler_factor: 0.1,
            vtop_smt_threshold_ns: 20.0,
            vtop_socket_threshold_ns: 80.0,
            vtop_spin_attempt_ns: 1_000.0,
            vtop_max_extensions: 3,
            vcache_period_ns: 500 * MS,
            vcache_samples: 8,
            vcache_sample_gap_ns: MS,
            vcache_hit_ns: 48.0,
            vcache_miss_ns: 113.0,
            vcache_staleness_ns: 2 * SEC,
            vcache_pick_margin: 0.15,
        }
    }
}

impl Default for Tunables {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let t = Tunables::paper();
        assert_eq!(t.vcap_sampling_period_ns, 100 * MS);
        assert_eq!(t.vcap_light_every_ns, SEC);
        assert_eq!(t.vcap_heavy_every, 5);
        assert_eq!(t.vcap_ema_half_life, 2.0);
        assert_eq!(t.vtop_period_ns, 2 * SEC);
        assert_eq!(t.vtop_target_transfers, 500.0);
        assert_eq!(t.vtop_timeout_attempts, 15_000.0);
        assert_eq!(t.ivh_migration_threshold_ns, 2 * MS);
    }

    #[test]
    fn thresholds_are_ordered() {
        let t = Tunables::paper();
        assert!(t.vtop_smt_threshold_ns < t.vtop_socket_threshold_ns);
        assert!(t.rwc_straggler_factor < 1.0);
    }
}
