//! `vact`: the vCPU activity prober (paper §3.1).
//!
//! Two mechanisms, both hypervisor-free:
//!
//! * **Heartbeat** — the scheduler-tick hook records a timestamp per tick on
//!   each vCPU. Ticks only fire while a vCPU actually executes, so a stale
//!   heartbeat on a vCPU that *has work* means the host preempted it. This
//!   yields a near-real-time state query without paravirtualization.
//! * **Steal-jump counting** — each tick compares the paravirtual steal
//!   counter against the previous tick; a jump above the noise filter means
//!   the vCPU was just rescheduled after a preemption. A per-vCPU preemption
//!   counter and the window's total steal give the *average inactive
//!   period*, exposed as the new abstraction the paper calls **vCPU
//!   latency**. Average active periods are derived the same way.

use crate::tunables::Tunables;
use guestos::{Kernel, VcpuId};
use simcore::SimTime;

/// Activity estimate for one vCPU, as bvs consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActState {
    /// Heartbeats are fresh; carries the time the vCPU has been active
    /// since its last observed resume (ns).
    Active {
        /// Time since the last inactive→active transition.
        for_ns: u64,
    },
    /// The vCPU has work but its heartbeat is stale: the host preempted it.
    /// Carries the time since the last heartbeat.
    Inactive {
        /// Time since the vCPU was last observed executing.
        for_ns: u64,
    },
    /// The vCPU is guest-idle (no work): staleness is not preemption.
    Idle,
}

/// Per-vCPU activity bookkeeping.
#[derive(Debug, Clone, Copy)]
struct VcpuAct {
    last_heartbeat: SimTime,
    last_steal: u64,
    /// When the current active stretch started (last steal jump or first
    /// heartbeat after staleness).
    active_since: SimTime,
    /// Preemptions observed in the current sampling window.
    window_preemptions: u64,
    /// Steal accumulated in the current sampling window (ns).
    window_steal: u64,
    /// Active time accumulated in the current sampling window (ns).
    window_active: u64,
    /// Heartbeats seen in the current sampling window.
    window_ticks: u64,
    last_window_end_steal: u64,
    /// Published vCPU latency: average inactive period (ns).
    latency_ns: u64,
    /// Published average active period (ns).
    active_period_ns: u64,
}

/// The activity prober.
pub struct Vact {
    per_vcpu: Vec<VcpuAct>,
    tick_ns: u64,
    stale_ticks: u64,
    steal_jump_ns: u64,
    /// Median of published vCPU latencies.
    pub median_latency_ns: u64,
}

impl Vact {
    /// Creates the prober for `nr_vcpus` vCPUs.
    pub fn new(nr_vcpus: usize, tick_ns: u64, tun: &Tunables, now: SimTime) -> Self {
        Self {
            per_vcpu: vec![
                VcpuAct {
                    last_heartbeat: now,
                    last_steal: 0,
                    active_since: now,
                    window_preemptions: 0,
                    window_steal: 0,
                    window_active: 0,
                    window_ticks: 0,
                    last_window_end_steal: 0,
                    latency_ns: 0,
                    active_period_ns: 0,
                };
                nr_vcpus
            ],
            tick_ns,
            stale_ticks: tun.vact_stale_ticks,
            steal_jump_ns: tun.vact_steal_jump_ns,
            median_latency_ns: 0,
        }
    }

    /// Scheduler-tick instrumentation: heartbeat + steal-jump detection.
    pub fn on_tick(&mut self, v: VcpuId, now: SimTime, steal_ns: u64) {
        let a = &mut self.per_vcpu[v.0];
        let gap = now.since(a.last_heartbeat);
        let steal_delta = steal_ns.saturating_sub(a.last_steal);
        if steal_delta >= self.steal_jump_ns {
            // The vCPU was preempted and has just been rescheduled.
            a.window_preemptions += 1;
            a.window_steal += steal_delta;
            a.active_since = now;
        } else if gap > self.stale_ticks * self.tick_ns {
            // Heartbeat resumed after guest-idle: a fresh active stretch,
            // but not a preemption.
            a.active_since = now;
        } else {
            a.window_active += gap;
        }
        a.last_steal = steal_ns;
        a.last_heartbeat = now;
        a.window_ticks += 1;
    }

    /// State query (the paper's new kernel function). `has_work` and
    /// `queue steal` come from the kernel/platform; staleness without work
    /// is idleness, not preemption.
    pub fn state(&self, v: VcpuId, now: SimTime, has_work: bool) -> ActState {
        let a = &self.per_vcpu[v.0];
        let gap = now.since(a.last_heartbeat);
        if gap > self.stale_ticks * self.tick_ns {
            if has_work {
                ActState::Inactive { for_ns: gap }
            } else {
                ActState::Idle
            }
        } else {
            ActState::Active {
                for_ns: now.since(a.active_since),
            }
        }
    }

    /// Published vCPU latency (average inactive period) of a vCPU.
    pub fn latency_ns(&self, v: VcpuId) -> u64 {
        self.per_vcpu[v.0].latency_ns
    }

    /// Published average active period of a vCPU.
    pub fn active_period_ns(&self, v: VcpuId) -> u64 {
        self.per_vcpu[v.0].active_period_ns
    }

    /// Closes a sampling window (called at the end of each vcap period):
    /// publishes latency = window steal / preemptions, refreshes the median.
    pub fn close_window(&mut self, kern: &Kernel, now: SimTime) {
        let _ = (kern, now);
        for a in self.per_vcpu.iter_mut() {
            if let Some(lat) = a.window_steal.checked_div(a.window_preemptions) {
                a.latency_ns = lat;
                a.active_period_ns = a.window_active / a.window_preemptions.max(1);
            } else if a.last_steal == a.last_window_end_steal && a.window_ticks >= 10 {
                // The vCPU demonstrably executed through the window without
                // any steal: it is currently dedicated. A window without
                // heartbeats carries no information and keeps the estimate.
                a.latency_ns = 0;
                a.active_period_ns = u64::MAX;
            }
            // Windows with steal but no detected jump also keep the
            // previous estimate (the vCPU may have been inactive the whole
            // window).
            a.last_window_end_steal = a.last_steal;
            a.window_preemptions = 0;
            a.window_steal = 0;
            a.window_active = 0;
            a.window_ticks = 0;
        }
        let mut lats: Vec<u64> = self.per_vcpu.iter().map(|a| a.latency_ns).collect();
        lats.sort_unstable();
        // Lower middle: with a half/half latency split the median must fall
        // in the *low-latency* class so bvs's `lat <= median` test selects
        // it.
        self.median_latency_ns = lats[(lats.len() - 1) / 2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::GuestConfig;
    use simcore::time::MS;

    fn mk(n: usize) -> (Vact, Kernel) {
        let tun = Tunables::paper();
        (
            Vact::new(n, MS, &tun, SimTime::ZERO),
            Kernel::new(GuestConfig::new(n), SimTime::ZERO),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn fresh_heartbeat_reports_active() {
        let (mut vact, _k) = mk(1);
        vact.on_tick(VcpuId(0), t(1), 0);
        vact.on_tick(VcpuId(0), t(2), 0);
        match vact.state(VcpuId(0), t(3), true) {
            ActState::Active { .. } => {}
            other => panic!("expected Active, got {other:?}"),
        }
    }

    #[test]
    fn stale_heartbeat_with_work_is_inactive() {
        let (mut vact, _k) = mk(1);
        vact.on_tick(VcpuId(0), t(1), 0);
        match vact.state(VcpuId(0), t(20), true) {
            ActState::Inactive { for_ns } => assert_eq!(for_ns, 19 * MS),
            other => panic!("expected Inactive, got {other:?}"),
        }
    }

    #[test]
    fn stale_heartbeat_without_work_is_idle() {
        let (mut vact, _k) = mk(1);
        vact.on_tick(VcpuId(0), t(1), 0);
        assert_eq!(vact.state(VcpuId(0), t(20), false), ActState::Idle);
    }

    #[test]
    fn steal_jumps_count_preemptions_and_set_latency() {
        let (mut vact, k) = mk(1);
        // Pattern: 5 ms active, then a 5 ms steal jump, repeated 5 times.
        let mut steal = 0u64;
        let mut clock = 0u64;
        for _ in 0..5 {
            for _ in 0..5 {
                clock += 1;
                vact.on_tick(VcpuId(0), t(clock), steal);
            }
            steal += 5 * MS;
            clock += 6; // the vCPU was off-core; next tick arrives late
            vact.on_tick(VcpuId(0), t(clock), steal);
        }
        vact.close_window(&k, t(clock));
        let lat = vact.latency_ns(VcpuId(0));
        assert_eq!(lat, 5 * MS, "latency {lat}");
        assert!(vact.active_period_ns(VcpuId(0)) >= 4 * MS);
    }

    #[test]
    fn small_steal_jumps_are_filtered() {
        let (mut vact, k) = mk(1);
        let mut steal = 0u64;
        for i in 1..=100u64 {
            steal += 100_000; // 0.1 ms per tick: under the 0.3 ms filter
            vact.on_tick(VcpuId(0), t(i), steal);
        }
        vact.close_window(&k, t(100));
        // Window had steal but no qualified jumps: previous (zero… but
        // steal changed) estimate is kept — latency stays at initial 0 and
        // no preemptions were counted.
        assert_eq!(vact.latency_ns(VcpuId(0)), 0);
    }

    #[test]
    fn dedicated_vcpu_publishes_zero_latency() {
        let (mut vact, k) = mk(1);
        for i in 1..=50u64 {
            vact.on_tick(VcpuId(0), t(i), 0);
        }
        vact.close_window(&k, t(50));
        assert_eq!(vact.latency_ns(VcpuId(0)), 0);
        assert_eq!(vact.active_period_ns(VcpuId(0)), u64::MAX);
    }

    #[test]
    fn median_latency_is_published() {
        let (mut vact, k) = mk(3);
        let mut clock = 0;
        // vCPU 0: dedicated. vCPU 1: 2 ms inactive periods. vCPU 2: 8 ms.
        for round in 0..10 {
            clock = round * 20 + 1;
            vact.on_tick(VcpuId(0), t(clock), 0);
            vact.on_tick(VcpuId(1), t(clock), (round + 1) * 2 * MS);
            vact.on_tick(VcpuId(2), t(clock), (round + 1) * 8 * MS);
        }
        vact.close_window(&k, t(clock));
        assert_eq!(vact.latency_ns(VcpuId(1)), 2 * MS);
        assert_eq!(vact.latency_ns(VcpuId(2)), 8 * MS);
        assert_eq!(vact.median_latency_ns, 2 * MS);
    }

    #[test]
    fn active_since_resets_on_preemption() {
        let (mut vact, _k) = mk(1);
        vact.on_tick(VcpuId(0), t(1), 0);
        vact.on_tick(VcpuId(0), t(2), 0);
        // Preemption: big steal jump at t=10.
        vact.on_tick(VcpuId(0), t(10), 5 * MS);
        match vact.state(VcpuId(0), t(11), true) {
            ActState::Active { for_ns } => assert_eq!(for_ns, MS),
            other => panic!("expected Active, got {other:?}"),
        }
    }
}
