//! `ivh`: intra-VM harvesting (paper §3.3).
//!
//! Proactively migrates a CPU-intensive running task off a
//! soon-to-be-inactive vCPU onto an unused vCPU where it keeps making
//! progress — harvesting cycles that would otherwise be wasted while the
//! task is stalled.
//!
//! The migration is *activity-aware*: because migration delay (extended
//! runqueue latency on the target) can eat the benefit, ivh **pre-wakes**
//! the target vCPU and only completes the migration when both source and
//! target are active. The three steps of Figure 9:
//!
//! 1. the source finds a target and sends it an interrupt (kick);
//! 2. when the target becomes active it issues the pull request;
//! 3. the stopper-thread migration detaches the running task and attaches
//!    it to the target's runqueue.
//!
//! If the pull arrives after the source has already been preempted (the
//! task already stalled), the migration is abandoned — there is no benefit.
//! The activity-unaware ablation (Table 4) migrates directly instead.

use crate::tunables::Tunables;
use crate::vact::{ActState, Vact};
use guestos::{Kernel, MigrateKind, Platform, TaskId, VcpuId};
use simcore::SimTime;
use trace::{EventKind, IvhPhase};

/// Builds the trace payload for one ivh pull phase.
fn pull_event(task: TaskId, src: VcpuId, target: VcpuId, phase: IvhPhase) -> EventKind {
    EventKind::IvhPull {
        task: task.0,
        src: src.0 as u16,
        target: target.0 as u16,
        phase,
    }
}

/// A pre-wake pull request pending on a target vCPU.
#[derive(Debug, Clone, Copy)]
struct Pending {
    src: VcpuId,
    task: TaskId,
    initiated: SimTime,
}

/// The harvesting engine.
pub struct Ivh {
    /// Pending pull per target vCPU.
    pending: Vec<Option<Pending>>,
    /// Last ivh migration per task id (cooldown), sparse map.
    last_migration: Vec<(TaskId, SimTime)>,
    /// Whether pre-waking is enabled (false = activity-unaware ablation).
    pub prewake: bool,
}

impl Ivh {
    /// Creates the engine for `nr_vcpus` vCPUs.
    pub fn new(nr_vcpus: usize, prewake: bool) -> Self {
        Self {
            pending: vec![None; nr_vcpus],
            last_migration: Vec::new(),
            prewake,
        }
    }

    fn in_cooldown(&self, t: TaskId, now: SimTime, cooldown: u64) -> bool {
        self.last_migration
            .iter()
            .any(|&(id, at)| id == t && now.since(at) < cooldown)
    }

    fn note_migration(&mut self, t: TaskId, now: SimTime) {
        self.last_migration.retain(|&(id, _)| id != t);
        self.last_migration.push((t, now));
        if self.last_migration.len() > 256 {
            self.last_migration.remove(0);
        }
    }

    /// Scheduler-tick hook on vCPU `v`: detect a stalling candidate and
    /// initiate harvesting.
    pub fn on_tick(
        &mut self,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
        vact: &Vact,
        tun: &Tunables,
        v: VcpuId,
    ) {
        let now = plat.now();
        let Some(curr) = kern.vcpus[v.0].curr else {
            return;
        };
        // Only CPU-intensive tasks that have run a minimum duration (2 ms)
        // on a vCPU that actually has inactive periods.
        let task = kern.task(curr);
        if task.policy.is_idle()
            || task.pelt.util() < tun.ivh_min_util
            || now.since(task.run_started) < tun.ivh_migration_threshold_ns
            || vact.latency_ns(v) == 0
        {
            return;
        }
        // Soon-to-be-inactive: the current active stretch approaches the
        // average active period.
        let avg_active = vact.active_period_ns(v);
        if avg_active == u64::MAX {
            return;
        }
        match vact.state(v, now, true) {
            ActState::Active { for_ns } => {
                if for_ns + 2 * kern.cfg.tick_ns < avg_active {
                    return; // plenty of active time left
                }
            }
            _ => return,
        }
        if self.in_cooldown(curr, now, tun.ivh_cooldown_ns) {
            return;
        }
        let Some(target) = self.find_target(kern, plat, vact, tun, curr, v) else {
            return;
        };
        kern.stats.ivh_attempts.inc();
        kern.trace
            .emit(now, pull_event(curr, v, target, IvhPhase::Attempt));
        if !self.prewake {
            // Activity-unaware ablation: migrate immediately, whatever the
            // target's state.
            kern.migrate_running(plat, v, target, MigrateKind::Ivh);
            kern.stats.ivh_completed.inc();
            kern.trace
                .emit(now, pull_event(curr, v, target, IvhPhase::Complete));
            self.note_migration(curr, now);
            return;
        }
        let target_active = matches!(vact.state(target, now, true), ActState::Active { .. })
            && kern.vcpus[target.0].curr.is_some();
        if target_active {
            // Target is already active (running best-effort work): the
            // pull completes with no delay.
            self.complete(kern, plat, v, target, curr, now);
            return;
        }
        // Step 1: pre-wake the target and leave a pull request.
        self.pending[target.0] = Some(Pending {
            src: v,
            task: curr,
            initiated: now,
        });
        plat.send_ipi(target);
    }

    /// Removes and returns pulls that have been pending longer than
    /// `timeout_ns`: `(target, src, task, waited_ns)`. The resilience
    /// watchdog abandons these — a target that never started (offlined,
    /// crushed, or re-pinned away) would otherwise hold its pull slot
    /// forever and block future harvesting toward that vCPU.
    pub fn take_stale_pulls(
        &mut self,
        now: SimTime,
        timeout_ns: u64,
    ) -> Vec<(VcpuId, VcpuId, TaskId, u64)> {
        self.take_pulls_if(|p| now.since(p.initiated) > timeout_ns, now)
    }

    /// Removes and returns every pending pull (degraded-mode entry
    /// abandons all in-flight harvesting).
    pub fn take_all_pulls(&mut self, now: SimTime) -> Vec<(VcpuId, VcpuId, TaskId, u64)> {
        self.take_pulls_if(|_| true, now)
    }

    fn take_pulls_if(
        &mut self,
        cond: impl Fn(&Pending) -> bool,
        now: SimTime,
    ) -> Vec<(VcpuId, VcpuId, TaskId, u64)> {
        let mut out = Vec::new();
        for (target, slot) in self.pending.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(&cond) {
                if let Some(p) = slot.take() {
                    out.push((VcpuId(target), p.src, p.task, now.since(p.initiated)));
                }
            }
        }
        out
    }

    /// vCPU-start hook: the pre-woken target issues its pull request
    /// (steps 2–3 of Figure 9).
    pub fn on_vcpu_start(
        &mut self,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
        vact: &Vact,
        tun: &Tunables,
        v: VcpuId,
    ) {
        let Some(p) = self.pending[v.0].take() else {
            return;
        };
        let now = plat.now();
        if now.since(p.initiated) > tun.ivh_pull_timeout_ns {
            kern.trace
                .emit(now, pull_event(p.task, p.src, v, IvhPhase::Abandon));
            return; // stale request
        }
        // The pull only helps if the task is still running on an active
        // source (judged by the source's heartbeat); otherwise the task has
        // already stalled — abandon (§3.3).
        let src_active = matches!(vact.state(p.src, now, true), ActState::Active { .. });
        if kern.vcpus[p.src.0].curr != Some(p.task) || !src_active {
            kern.stats.ivh_abandoned.inc();
            kern.trace
                .emit(now, pull_event(p.task, p.src, v, IvhPhase::Abandon));
            return;
        }
        self.complete(kern, plat, p.src, v, p.task, now);
    }

    fn complete(
        &mut self,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
        src: VcpuId,
        target: VcpuId,
        task: TaskId,
        now: SimTime,
    ) {
        if kern
            .migrate_running(plat, src, target, MigrateKind::Ivh)
            .is_some()
        {
            kern.stats.ivh_completed.inc();
            kern.trace
                .emit(now, pull_event(task, src, target, IvhPhase::Complete));
            self.note_migration(task, now);
            // If the target currently runs a best-effort task, preempt it
            // so the harvested task starts immediately.
            if let Some(curr) = kern.vcpus[target.0].curr {
                if kern.task(curr).policy.is_idle() {
                    kern.resched(plat, target);
                }
            }
        } else {
            // Nothing moved (the source lost its task in the meantime);
            // resolve the attempt so every pull has exactly one outcome.
            kern.trace
                .emit(now, pull_event(task, src, target, IvhPhase::Abandon));
        }
    }

    /// bvs-like target search: an unused vCPU where the task can continue
    /// quickly — idle, or occupied only by `SCHED_IDLE` tasks; prefer
    /// active (or soon-active) targets.
    fn find_target(
        &self,
        kern: &Kernel,
        plat: &mut dyn Platform,
        vact: &Vact,
        tun: &Tunables,
        t: TaskId,
        src: VcpuId,
    ) -> Option<VcpuId> {
        let now = plat.now();
        let allowed = kern.placement_mask(t);
        let mut fallback: Option<VcpuId> = None;
        for c in allowed.iter() {
            let v = VcpuId(c);
            if v == src {
                continue;
            }
            if self.pending[c].is_some() {
                continue; // already targeted by another migration
            }
            let d = &kern.vcpus[c];
            let only_idle_policy = match d.curr {
                Some(curr) => kern.task(curr).policy.is_idle() && d.rq.nr_normal == 0,
                None => d.rq.is_empty(),
            };
            if !only_idle_policy {
                continue;
            }
            // Ideal: an active target (pull completes with no delay).
            let active = matches!(vact.state(v, now, true), ActState::Active { .. });
            if active && d.curr.is_some() {
                return Some(v);
            }
            // Acceptable: long-inactive, low-latency (likely active soon),
            // or simply idle (pre-wake it).
            let lat = vact.latency_ns(v);
            if fallback.is_none() && lat <= vact.median_latency_ns.max(tun.vact_steal_jump_ns) {
                fallback = Some(v);
            }
        }
        fallback
    }
}
