//! `rwc`: relaxed work conservation (paper §3.4).
//!
//! Work conservation — "no task waits while any CPU idles" — is a design
//! invariant for physical CPUs but harmful for problematic vCPUs. rwc
//! intentionally hides them from task placement via the cgroup mechanism:
//!
//! * **Straggler vCPUs** (probed capacity far below the mean, 10× by
//!   default) are restricted to best-effort (`SCHED_IDLE`) tasks only, so
//!   `vcap`'s light sampling keeps probing them and detects recovery.
//! * **Stacked vCPUs**: only one vCPU of each stacking group stays
//!   placeable; the rest are banned outright (no tasks at all, not even
//!   best-effort or vcap probers — only `vtop`'s cgroup-bypassing probers
//!   may touch them) to prevent expensive vCPU switches, LHP, and priority
//!   inversion.
//!
//! When a ban lands on a vCPU that currently holds tasks, they are
//! evacuated through the regular CFS selection path.

use crate::error::ProbeError;
use crate::tunables::Tunables;
use crate::vcap::Vcap;
use guestos::{Kernel, MigrateKind, Platform, VcpuId};
use trace::ProbeKind;

/// The relaxed-work-conservation policy engine.
pub struct Rwc {
    nr_vcpus: usize,
    /// Currently restricted-to-idle (straggler) vCPUs.
    pub stragglers: Vec<bool>,
    /// Currently fully banned (stacked-extra) vCPUs.
    pub banned: Vec<bool>,
}

impl Rwc {
    /// Creates the engine.
    pub fn new(nr_vcpus: usize) -> Self {
        Self {
            nr_vcpus,
            stragglers: vec![false; nr_vcpus],
            banned: vec![false; nr_vcpus],
        }
    }

    /// Re-evaluates straggler status from the latest vcap estimates.
    /// Call after every vcap sampling window.
    pub fn update_stragglers(
        &mut self,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
        vcap: &Vcap,
        tun: &Tunables,
    ) {
        let threshold = tun.rwc_straggler_factor * vcap.mean_cap;
        for v in 0..self.nr_vcpus {
            if self.banned[v] {
                continue;
            }
            let is_straggler = vcap.capacity(VcpuId(v)) < threshold;
            if is_straggler && !self.stragglers[v] {
                self.stragglers[v] = true;
                kern.cgroup.restrict_to_idle(v);
                self.evacuate(kern, plat, VcpuId(v), false);
            } else if !is_straggler && self.stragglers[v] {
                self.stragglers[v] = false;
                kern.cgroup.allow(v);
            }
        }
    }

    /// Applies stacking bans from the latest vtop topology: in each
    /// stacking group the lowest-numbered vCPU stays, the rest are banned.
    /// Returns the vCPUs whose ban state changed to banned (so vcap can
    /// retire its probers there).
    ///
    /// Errors — without changing any ban — on a malformed topology (an
    /// empty or out-of-range stacking group): under chaos the probed
    /// topology is untrusted input, so it is validated before any vCPU is
    /// hidden from the scheduler.
    pub fn update_stacking(
        &mut self,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
        stacked_groups: &[Vec<usize>],
    ) -> Result<Vec<usize>, ProbeError> {
        let mut should_ban = vec![false; self.nr_vcpus];
        for group in stacked_groups {
            let Some(keep) = group.iter().copied().min() else {
                return Err(ProbeError::Inconsistent(
                    ProbeKind::Vtop,
                    "empty stacking group",
                ));
            };
            if group.iter().any(|&v| v >= self.nr_vcpus) {
                return Err(ProbeError::Inconsistent(
                    ProbeKind::Vtop,
                    "stacking group references unknown vCPU",
                ));
            }
            for &v in group {
                if v != keep {
                    should_ban[v] = true;
                }
            }
        }
        let mut newly_banned = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for v in 0..self.nr_vcpus {
            if should_ban[v] && !self.banned[v] {
                self.banned[v] = true;
                kern.cgroup.ban(v);
                self.evacuate(kern, plat, VcpuId(v), true);
                newly_banned.push(v);
            } else if !should_ban[v] && self.banned[v] {
                self.banned[v] = false;
                if self.stragglers[v] {
                    kern.cgroup.restrict_to_idle(v);
                } else {
                    kern.cgroup.allow(v);
                }
            }
        }
        Ok(newly_banned)
    }

    /// Lifts every straggler restriction (degraded mode caps rwc
    /// relaxation: with the capacity estimates untrusted, hiding vCPUs
    /// from placement does more harm than the stragglers would).
    pub fn clear_stragglers(&mut self, kern: &mut Kernel) {
        for v in 0..self.nr_vcpus {
            if self.stragglers[v] {
                self.stragglers[v] = false;
                if !self.banned[v] {
                    kern.cgroup.allow(v);
                }
            }
        }
    }

    /// Moves tasks off a newly restricted vCPU. With `all`, even
    /// best-effort tasks leave; otherwise only normal-policy tasks do.
    fn evacuate(&self, kern: &mut Kernel, plat: &mut dyn Platform, v: VcpuId, all: bool) {
        // Waiting tasks first.
        let queued: Vec<_> = kern.vcpus[v.0].rq.iter().map(|(_, t)| t).collect();
        for t in queued {
            if kern.task(t).bypass_cgroup {
                continue;
            }
            if !all && kern.task(t).policy.is_idle() {
                continue;
            }
            let now = plat.now();
            let to = kern.select_cpu_fair(plat, t, now);
            if to != v {
                kern.migrate_runnable(plat, t, to, MigrateKind::Balance);
            }
        }
        // Then the current task.
        if let Some(curr) = kern.vcpus[v.0].curr {
            let movable =
                !kern.task(curr).bypass_cgroup && (all || !kern.task(curr).policy.is_idle());
            if movable {
                let now = plat.now();
                let to = kern.select_cpu_fair(plat, curr, now);
                if to != v {
                    kern.migrate_running(plat, v, to, MigrateKind::Active);
                }
            }
        }
    }
}
