//! `vcache`: the LLC thrash prober (the follow-up paper's cache
//! abstraction, built on vSched's prober pattern).
//!
//! Estimates per-LLC-domain cache pressure from *timed pointer-chase
//! micro-probes*, modelled analytically like vtop's ping-pong: each probe
//! walks a pointer chain sized to the LLC and times the mean per-access
//! latency through [`guestos::Platform::llc_probe_ns`]. On a quiet socket
//! every access hits in the LLC; as neighbours thrash the cache the mean
//! latency drifts toward a DRAM-ish line fill. The prober normalizes that
//! drift into a **pressure** estimate in `[0, 1]` per LLC domain:
//!
//! ```text
//! pressure = (latency − hit_ns) / (miss_ns − hit_ns)   clamped to [0, 1]
//! ```
//!
//! Domains come from `vtop`'s probed socket masks (one domain until the
//! first topology lands). Every window the prober takes
//! [`Tunables::vcache_samples`] samples per domain — probing whichever
//! domain member is currently on-core, rotating the starting member so a
//! stacked vCPU cannot starve its domain — aggregates them by median, and
//! publishes the estimate with a freshness timestamp consumers check
//! against [`Tunables::vcache_staleness_ns`].
//!
//! The prober is **born hardened** (PR 9's vcap discipline): window
//! aggregates are vetted against a median/MAD band over accepted history,
//! rejections bump an interference-suspicion score that feeds the
//! resilience layer, and windows with no usable sample surface as typed
//! [`ProbeError`]s — never panics.

use crate::error::ProbeError;
use crate::tunables::Tunables;
use crate::vcap::median_of;
use guestos::{CpuMask, Kernel, PerceivedTopology, Platform, VcpuId};
use simcore::SimTime;
use std::collections::VecDeque;
use trace::{EventKind, ProbeKind};

/// Accepted window aggregates remembered per domain for outlier rejection.
const HISTORY_CAP: usize = 8;
/// Outlier tests need at least this much history to be meaningful.
const HISTORY_MIN: usize = 4;
/// Absolute floor of the median/MAD rejection band: pressure is already
/// normalized to `[0, 1]`, so swings under this are always believable.
const BAND_FLOOR: f64 = 0.2;

/// The LLC thrash prober.
pub struct Vcache {
    nr_vcpus: usize,
    /// Median/MAD vetting + suspicion scoring. vcache is born hardened:
    /// on by default, unlike the opt-in vcap/vtop hardening.
    pub hardened: bool,
    /// LLC domain of each vCPU (from vtop's socket masks).
    domain_of: Vec<usize>,
    nr_domains: usize,
    /// Published pressure estimate per domain (`None` until probed).
    pub pressure: Vec<Option<f64>>,
    /// When each domain's estimate was last refreshed.
    pub last_update: Vec<SimTime>,
    /// Raw samples collected per domain in the open window.
    samples: Vec<Vec<f64>>,
    window_open: bool,
    samples_taken: u32,
    /// Rotating start offset into each domain's member list.
    rr: usize,
    /// Accepted window aggregates per domain, newest last.
    history: Vec<VecDeque<f64>>,
    /// Interference-suspicion score in `[0, 1]` (vcap semantics: +0.35
    /// per rejection, ×0.6 per clean window).
    pub suspicion: f64,
    /// Window aggregates rejected by vetting over the run.
    pub rejected_samples: u64,
    /// Windows closed over the run.
    pub windows: u64,
    hit_ns: f64,
    miss_ns: f64,
    samples_per_window: u32,
}

impl Vcache {
    /// Creates the prober with a single LLC domain (pre-topology).
    pub fn new(nr_vcpus: usize, tun: &Tunables) -> Self {
        Self {
            nr_vcpus,
            hardened: true,
            domain_of: vec![0; nr_vcpus],
            nr_domains: 1,
            pressure: vec![None],
            last_update: vec![SimTime::ZERO],
            samples: vec![Vec::new()],
            window_open: false,
            samples_taken: 0,
            rr: 0,
            history: vec![VecDeque::new()],
            suspicion: 0.0,
            rejected_samples: 0,
            windows: 0,
            hit_ns: tun.vcache_hit_ns,
            miss_ns: tun.vcache_miss_ns,
            samples_per_window: tun.vcache_samples.max(1),
        }
    }

    /// Rebuilds LLC domains from a freshly probed topology (unique socket
    /// masks, in vCPU order). Estimates reset when the partition changes:
    /// pressure published for an obsolete domain must not steer picks.
    pub fn set_domains(&mut self, topo: &PerceivedTopology) {
        let mut masks: Vec<CpuMask> = Vec::new();
        let domain_of: Vec<usize> = topo.socket[..self.nr_vcpus]
            .iter()
            .map(|m| match masks.iter().position(|x| x == m) {
                Some(d) => d,
                None => {
                    masks.push(*m);
                    masks.len() - 1
                }
            })
            .collect();
        if domain_of != self.domain_of {
            let n = masks.len().max(1);
            self.nr_domains = n;
            self.domain_of = domain_of;
            self.pressure = vec![None; n];
            self.last_update = vec![SimTime::ZERO; n];
            self.samples = vec![Vec::new(); n];
            self.history = vec![VecDeque::new(); n];
        }
    }

    /// Whether a sampling window is currently open.
    pub fn window_open(&self) -> bool {
        self.window_open
    }

    /// The LLC domain a vCPU belongs to.
    pub fn domain(&self, v: VcpuId) -> usize {
        self.domain_of[v.0]
    }

    /// Opens a sampling window.
    pub fn open_window(&mut self) {
        debug_assert!(!self.window_open);
        self.window_open = true;
        self.samples_taken = 0;
        for s in &mut self.samples {
            s.clear();
        }
    }

    /// Takes one timed sample per domain (from whichever member is
    /// currently on-core). Returns true while the window needs more
    /// samples; the caller re-arms the sample timer.
    pub fn sample_step(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) -> bool {
        debug_assert!(self.window_open);
        let now = plat.now();
        for d in 0..self.nr_domains {
            let members: Vec<usize> = (0..self.nr_vcpus)
                .filter(|&v| self.domain_of[v] == d)
                .collect();
            if members.is_empty() {
                continue;
            }
            for k in 0..members.len() {
                let v = members[(self.rr + k) % members.len()];
                if let Some(lat) = plat.llc_probe_ns(VcpuId(v)) {
                    let pressure = self.pressure_from_latency(lat);
                    self.samples[d].push(pressure);
                    kern.trace.emit(
                        now,
                        EventKind::CacheProbe {
                            vcpu: v as u16,
                            domain: d as u16,
                            latency_ns: lat,
                            pressure,
                        },
                    );
                    break;
                }
            }
        }
        self.rr = self.rr.wrapping_add(1);
        self.samples_taken += 1;
        self.samples_taken < self.samples_per_window
    }

    /// Normalizes a measured mean-access latency into `[0, 1]` pressure.
    fn pressure_from_latency(&self, lat: f64) -> f64 {
        let span = (self.miss_ns - self.hit_ns).max(1.0);
        ((lat - self.hit_ns) / span).clamp(0.0, 1.0)
    }

    /// Closes the window: aggregates each domain's samples by median,
    /// vets the aggregate against accepted history, publishes survivors.
    ///
    /// Errors when no domain published (every sample missed or rejected);
    /// previous estimates stay in place but age toward staleness.
    pub fn close_window(
        &mut self,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
    ) -> Result<(), ProbeError> {
        debug_assert!(self.window_open);
        self.window_open = false;
        self.windows += 1;
        let now = plat.now();
        let mut published = 0usize;
        let mut rejected_now = false;
        for d in 0..self.nr_domains {
            let samples = std::mem::take(&mut self.samples[d]);
            if samples.is_empty() {
                continue;
            }
            let agg = median_of(samples.iter().copied());
            if self.hardened {
                let h = &self.history[d];
                if h.len() >= HISTORY_MIN {
                    let med = median_of(h.iter().copied());
                    let mad = median_of(h.iter().map(|&x| (x - med).abs()));
                    if (agg - med).abs() > (4.0 * mad).max(BAND_FLOOR) {
                        // A poisoned aggregate must not be published and
                        // must not count toward `published` — an
                        // all-rejected window rides the NoSamples path.
                        self.rejected_samples += 1;
                        self.suspicion = (self.suspicion + 0.35).min(1.0);
                        rejected_now = true;
                        let rep = self.domain_of.iter().position(|&x| x == d).unwrap_or(0);
                        kern.trace.emit(
                            now,
                            EventKind::ProbeRejected {
                                vcpu: rep as u16,
                                probe: ProbeKind::Vcache,
                                sample: agg,
                                median: med,
                            },
                        );
                        continue;
                    }
                }
                let h = &mut self.history[d];
                h.push_back(agg);
                if h.len() > HISTORY_CAP {
                    h.pop_front();
                }
            }
            self.pressure[d] = Some(agg);
            self.last_update[d] = now;
            published += 1;
        }
        if self.hardened && !rejected_now {
            self.suspicion *= 0.6;
        }
        if published == 0 {
            return Err(ProbeError::NoSamples(ProbeKind::Vcache));
        }
        Ok(())
    }

    /// A vCPU's domain pressure, if published and fresh at `now`.
    pub fn pressure_of(&self, v: VcpuId, now: SimTime, staleness_ns: u64) -> Option<f64> {
        let d = self.domain_of[v.0];
        let p = self.pressure[d]?;
        (now.since(self.last_update[d]) <= staleness_ns).then_some(p)
    }

    /// The lowest fresh published pressure over all domains, if any.
    pub fn best_pressure(&self, now: SimTime, staleness_ns: u64) -> Option<f64> {
        let mut best: Option<f64> = None;
        for d in 0..self.nr_domains {
            let Some(p) = self.pressure[d] else { continue };
            if now.since(self.last_update[d]) > staleness_ns {
                continue;
            }
            best = Some(match best {
                Some(b) => b.min(p),
                None => p,
            });
        }
        best
    }

    /// Mean published pressure (0 when nothing is published) — the
    /// aggregate the resilience layer scores surprise against.
    pub fn mean_pressure(&self) -> f64 {
        let vals: Vec<f64> = self.pressure.iter().filter_map(|p| *p).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::domains::PerceivedTopology;

    fn tun() -> Tunables {
        Tunables::paper()
    }

    #[test]
    fn pressure_normalization_clamps() {
        let vc = Vcache::new(4, &tun());
        assert_eq!(vc.pressure_from_latency(48.0), 0.0);
        assert_eq!(vc.pressure_from_latency(113.0), 1.0);
        assert_eq!(vc.pressure_from_latency(10.0), 0.0);
        assert_eq!(vc.pressure_from_latency(500.0), 1.0);
        let mid = vc.pressure_from_latency(80.5);
        assert!((mid - 0.5).abs() < 1e-9);
    }

    #[test]
    fn domains_follow_socket_masks() {
        let mut vc = Vcache::new(4, &tun());
        assert_eq!(vc.nr_domains, 1);
        let topo = PerceivedTopology::from_groups(4, &[], &[], &[vec![0, 1], vec![2, 3]]);
        vc.set_domains(&topo);
        assert_eq!(vc.nr_domains, 2);
        assert_eq!(vc.domain(VcpuId(0)), vc.domain(VcpuId(1)));
        assert_ne!(vc.domain(VcpuId(0)), vc.domain(VcpuId(2)));
    }

    #[test]
    fn staleness_gates_consumers() {
        let mut vc = Vcache::new(2, &tun());
        vc.pressure[0] = Some(0.4);
        vc.last_update[0] = SimTime::ZERO.after(1_000_000);
        let fresh = SimTime::ZERO.after(2_000_000);
        let stale = SimTime::ZERO.after(5_000_000_000);
        assert_eq!(vc.pressure_of(VcpuId(0), fresh, 2_000_000_000), Some(0.4));
        assert_eq!(vc.pressure_of(VcpuId(0), stale, 2_000_000_000), None);
        assert_eq!(vc.best_pressure(fresh, 2_000_000_000), Some(0.4));
        assert_eq!(vc.best_pressure(stale, 2_000_000_000), None);
    }

    #[test]
    fn vetting_rejects_outlier_aggregates() {
        let mut vc = Vcache::new(1, &tun());
        for _ in 0..6 {
            vc.history[0].push_back(0.1);
        }
        // Directly exercise the band arithmetic used in close_window.
        let med = median_of(vc.history[0].iter().copied());
        let mad = median_of(vc.history[0].iter().map(|&x| (x - med).abs()));
        let band = (4.0 * mad).max(BAND_FLOOR);
        assert!((0.9 - med).abs() > band, "a thrash spike is an outlier");
        assert!((0.25 - med).abs() <= band, "modest drift is accepted");
    }
}
