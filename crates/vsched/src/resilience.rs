//! Graceful degradation under a lying vCPU abstraction.
//!
//! The vProbers assume the host changes slowly enough for their estimates
//! to stay meaningful between windows. Chaos (and real multi-tenant
//! clouds) break that assumption: quotas churn, vCPUs vanish, probe
//! readings gain noise. This module scores how much the current estimates
//! can be trusted and, when trust collapses, moves vSched into an explicit
//! **degraded mode** instead of letting bvs/ivh/rwc act on wrong data:
//!
//! * **Confidence scoring** — each prober (vcap / vact / vtop) carries a
//!   score in `[0, 1]`, updated from the *surprise* of each new window
//!   (how far the fresh aggregate moved against the previous one) and
//!   decayed when a prober goes stale. Probe errors zero the score.
//! * **DegradedMode state machine** — entered when any score falls below
//!   [`ResilCfg::enter_confidence`] (or a prober errors), exited with
//!   hysteresis once every score recovers above
//!   [`ResilCfg::exit_confidence`]. While degraded, vSched falls back to
//!   vanilla-CFS placement (bvs off), stops initiating harvests, abandons
//!   in-flight ivh pulls, and caps rwc relaxation (stragglers unhidden,
//!   no new restrictions) — the paper's machinery re-engages only once
//!   the abstraction is trustworthy again.
//! * **Bounded re-probe with backoff** — while degraded, the layer forces
//!   early re-probes (extra vcap windows, vtop validation) at
//!   exponentially backed-off intervals, at most
//!   [`ResilCfg::max_retries`] times per episode, each announced with a
//!   `ProbeRetry` trace event.
//!
//! Everything is driven from the watchdog timer vSched arms every
//! [`ResilCfg::watchdog_period_ns`]; the trace events (`DegradedEnter`,
//! `DegradedExit`, `ProbeRetry`, `IvhAbandonedByWatchdog`) are validated
//! by the streaming invariant checker (strict enter/exit alternation,
//! truthful `after_ns`, watchdog abandons only with an outstanding pull).

use crate::error::ProbeError;
use crate::vact::Vact;
use crate::vcap::Vcap;
use guestos::Kernel;
use simcore::time::MS;
use simcore::SimTime;
use trace::{DegradeReason, EventKind, ProbeKind};

/// Resilience-layer knobs.
#[derive(Debug, Clone)]
pub struct ResilCfg {
    /// Enter degraded mode when any prober confidence falls below this.
    pub enter_confidence: f64,
    /// Leave degraded mode once every confidence exceeds this (hysteresis).
    pub exit_confidence: f64,
    /// Watchdog period: staleness decay, stuck-pull scan, retry pacing.
    pub watchdog_period_ns: u64,
    /// A prober quiet for longer than this decays toward distrust.
    pub staleness_ns: u64,
    /// First re-probe delay after entering degraded mode; doubles per
    /// retry.
    pub retry_base_ns: u64,
    /// Re-probes per degraded episode.
    pub max_retries: u32,
    /// Pending ivh pulls older than this are abandoned by the watchdog.
    pub pull_timeout_ns: u64,
    /// Surprise scale: a relative estimate swing of this size drives one
    /// window's confidence contribution to zero.
    pub surprise_full_scale: f64,
}

impl Default for ResilCfg {
    fn default() -> Self {
        Self {
            enter_confidence: 0.55,
            exit_confidence: 0.75,
            watchdog_period_ns: 10 * MS,
            staleness_ns: 3_000 * MS,
            retry_base_ns: 250 * MS,
            max_retries: 5,
            pull_timeout_ns: 40 * MS,
            surprise_full_scale: 0.5,
        }
    }
}

/// Index of a prober in the confidence arrays. The vcache slot is scored
/// only when the configuration runs the vcache prober (see
/// [`Resilience::set_vcache_enabled`]).
const PROBERS: [ProbeKind; 4] = [
    ProbeKind::Vcap,
    ProbeKind::Vact,
    ProbeKind::Vtop,
    ProbeKind::Vcache,
];

fn idx(p: ProbeKind) -> usize {
    match p {
        ProbeKind::Vcap | ProbeKind::VcapCore => 0,
        ProbeKind::Vact => 1,
        ProbeKind::Vtop => 2,
        ProbeKind::Vcache => 3,
    }
}

/// What the caller (the vSched hook layer) must do after a state-machine
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResilAction {
    /// Nothing changed.
    None,
    /// Degraded mode was just entered: abandon in-flight pulls, cap rwc.
    EnteredDegraded,
    /// Degraded mode was just left: normal operation may resume.
    ExitedDegraded,
    /// A bounded re-probe should fire now (extra vcap window, vtop
    /// validation).
    Reprobe(ProbeKind),
}

/// The per-VM resilience state.
pub struct Resilience {
    /// Configuration.
    pub cfg: ResilCfg,
    conf: [f64; 4],
    last_seen: [SimTime; 4],
    /// Whether the vcache slot participates in scoring. Off by default:
    /// a configuration without the vcache prober must not be dragged into
    /// degraded mode by a slot nothing ever feeds.
    vcache_enabled: bool,
    prev_mean_cap: Option<f64>,
    prev_median_lat: Option<u64>,
    prev_mean_pressure: Option<f64>,
    prev_validations: u64,
    prev_failures: u64,
    degraded_since: Option<SimTime>,
    retry_attempt: u32,
    next_retry: SimTime,
    retry_probe: ProbeKind,
    /// Completed degraded episodes (enter + exit pairs).
    pub episodes: u64,
    /// Pulls abandoned by the watchdog over the run.
    pub watchdog_abandons: u64,
}

impl Resilience {
    /// Creates the layer with full initial trust.
    pub fn new(cfg: ResilCfg, now: SimTime) -> Self {
        Self {
            cfg,
            conf: [1.0; 4],
            last_seen: [now; 4],
            vcache_enabled: false,
            prev_mean_cap: None,
            prev_median_lat: None,
            prev_mean_pressure: None,
            prev_validations: 0,
            prev_failures: 0,
            degraded_since: None,
            retry_attempt: 0,
            next_retry: now,
            retry_probe: ProbeKind::Vcap,
            episodes: 0,
            watchdog_abandons: 0,
        }
    }

    /// Whether vSched is currently degraded (bvs/ivh/rwc suppressed).
    pub fn degraded(&self) -> bool {
        self.degraded_since.is_some()
    }

    /// Enables scoring of the vcache slot (call when the configuration
    /// runs the vcache prober).
    pub fn set_vcache_enabled(&mut self, on: bool) {
        self.vcache_enabled = on;
    }

    /// How many slots participate in scoring: the vcache slot only when
    /// its prober runs.
    fn nr_scored(&self) -> usize {
        if self.vcache_enabled {
            PROBERS.len()
        } else {
            PROBERS.len() - 1
        }
    }

    /// Current confidence of a prober.
    pub fn confidence(&self, p: ProbeKind) -> f64 {
        self.conf[idx(p)]
    }

    /// Blends one window's agreement score into a prober's confidence.
    /// `surprise` is the relative swing of the fresh aggregate against the
    /// previous one; `surprise_full_scale` maps it onto `[0, 1]` distrust.
    fn absorb(&mut self, p: ProbeKind, now: SimTime, surprise: f64) {
        let scaled = (surprise / self.cfg.surprise_full_scale).clamp(0.0, 1.0);
        let i = idx(p);
        self.conf[i] = 0.5 * self.conf[i] + 0.5 * (1.0 - scaled);
        self.last_seen[i] = now;
    }

    /// Feeds a closed vcap window.
    pub fn observe_vcap(&mut self, now: SimTime, vcap: &Vcap) {
        let mean = vcap.mean_cap;
        let surprise = match self.prev_mean_cap {
            Some(prev) if prev > 0.0 => (mean - prev).abs() / prev,
            _ => 0.0,
        };
        self.prev_mean_cap = Some(mean);
        self.absorb(ProbeKind::Vcap, now, surprise);
    }

    /// Feeds the vcap hardening layer's interference-suspicion score: a
    /// gamed prober erodes trust in that prober even while individual
    /// windows still close (their samples rejected), so sustained gaming
    /// drives the VM into degraded mode instead of starving the EMAs
    /// silently. Zero suspicion is a no-op — clean windows already feed
    /// confidence through [`Resilience::observe_vcap`].
    pub fn observe_suspicion(&mut self, now: SimTime, p: ProbeKind, suspicion: f64) {
        if suspicion > 0.0 {
            self.absorb(p, now, suspicion * self.cfg.surprise_full_scale);
        }
    }

    /// Feeds a closed vact window.
    pub fn observe_vact(&mut self, now: SimTime, vact: &Vact) {
        let lat = vact.median_latency_ns;
        // Latency is zero on a quiet host; normalize swings against a
        // 1 ms floor so a 0 → 50 µs change does not read as infinite.
        let floor = 1_000_000u64;
        let surprise = match self.prev_median_lat {
            Some(prev) => {
                let delta = lat.abs_diff(prev);
                delta as f64 / prev.max(floor) as f64
            }
            None => 0.0,
        };
        self.prev_median_lat = Some(lat);
        self.absorb(ProbeKind::Vact, now, surprise);
    }

    /// Feeds a closed vcache window. Pressure is already normalized to
    /// `[0, 1]`, so the absolute swing of the mean estimate *is* the
    /// surprise — a socket whose thrash level jumps half the scale between
    /// windows is exactly the abstraction-churn signal the layer scores.
    pub fn observe_vcache(&mut self, now: SimTime, vcache: &crate::vcache::Vcache) {
        let mean = vcache.mean_pressure();
        let surprise = match self.prev_mean_pressure {
            Some(prev) => (mean - prev).abs(),
            None => 0.0,
        };
        self.prev_mean_pressure = Some(mean);
        self.absorb(ProbeKind::Vcache, now, surprise);
    }

    /// Feeds vtop progress: validation passes restore trust, detected
    /// mismatches spend it.
    pub fn observe_vtop(&mut self, now: SimTime, validations: u64, failures: u64) {
        let new_validations = validations.saturating_sub(self.prev_validations);
        let new_failures = failures.saturating_sub(self.prev_failures);
        self.prev_validations = validations;
        self.prev_failures = failures;
        if new_failures > 0 {
            self.absorb(ProbeKind::Vtop, now, 1.0);
        } else if new_validations > 0 {
            self.absorb(ProbeKind::Vtop, now, 0.0);
        }
    }

    /// Routes a prober error: trust in that prober collapses immediately.
    pub fn on_probe_error(&mut self, now: SimTime, err: ProbeError) {
        let i = idx(err.probe());
        self.conf[i] = 0.0;
        self.last_seen[i] = now;
    }

    /// The prober currently trusted least (among the scored slots).
    fn worst(&self) -> (ProbeKind, f64) {
        let n = self.nr_scored();
        let mut worst = (PROBERS[0], self.conf[0]);
        for (p, &c) in PROBERS.iter().zip(&self.conf).take(n).skip(1) {
            if c < worst.1 {
                worst = (*p, c);
            }
        }
        worst
    }

    /// One watchdog tick: decay stale probers, evaluate the state machine,
    /// pace re-probes. Emits `DegradedEnter`/`DegradedExit`/`ProbeRetry`
    /// through the kernel's trace sink.
    pub fn on_watchdog(&mut self, kern: &mut Kernel, now: SimTime) -> ResilAction {
        // Staleness only erodes trust while healthy: a prober that goes
        // silent in normal operation is broken, but degraded mode silences
        // probing on purpose — decaying then would trap the VM degraded
        // once the bounded retries run out.
        if self.degraded_since.is_none() {
            for i in 0..self.nr_scored() {
                if now.since(self.last_seen[i]) > self.cfg.staleness_ns {
                    // Quiet probers drift toward distrust, slowly:
                    // confidence halves roughly every staleness interval
                    // of silence.
                    let per_tick =
                        self.cfg.watchdog_period_ns as f64 / self.cfg.staleness_ns as f64;
                    self.conf[i] *= 0.5f64.powf(per_tick);
                }
            }
        }
        let (worst_probe, worst_conf) = self.worst();
        match self.degraded_since {
            None => {
                if worst_conf < self.cfg.enter_confidence {
                    self.enter(kern, now, DegradeReason::LowConfidence(worst_probe));
                    return ResilAction::EnteredDegraded;
                }
                ResilAction::None
            }
            Some(entered) => {
                if worst_conf > self.cfg.exit_confidence {
                    kern.trace.emit(
                        now,
                        EventKind::DegradedExit {
                            after_ns: now.since(entered),
                        },
                    );
                    self.degraded_since = None;
                    self.episodes += 1;
                    return ResilAction::ExitedDegraded;
                }
                if self.retry_attempt < self.cfg.max_retries && now >= self.next_retry {
                    self.retry_attempt += 1;
                    self.retry_probe = worst_probe;
                    kern.trace.emit(
                        now,
                        EventKind::ProbeRetry {
                            probe: worst_probe,
                            attempt: self.retry_attempt,
                        },
                    );
                    let backoff = self.cfg.retry_base_ns << self.retry_attempt.min(16);
                    self.next_retry = now.after(backoff);
                    return ResilAction::Reprobe(worst_probe);
                }
                ResilAction::None
            }
        }
    }

    /// Forces degraded mode from a probe error (called by the hook layer
    /// right where the error surfaced).
    pub fn degrade_on_error(
        &mut self,
        kern: &mut Kernel,
        now: SimTime,
        err: ProbeError,
    ) -> ResilAction {
        self.on_probe_error(now, err);
        if self.degraded_since.is_none() {
            self.enter(kern, now, DegradeReason::ProbeError(err.probe()));
            return ResilAction::EnteredDegraded;
        }
        ResilAction::None
    }

    fn enter(&mut self, kern: &mut Kernel, now: SimTime, reason: DegradeReason) {
        kern.trace.emit(now, EventKind::DegradedEnter { reason });
        self.degraded_since = Some(now);
        self.retry_attempt = 0;
        self.next_retry = now.after(self.cfg.retry_base_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::{GuestConfig, Kernel};

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    fn kern() -> Kernel {
        Kernel::new(GuestConfig::new(2), t(0))
    }

    #[test]
    fn starts_trusting_and_stays_calm() {
        let mut r = Resilience::new(ResilCfg::default(), t(0));
        let mut k = kern();
        assert!(!r.degraded());
        for i in 1..10 {
            assert_eq!(r.on_watchdog(&mut k, t(10 * i)), ResilAction::None);
        }
    }

    #[test]
    fn probe_error_enters_and_recovery_exits() {
        let mut r = Resilience::new(ResilCfg::default(), t(0));
        let mut k = kern();
        let err = ProbeError::NoSamples(ProbeKind::Vcap);
        assert_eq!(
            r.degrade_on_error(&mut k, t(100), err),
            ResilAction::EnteredDegraded
        );
        assert!(r.degraded());
        assert_eq!(r.confidence(ProbeKind::Vcap), 0.0);
        // A second error while degraded does not re-enter.
        assert_eq!(r.degrade_on_error(&mut k, t(110), err), ResilAction::None);
        // Steady agreeing windows rebuild confidence past the exit bar.
        let mut now = 200;
        let vcap = Vcap::new(2, &crate::tunables::Tunables::paper());
        let mut exited = false;
        for _ in 0..16 {
            r.observe_vcap(t(now), &vcap);
            if r.on_watchdog(&mut k, t(now + 5)) == ResilAction::ExitedDegraded {
                exited = true;
                break;
            }
            now += 100;
        }
        assert!(exited, "confidence never recovered: {:?}", r.conf);
        assert_eq!(r.episodes, 1);
    }

    #[test]
    fn surprise_erodes_confidence_until_entry() {
        let mut r = Resilience::new(ResilCfg::default(), t(0));
        let mut k = kern();
        let mut vcap = Vcap::new(2, &crate::tunables::Tunables::paper());
        let mut entered = false;
        for i in 0..12u64 {
            // Mean capacity oscillates wildly window over window.
            vcap.mean_cap = if i % 2 == 0 { 1024.0 } else { 150.0 };
            r.observe_vcap(t(100 * (i + 1)), &vcap);
            if r.on_watchdog(&mut k, t(100 * (i + 1) + 5)) == ResilAction::EnteredDegraded {
                entered = true;
                break;
            }
        }
        assert!(entered, "oscillation never degraded: {:?}", r.conf);
    }

    #[test]
    fn retries_are_bounded_and_backed_off() {
        let cfg = ResilCfg::default();
        let base = cfg.retry_base_ns;
        let max = cfg.max_retries;
        let mut r = Resilience::new(cfg, t(0));
        let mut k = kern();
        r.degrade_on_error(&mut k, t(0), ProbeError::NoSamples(ProbeKind::Vcap));
        let mut retries = Vec::new();
        let mut now = SimTime::from_ms(0);
        for _ in 0..100_000 {
            now = now.after(10 * MS);
            if let ResilAction::Reprobe(p) = r.on_watchdog(&mut k, now) {
                retries.push((now, p));
            }
        }
        assert_eq!(retries.len(), max as usize, "bounded retries");
        // Gaps grow: each ≥ the previous (exponential backoff, quantized
        // by the watchdog period).
        for w in retries.windows(2) {
            assert!(w[1].0.since(w[0].0) >= base, "backoff too fast");
        }
    }

    #[test]
    fn unfed_vcache_slot_is_inert_unless_enabled() {
        let cfg = ResilCfg {
            staleness_ns: 100 * MS,
            ..ResilCfg::default()
        };
        // Disabled (the default): the never-fed vcache slot must not
        // decay a healthy VM into degraded mode. Keep the three original
        // probers fresh and walk far past staleness.
        let mut r = Resilience::new(cfg.clone(), t(0));
        let mut k = kern();
        let vcap = Vcap::new(2, &crate::tunables::Tunables::paper());
        let mut now = SimTime::from_ms(10);
        for _ in 0..200 {
            r.observe_vcap(now, &vcap);
            r.last_seen[idx(ProbeKind::Vact)] = now;
            r.last_seen[idx(ProbeKind::Vtop)] = now;
            assert_eq!(r.on_watchdog(&mut k, now), ResilAction::None);
            now = now.after(10 * MS);
        }
        // Enabled but silent: the stale vcache slot degrades like any
        // other quiet prober.
        let mut r = Resilience::new(cfg, t(0));
        r.set_vcache_enabled(true);
        let mut now = SimTime::from_ms(10);
        let mut entered = false;
        for _ in 0..2_000 {
            r.observe_vcap(now, &vcap);
            r.last_seen[idx(ProbeKind::Vact)] = now;
            r.last_seen[idx(ProbeKind::Vtop)] = now;
            if r.on_watchdog(&mut k, now) == ResilAction::EnteredDegraded {
                entered = true;
                break;
            }
            now = now.after(10 * MS);
        }
        assert!(entered, "silent vcache never degraded: {:?}", r.conf);
    }

    #[test]
    fn vcache_pressure_swings_spend_trust() {
        let mut r = Resilience::new(ResilCfg::default(), t(0));
        r.set_vcache_enabled(true);
        let mut k = kern();
        let mut vc = crate::vcache::Vcache::new(2, &crate::tunables::Tunables::paper());
        let mut entered = false;
        for i in 0..12u64 {
            vc.pressure[0] = Some(if i % 2 == 0 { 0.95 } else { 0.05 });
            r.observe_vcache(t(100 * (i + 1)), &vc);
            if r.on_watchdog(&mut k, t(100 * (i + 1) + 5)) == ResilAction::EnteredDegraded {
                entered = true;
                break;
            }
        }
        assert!(entered, "pressure oscillation never degraded: {:?}", r.conf);
    }

    #[test]
    fn staleness_decays_confidence() {
        let cfg = ResilCfg {
            staleness_ns: 100 * MS,
            ..ResilCfg::default()
        };
        let mut r = Resilience::new(cfg, t(0));
        let mut k = kern();
        let mut now = SimTime::from_ms(150);
        let mut entered = false;
        for _ in 0..2_000 {
            if r.on_watchdog(&mut k, now) == ResilAction::EnteredDegraded {
                entered = true;
                break;
            }
            now = now.after(10 * MS);
        }
        assert!(entered, "silence never degraded: {:?}", r.conf);
    }
}
