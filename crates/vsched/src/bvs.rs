//! `bvs`: biased vCPU selection (paper §3.2).
//!
//! Matches *small latency-sensitive tasks* (identified by PELT utilization
//! plus the user-space latency hint) with vCPUs where they experience
//! minimal extended runqueue latency, following the Figure 8 heuristic:
//!
//! 1. Prefer vCPUs with at least median capacity (avoid runqueue
//!    saturation).
//! 2. Empty runqueue → require low vCPU latency *and* prolonged idleness
//!    (a long-idle low-latency vCPU wakes quickly).
//! 3. Runqueue holding only `SCHED_IDLE` tasks → consult the vCPU state:
//!    a *recently active* vCPU is ideal (the task starts immediately and
//!    finishes within the remaining active period — the "blue path");
//!    a *long-inactive* low-latency vCPU is acceptable (it will be
//!    rescheduled soon).
//!
//! A first-fit policy returns the first acceptable vCPU so the search stays
//! cheap; when nothing qualifies the caller falls back to the CFS
//! heuristic. Because the search is not limited to the preferred LLC
//! domain, bvs can search more aggressively than `select_idle_sibling`.

use crate::tunables::Tunables;
use crate::vact::{ActState, Vact};
use crate::vcap::Vcap;
use guestos::{Kernel, Platform, TaskId, VcpuId};

/// Statistics bvs keeps about its own decisions.
#[derive(Debug, Default, Clone, Copy)]
pub struct BvsStats {
    /// Wakeups bvs placed.
    pub placed: u64,
    /// Wakeups that fell through to CFS.
    pub fallback: u64,
    /// Placements taken via the recently-active sched_idle path.
    pub blue_path: u64,
}

/// Decides a wake-up placement for a small latency-sensitive task.
///
/// Returns `None` when the task does not qualify or no acceptable vCPU is
/// found (CFS fallback).
#[allow(clippy::too_many_arguments)]
pub fn select(
    kern: &mut Kernel,
    plat: &mut dyn Platform,
    vact: &Vact,
    vcap: &Vcap,
    tun: &Tunables,
    stats: &mut BvsStats,
    t: TaskId,
    state_check: bool,
) -> Option<VcpuId> {
    let task = kern.task(t);
    if !task.latency_sensitive || task.pelt.util() > tun.bvs_small_task_util {
        return None;
    }
    let now = plat.now();
    let allowed = kern.placement_mask(t);
    let median_cap = vcap.median_cap;
    let median_lat = vact.median_latency_ns.max(1);

    // First-fit starting from the task's previous vCPU: quick, and wakes
    // of distinct tasks spread instead of piling onto vCPU 0.
    let start = kern.task(t).last_vcpu.0;
    for v in allowed.iter_from(start) {
        let vid = VcpuId(v);
        // High capacity first: prevent runqueue saturation. 10% headroom
        // keeps measurement noise from excluding half the symmetric vCPUs.
        if kern.capacity_of(vid, now) < 0.9 * median_cap {
            continue;
        }
        let lat = vact.latency_ns(vid);
        let d = &kern.vcpus[v];
        if d.curr.is_none() && d.rq.is_empty() {
            // Empty runqueue: low latency and prolonged idleness.
            let idle_ns = kern.idle_duration(vid, now).unwrap_or(0);
            if lat <= median_lat && idle_ns >= tun.bvs_min_idle_ns {
                stats.placed += 1;
                return Some(vid);
            }
            continue;
        }
        // Occupied only by best-effort tasks?
        let curr_is_idle_policy = d
            .curr
            .map(|c| kern.task(c).policy.is_idle())
            .unwrap_or(true);
        let only_idle = curr_is_idle_policy && d.rq.nr_normal == 0;
        if !only_idle {
            continue;
        }
        if !state_check {
            // Ablation: pick on latency alone (Table 3's
            // "bvs (no state check)" column).
            if lat <= median_lat {
                stats.placed += 1;
                return Some(vid);
            }
            continue;
        }
        match vact.state(vid, now, true) {
            ActState::Active { for_ns } => {
                // Recently become active with sched_idle tasks: the task
                // can start immediately and finish within the remaining
                // active period (the blue path of Figure 8).
                let avg_active = vact.active_period_ns(vid);
                if avg_active == u64::MAX || for_ns < avg_active / 2 {
                    stats.placed += 1;
                    stats.blue_path += 1;
                    return Some(vid);
                }
            }
            ActState::Inactive { for_ns } => {
                // Long-inactive and low-latency: likely active again soon.
                if lat <= median_lat && for_ns >= lat / 2 {
                    stats.placed += 1;
                    return Some(vid);
                }
            }
            ActState::Idle => {}
        }
    }
    stats.fallback += 1;
    None
}
