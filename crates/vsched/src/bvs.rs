//! `bvs`: biased vCPU selection (paper §3.2).
//!
//! Matches *small latency-sensitive tasks* (identified by PELT utilization
//! plus the user-space latency hint) with vCPUs where they experience
//! minimal extended runqueue latency, following the Figure 8 heuristic:
//!
//! 1. Prefer vCPUs with at least median capacity (avoid runqueue
//!    saturation).
//! 2. Empty runqueue → require low vCPU latency *and* prolonged idleness
//!    (a long-idle low-latency vCPU wakes quickly).
//! 3. Runqueue holding only `SCHED_IDLE` tasks → consult the vCPU state:
//!    a *recently active* vCPU is ideal (the task starts immediately and
//!    finishes within the remaining active period — the "blue path");
//!    a *long-inactive* low-latency vCPU is acceptable (it will be
//!    rescheduled soon).
//!
//! A first-fit policy returns the first acceptable vCPU so the search stays
//! cheap; when nothing qualifies the caller falls back to the CFS
//! heuristic. Because the search is not limited to the preferred LLC
//! domain, bvs can search more aggressively than `select_idle_sibling`.
//!
//! # Cache-aware selection (the vcache extension)
//!
//! When the vcache prober is running and holds a fresh pressure estimate,
//! bvs switches from first-fit to a two-phase pick: collect every vCPU
//! that passes the Figure 8 qualification, then among the qualifiers whose
//! LLC domain's pressure is within [`Tunables::vcache_pick_margin`] of the
//! best published pressure, take the one with the most vcap headroom. A
//! small latency-sensitive task lands on a socket whose cache is *not*
//! being thrashed — its working set stays resident, so it actually runs at
//! the low latency the activity check promised. Without a fresh estimate
//! (prober cold, estimates stale) the pick degrades to the stock first-fit
//! byte-for-byte.

use crate::tunables::Tunables;
use crate::vact::{ActState, Vact};
use crate::vcache::Vcache;
use crate::vcap::Vcap;
use guestos::{Kernel, Platform, TaskId, VcpuId};
use trace::EventKind;

/// Statistics bvs keeps about its own decisions.
#[derive(Debug, Default, Clone, Copy)]
pub struct BvsStats {
    /// Wakeups bvs placed.
    pub placed: u64,
    /// Wakeups that fell through to CFS.
    pub fallback: u64,
    /// Placements taken via the recently-active sched_idle path.
    pub blue_path: u64,
    /// Placements steered by a fresh LLC pressure estimate (cache-aware
    /// mode only).
    pub cache_picks: u64,
}

/// Why a vCPU passed the Figure 8 qualification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Qualified {
    /// Via the empty-runqueue, sched_idle-occupancy, or long-inactive path.
    Plain,
    /// Via the recently-active sched_idle path (the blue path of Figure 8).
    BluePath,
}

/// The Figure 8 per-vCPU qualification: `Some` when the vCPU is an
/// acceptable home for a small latency-sensitive task right now.
#[allow(clippy::too_many_arguments)]
fn qualify(
    kern: &Kernel,
    vact: &Vact,
    tun: &Tunables,
    now: simcore::SimTime,
    vid: VcpuId,
    median_cap: f64,
    median_lat: u64,
    state_check: bool,
) -> Option<Qualified> {
    // High capacity first: prevent runqueue saturation. 10% headroom
    // keeps measurement noise from excluding half the symmetric vCPUs.
    if kern.capacity_of(vid, now) < 0.9 * median_cap {
        return None;
    }
    let lat = vact.latency_ns(vid);
    let d = &kern.vcpus[vid.0];
    if d.curr.is_none() && d.rq.is_empty() {
        // Empty runqueue: low latency and prolonged idleness.
        let idle_ns = kern.idle_duration(vid, now).unwrap_or(0);
        if lat <= median_lat && idle_ns >= tun.bvs_min_idle_ns {
            return Some(Qualified::Plain);
        }
        return None;
    }
    // Occupied only by best-effort tasks?
    let curr_is_idle_policy = d
        .curr
        .map(|c| kern.task(c).policy.is_idle())
        .unwrap_or(true);
    let only_idle = curr_is_idle_policy && d.rq.nr_normal == 0;
    if !only_idle {
        return None;
    }
    if !state_check {
        // Ablation: pick on latency alone (Table 3's
        // "bvs (no state check)" column).
        return (lat <= median_lat).then_some(Qualified::Plain);
    }
    match vact.state(vid, now, true) {
        ActState::Active { for_ns } => {
            // Recently become active with sched_idle tasks: the task
            // can start immediately and finish within the remaining
            // active period (the blue path of Figure 8).
            let avg_active = vact.active_period_ns(vid);
            (avg_active == u64::MAX || for_ns < avg_active / 2).then_some(Qualified::BluePath)
        }
        ActState::Inactive { for_ns } => {
            // Long-inactive and low-latency: likely active again soon.
            (lat <= median_lat && for_ns >= lat / 2).then_some(Qualified::Plain)
        }
        ActState::Idle => None,
    }
}

/// Decides a wake-up placement for a small latency-sensitive task.
///
/// Returns `None` when the task does not qualify or no acceptable vCPU is
/// found (CFS fallback). Pass `vcache` to enable cache-aware selection;
/// `None` reproduces the paper's first-fit exactly.
#[allow(clippy::too_many_arguments)]
pub fn select(
    kern: &mut Kernel,
    plat: &mut dyn Platform,
    vact: &Vact,
    vcap: &Vcap,
    vcache: Option<&Vcache>,
    tun: &Tunables,
    stats: &mut BvsStats,
    t: TaskId,
    state_check: bool,
) -> Option<VcpuId> {
    let task = kern.task(t);
    if !task.latency_sensitive || task.pelt.util() > tun.bvs_small_task_util {
        return None;
    }
    let now = plat.now();
    let allowed = kern.placement_mask(t);
    let median_cap = vcap.median_cap;
    let median_lat = vact.median_latency_ns.max(1);
    let cache = vcache.and_then(|vc| {
        vc.best_pressure(now, tun.vcache_staleness_ns)
            .map(|best| (vc, best))
    });

    // First-fit starting from the task's previous vCPU: quick, and wakes
    // of distinct tasks spread instead of piling onto vCPU 0.
    let start = kern.task(t).last_vcpu.0;

    let Some((vc, best)) = cache else {
        // Stock vSched (or a cold/stale cache abstraction): the paper's
        // first-fit, returning the first qualifier.
        for v in allowed.iter_from(start) {
            let vid = VcpuId(v);
            if let Some(q) = qualify(
                kern,
                vact,
                tun,
                now,
                vid,
                median_cap,
                median_lat,
                state_check,
            ) {
                stats.placed += 1;
                if q == Qualified::BluePath {
                    stats.blue_path += 1;
                }
                return Some(vid);
            }
        }
        stats.fallback += 1;
        return None;
    };

    // Cache-aware: collect every qualifier, then prefer qualifiers on an
    // un-thrashed LLC domain, breaking ties by vcap headroom.
    let mut candidates: Vec<(VcpuId, Qualified)> = Vec::new();
    for v in allowed.iter_from(start) {
        let vid = VcpuId(v);
        if let Some(q) = qualify(
            kern,
            vact,
            tun,
            now,
            vid,
            median_cap,
            median_lat,
            state_check,
        ) {
            candidates.push((vid, q));
        }
    }
    if candidates.is_empty() {
        stats.fallback += 1;
        return None;
    }
    let mut pick: Option<(VcpuId, Qualified, f64, f64)> = None;
    for &(vid, q) in &candidates {
        let Some(p) = vc.pressure_of(vid, now, tun.vcache_staleness_ns) else {
            continue;
        };
        if p > best + tun.vcache_pick_margin {
            continue;
        }
        let headroom = kern.capacity_of(vid, now);
        if pick.is_none_or(|(_, _, _, h)| headroom > h) {
            pick = Some((vid, q, p, headroom));
        }
    }
    let (vid, q, pressure) = match pick {
        Some((vid, q, p, _)) => (vid, q, p),
        // No qualifier had a fresh domain estimate: behave like first-fit.
        None => {
            let (vid, q) = candidates[0];
            stats.placed += 1;
            if q == Qualified::BluePath {
                stats.blue_path += 1;
            }
            return Some(vid);
        }
    };
    stats.placed += 1;
    stats.cache_picks += 1;
    if q == Qualified::BluePath {
        stats.blue_path += 1;
    }
    kern.trace.emit(
        now,
        EventKind::CacheAwarePick {
            task: t.0,
            chosen: vid.0 as u16,
            domain: vc.domain(vid) as u16,
            pressure,
            best_pressure: best,
        },
    );
    Some(vid)
}
