//! vSched: optimizing task scheduling in cloud VMs with accurate vCPU
//! abstraction (EuroSys '25).
//!
//! This crate is the paper's contribution: entirely guest-side machinery —
//! no hypervisor modification — that
//!
//! 1. **probes** the real vCPU abstraction with three lightweight
//!    microbenchmarks (the *vProbers*): [`vcap`] for dynamic capacity,
//!    [`vact`] for activity (vCPU latency and state), [`vtop`] for
//!    topology (stacking / SMT / socket); and
//! 2. **optimizes** task scheduling with three techniques layered onto the
//!    stock CFS through hook points (the paper's BPF attach sites):
//!    [`bvs`] biased vCPU selection for small latency-sensitive tasks,
//!    [`ivh`] intra-VM harvesting of wasted vCPU time, and [`rwc`] relaxed
//!    work conservation hiding straggler and stacked vCPUs.
//!
//! # Usage
//!
//! ```ignore
//! // inside a hostsim scenario:
//! machine.with_vm(vm, |guest, plat| {
//!     vsched::install(guest, plat, VschedConfig::full());
//! });
//! ```
//!
//! [`VschedConfig::enhanced_cfs`] reproduces the paper's "enhanced CFS"
//! configuration (vProbers + rwc, no new policies); [`VschedConfig::full`]
//! is complete vSched.

pub mod bvs;
pub mod error;
pub mod ivh;
pub mod resilience;
pub mod rwc;
pub mod tunables;
pub mod vact;
pub mod vcache;
pub mod vcap;
pub mod vtop;

pub use bvs::BvsStats;
pub use error::ProbeError;
pub use ivh::Ivh;
pub use resilience::{ResilAction, ResilCfg, Resilience};
pub use rwc::Rwc;
pub use tunables::Tunables;
pub use vact::{ActState, Vact};
pub use vcache::Vcache;
pub use vcap::Vcap;
pub use vtop::{PairClass, Vtop};

use guestos::platform::HOOK_TIMER_BASE;
use guestos::{GuestOs, Kernel, Platform, SchedHooks, TaskId, VcpuId};
use simcore::SimTime;
use trace::ProbeKind;

/// Timer token: open a vcap sampling window (periodic).
pub const TOKEN_VCAP_OPEN: u64 = HOOK_TIMER_BASE + 1;
/// Timer token: close the current vcap sampling window.
pub const TOKEN_VCAP_CLOSE: u64 = HOOK_TIMER_BASE + 2;
/// Timer token: demote heavy-phase probers mid-window.
pub const TOKEN_VCAP_DEMOTE: u64 = HOOK_TIMER_BASE + 5;
/// Timer token: vtop probing period (periodic).
pub const TOKEN_VTOP_PERIOD: u64 = HOOK_TIMER_BASE + 3;
/// Timer token: vtop in-flight session check (1 ms while probing).
pub const TOKEN_VTOP_CHECK: u64 = HOOK_TIMER_BASE + 4;
/// Timer token: resilience watchdog (periodic while resilience is on).
pub const TOKEN_RESIL_WATCHDOG: u64 = HOOK_TIMER_BASE + 6;
/// Timer token: open a hardened-mode canary micro-probe (jittered offset
/// inside each inter-window gap).
pub const TOKEN_VCAP_CANARY_OPEN: u64 = HOOK_TIMER_BASE + 7;
/// Timer token: close the canary micro-probe.
pub const TOKEN_VCAP_CANARY_CLOSE: u64 = HOOK_TIMER_BASE + 8;
/// Timer token: open a vcache sampling window (periodic).
pub const TOKEN_VCACHE_PERIOD: u64 = HOOK_TIMER_BASE + 9;
/// Timer token: take the next vcache sample (or close the window).
pub const TOKEN_VCACHE_SAMPLE: u64 = HOOK_TIMER_BASE + 10;

/// Which vSched pieces are enabled.
#[derive(Debug, Clone)]
pub struct VschedConfig {
    /// Capacity prober.
    pub vcap: bool,
    /// Activity prober.
    pub vact: bool,
    /// Topology prober.
    pub vtop: bool,
    /// Biased vCPU selection.
    pub bvs: bool,
    /// Intra-VM harvesting.
    pub ivh: bool,
    /// Relaxed work conservation.
    pub rwc: bool,
    /// bvs consults the vCPU state (false = Table 3's ablation).
    pub bvs_state_check: bool,
    /// ivh pre-wakes targets (false = Table 4's activity-unaware ablation).
    pub ivh_prewake: bool,
    /// Resilience layer: confidence scoring, degraded mode, watchdog.
    /// `None` (the default) reproduces the paper's behavior exactly.
    pub resilience: Option<ResilCfg>,
    /// Hardened probing: windowed median/MAD outlier rejection and
    /// window-targeted interference detection on vcap samples (and vtop
    /// validation latencies), with an interference-suspicion score feeding
    /// the resilience layer. Off by default (the paper trusts its
    /// neighbours).
    pub hardened_probes: bool,
    /// LLC thrash prober + cache-aware bvs (the follow-up paper's cache
    /// abstraction). Off by default: the original paper has no cache
    /// dimension, and every pre-vcache configuration must stay
    /// byte-identical.
    pub vcache: bool,
    /// Tunables (Table 1 defaults).
    pub tunables: Tunables,
}

impl VschedConfig {
    /// Full vSched: all probers and all three techniques.
    pub fn full() -> Self {
        Self {
            vcap: true,
            vact: true,
            vtop: true,
            bvs: true,
            ivh: true,
            rwc: true,
            bvs_state_check: true,
            ivh_prewake: true,
            resilience: None,
            hardened_probes: false,
            vcache: false,
            tunables: Tunables::paper(),
        }
    }

    /// Full vSched plus the LLC abstraction: the vcache prober runs and
    /// bvs prefers vCPUs on sockets whose cache is not thrashed.
    pub fn cache_aware() -> Self {
        Self {
            vcache: true,
            ..Self::full()
        }
    }

    /// The paper's "enhanced CFS": accurate abstraction (vProbers) and rwc,
    /// but none of the new activity-aware policies.
    pub fn enhanced_cfs() -> Self {
        Self {
            bvs: false,
            ivh: false,
            ..Self::full()
        }
    }

    /// Probers only: expose the abstraction, change no policy.
    pub fn probers_only() -> Self {
        Self {
            bvs: false,
            ivh: false,
            rwc: false,
            ..Self::full()
        }
    }

    /// Disables the bvs state check (Table 3 ablation).
    pub fn without_bvs_state_check(mut self) -> Self {
        self.bvs_state_check = false;
        self
    }

    /// Disables ivh pre-waking (Table 4 ablation).
    pub fn without_ivh_prewake(mut self) -> Self {
        self.ivh_prewake = false;
        self
    }

    /// Enables the resilience layer with the given knobs.
    pub fn with_resilience(mut self, cfg: ResilCfg) -> Self {
        self.resilience = Some(cfg);
        self
    }

    /// Enables hardened probing (adversarial co-tenancy defence).
    pub fn with_hardened_probes(mut self) -> Self {
        self.hardened_probes = true;
        self
    }
}

/// The installed vSched instance: owns the probers and policies and
/// implements the scheduler hook surface.
pub struct Vsched {
    /// Active configuration.
    pub cfg: VschedConfig,
    /// Capacity prober.
    pub vcap: Vcap,
    /// Activity prober.
    pub vact: Vact,
    /// Topology prober.
    pub vtop: Vtop,
    /// LLC thrash prober.
    pub vcache: Vcache,
    /// Harvesting engine.
    pub ivh: Ivh,
    /// Work-conservation policy.
    pub rwc: Rwc,
    /// bvs decision statistics.
    pub bvs_stats: BvsStats,
    /// Resilience layer (when configured).
    pub resil: Option<Resilience>,
    vtop_check_armed: bool,
    vtop_ran_once: bool,
}

impl Vsched {
    fn new(nr_vcpus: usize, tick_ns: u64, cfg: VschedConfig, now: SimTime) -> Self {
        let mut vcap = Vcap::new(nr_vcpus, &cfg.tunables);
        vcap.hardened = cfg.hardened_probes;
        let mut vtop = Vtop::new(nr_vcpus, cfg.tunables.clone());
        vtop.hardened = cfg.hardened_probes;
        let mut resil = cfg.resilience.clone().map(|rc| Resilience::new(rc, now));
        if let Some(r) = resil.as_mut() {
            r.set_vcache_enabled(cfg.vcache);
        }
        Self {
            vcap,
            vact: Vact::new(nr_vcpus, tick_ns, &cfg.tunables, now),
            vtop,
            vcache: Vcache::new(nr_vcpus, &cfg.tunables),
            ivh: Ivh::new(nr_vcpus, cfg.ivh_prewake),
            rwc: Rwc::new(nr_vcpus),
            bvs_stats: BvsStats::default(),
            resil,
            vtop_check_armed: false,
            vtop_ran_once: false,
            cfg,
        }
    }

    /// Whether the resilience layer currently distrusts the abstraction
    /// (bvs/ivh/rwc suppressed, vanilla-CFS placement in force).
    pub fn degraded(&self) -> bool {
        self.resil.as_ref().is_some_and(|r| r.degraded())
    }

    /// Applies a freshly probed topology: rebuild domains, update rwc bans,
    /// retire vcap probers on newly banned vCPUs.
    fn install_topology(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) {
        let Some(topo) = self.vtop.take_installed() else {
            return;
        };
        kern.install_topology(&topo);
        if self.cfg.vcache {
            // LLC domains follow the probed socket partition; a changed
            // partition resets the pressure estimates (they described
            // sockets that no longer exist).
            self.vcache.set_domains(&topo);
        }
        if self.cfg.rwc {
            let groups = self.vtop.stacked_groups();
            match self.rwc.update_stacking(kern, plat, &groups) {
                Ok(newly_banned) => {
                    for v in newly_banned {
                        self.vcap.ban_vcpu(kern, plat, v);
                    }
                    // Unbanned vCPUs may be probed again.
                    for v in 0..self.rwc.banned.len() {
                        if !self.rwc.banned[v] {
                            self.vcap.unban_vcpu(v);
                        }
                    }
                }
                // Malformed probed topology: keep the previous ban set.
                Err(e) => self.probe_error(kern, plat, e),
            }
        }
    }

    fn arm_vtop_check(&mut self, plat: &mut dyn Platform) {
        if !self.vtop_check_armed {
            self.vtop_check_armed = true;
            let at = plat.now().after(1_000_000);
            plat.set_timer(TOKEN_VTOP_CHECK, at);
        }
    }

    /// Routes a prober failure into the resilience layer (no-op without
    /// one: the estimates simply stay at their last good values).
    fn probe_error(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, err: ProbeError) {
        let now = plat.now();
        let action = match self.resil.as_mut() {
            Some(r) => r.degrade_on_error(kern, now, err),
            None => return,
        };
        if action == ResilAction::EnteredDegraded {
            self.on_entered_degraded(kern, plat);
        }
    }

    /// Degraded-mode entry actions: abandon every in-flight harvest, lift
    /// rwc's capacity-based restrictions, and withdraw the published
    /// capacity overrides (all rely on estimates that are no longer
    /// trusted — vanilla CFS must not be steered by them either).
    fn on_entered_degraded(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) {
        let now = plat.now();
        let pulls = self.ivh.take_all_pulls(now);
        self.abandon_pulls(kern, now, pulls);
        self.rwc.clear_stragglers(kern);
        self.vcap.suppress_publish = true;
        self.vcap.unpublish(kern);
    }

    fn abandon_pulls(
        &mut self,
        kern: &mut Kernel,
        now: SimTime,
        pulls: Vec<(VcpuId, VcpuId, TaskId, u64)>,
    ) {
        for (target, src, task, waited_ns) in pulls {
            kern.stats.ivh_abandoned.inc();
            kern.trace.emit(
                now,
                trace::EventKind::IvhAbandonedByWatchdog {
                    task: task.0,
                    src: src.0 as u16,
                    target: target.0 as u16,
                    waited_ns,
                },
            );
            if let Some(r) = self.resil.as_mut() {
                r.watchdog_abandons += 1;
            }
        }
    }

    /// A bounded degraded-mode re-probe: an early vcap window or a vtop
    /// validation pass, whichever prober is trusted least.
    fn force_reprobe(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, probe: ProbeKind) {
        let now = plat.now();
        match probe {
            ProbeKind::Vcap | ProbeKind::VcapCore | ProbeKind::Vact => {
                if self.cfg.vcap && !self.vcap.window_open() {
                    self.vcap.suppress_heavy = self.degraded();
                    self.vcap.open_window(kern, plat);
                    plat.set_timer(TOKEN_VCAP_DEMOTE, now.after(15_000_000));
                    plat.set_timer(
                        TOKEN_VCAP_CLOSE,
                        now.after(self.cfg.tunables.vcap_sampling_period_ns),
                    );
                }
            }
            ProbeKind::Vtop => {
                if self.cfg.vtop && !self.vtop.probing() {
                    self.vtop.start_validation(kern, plat);
                    if self.vtop.probing() {
                        self.arm_vtop_check(plat);
                    } else {
                        self.install_topology(kern, plat);
                    }
                }
            }
            ProbeKind::Vcache => {
                if self.cfg.vcache && !self.vcache.window_open() {
                    self.vcache.open_window();
                    plat.set_timer(
                        TOKEN_VCACHE_SAMPLE,
                        now.after(self.cfg.tunables.vcache_sample_gap_ns),
                    );
                }
            }
        }
    }
}

impl SchedHooks for Vsched {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn select_cpu(
        &mut self,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
        task: TaskId,
        _prev: VcpuId,
    ) -> Option<VcpuId> {
        if !self.cfg.bvs || self.degraded() {
            // Degraded: the activity/capacity estimates backing bvs are
            // untrusted — fall through to vanilla CFS selection.
            return None;
        }
        let chosen = bvs::select(
            kern,
            plat,
            &self.vact,
            &self.vcap,
            self.cfg.vcache.then_some(&self.vcache),
            &self.cfg.tunables,
            &mut self.bvs_stats,
            task,
            self.cfg.bvs_state_check,
        );
        kern.trace.emit(
            plat.now(),
            trace::EventKind::BvsSelect {
                task: task.0,
                chosen: chosen.map(|v| v.0 as u16),
            },
        );
        chosen
    }

    fn on_tick(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, v: VcpuId) {
        if self.cfg.vact {
            let steal = plat.steal_ns(v);
            self.vact.on_tick(v, plat.now(), steal);
        }
        if self.cfg.ivh && !self.degraded() {
            self.ivh
                .on_tick(kern, plat, &self.vact, &self.cfg.tunables, v);
        }
    }

    fn on_vcpu_start(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, v: VcpuId) {
        if self.cfg.ivh {
            self.ivh
                .on_vcpu_start(kern, plat, &self.vact, &self.cfg.tunables, v);
        }
        if self.cfg.vtop && self.vtop.probing() {
            match self.vtop.update_sessions(kern, plat) {
                Ok(_) => self.install_topology(kern, plat),
                Err(e) => self.probe_error(kern, plat, e),
            }
        }
    }

    fn on_vcpu_stop(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, v: VcpuId) {
        let _ = v;
        if self.cfg.vtop && self.vtop.probing() {
            match self.vtop.update_sessions(kern, plat) {
                Ok(_) => self.install_topology(kern, plat),
                Err(e) => self.probe_error(kern, plat, e),
            }
        }
    }

    fn on_timer(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, token: u64) {
        match token {
            TOKEN_VCAP_OPEN => {
                if self.cfg.vcap && !self.vcap.window_open() {
                    self.vcap.suppress_heavy = self.degraded();
                    self.vcap.open_window(kern, plat);
                }
                let now = plat.now();
                // Heavy probers yield their priority once the measurement
                // has enough runtime (15 ms).
                plat.set_timer(TOKEN_VCAP_DEMOTE, now.after(15_000_000));
                plat.set_timer(
                    TOKEN_VCAP_CLOSE,
                    now.after(self.cfg.tunables.vcap_sampling_period_ns),
                );
                plat.set_timer(
                    TOKEN_VCAP_OPEN,
                    now.after(self.cfg.tunables.vcap_light_every_ns),
                );
                if self.cfg.vcap && self.vcap.hardened {
                    // The hardening baseline: one canary micro-probe per
                    // inter-window gap, at a jittered offset the adversary
                    // cannot predict from the window schedule.
                    plat.set_timer(
                        TOKEN_VCAP_CANARY_OPEN,
                        now.after(self.vcap.canary_offset_ns()),
                    );
                }
            }
            TOKEN_VCAP_DEMOTE if self.cfg.vcap => {
                self.vcap.demote_heavy(kern, plat);
            }
            TOKEN_VCAP_CANARY_OPEN if self.cfg.vcap && self.vcap.hardened => {
                self.vcap.open_canary(kern, plat);
                plat.set_timer(TOKEN_VCAP_CANARY_CLOSE, plat.now().after(vcap::CANARY_NS));
            }
            TOKEN_VCAP_CANARY_CLOSE if self.cfg.vcap => {
                self.vcap.close_canary(kern, plat);
            }
            TOKEN_VCAP_CLOSE => {
                if self.cfg.vcap && self.vcap.window_open() {
                    match self.vcap.close_window(kern, plat) {
                        Ok(()) => {
                            if let Some(r) = self.resil.as_mut() {
                                r.observe_vcap(plat.now(), &self.vcap);
                                if self.vcap.hardened {
                                    r.observe_suspicion(
                                        plat.now(),
                                        ProbeKind::Vcap,
                                        self.vcap.suspicion,
                                    );
                                }
                            }
                        }
                        Err(e) => self.probe_error(kern, plat, e),
                    }
                }
                if self.cfg.vact {
                    self.vact.close_window(kern, plat.now());
                    if let Some(r) = self.resil.as_mut() {
                        r.observe_vact(plat.now(), &self.vact);
                    }
                }
                // Degraded: the capacity estimates feeding straggler
                // detection are untrusted, so rwc relaxation stays capped.
                if self.cfg.rwc && self.cfg.vcap && !self.degraded() {
                    self.rwc
                        .update_stragglers(kern, plat, &self.vcap, &self.cfg.tunables);
                }
            }
            TOKEN_VTOP_PERIOD => {
                // Degraded: no periodic probe starts — vtop's high-priority
                // ping-pong probers disturb the workload, and the watchdog's
                // bounded retries already re-probe at a controlled pace.
                if self.cfg.vtop && !self.vtop.probing() && !self.degraded() {
                    if self.vtop_ran_once {
                        self.vtop.start_validation(kern, plat);
                    } else {
                        self.vtop.start_full(kern, plat);
                        self.vtop_ran_once = true;
                    }
                    if self.vtop.probing() {
                        self.arm_vtop_check(plat);
                    } else {
                        self.install_topology(kern, plat);
                    }
                }
                let now = plat.now();
                plat.set_timer(
                    TOKEN_VTOP_PERIOD,
                    now.after(self.cfg.tunables.vtop_period_ns),
                );
            }
            TOKEN_VTOP_CHECK => {
                self.vtop_check_armed = false;
                let still = match self.vtop.update_sessions(kern, plat) {
                    Ok(still) => {
                        self.install_topology(kern, plat);
                        still
                    }
                    Err(e) => {
                        self.probe_error(kern, plat, e);
                        false
                    }
                };
                if still {
                    self.arm_vtop_check(plat);
                }
            }
            TOKEN_VCACHE_PERIOD => {
                let now = plat.now();
                if self.cfg.vcache && !self.vcache.window_open() {
                    self.vcache.open_window();
                    plat.set_timer(
                        TOKEN_VCACHE_SAMPLE,
                        now.after(self.cfg.tunables.vcache_sample_gap_ns),
                    );
                }
                plat.set_timer(
                    TOKEN_VCACHE_PERIOD,
                    now.after(self.cfg.tunables.vcache_period_ns),
                );
            }
            TOKEN_VCACHE_SAMPLE if self.cfg.vcache && self.vcache.window_open() => {
                if self.vcache.sample_step(kern, plat) {
                    plat.set_timer(
                        TOKEN_VCACHE_SAMPLE,
                        plat.now().after(self.cfg.tunables.vcache_sample_gap_ns),
                    );
                } else {
                    match self.vcache.close_window(kern, plat) {
                        Ok(()) => {
                            if let Some(r) = self.resil.as_mut() {
                                r.observe_vcache(plat.now(), &self.vcache);
                                r.observe_suspicion(
                                    plat.now(),
                                    ProbeKind::Vcache,
                                    self.vcache.suspicion,
                                );
                            }
                        }
                        Err(e) => self.probe_error(kern, plat, e),
                    }
                }
            }
            TOKEN_RESIL_WATCHDOG => {
                let now = plat.now();
                let Some(timeout) = self.resil.as_ref().map(|r| r.cfg.pull_timeout_ns) else {
                    return;
                };
                // A pre-woken target that never started (offlined, crushed,
                // or re-pinned away) would hold its pull slot forever.
                let stale = self.ivh.take_stale_pulls(now, timeout);
                self.abandon_pulls(kern, now, stale);
                let action = match self.resil.as_mut() {
                    Some(r) => {
                        r.observe_vtop(now, self.vtop.validations, self.vtop.validation_failures);
                        if self.vtop.hardened {
                            r.observe_suspicion(now, ProbeKind::Vtop, self.vtop.suspicion);
                        }
                        r.on_watchdog(kern, now)
                    }
                    None => ResilAction::None,
                };
                match action {
                    ResilAction::EnteredDegraded => self.on_entered_degraded(kern, plat),
                    ResilAction::Reprobe(p) => self.force_reprobe(kern, plat, p),
                    ResilAction::ExitedDegraded => {
                        // Re-trusted: the next window republishes overrides.
                        self.vcap.suppress_publish = false;
                    }
                    ResilAction::None => {}
                }
                if let Some(r) = &self.resil {
                    plat.set_timer(TOKEN_RESIL_WATCHDOG, now.after(r.cfg.watchdog_period_ns));
                }
            }
            _ => {}
        }
    }
}

/// Installs vSched into a guest: creates the instance, arms the prober
/// timers, and attaches the hook set (the paper's out-of-tree module + BPF
/// programs loading at boot).
pub fn install(guest: &mut GuestOs, plat: &mut dyn Platform, cfg: VschedConfig) {
    let nr = guest.kern.cfg.nr_vcpus;
    let tick = guest.kern.cfg.tick_ns;
    let now = plat.now();
    let vs = Vsched::new(nr, tick, cfg, now);
    if let Some(r) = &vs.resil {
        // The watchdog's first tick lands before the first probe window so
        // a low entry threshold (or an already-poisoned config) degrades
        // the VM before any heavy prober gets to run.
        plat.set_timer(
            TOKEN_RESIL_WATCHDOG,
            now.after(r.cfg.watchdog_period_ns.min(5_000_000)),
        );
    }
    if vs.cfg.vcap || vs.cfg.vact {
        plat.set_timer(TOKEN_VCAP_OPEN, now.after(10_000_000));
    }
    if vs.cfg.vtop {
        plat.set_timer(TOKEN_VTOP_PERIOD, now.after(50_000_000));
    }
    if vs.cfg.vcache {
        // First window after the first vtop pass has had a chance to
        // install real LLC domains (single-domain estimates are still
        // sound, just coarser).
        plat.set_timer(TOKEN_VCACHE_PERIOD, now.after(30_000_000));
    }
    guest.install_hooks(Box::new(vs));
}

/// Convenience: borrows the installed [`Vsched`] back out of a guest.
pub fn instance(guest: &mut GuestOs) -> Option<&mut Vsched> {
    guest.hooks_mut()?.as_any().downcast_mut::<Vsched>()
}
