//! vSched: optimizing task scheduling in cloud VMs with accurate vCPU
//! abstraction (EuroSys '25).
//!
//! This crate is the paper's contribution: entirely guest-side machinery —
//! no hypervisor modification — that
//!
//! 1. **probes** the real vCPU abstraction with three lightweight
//!    microbenchmarks (the *vProbers*): [`vcap`] for dynamic capacity,
//!    [`vact`] for activity (vCPU latency and state), [`vtop`] for
//!    topology (stacking / SMT / socket); and
//! 2. **optimizes** task scheduling with three techniques layered onto the
//!    stock CFS through hook points (the paper's BPF attach sites):
//!    [`bvs`] biased vCPU selection for small latency-sensitive tasks,
//!    [`ivh`] intra-VM harvesting of wasted vCPU time, and [`rwc`] relaxed
//!    work conservation hiding straggler and stacked vCPUs.
//!
//! # Usage
//!
//! ```ignore
//! // inside a hostsim scenario:
//! machine.with_vm(vm, |guest, plat| {
//!     vsched::install(guest, plat, VschedConfig::full());
//! });
//! ```
//!
//! [`VschedConfig::enhanced_cfs`] reproduces the paper's "enhanced CFS"
//! configuration (vProbers + rwc, no new policies); [`VschedConfig::full`]
//! is complete vSched.

pub mod bvs;
pub mod ivh;
pub mod rwc;
pub mod tunables;
pub mod vact;
pub mod vcap;
pub mod vtop;

pub use bvs::BvsStats;
pub use ivh::Ivh;
pub use rwc::Rwc;
pub use tunables::Tunables;
pub use vact::{ActState, Vact};
pub use vcap::Vcap;
pub use vtop::{PairClass, Vtop};

use guestos::platform::HOOK_TIMER_BASE;
use guestos::{GuestOs, Kernel, Platform, SchedHooks, TaskId, VcpuId};

/// Timer token: open a vcap sampling window (periodic).
pub const TOKEN_VCAP_OPEN: u64 = HOOK_TIMER_BASE + 1;
/// Timer token: close the current vcap sampling window.
pub const TOKEN_VCAP_CLOSE: u64 = HOOK_TIMER_BASE + 2;
/// Timer token: demote heavy-phase probers mid-window.
pub const TOKEN_VCAP_DEMOTE: u64 = HOOK_TIMER_BASE + 5;
/// Timer token: vtop probing period (periodic).
pub const TOKEN_VTOP_PERIOD: u64 = HOOK_TIMER_BASE + 3;
/// Timer token: vtop in-flight session check (1 ms while probing).
pub const TOKEN_VTOP_CHECK: u64 = HOOK_TIMER_BASE + 4;

/// Which vSched pieces are enabled.
#[derive(Debug, Clone)]
pub struct VschedConfig {
    /// Capacity prober.
    pub vcap: bool,
    /// Activity prober.
    pub vact: bool,
    /// Topology prober.
    pub vtop: bool,
    /// Biased vCPU selection.
    pub bvs: bool,
    /// Intra-VM harvesting.
    pub ivh: bool,
    /// Relaxed work conservation.
    pub rwc: bool,
    /// bvs consults the vCPU state (false = Table 3's ablation).
    pub bvs_state_check: bool,
    /// ivh pre-wakes targets (false = Table 4's activity-unaware ablation).
    pub ivh_prewake: bool,
    /// Tunables (Table 1 defaults).
    pub tunables: Tunables,
}

impl VschedConfig {
    /// Full vSched: all probers and all three techniques.
    pub fn full() -> Self {
        Self {
            vcap: true,
            vact: true,
            vtop: true,
            bvs: true,
            ivh: true,
            rwc: true,
            bvs_state_check: true,
            ivh_prewake: true,
            tunables: Tunables::paper(),
        }
    }

    /// The paper's "enhanced CFS": accurate abstraction (vProbers) and rwc,
    /// but none of the new activity-aware policies.
    pub fn enhanced_cfs() -> Self {
        Self {
            bvs: false,
            ivh: false,
            ..Self::full()
        }
    }

    /// Probers only: expose the abstraction, change no policy.
    pub fn probers_only() -> Self {
        Self {
            bvs: false,
            ivh: false,
            rwc: false,
            ..Self::full()
        }
    }

    /// Disables the bvs state check (Table 3 ablation).
    pub fn without_bvs_state_check(mut self) -> Self {
        self.bvs_state_check = false;
        self
    }

    /// Disables ivh pre-waking (Table 4 ablation).
    pub fn without_ivh_prewake(mut self) -> Self {
        self.ivh_prewake = false;
        self
    }
}

/// The installed vSched instance: owns the probers and policies and
/// implements the scheduler hook surface.
pub struct Vsched {
    /// Active configuration.
    pub cfg: VschedConfig,
    /// Capacity prober.
    pub vcap: Vcap,
    /// Activity prober.
    pub vact: Vact,
    /// Topology prober.
    pub vtop: Vtop,
    /// Harvesting engine.
    pub ivh: Ivh,
    /// Work-conservation policy.
    pub rwc: Rwc,
    /// bvs decision statistics.
    pub bvs_stats: BvsStats,
    vtop_check_armed: bool,
    vtop_ran_once: bool,
}

impl Vsched {
    fn new(nr_vcpus: usize, tick_ns: u64, cfg: VschedConfig, now: simcore::SimTime) -> Self {
        Self {
            vcap: Vcap::new(nr_vcpus, &cfg.tunables),
            vact: Vact::new(nr_vcpus, tick_ns, &cfg.tunables, now),
            vtop: Vtop::new(nr_vcpus, cfg.tunables.clone()),
            ivh: Ivh::new(nr_vcpus, cfg.ivh_prewake),
            rwc: Rwc::new(nr_vcpus),
            bvs_stats: BvsStats::default(),
            vtop_check_armed: false,
            vtop_ran_once: false,
            cfg,
        }
    }

    /// Applies a freshly probed topology: rebuild domains, update rwc bans,
    /// retire vcap probers on newly banned vCPUs.
    fn install_topology(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) {
        let Some(topo) = self.vtop.take_installed() else {
            return;
        };
        kern.install_topology(&topo);
        if self.cfg.rwc {
            let groups = self.vtop.stacked_groups();
            let newly_banned = self.rwc.update_stacking(kern, plat, &groups);
            for v in newly_banned {
                self.vcap.ban_vcpu(kern, plat, v);
            }
            // Unbanned vCPUs may be probed again.
            for v in 0..self.rwc.banned.len() {
                if !self.rwc.banned[v] {
                    self.vcap.unban_vcpu(v);
                }
            }
        }
    }

    fn arm_vtop_check(&mut self, plat: &mut dyn Platform) {
        if !self.vtop_check_armed {
            self.vtop_check_armed = true;
            let at = plat.now().after(1_000_000);
            plat.set_timer(TOKEN_VTOP_CHECK, at);
        }
    }
}

impl SchedHooks for Vsched {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn select_cpu(
        &mut self,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
        task: TaskId,
        _prev: VcpuId,
    ) -> Option<VcpuId> {
        if !self.cfg.bvs {
            return None;
        }
        let chosen = bvs::select(
            kern,
            plat,
            &self.vact,
            &self.vcap,
            &self.cfg.tunables,
            &mut self.bvs_stats,
            task,
            self.cfg.bvs_state_check,
        );
        kern.trace.emit(
            plat.now(),
            trace::EventKind::BvsSelect {
                task: task.0,
                chosen: chosen.map(|v| v.0 as u16),
            },
        );
        chosen
    }

    fn on_tick(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, v: VcpuId) {
        if self.cfg.vact {
            let steal = plat.steal_ns(v);
            self.vact.on_tick(v, plat.now(), steal);
        }
        if self.cfg.ivh {
            self.ivh
                .on_tick(kern, plat, &self.vact, &self.cfg.tunables, v);
        }
    }

    fn on_vcpu_start(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, v: VcpuId) {
        if self.cfg.ivh {
            self.ivh
                .on_vcpu_start(kern, plat, &self.vact, &self.cfg.tunables, v);
        }
        if self.cfg.vtop && self.vtop.probing() {
            self.vtop.update_sessions(kern, plat);
            self.install_topology(kern, plat);
        }
    }

    fn on_vcpu_stop(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, v: VcpuId) {
        let _ = v;
        if self.cfg.vtop && self.vtop.probing() {
            self.vtop.update_sessions(kern, plat);
            self.install_topology(kern, plat);
        }
    }

    fn on_timer(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, token: u64) {
        match token {
            TOKEN_VCAP_OPEN => {
                if self.cfg.vcap && !self.vcap.window_open() {
                    self.vcap.open_window(kern, plat);
                }
                let now = plat.now();
                // Heavy probers yield their priority once the measurement
                // has enough runtime (15 ms).
                plat.set_timer(TOKEN_VCAP_DEMOTE, now.after(15_000_000));
                plat.set_timer(
                    TOKEN_VCAP_CLOSE,
                    now.after(self.cfg.tunables.vcap_sampling_period_ns),
                );
                plat.set_timer(
                    TOKEN_VCAP_OPEN,
                    now.after(self.cfg.tunables.vcap_light_every_ns),
                );
            }
            TOKEN_VCAP_DEMOTE if self.cfg.vcap => {
                self.vcap.demote_heavy(kern, plat);
            }
            TOKEN_VCAP_CLOSE => {
                if self.cfg.vcap && self.vcap.window_open() {
                    self.vcap.close_window(kern, plat);
                }
                if self.cfg.vact {
                    self.vact.close_window(kern, plat.now());
                }
                if self.cfg.rwc && self.cfg.vcap {
                    self.rwc
                        .update_stragglers(kern, plat, &self.vcap, &self.cfg.tunables);
                }
            }
            TOKEN_VTOP_PERIOD => {
                if self.cfg.vtop && !self.vtop.probing() {
                    if self.vtop_ran_once {
                        self.vtop.start_validation(kern, plat);
                    } else {
                        self.vtop.start_full(kern, plat);
                        self.vtop_ran_once = true;
                    }
                    if self.vtop.probing() {
                        self.arm_vtop_check(plat);
                    } else {
                        self.install_topology(kern, plat);
                    }
                }
                let now = plat.now();
                plat.set_timer(
                    TOKEN_VTOP_PERIOD,
                    now.after(self.cfg.tunables.vtop_period_ns),
                );
            }
            TOKEN_VTOP_CHECK => {
                self.vtop_check_armed = false;
                let still = self.vtop.update_sessions(kern, plat);
                self.install_topology(kern, plat);
                if still {
                    self.arm_vtop_check(plat);
                }
            }
            _ => {}
        }
    }
}

/// Installs vSched into a guest: creates the instance, arms the prober
/// timers, and attaches the hook set (the paper's out-of-tree module + BPF
/// programs loading at boot).
pub fn install(guest: &mut GuestOs, plat: &mut dyn Platform, cfg: VschedConfig) {
    let nr = guest.kern.cfg.nr_vcpus;
    let tick = guest.kern.cfg.tick_ns;
    let now = plat.now();
    let vs = Vsched::new(nr, tick, cfg, now);
    if vs.cfg.vcap || vs.cfg.vact {
        plat.set_timer(TOKEN_VCAP_OPEN, now.after(10_000_000));
    }
    if vs.cfg.vtop {
        plat.set_timer(TOKEN_VTOP_PERIOD, now.after(50_000_000));
    }
    guest.install_hooks(Box::new(vs));
}

/// Convenience: borrows the installed [`Vsched`] back out of a guest.
pub fn instance(guest: &mut GuestOs) -> Option<&mut Vsched> {
    guest.hooks_mut()?.as_any().downcast_mut::<Vsched>()
}
