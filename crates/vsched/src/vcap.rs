//! `vcap`: the vCPU capacity prober (paper §3.1).
//!
//! Cooperative, multi-phase sampling. Every second, one prober thread per
//! vCPU runs for a 100 ms window:
//!
//! * **Light phase** (default): probers run at `SCHED_IDLE` priority, only
//!   consuming cycles the workload leaves idle. Keeping the vCPU busy makes
//!   steal observable, so the window yields the *share* of core time the
//!   vCPU receives: `1 − steal/window`. Multiplied by the last known core
//!   capacity this gives the vCPU capacity.
//! * **Heavy phase** (every 5th sampling): probers run at high priority and
//!   the work they complete per unit of active time *is* the hosting core's
//!   capacity (it folds in DVFS and SMT contention), refreshing the core
//!   estimate that light phases rely on.
//!
//! Samples are smoothed with an EMA (half-life 2 periods, Table 1) and
//! installed into the kernel as the per-vCPU capacity override — the
//! "kernel module updating per-vCPU data" of paper §4.

use crate::error::ProbeError;
use crate::tunables::Tunables;
use guestos::{CpuMask, Kernel, Platform, Policy, SpawnSpec, TaskId, TaskProgram, VcpuId};
use metrics::Ema;
use simcore::SimTime;
use std::collections::VecDeque;

/// High-priority weight used by heavy-phase probers (nice −20).
const HEAVY_WEIGHT: u64 = 88761;

/// Accepted samples remembered per vCPU for outlier rejection.
const HISTORY_CAP: usize = 8;
/// Outlier tests need at least this much history to be meaningful.
const HISTORY_MIN: usize = 4;
/// A window whose steal rate exceeds this multiple of the canary baseline
/// (plus [`TARGETED_RATE_FLOOR`]) is treated as window-targeted
/// interference. Honest contention presses on the vCPU around the clock,
/// so window and canary rates agree; only an adversary synchronized to
/// the probe schedule concentrates steal inside the windows.
const TARGETED_RATE_RATIO: f64 = 4.0;
/// Absolute steal-rate floor for the targeted test: keeps a nearly idle
/// host (baseline rate ≈ 0) from flagging microscopic jitter.
const TARGETED_RATE_FLOOR: f64 = 0.05;
/// Length of a canary micro-probe (hardened mode): long enough for a
/// meaningful steal reading, short enough to stay invisible (~0.5% of a
/// vCPU at the 1 s window cadence).
pub const CANARY_NS: u64 = 5_000_000;

/// The capacity prober.
pub struct Vcap {
    nr_vcpus: usize,
    period_ns: u64,
    heavy_every: u32,
    probers: Vec<Option<TaskId>>,
    heavy_probers: Vec<Option<TaskId>>,
    /// vCPUs vcap must not touch (rwc-banned stacked vCPUs).
    pub skip: Vec<bool>,
    /// Degraded mode: force light phases only. Heavy probers run at high
    /// priority and visibly disturb the workload; a degraded scheduler
    /// must not add that cost on top of an already-misbehaving host.
    /// Light windows still feed the capacity EMAs (through the last known
    /// core estimate), so confidence can recover without the disturbance.
    pub suppress_heavy: bool,
    /// Degraded mode: keep sampling but do not publish the estimates into
    /// the kernel (`cap_override`, `asym_capacity`). Untrusted capacities
    /// must not steer CFS wakeup placement or misfit balancing; windows
    /// only feed the EMAs so confidence can recover.
    pub suppress_publish: bool,
    /// The single vCPU this window probes when degraded (round-robin).
    /// A light prober still keeps its vCPU host-busy for the whole window,
    /// which costs real capacity on a stacked or DVFS-slowed core —
    /// exactly the hosts a degraded scheduler runs on — so degraded
    /// windows disturb one vCPU at a time instead of all of them.
    window_rr: Option<usize>,
    window_open: bool,
    window_heavy: bool,
    light_count: u32,
    start_steal: Vec<u64>,
    /// Hardened probing (adversarial co-tenancy): reject window-targeted
    /// interference and statistical outliers before they reach the EMAs.
    pub hardened: bool,
    /// Accepted samples per vCPU, newest last (hardened mode only).
    history: Vec<VecDeque<f64>>,
    /// Baseline steal rate per vCPU, measured by canary micro-probes at
    /// schedule-jittered offsets between windows. An idle guest accrues
    /// no steal while its vCPUs have nothing to run, so the windows alone
    /// carry no baseline — without the canaries every honest always-on
    /// neighbour would look window-targeted.
    canary_rate: Vec<Option<f64>>,
    canary_start_steal: Vec<u64>,
    canary_open: bool,
    canary_opened_at: SimTime,
    /// When the current window opened.
    window_opened_at: SimTime,
    /// Interference-suspicion score in `[0, 1]`: bumped per rejected
    /// sample, decayed by clean windows. Fed to the resilience layer so a
    /// gamed prober erodes confidence instead of publishing poison.
    pub suspicion: f64,
    /// Samples rejected by hardening over the run.
    pub rejected_samples: u64,
    /// Probed core capacity per vCPU (EMA over heavy samples).
    pub core_cap: Vec<f64>,
    /// Published per-vCPU capacity estimates.
    pub cap: Vec<Ema>,
    /// Median of published capacities.
    pub median_cap: f64,
    /// Mean of published capacities.
    pub mean_cap: f64,
}

impl Vcap {
    /// Creates the prober.
    pub fn new(nr_vcpus: usize, tun: &Tunables) -> Self {
        Self {
            nr_vcpus,
            period_ns: tun.vcap_sampling_period_ns,
            heavy_every: tun.vcap_heavy_every,
            probers: vec![None; nr_vcpus],
            heavy_probers: vec![None; nr_vcpus],
            skip: vec![false; nr_vcpus],
            suppress_heavy: false,
            suppress_publish: false,
            window_rr: None,
            window_open: false,
            window_heavy: false,
            light_count: 0,
            start_steal: vec![0; nr_vcpus],
            hardened: false,
            history: vec![VecDeque::new(); nr_vcpus],
            canary_rate: vec![None; nr_vcpus],
            canary_start_steal: vec![0; nr_vcpus],
            canary_open: false,
            canary_opened_at: SimTime::ZERO,
            window_opened_at: SimTime::ZERO,
            suspicion: 0.0,
            rejected_samples: 0,
            core_cap: vec![1024.0; nr_vcpus],
            cap: vec![Ema::from_half_life(tun.vcap_ema_half_life); nr_vcpus],
            median_cap: 1024.0,
            mean_cap: 1024.0,
        }
    }

    /// Whether a sampling window is currently open.
    pub fn window_open(&self) -> bool {
        self.window_open
    }

    /// Seeds a vCPU's capacity estimate before any probe window runs
    /// (fleet live migration handing probe state from the source host's
    /// instance to the destination's). The first `Ema::update` on an
    /// uninitialized estimator adopts the sample exactly, so the
    /// destination starts from the source's published capacity instead
    /// of the nominal 1024 and converges from there.
    pub fn seed_capacity(&mut self, v: VcpuId, cap: f64, core: f64) {
        self.cap[v.0].update(cap);
        self.core_cap[v.0] = core;
    }

    /// The published capacity of a vCPU (1024 scale; 1024 until probed).
    pub fn capacity(&self, v: VcpuId) -> f64 {
        if self.cap[v.0].initialized() {
            self.cap[v.0].get()
        } else {
            1024.0
        }
    }

    /// Opens a sampling window: wakes one prober per (non-skipped) vCPU at
    /// the phase-appropriate priority and snapshots the counters.
    pub fn open_window(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) {
        debug_assert!(!self.window_open);
        if self.canary_open {
            // A forced re-probe window can land mid-canary: finish the
            // canary first so the probers go through their regular
            // park/wake cycle before the window re-arms them.
            self.close_canary(kern, plat);
        }
        self.window_open = true;
        self.window_opened_at = plat.now();
        self.window_heavy =
            !self.suppress_heavy && self.light_count.is_multiple_of(self.heavy_every);
        self.window_rr = self
            .suppress_publish
            .then_some(self.light_count as usize % self.nr_vcpus);
        self.light_count = self.light_count.wrapping_add(1);
        for v in 0..self.nr_vcpus {
            if self.skip[v] || self.window_rr.is_some_and(|rr| rr != v) {
                continue;
            }
            // The persistent light prober: best-effort, only consumes
            // otherwise-idle cycles, keeps the vCPU busy so steal is
            // observable.
            let t = match self.probers[v] {
                Some(t) => t,
                None => {
                    let t = kern.spawn(plat.now(), Self::prober_spec(v, Policy::Idle));
                    kern.task_mut(t).remaining = guestos::kernel::BUILTIN_SPIN_WORK;
                    self.probers[v] = Some(t);
                    t
                }
            };
            self.start_steal[v] = plat.steal_ns(VcpuId(v));
            kern.wake_to(plat, t, VcpuId(v), None);
            if self.window_heavy {
                // A fresh short-lived high-priority prober measures the
                // core's work rate; it is retired after ~15 ms so the
                // disturbance stays small ("delicately measuring").
                let h = kern.spawn(
                    plat.now(),
                    Self::prober_spec(
                        v,
                        Policy::Normal {
                            weight: HEAVY_WEIGHT,
                        },
                    ),
                );
                kern.task_mut(h).remaining = guestos::kernel::BUILTIN_SPIN_WORK;
                self.heavy_probers[v] = Some(h);
                kern.wake_to(plat, h, VcpuId(v), None);
            }
        }
    }

    fn prober_spec(v: usize, policy: Policy) -> SpawnSpec {
        SpawnSpec {
            policy,
            affinity: CpuMask::single(v),
            program: TaskProgram::BuiltinSpin,
            latency_sensitive: false,
            comm_group: None,
            cache_sensitive: false,
            // Probing must still reach straggler vCPUs that rwc restricted
            // to best-effort tasks.
            bypass_cgroup: true,
        }
    }

    /// Closes the window: computes shares (and core capacities in heavy
    /// phase), feeds the EMAs, installs overrides, parks the probers.
    ///
    /// Errors when the window produced no usable sample (every vCPU
    /// skipped); previous capacity estimates stay installed.
    pub fn close_window(
        &mut self,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
    ) -> Result<(), ProbeError> {
        debug_assert!(self.window_open);
        self.window_open = false;
        let mut sampled = 0usize;
        let mut rejected_now = false;
        let window_rr = self.window_rr.take();
        for v in 0..self.nr_vcpus {
            if self.skip[v] || window_rr.is_some_and(|rr| rr != v) {
                continue;
            }
            let Some(t) = self.probers[v] else { continue };
            // Park the light prober first: this settles its accounting
            // through the regular stop path.
            kern.block_task(plat, t);
            let steal_now = plat.steal_ns(VcpuId(v));
            let steal_delta = steal_now.saturating_sub(self.start_steal[v]);
            let share = 1.0 - (steal_delta as f64 / self.period_ns as f64).clamp(0.0, 1.0);
            if self.window_heavy {
                if let Some(h) = self.heavy_probers[v].take() {
                    kern.kill_task(plat, h); // no-op if already retired
                    let work = kern.task(h).total_work;
                    let active = kern.task(h).total_active_ns;
                    if active > 2_000_000 {
                        // Work per active nanosecond *is* the core
                        // capacity; the measurement is direct, so weight
                        // it heavily over the stale estimate.
                        let core = work / active as f64;
                        self.core_cap[v] = 0.15 * self.core_cap[v] + 0.85 * core;
                    }
                }
            }
            let sample = self.core_cap[v] * share;
            if self.hardened {
                if let Some(median) = self.sample_rejected(v, sample, steal_delta) {
                    // A poisoned reading must not move the EMA, must not be
                    // published, and must not count toward `sampled` — an
                    // all-rejected window surfaces as `NoSamples` and rides
                    // the existing degraded-mode entry path.
                    self.rejected_samples += 1;
                    self.suspicion = (self.suspicion + 0.35).min(1.0);
                    rejected_now = true;
                    kern.trace.emit(
                        plat.now(),
                        trace::EventKind::ProbeRejected {
                            vcpu: v as u16,
                            probe: trace::ProbeKind::Vcap,
                            sample,
                            median,
                        },
                    );
                    continue;
                }
                let h = &mut self.history[v];
                h.push_back(sample);
                if h.len() > HISTORY_CAP {
                    h.pop_front();
                }
            }
            let ema = self.cap[v].update(sample);
            if !self.suppress_publish {
                kern.vcpus[v].cap_override = Some(ema.max(1.0));
            }
            sampled += 1;
            kern.trace.emit(
                plat.now(),
                trace::EventKind::ProbeSample {
                    vcpu: v as u16,
                    probe: trace::ProbeKind::Vcap,
                    value: ema,
                },
            );
        }
        let mut caps: Vec<f64> = (0..self.nr_vcpus)
            .filter(|&v| !self.skip[v])
            .map(|v| self.capacity(VcpuId(v)))
            .collect();
        // total_cmp orders NaN deterministically instead of panicking on a
        // poisoned comparison (a lying host can produce any f64).
        caps.sort_by(|a, b| a.total_cmp(b));
        if let (Some(&min), Some(&max)) = (caps.first(), caps.last()) {
            self.median_cap = caps[(caps.len() - 1) / 2];
            self.mean_cap = caps.iter().sum::<f64>() / caps.len() as f64;
            // Accurate capacity turns capacity-aware balancing back on:
            // declare asymmetry (SD_ASYM_CPUCAPACITY) when probed capacities
            // genuinely diverge.
            if !self.suppress_publish {
                kern.asym_capacity = max / min.max(1.0) > 1.3;
            }
        }
        if self.hardened && !rejected_now {
            // Clean windows decay suspicion; only sustained gaming keeps it
            // high enough to matter to the resilience layer.
            self.suspicion *= 0.6;
        }
        if sampled == 0 {
            return Err(ProbeError::NoSamples(trace::ProbeKind::Vcap));
        }
        Ok(())
    }

    /// Hardened-mode sample vetting. Returns `Some(history median)` when
    /// the sample must be rejected, on either of two grounds:
    ///
    /// * **window-targeted interference** — the steal rate observed
    ///   *inside* the probe window is far above the canary baseline.
    ///   Honest neighbours contend around the clock (rates agree); only an
    ///   adversary synchronized to the probe schedule concentrates its
    ///   interference inside the measurement — and the jittered canaries
    ///   are exactly what such an adversary cannot cover.
    /// * **statistical outlier** — the sample sits outside a robust
    ///   (median/MAD) band around the accepted history. Catches pollution
    ///   that slips past the rate test once enough clean history exists.
    fn sample_rejected(&self, v: usize, sample: f64, steal_delta: u64) -> Option<f64> {
        let inside_rate = steal_delta as f64 / self.period_ns as f64;
        let targeted = match self.canary_rate[v] {
            Some(baseline) => inside_rate > TARGETED_RATE_RATIO * baseline + TARGETED_RATE_FLOOR,
            // No canary has run yet: no baseline to compare against.
            None => false,
        };
        let h = &self.history[v];
        let med = if h.is_empty() {
            self.capacity(VcpuId(v))
        } else {
            median_of(h.iter().copied())
        };
        let outlier = h.len() >= HISTORY_MIN && {
            let mad = median_of(h.iter().map(|&x| (x - med).abs()));
            (sample - med).abs() > (4.0 * mad).max(0.25 * med)
        };
        (targeted || outlier).then_some(med)
    }

    /// Where in the current inter-window gap the next canary lands,
    /// relative to the window's open: deterministic but irregular
    /// (SplitMix64 over the window counter), so an adversary synchronized
    /// to the probe schedule cannot predict and cover it. The range
    /// `[150 ms, 850 ms)` keeps the canary clear of the 100 ms window at
    /// one end and the next 1 s open at the other.
    pub fn canary_offset_ns(&self) -> u64 {
        let mut x = (self.light_count as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        150_000_000 + x % 700_000_000
    }

    /// Opens a canary micro-probe: wakes the light probers for
    /// [`CANARY_NS`] to measure the *baseline* steal rate that
    /// [`Self::close_window`] compares the in-window rate against.
    pub fn open_canary(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) {
        if self.window_open || self.canary_open {
            return;
        }
        self.canary_open = true;
        self.canary_opened_at = plat.now();
        for v in 0..self.nr_vcpus {
            if self.skip[v] {
                continue;
            }
            let t = match self.probers[v] {
                Some(t) => t,
                None => {
                    let t = kern.spawn(plat.now(), Self::prober_spec(v, Policy::Idle));
                    kern.task_mut(t).remaining = guestos::kernel::BUILTIN_SPIN_WORK;
                    self.probers[v] = Some(t);
                    t
                }
            };
            self.canary_start_steal[v] = plat.steal_ns(VcpuId(v));
            kern.wake_to(plat, t, VcpuId(v), None);
        }
    }

    /// Closes the canary, parks the probers and folds the measured steal
    /// rates into the per-vCPU baseline (equal-weight blend, so the
    /// baseline tracks host churn within a few canaries).
    pub fn close_canary(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) {
        if !self.canary_open {
            return;
        }
        self.canary_open = false;
        let dur = plat.now().since(self.canary_opened_at);
        for v in 0..self.nr_vcpus {
            if self.skip[v] {
                continue;
            }
            let Some(t) = self.probers[v] else { continue };
            kern.block_task(plat, t);
            if dur == 0 {
                continue;
            }
            let delta = plat
                .steal_ns(VcpuId(v))
                .saturating_sub(self.canary_start_steal[v]);
            let rate = delta as f64 / dur as f64;
            self.canary_rate[v] = Some(match self.canary_rate[v] {
                Some(prev) => 0.5 * prev + 0.5 * rate,
                None => rate,
            });
        }
    }

    /// Retires the heavy-phase probers once they have executed long enough
    /// for an accurate work-rate measurement ("delicately measuring",
    /// §3.1): the reading only needs a few milliseconds of guaranteed
    /// execution, not the whole window. Their totals stay readable until
    /// the window closes.
    pub fn demote_heavy(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) {
        if !self.window_open || !self.window_heavy {
            return;
        }
        for v in 0..self.nr_vcpus {
            if let Some(t) = self.heavy_probers[v] {
                kern.kill_task(plat, t);
            }
        }
    }

    /// Withdraws every published estimate from the kernel (degraded-mode
    /// entry): with the overrides gone, CFS falls back to its own
    /// steal-observation heuristic instead of acting on untrusted numbers.
    pub fn unpublish(&mut self, kern: &mut Kernel) {
        for d in kern.vcpus.iter_mut() {
            d.cap_override = None;
        }
        kern.asym_capacity = false;
    }

    /// Kills the prober of a newly banned vCPU and marks it skipped.
    pub fn ban_vcpu(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, v: usize) {
        self.skip[v] = true;
        if let Some(t) = self.probers[v].take() {
            kern.kill_task(plat, t);
        }
    }

    /// Lifts a ban.
    pub fn unban_vcpu(&mut self, v: usize) {
        self.skip[v] = false;
    }
}

/// Median of a small sample set. `total_cmp` keeps a hostile NaN from
/// poisoning the sort (same reasoning as the capacity aggregates).
pub(crate) fn median_of(values: impl Iterator<Item = f64>) -> f64 {
    let mut xs: Vec<f64> = values.collect();
    xs.sort_by(|a, b| a.total_cmp(b));
    if xs.is_empty() {
        0.0
    } else {
        xs[(xs.len() - 1) / 2]
    }
}
