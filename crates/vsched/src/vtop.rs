//! `vtop`: the vCPU topology prober (paper §3.1).
//!
//! Topology is inferred from *measured cache-line transfer latency* between
//! vCPU pairs. A probe session pins one high-priority spinner per vCPU of
//! the pair; transfers only complete while both vCPUs are simultaneously
//! active, at the physical latency of their current placement — SMT
//! siblings are fast, same-socket medium, cross-socket slow, and stacked
//! vCPUs *never* overlap, so their sessions exhaust the attempt budget with
//! zero transfers and report infinite distance.
//!
//! The paper's three speed optimizations are implemented:
//!
//! 1. **Inference skipping** — a vCPU found stacked/SMT with a socket
//!    leader inherits the leader's socket without probing other leaders.
//! 2. **Socket-first, then parallel** — socket membership is resolved
//!    first (sequential sessions against socket leaders); SMT/stacking
//!    discovery then proceeds *in parallel across sockets*.
//! 3. **Validation periods** — between full probes, a much lighter pass
//!    re-checks known pairs (all in parallel, since the pairs are
//!    disjoint) plus leader representatives; a full probe runs only when
//!    validation detects a mismatch.

use crate::error::ProbeError;
use crate::tunables::Tunables;
use crate::vcap::median_of;
use guestos::{
    CpuMask, Kernel, PerceivedTopology, Platform, Policy, SpawnSpec, TaskId, TaskProgram, VcpuId,
};
use simcore::SimTime;
use std::collections::VecDeque;
use trace::{EventKind, ProbeKind};

/// Accepted validation latencies remembered per pair class (hardened mode).
const HISTORY_CAP: usize = 8;
/// Outlier tests need at least this much history to be meaningful.
const HISTORY_MIN: usize = 4;

/// Classified distance between a vCPU pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairClass {
    /// Time-sharing one hardware thread (infinite measured distance).
    Stacked,
    /// SMT siblings.
    Smt,
    /// Same socket, different cores.
    SameSocket,
    /// Different sockets.
    CrossSocket,
}

/// An in-flight pair probe.
struct Session {
    a: usize,
    b: usize,
    prober_a: TaskId,
    prober_b: TaskId,
    transfers: f64,
    attempts: f64,
    budget: f64,
    extensions: u8,
    min_latency: f64,
    rate_transfers: f64,
    rate_attempts: f64,
    last: SimTime,
    outcome: Option<PairClass>,
    /// Wall-clock latency matrix entry (ns) — `f64::INFINITY` for stacked.
    latency: f64,
}

impl Session {
    /// Settles accrual and installs rates from current activity.
    fn update(
        &mut self,
        now: SimTime,
        overlap_latency: Option<f64>,
        any_active: bool,
        tun: &Tunables,
    ) {
        let dt = now.since(self.last) as f64;
        self.transfers += self.rate_transfers * dt;
        self.attempts += self.rate_attempts * dt;
        self.last = now;
        match overlap_latency {
            Some(lat) => {
                self.min_latency = self.min_latency.min(lat);
                self.rate_transfers = 1.0 / lat;
                self.rate_attempts = 1.0 / lat;
            }
            None => {
                self.rate_transfers = 0.0;
                self.rate_attempts = if any_active {
                    1.0 / tun.vtop_spin_attempt_ns
                } else {
                    0.0
                };
            }
        }
    }

    /// Checks for completion, applying the timeout-extension policy.
    fn check_done(&mut self, tun: &Tunables) {
        if self.outcome.is_some() {
            return;
        }
        if self.transfers >= tun.vtop_target_transfers {
            self.latency = self.min_latency;
            self.outcome = Some(classify(self.min_latency, tun));
            return;
        }
        if self.attempts >= self.budget {
            if self.extensions < tun.vtop_max_extensions {
                // Extend the timeout to avoid misidentifying a non-stacked
                // pair whose active periods rarely overlap (§3.1).
                self.extensions += 1;
                self.budget *= 2.0;
                return;
            }
            if self.transfers < 1.0 {
                self.latency = f64::INFINITY;
                self.outcome = Some(PairClass::Stacked);
            } else {
                // At least one real transfer was observed: classify by the
                // lowest latency seen rather than giving up.
                self.latency = self.min_latency;
                self.outcome = Some(classify(self.min_latency, tun));
            }
        }
    }
}

fn classify(latency_ns: f64, tun: &Tunables) -> PairClass {
    if latency_ns < tun.vtop_smt_threshold_ns {
        PairClass::Smt
    } else if latency_ns < tun.vtop_socket_threshold_ns {
        PairClass::SameSocket
    } else {
        PairClass::CrossSocket
    }
}

/// What a finished probe pass produced.
enum Phase {
    Idle,
    Full(FullProbe),
    Validate(Validation),
}

struct FullProbe {
    started: SimTime,
    stage: FullStage,
    socket_of: Vec<Option<usize>>,
    leaders: Vec<usize>,
    stacked_with: Vec<Option<usize>>,
    smt_with: Vec<Option<usize>>,
    classify_v: usize,
    leader_idx: usize,
    /// Per-socket members still unresolved for SMT/stacking discovery.
    smt_queues: Vec<Vec<usize>>,
}

#[derive(PartialEq, Eq)]
enum FullStage {
    Sockets,
    Smt,
}

struct Validation {
    started: SimTime,
    stage: ValStage,
    mismatch: bool,
    /// Hardened mode rejected at least one sample this pass.
    rejected: bool,
    /// Expected class per in-flight session (parallel with `sessions`).
    expectations: Vec<(usize, usize, PairClass)>,
    socket_checks: Vec<(usize, usize, bool)>, // (a, b, expect_cross)
    check_idx: usize,
}

#[derive(PartialEq, Eq)]
enum ValStage {
    Pairs,
    Sockets,
}

/// The topology prober.
pub struct Vtop {
    tun: Tunables,
    nr_vcpus: usize,
    phase: Phase,
    sessions: Vec<Session>,
    /// The most recently probed topology.
    pub topo: Option<PerceivedTopology>,
    /// Pairwise latency matrix from the last full probe (ns;
    /// `f64::INFINITY` = stacked, `-1.0` = not probed/inferred).
    pub latency_matrix: Vec<Vec<f64>>,
    /// Duration of the last full probe (ns).
    pub last_full_ns: Option<u64>,
    /// Duration of the last validation pass (ns).
    pub last_validate_ns: Option<u64>,
    /// Completed full probes.
    pub full_probes: u64,
    /// Completed validation passes.
    pub validations: u64,
    /// Validation passes that detected a topology change.
    pub validation_failures: u64,
    /// Median/MAD vetting of validation latencies + suspicion scoring
    /// (PR 9's vcap hardening discipline). Off by default — the paper
    /// trusts its neighbours.
    pub hardened: bool,
    /// Accepted validation latencies per finite pair class
    /// (Smt / SameSocket / CrossSocket), newest last.
    history: [VecDeque<f64>; 3],
    /// Interference-suspicion score in `[0, 1]` (vcap semantics: +0.35
    /// per rejection, ×0.6 per clean validation pass).
    pub suspicion: f64,
    /// Validation latencies rejected by vetting over the run.
    pub rejected_samples: u64,
    installed: Option<PerceivedTopology>,
}

/// History slot of a finite pair class (stacked pairs have no latency).
fn class_slot(c: PairClass) -> Option<usize> {
    match c {
        PairClass::Smt => Some(0),
        PairClass::SameSocket => Some(1),
        PairClass::CrossSocket => Some(2),
        PairClass::Stacked => None,
    }
}

impl Vtop {
    /// Creates the prober.
    pub fn new(nr_vcpus: usize, tun: Tunables) -> Self {
        Self {
            tun,
            nr_vcpus,
            phase: Phase::Idle,
            sessions: Vec::new(),
            topo: None,
            latency_matrix: vec![vec![-1.0; nr_vcpus]; nr_vcpus],
            last_full_ns: None,
            last_validate_ns: None,
            full_probes: 0,
            validations: 0,
            validation_failures: 0,
            hardened: false,
            history: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            suspicion: 0.0,
            rejected_samples: 0,
            installed: None,
        }
    }

    /// Whether a probe pass is in progress.
    pub fn probing(&self) -> bool {
        !matches!(self.phase, Phase::Idle)
    }

    /// Takes a newly probed topology for installation (kernel module path).
    pub fn take_installed(&mut self) -> Option<PerceivedTopology> {
        self.installed.take()
    }

    fn spawn_prober(&self, kern: &mut Kernel, plat: &mut dyn Platform, v: usize) -> TaskId {
        let spec = SpawnSpec {
            policy: Policy::Normal { weight: 88761 },
            affinity: CpuMask::single(v),
            program: TaskProgram::BuiltinSpin,
            latency_sensitive: false,
            comm_group: None,
            cache_sensitive: false,
            bypass_cgroup: true, // vtop may probe banned stacked vCPUs (§3.4)
        };
        let t = kern.spawn(plat.now(), spec);
        kern.task_mut(t).remaining = guestos::kernel::BUILTIN_SPIN_WORK;
        kern.wake_to(plat, t, VcpuId(v), None);
        t
    }

    fn start_session(&mut self, kern: &mut Kernel, plat: &mut dyn Platform, a: usize, b: usize) {
        debug_assert_ne!(a, b);
        let prober_a = self.spawn_prober(kern, plat, a);
        let prober_b = self.spawn_prober(kern, plat, b);
        self.sessions.push(Session {
            a,
            b,
            prober_a,
            prober_b,
            transfers: 0.0,
            attempts: 0.0,
            budget: self.tun.vtop_timeout_attempts,
            extensions: 0,
            min_latency: f64::INFINITY,
            rate_transfers: 0.0,
            rate_attempts: 0.0,
            last: plat.now(),
            outcome: None,
            latency: -1.0,
        });
    }

    fn end_session(kern: &mut Kernel, plat: &mut dyn Platform, s: &Session) {
        kern.kill_task(plat, s.prober_a);
        kern.kill_task(plat, s.prober_b);
    }

    /// Updates every in-flight session from current activity; returns true
    /// while any session remains (the caller keeps the check timer armed).
    ///
    /// Errors abort the whole probe pass (probers killed, partial results
    /// discarded, previously installed topology untouched): under chaos a
    /// session can finish in a state the phase machine cannot reconcile,
    /// and a half-applied topology is worse than a stale one.
    pub fn update_sessions(
        &mut self,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
    ) -> Result<bool, ProbeError> {
        if self.sessions.is_empty() {
            return Ok(self.probing());
        }
        let now = plat.now();
        for s in self.sessions.iter_mut() {
            let lat = plat.cacheline_latency_ns(VcpuId(s.a), VcpuId(s.b));
            let any = plat.vcpu_active(VcpuId(s.a)) || plat.vcpu_active(VcpuId(s.b));
            s.update(now, lat, any, &self.tun);
            s.check_done(&self.tun);
        }
        if let Err(e) = self.advance(kern, plat) {
            self.abort(kern, plat);
            return Err(e);
        }
        Ok(self.probing())
    }

    /// Aborts the in-flight probe pass: kills every session prober and
    /// returns to idle without touching the installed topology.
    fn abort(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) {
        for s in std::mem::take(&mut self.sessions) {
            Self::end_session(kern, plat, &s);
        }
        self.phase = Phase::Idle;
    }

    /// Begins a full topology probe.
    pub fn start_full(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) {
        if self.probing() || self.nr_vcpus < 2 {
            return;
        }
        self.latency_matrix = vec![vec![-1.0; self.nr_vcpus]; self.nr_vcpus];
        let mut fp = FullProbe {
            started: plat.now(),
            stage: FullStage::Sockets,
            socket_of: vec![None; self.nr_vcpus],
            leaders: vec![0],
            stacked_with: vec![None; self.nr_vcpus],
            smt_with: vec![None; self.nr_vcpus],
            classify_v: 1,
            leader_idx: 0,
            smt_queues: Vec::new(),
        };
        fp.socket_of[0] = Some(0);
        self.phase = Phase::Full(fp);
        self.start_session(kern, plat, 0, 1);
    }

    /// Begins a validation pass (falls back to a full probe when no
    /// topology is known yet).
    pub fn start_validation(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) {
        if self.probing() {
            return;
        }
        let Some(topo) = self.topo.clone() else {
            self.start_full(kern, plat);
            return;
        };
        let mut expectations = Vec::new();
        let mut seen = vec![false; self.nr_vcpus];
        for v in 0..self.nr_vcpus {
            if seen[v] {
                continue;
            }
            // Validate one partner per stacked / SMT group.
            if topo.stacked[v].count() > 1 {
                let partner = topo.stacked[v].iter().find(|&o| o != v);
                if let Some(o) = partner {
                    expectations.push((v, o, PairClass::Stacked));
                    seen[v] = true;
                    seen[o] = true;
                    continue;
                }
            }
            if topo.smt[v].count() > 1 {
                let partner = topo.smt[v].iter().find(|&o| o != v && !seen[o]);
                if let Some(o) = partner {
                    expectations.push((v, o, PairClass::Smt));
                    seen[v] = true;
                    seen[o] = true;
                }
            }
        }
        // Socket representative checks, run sequentially after the pair
        // stage: consecutive socket leaders must be cross-socket; a leader
        // and another member of its socket must not be cross-socket.
        let mut leaders: Vec<usize> = Vec::new();
        let mut seen_socket: Vec<CpuMask> = Vec::new();
        for v in 0..self.nr_vcpus {
            if seen_socket.iter().any(|m| m.contains(v)) {
                continue;
            }
            leaders.push(v);
            seen_socket.push(topo.socket[v]);
        }
        let mut socket_checks = Vec::new();
        for w in leaders.windows(2) {
            socket_checks.push((w[0], w[1], true));
        }
        for &l in &leaders {
            if let Some(member) = topo.socket[l]
                .iter()
                .find(|&m| m != l && !topo.stacked[l].contains(m))
            {
                socket_checks.push((l, member, false));
            }
        }
        let mut val = Validation {
            started: plat.now(),
            stage: ValStage::Pairs,
            mismatch: false,
            rejected: false,
            expectations: expectations.clone(),
            socket_checks,
            check_idx: 0,
        };
        // All pair sessions run in parallel: the pairs are disjoint.
        for &(a, b, _) in &expectations {
            self.start_session(kern, plat, a, b);
        }
        if self.sessions.is_empty() {
            // No pairs to validate: go straight to socket checks, or finish
            // trivially when there are none either.
            val.stage = ValStage::Sockets;
            if let Some(&(a, b, _)) = val.socket_checks.first() {
                self.phase = Phase::Validate(val);
                self.start_session(kern, plat, a, b);
            } else {
                self.validations += 1;
                self.last_validate_ns = Some(0);
            }
            return;
        }
        self.phase = Phase::Validate(val);
    }

    /// Consumes finished sessions and drives the phase machine.
    fn advance(&mut self, kern: &mut Kernel, plat: &mut dyn Platform) -> Result<(), ProbeError> {
        loop {
            // Collect finished sessions.
            let mut finished: Vec<Session> = Vec::new();
            let mut i = 0;
            while i < self.sessions.len() {
                if self.sessions[i].outcome.is_some() {
                    finished.push(self.sessions.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            if finished.is_empty() {
                return Ok(());
            }
            for s in &finished {
                Self::end_session(kern, plat, s);
                if s.latency.is_finite() && s.latency >= 0.0 {
                    self.latency_matrix[s.a][s.b] = s.latency;
                    self.latency_matrix[s.b][s.a] = s.latency;
                } else if s.outcome == Some(PairClass::Stacked) {
                    self.latency_matrix[s.a][s.b] = f64::INFINITY;
                    self.latency_matrix[s.b][s.a] = f64::INFINITY;
                }
            }
            let mut phase = std::mem::replace(&mut self.phase, Phase::Idle);
            match &mut phase {
                Phase::Full(fp) => {
                    for s in &finished {
                        self.full_step(fp, kern, plat, s)?;
                    }
                    if matches!(fp.stage, FullStage::Smt)
                        && self.sessions.is_empty()
                        && fp.smt_queues.iter().all(|q| q.len() <= 1)
                    {
                        self.finish_full(fp, plat.now())?;
                        // phase goes Idle.
                        continue;
                    }
                }
                Phase::Validate(val) => {
                    for s in &finished {
                        self.validate_step(kern, plat.now(), val, s)?;
                    }
                    if self.sessions.is_empty() {
                        if val.stage == ValStage::Pairs {
                            val.stage = ValStage::Sockets;
                        }
                        if val.stage == ValStage::Sockets {
                            if val.check_idx < val.socket_checks.len() {
                                let (a, b, _) = val.socket_checks[val.check_idx];
                                self.start_session(kern, plat, a, b);
                            } else {
                                // Validation complete.
                                self.validations += 1;
                                self.last_validate_ns = Some(plat.now().since(val.started));
                                let mismatch = val.mismatch;
                                if self.hardened && !val.rejected {
                                    // A clean pass bleeds suspicion off
                                    // (vcap's clean-window discipline).
                                    self.suspicion *= 0.6;
                                }
                                self.phase = Phase::Idle;
                                if mismatch {
                                    self.validation_failures += 1;
                                    self.start_full(kern, plat);
                                }
                                return Ok(());
                            }
                        }
                    }
                }
                Phase::Idle => {}
            }
            if !matches!(phase, Phase::Idle) {
                self.phase = phase;
            }
            if self.sessions.iter().all(|s| s.outcome.is_none()) {
                return Ok(());
            }
        }
    }

    fn full_step(
        &mut self,
        fp: &mut FullProbe,
        kern: &mut Kernel,
        plat: &mut dyn Platform,
        s: &Session,
    ) -> Result<(), ProbeError> {
        let Some(class) = s.outcome else {
            return Err(ProbeError::Inconsistent(
                ProbeKind::Vtop,
                "finished session without outcome",
            ));
        };
        match fp.stage {
            FullStage::Sockets => {
                let v = fp.classify_v;
                let leader = fp.leaders[fp.leader_idx];
                debug_assert!((s.a == leader && s.b == v) || (s.a == v && s.b == leader));
                match class {
                    PairClass::Stacked => {
                        fp.socket_of[v] = fp.socket_of[leader];
                        fp.stacked_with[v] = Some(leader);
                        fp.stacked_with[leader] = Some(v);
                    }
                    PairClass::Smt => {
                        fp.socket_of[v] = fp.socket_of[leader];
                        fp.smt_with[v] = Some(leader);
                        fp.smt_with[leader] = Some(v);
                    }
                    PairClass::SameSocket => fp.socket_of[v] = fp.socket_of[leader],
                    PairClass::CrossSocket => {
                        fp.leader_idx += 1;
                        if fp.leader_idx < fp.leaders.len() {
                            let next_leader = fp.leaders[fp.leader_idx];
                            self.start_session(kern, plat, next_leader, v);
                            return Ok(());
                        }
                        // A new socket.
                        fp.socket_of[v] = Some(fp.leaders.len());
                        fp.leaders.push(v);
                    }
                }
                // Next vCPU to classify.
                fp.classify_v += 1;
                fp.leader_idx = 0;
                if fp.classify_v < self.nr_vcpus {
                    let v = fp.classify_v;
                    let leader = fp.leaders[0];
                    self.start_session(kern, plat, leader, v);
                } else {
                    // Socket stage complete: build per-socket SMT queues of
                    // vCPUs whose pairing is still unknown, and start one
                    // session per socket (parallel across sockets).
                    fp.stage = FullStage::Smt;
                    let nr_sockets = fp.leaders.len();
                    fp.smt_queues = vec![Vec::new(); nr_sockets];
                    for u in 0..self.nr_vcpus {
                        if fp.stacked_with[u].is_none() && fp.smt_with[u].is_none() {
                            let Some(sock) = fp.socket_of[u] else {
                                return Err(ProbeError::Inconsistent(
                                    ProbeKind::Vtop,
                                    "vCPU left socket stage unresolved",
                                ));
                            };
                            fp.smt_queues[sock].push(u);
                        }
                    }
                    for sock in 0..nr_sockets {
                        if fp.smt_queues[sock].len() >= 2 {
                            let a = fp.smt_queues[sock][0];
                            let b = fp.smt_queues[sock][1];
                            self.start_session(kern, plat, a, b);
                        }
                    }
                }
            }
            FullStage::Smt => {
                let Some(sock) = fp.socket_of.get(s.a).copied().flatten() else {
                    return Err(ProbeError::Inconsistent(
                        ProbeKind::Vtop,
                        "SMT session on socket-unresolved vCPU",
                    ));
                };
                let q = &mut fp.smt_queues[sock];
                // The session probed q[0] against some q[i].
                let Some(&head) = q.first() else {
                    return Err(ProbeError::Inconsistent(
                        ProbeKind::Vtop,
                        "SMT session finished for an empty queue",
                    ));
                };
                let other = if s.a == head { s.b } else { s.a };
                let pos = q.iter().position(|&x| x == other).unwrap_or(0);
                match class {
                    PairClass::Smt => {
                        fp.smt_with[head] = Some(other);
                        fp.smt_with[other] = Some(head);
                        q.retain(|&x| x != head && x != other);
                    }
                    PairClass::Stacked => {
                        fp.stacked_with[head] = Some(other);
                        fp.stacked_with[other] = Some(head);
                        q.retain(|&x| x != head && x != other);
                    }
                    _ => {
                        // Same-socket only; try the next candidate for head.
                        if pos + 1 < q.len() {
                            let next = q[pos + 1];
                            self.start_session(kern, plat, head, next);
                            return Ok(());
                        }
                        // head has no partner: it owns its core.
                        q.remove(0);
                    }
                }
                if q.len() >= 2 {
                    let a = q[0];
                    let b = q[1];
                    self.start_session(kern, plat, a, b);
                }
            }
        }
        Ok(())
    }

    fn finish_full(&mut self, fp: &FullProbe, now: SimTime) -> Result<(), ProbeError> {
        let n = self.nr_vcpus;
        let mut stacked_groups: Vec<Vec<usize>> = Vec::new();
        let mut smt_groups: Vec<Vec<usize>> = Vec::new();
        let mut socket_groups: Vec<Vec<usize>> = vec![Vec::new(); fp.leaders.len()];
        let mut seen = vec![false; n];
        for v in 0..n {
            let Some(sock) = fp.socket_of[v] else {
                return Err(ProbeError::Inconsistent(
                    ProbeKind::Vtop,
                    "probe finished with an unresolved socket",
                ));
            };
            socket_groups[sock].push(v);
            if seen[v] {
                continue;
            }
            if let Some(o) = fp.stacked_with[v] {
                stacked_groups.push(vec![v, o]);
                seen[v] = true;
                seen[o] = true;
            } else if let Some(o) = fp.smt_with[v] {
                smt_groups.push(vec![v, o]);
                seen[v] = true;
                seen[o] = true;
            }
        }
        let topo = PerceivedTopology::from_groups(n, &stacked_groups, &smt_groups, &socket_groups);
        self.topo = Some(topo.clone());
        self.installed = Some(topo);
        self.full_probes += 1;
        self.last_full_ns = Some(now.since(fp.started));
        self.phase = Phase::Idle;
        Ok(())
    }

    fn validate_step(
        &mut self,
        kern: &mut Kernel,
        now: SimTime,
        val: &mut Validation,
        s: &Session,
    ) -> Result<(), ProbeError> {
        let Some(class) = s.outcome else {
            return Err(ProbeError::Inconsistent(
                ProbeKind::Vtop,
                "finished session without outcome",
            ));
        };
        match val.stage {
            ValStage::Pairs => {
                if let Some(&(_, _, expect)) = val
                    .expectations
                    .iter()
                    .find(|(a, b, _)| (*a == s.a && *b == s.b) || (*a == s.b && *b == s.a))
                {
                    if class != expect {
                        if self.hardened && self.reject_latency(kern, now, s, class) {
                            // Vetted out: an interference spike inflated
                            // the latency past a class boundary. Suspicion
                            // rises; the topology is NOT re-probed.
                            val.rejected = true;
                        } else {
                            val.mismatch = true;
                        }
                    } else if self.hardened {
                        if let Some(slot) = class_slot(class) {
                            if s.latency.is_finite() {
                                let h = &mut self.history[slot];
                                h.push_back(s.latency);
                                if h.len() > HISTORY_CAP {
                                    h.pop_front();
                                }
                            }
                        }
                    }
                }
            }
            ValStage::Sockets => {
                let Some(&(_, _, expect_cross)) = val.socket_checks.get(val.check_idx) else {
                    return Err(ProbeError::Inconsistent(
                        ProbeKind::Vtop,
                        "socket check finished past the check list",
                    ));
                };
                let is_cross = class == PairClass::CrossSocket;
                if is_cross != expect_cross {
                    val.mismatch = true;
                }
                val.check_idx += 1;
            }
        }
        Ok(())
    }

    /// Hardened-mode vetting of a mismatching validation latency: a
    /// genuine topology change produces a latency that fits the measured
    /// class's own historical band (the pair really does sit at that
    /// distance now), while an interference spike lands *outside* every
    /// band — the transfer was slowed by a noisy neighbour, not moved by
    /// the hypervisor. Returns true when the sample was rejected.
    fn reject_latency(
        &mut self,
        kern: &mut Kernel,
        now: SimTime,
        s: &Session,
        measured: PairClass,
    ) -> bool {
        let Some(slot) = class_slot(measured) else {
            // Stacked has no latency to vet: zero overlap is not a
            // plausible interference artifact.
            return false;
        };
        if !s.latency.is_finite() {
            return false;
        }
        let h = &self.history[slot];
        if h.len() < HISTORY_MIN {
            return false;
        }
        let med = median_of(h.iter().copied());
        let mad = median_of(h.iter().map(|&x| (x - med).abs()));
        if (s.latency - med).abs() <= (4.0 * mad).max(0.25 * med) {
            return false;
        }
        self.rejected_samples += 1;
        self.suspicion = (self.suspicion + 0.35).min(1.0);
        kern.trace.emit(
            now,
            EventKind::ProbeRejected {
                vcpu: s.a as u16,
                probe: ProbeKind::Vtop,
                sample: s.latency,
                median: med,
            },
        );
        true
    }

    /// Current stacked groups from the probed topology (for rwc).
    pub fn stacked_groups(&self) -> Vec<Vec<usize>> {
        let Some(topo) = &self.topo else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut seen = vec![false; self.nr_vcpus];
        for v in 0..self.nr_vcpus {
            if seen[v] || topo.stacked[v].count() <= 1 {
                continue;
            }
            let group: Vec<usize> = topo.stacked[v].iter().collect();
            for &m in &group {
                seen[m] = true;
            }
            out.push(group);
        }
        out
    }
}
