//! Focused unit tests of the vSched policies against a mock platform:
//! bvs's Figure 8 decision tree, rwc's ban bookkeeping, and ivh's
//! pre-wake protocol — all without the full host simulator.

use guestos::{CommDistance, GuestConfig, Kernel, Platform, RunDelta, SpawnSpec, TaskId, VcpuId};
use simcore::time::MS;
use simcore::SimTime;
use vsched::{bvs, BvsStats, Ivh, Rwc, Tunables, Vact, Vcap};

/// A minimal always-active platform.
struct MockPlat {
    now: SimTime,
    active: Vec<bool>,
    kicked: Vec<VcpuId>,
}

impl MockPlat {
    fn new(nr: usize) -> Self {
        Self {
            now: SimTime::ZERO,
            active: vec![true; nr],
            kicked: Vec::new(),
        }
    }
}

impl Platform for MockPlat {
    fn now(&self) -> SimTime {
        self.now
    }
    fn steal_ns(&self, _v: VcpuId) -> u64 {
        0
    }
    fn vcpu_active(&self, v: VcpuId) -> bool {
        self.active[v.0]
    }
    fn kick(&mut self, v: VcpuId) {
        self.kicked.push(v);
    }
    fn vcpu_idle(&mut self, _v: VcpuId) {}
    fn run_task(&mut self, _v: VcpuId, _t: TaskId, _r: f64, _f: f64, _p: f64) {}
    fn stop_task(&mut self, _v: VcpuId) -> RunDelta {
        RunDelta::default()
    }
    fn poll_task(&mut self, _v: VcpuId) -> RunDelta {
        RunDelta::default()
    }
    fn update_factor(&mut self, _v: VcpuId, _f: f64) {}
    fn send_ipi(&mut self, to: VcpuId) {
        self.kicked.push(to);
    }
    fn comm_distance(&self, _a: VcpuId, _b: VcpuId) -> CommDistance {
        CommDistance::SameLlc
    }
    fn cacheline_latency_ns(&mut self, _a: VcpuId, _b: VcpuId) -> Option<f64> {
        Some(48.0)
    }
    fn set_timer(&mut self, _token: u64, _at: SimTime) {}
}

fn setup(nr: usize) -> (Kernel, MockPlat, Vact, Vcap, Tunables) {
    let tun = Tunables::paper();
    let kern = Kernel::new(GuestConfig::new(nr), SimTime::ZERO);
    let plat = MockPlat::new(nr);
    let vact = Vact::new(nr, 1_000_000, &tun, SimTime::ZERO);
    let vcap = Vcap::new(nr, &tun);
    (kern, plat, vact, vcap, tun)
}

/// Feeds vact ticks so vCPU `v` publishes the given latency.
fn teach_latency(vact: &mut Vact, kern: &Kernel, v: usize, latency: u64) {
    let mut steal = 0u64;
    let mut t = 1u64;
    for _ in 0..5 {
        for _ in 0..5 {
            vact.on_tick(VcpuId(v), SimTime::from_ms(t), steal);
            t += 1;
        }
        steal += latency;
        t += latency / MS + 1;
        vact.on_tick(VcpuId(v), SimTime::from_ms(t), steal);
    }
    vact.close_window(kern, SimTime::from_ms(t));
}

#[test]
fn bvs_skips_non_latency_sensitive_tasks() {
    let (mut kern, mut plat, vact, vcap, tun) = setup(4);
    let t = kern.spawn(SimTime::ZERO, SpawnSpec::normal(4));
    let mut stats = BvsStats::default();
    let pick = bvs::select(
        &mut kern, &mut plat, &vact, &vcap, None, &tun, &mut stats, t, true,
    );
    assert_eq!(pick, None, "plain tasks fall through to CFS");
}

#[test]
fn bvs_skips_large_tasks() {
    let (mut kern, mut plat, vact, vcap, tun) = setup(4);
    let t = kern.spawn(SimTime::ZERO, SpawnSpec::normal(4).latency_sensitive());
    // Fresh tasks start with PELT at half charge (512 > small threshold).
    let mut stats = BvsStats::default();
    let pick = bvs::select(
        &mut kern, &mut plat, &vact, &vcap, None, &tun, &mut stats, t, true,
    );
    assert_eq!(pick, None, "large tasks are not bvs material");
}

#[test]
fn bvs_prefers_low_latency_idle_vcpu() {
    let (mut kern, mut plat, mut vact, vcap, tun) = setup(4);
    // vCPUs 0,1 high latency; 2,3 low latency.
    teach_latency(&mut vact, &kern, 0, 8 * MS);
    teach_latency(&mut vact, &kern, 1, 8 * MS);
    teach_latency(&mut vact, &kern, 2, MS);
    teach_latency(&mut vact, &kern, 3, MS);
    let t = kern.spawn(SimTime::ZERO, SpawnSpec::normal(4).latency_sensitive());
    // Decay PELT so the task classifies as small.
    kern.task_mut(t)
        .pelt
        .update(SimTime::from_secs(1), guestos::pelt::PeltState::Sleeping);
    plat.now = SimTime::from_secs(1);
    let mut stats = BvsStats::default();
    let pick = bvs::select(
        &mut kern, &mut plat, &vact, &vcap, None, &tun, &mut stats, t, true,
    )
    .expect("bvs places the task");
    assert!(
        pick == VcpuId(2) || pick == VcpuId(3),
        "picked {pick:?}, expected a low-latency vCPU"
    );
    assert_eq!(stats.placed, 1);
}

#[test]
fn rwc_ban_and_recovery_roundtrip() {
    let (mut kern, mut plat, _vact, _vcap, _tun) = setup(4);
    let mut rwc = Rwc::new(4);
    // Stacked group {2,3}: keep 2, ban 3.
    let banned = rwc
        .update_stacking(&mut kern, &mut plat, &[vec![2, 3]])
        .unwrap();
    assert_eq!(banned, vec![3]);
    assert!(!kern.cgroup.any.contains(3));
    assert!(kern.cgroup.normal.contains(2));
    // Topology change: no more stacking — the ban lifts.
    let banned = rwc.update_stacking(&mut kern, &mut plat, &[]).unwrap();
    assert!(banned.is_empty());
    assert!(kern.cgroup.any.contains(3));
    assert!(kern.cgroup.normal.contains(3));
}

#[test]
fn rwc_straggler_restriction_tracks_capacity() {
    let (mut kern, mut plat, _vact, mut vcap, tun) = setup(4);
    let mut rwc = Rwc::new(4);
    // Fake capacities: vCPU 3 at 2% of the mean.
    for v in 0..3 {
        vcap.cap[v].update(1000.0);
    }
    vcap.cap[3].update(20.0);
    vcap.mean_cap = 755.0;
    rwc.update_stragglers(&mut kern, &mut plat, &vcap, &tun);
    assert!(rwc.stragglers[3]);
    assert!(
        !kern.cgroup.normal.contains(3),
        "straggler hidden from normal tasks"
    );
    assert!(kern.cgroup.any.contains(3), "but still open to best-effort");
    // Recovery.
    for _ in 0..8 {
        vcap.cap[3].update(900.0);
    }
    rwc.update_stragglers(&mut kern, &mut plat, &vcap, &tun);
    assert!(!rwc.stragglers[3]);
    assert!(kern.cgroup.normal.contains(3));
}

#[test]
fn rwc_evacuates_tasks_from_banned_vcpu() {
    let (mut kern, mut plat, _vact, _vcap, _tun) = setup(4);
    // Put a running task on vCPU 3.
    let t = kern.spawn(SimTime::ZERO, SpawnSpec::normal(4));
    kern.wake_to(&mut plat, t, VcpuId(3), None);
    kern.schedule(&mut plat, VcpuId(3));
    kern.task_mut(t).remaining = 1e12;
    assert_eq!(kern.vcpus[3].curr, Some(t));
    let mut rwc = Rwc::new(4);
    rwc.update_stacking(&mut kern, &mut plat, &[vec![2, 3]])
        .unwrap();
    // The task left vCPU 3.
    assert_ne!(kern.task(t).state.vcpu(), Some(VcpuId(3)));
}

#[test]
fn ivh_abandons_stale_pull_requests() {
    let (mut kern, mut plat, mut vact, _vcap, tun) = setup(2);
    let mut ivh = Ivh::new(2, true);
    // A CPU-hog on vCPU 0 with known inactivity; vCPU 1 idle.
    teach_latency(&mut vact, &kern, 0, 5 * MS);
    let t = kern.spawn(SimTime::ZERO, SpawnSpec::normal(2));
    kern.wake_to(&mut plat, t, VcpuId(0), None);
    kern.schedule(&mut plat, VcpuId(0));
    kern.task_mut(t).remaining = 1e12;
    // The source died down before the pull: the task has been context
    // switched away, so the pull must abandon.
    plat.now = SimTime::from_ms(100);
    // Manufacture a pending pull by invoking on_tick at a moment vact
    // considers "about to go inactive". Easiest: call on_vcpu_start with a
    // stale pending — simulate by ticking first.
    vact.on_tick(VcpuId(0), plat.now, 0);
    ivh.on_tick(&mut kern, &mut plat, &vact, &tun, VcpuId(0));
    // Whatever ivh decided, a later vcpu-start on vCPU 1 with the source
    // gone must not panic and must not migrate a dead task.
    kern.kill_task(&mut plat, t);
    ivh.on_vcpu_start(&mut kern, &mut plat, &vact, &tun, VcpuId(1));
    assert!(kern.vcpus[1].curr.is_none());
}

#[test]
fn vcap_capacity_defaults_to_full_before_probing() {
    let (_kern, _plat, _vact, vcap, _tun) = setup(2);
    assert_eq!(vcap.capacity(VcpuId(0)), 1024.0);
    assert_eq!(vcap.median_cap, 1024.0);
}

#[test]
fn vact_median_uses_lower_middle() {
    let (kern, _plat, mut vact, _vcap, _tun) = setup(4);
    teach_latency(&mut vact, &kern, 0, MS);
    teach_latency(&mut vact, &kern, 1, MS);
    teach_latency(&mut vact, &kern, 2, 9 * MS);
    teach_latency(&mut vact, &kern, 3, 9 * MS);
    // With a half/half split the median must land in the low class.
    assert_eq!(vact.median_latency_ns, MS);
}

#[test]
fn bvs_first_fit_starts_from_prev_vcpu() {
    let (mut kern, mut plat, mut vact, vcap, tun) = setup(4);
    for v in 0..4 {
        teach_latency(&mut vact, &kern, v, MS);
    }
    let t = kern.spawn(SimTime::ZERO, SpawnSpec::normal(4).latency_sensitive());
    kern.task_mut(t)
        .pelt
        .update(SimTime::from_secs(1), guestos::pelt::PeltState::Sleeping);
    kern.task_mut(t).last_vcpu = VcpuId(2);
    plat.now = SimTime::from_secs(1);
    let mut stats = BvsStats::default();
    let pick = bvs::select(
        &mut kern, &mut plat, &vact, &vcap, None, &tun, &mut stats, t, true,
    )
    .expect("all vCPUs acceptable");
    assert_eq!(pick, VcpuId(2), "first fit begins at the previous vCPU");
}

#[test]
fn bvs_capacity_gate_skips_weak_vcpus() {
    let (mut kern, mut plat, mut vact, mut vcap, tun) = setup(4);
    for v in 0..4 {
        teach_latency(&mut vact, &kern, v, MS);
    }
    // vCPUs 0,1 weak (below 0.9x median), 2,3 strong.
    kern.vcpus[0].cap_override = Some(100.0);
    kern.vcpus[1].cap_override = Some(100.0);
    kern.vcpus[2].cap_override = Some(1000.0);
    kern.vcpus[3].cap_override = Some(1000.0);
    vcap.median_cap = 1000.0;
    let t = kern.spawn(SimTime::ZERO, SpawnSpec::normal(4).latency_sensitive());
    kern.task_mut(t)
        .pelt
        .update(SimTime::from_secs(1), guestos::pelt::PeltState::Sleeping);
    kern.task_mut(t).last_vcpu = VcpuId(0);
    plat.now = SimTime::from_secs(1);
    let mut stats = BvsStats::default();
    let pick = bvs::select(
        &mut kern, &mut plat, &vact, &vcap, None, &tun, &mut stats, t, true,
    )
    .expect("strong vCPUs exist");
    assert!(
        pick == VcpuId(2) || pick == VcpuId(3),
        "picked {pick:?}, expected a high-capacity vCPU"
    );
}

#[test]
fn bvs_respects_cgroup_bans() {
    let (mut kern, mut plat, mut vact, vcap, tun) = setup(4);
    for v in 0..4 {
        teach_latency(&mut vact, &kern, v, MS);
    }
    // Only vCPU 3 remains placeable.
    kern.cgroup.ban(0);
    kern.cgroup.ban(1);
    kern.cgroup.restrict_to_idle(2);
    let t = kern.spawn(SimTime::ZERO, SpawnSpec::normal(4).latency_sensitive());
    kern.task_mut(t)
        .pelt
        .update(SimTime::from_secs(1), guestos::pelt::PeltState::Sleeping);
    plat.now = SimTime::from_secs(1);
    let mut stats = BvsStats::default();
    let pick = bvs::select(
        &mut kern, &mut plat, &vact, &vcap, None, &tun, &mut stats, t, true,
    )
    .expect("one placeable vCPU remains");
    assert_eq!(pick, VcpuId(3), "bvs honours the rwc cgroup state");
}

#[test]
fn bvs_without_state_check_uses_latency_alone() {
    let (mut kern, mut plat, mut vact, vcap, tun) = setup(2);
    teach_latency(&mut vact, &kern, 0, 8 * MS);
    teach_latency(&mut vact, &kern, 1, MS);
    // Occupy vCPU 1 with a best-effort task so the sched_idle branch runs.
    let hog = kern.spawn(
        SimTime::ZERO,
        SpawnSpec::normal(2).policy(guestos::Policy::Idle),
    );
    kern.wake_to(&mut plat, hog, VcpuId(1), None);
    kern.schedule(&mut plat, VcpuId(1));
    kern.task_mut(hog).remaining = 1e12;
    let t = kern.spawn(SimTime::ZERO, SpawnSpec::normal(2).latency_sensitive());
    kern.task_mut(t)
        .pelt
        .update(SimTime::from_secs(1), guestos::pelt::PeltState::Sleeping);
    kern.task_mut(t).last_vcpu = VcpuId(1);
    plat.now = SimTime::from_secs(1);
    let mut stats = BvsStats::default();
    let pick = bvs::select(
        &mut kern, &mut plat, &vact, &vcap, None, &tun, &mut stats, t, false,
    );
    assert_eq!(pick, Some(VcpuId(1)), "latency-only ablation places here");
    assert_eq!(stats.blue_path, 0, "no state check, no blue path");
}

#[test]
fn rwc_keeps_lowest_vcpu_of_each_stack() {
    let (mut kern, mut plat, _vact, _vcap, _tun) = setup(6);
    let mut rwc = Rwc::new(6);
    let banned = rwc
        .update_stacking(&mut kern, &mut plat, &[vec![0, 1], vec![4, 2, 5]])
        .unwrap();
    assert_eq!(banned, vec![1, 4, 5]);
    assert!(kern.cgroup.normal.contains(0));
    assert!(
        kern.cgroup.normal.contains(2),
        "lowest of {{2,4,5}} survives"
    );
    assert!(kern.cgroup.normal.contains(3), "unstacked untouched");
}

#[test]
fn rwc_unban_restores_straggler_restriction() {
    let (mut kern, mut plat, _vact, mut vcap, tun) = setup(4);
    let mut rwc = Rwc::new(4);
    // vCPU 3 is a straggler...
    for v in 0..3 {
        vcap.cap[v].update(1000.0);
    }
    vcap.cap[3].update(20.0);
    vcap.mean_cap = 755.0;
    rwc.update_stragglers(&mut kern, &mut plat, &vcap, &tun);
    assert!(rwc.stragglers[3]);
    // ...then also gets stacked: the full ban wins.
    rwc.update_stacking(&mut kern, &mut plat, &[vec![2, 3]])
        .unwrap();
    assert!(!kern.cgroup.any.contains(3));
    // The stack dissolves: the straggler restriction must come back, not
    // full placement.
    rwc.update_stacking(&mut kern, &mut plat, &[]).unwrap();
    assert!(!kern.cgroup.normal.contains(3), "still a straggler");
    assert!(kern.cgroup.any.contains(3), "best-effort allowed again");
}

#[test]
fn rwc_straggler_updates_skip_banned_vcpus() {
    let (mut kern, mut plat, _vact, mut vcap, tun) = setup(4);
    let mut rwc = Rwc::new(4);
    rwc.update_stacking(&mut kern, &mut plat, &[vec![2, 3]])
        .unwrap();
    // vCPU 3 is banned; even at straggler-level capacity it must not be
    // reclassified (vcap's probers are off it, the estimate is stale).
    vcap.cap[3].update(1.0);
    vcap.mean_cap = 800.0;
    rwc.update_stragglers(&mut kern, &mut plat, &vcap, &tun);
    assert!(!rwc.stragglers[3], "banned vCPUs are not classified");
    assert!(!kern.cgroup.any.contains(3), "ban stands");
}
