//! Probe hardening under hostile and honest neighbours.
//!
//! The probe-polluter archetype bursts interference exactly inside the
//! victim's vcap sampling windows. Hardened probing must reject those
//! samples (window-targeted steal far above the between-window rate) and
//! drive the resilience layer toward degraded mode — while *honest*
//! disturbances (round-the-clock contention, PR 3's `ProbeNoise` chaos)
//! must keep flowing into the estimates unrejected.

use guestos::{GuestOs, Platform, SpawnSpec, TaskAction, TaskId, Workload};
use hostsim::{ChaosSpec, FaultPlan, HostSpec, ScenarioBuilder, VmSpec};
use simcore::time::MS;
use simcore::SimTime;
use trace::FaultClass;
use vsched::{ResilCfg, Vsched, VschedConfig};
use workloads::{work_ms, Adversary, AttackKind, AttackPlan, AttackSpec, Stressor};

const HORIZON_NS: u64 = 6_000 * MS;

/// CPU-bound spinner tasks (idle victim when `0`).
struct Spinners(usize);

impl Workload for Spinners {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for _ in 0..self.0 {
            let t = guest.spawn(plat, SpawnSpec::normal(nr));
            guest.wake_task(plat, t, None);
        }
    }
    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: u64) {}
    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        TaskAction::Compute { work: 1.0e18 }
    }
    fn label(&self) -> &str {
        "spinners"
    }
}

fn vs(m: &mut hostsim::Machine, vm: usize) -> &mut Vsched {
    vsched::instance(&mut m.vms[vm].guest).expect("vsched installed")
}

#[test]
fn hardening_rejects_window_targeted_pollution_and_degrades() {
    // Victim and polluter share both threads; the polluter bursts only
    // around the victim's probe windows (~11% duty cycle), so an
    // unhardened prober would learn a false-low capacity.
    let (b, victim) = ScenarioBuilder::new(HostSpec::flat(2), 11).vm(VmSpec::pinned(2, 0));
    let (b, adv) = b.vm(VmSpec::pinned(2, 0));
    let mut m = b.build();
    m.set_workload(victim, Box::new(Spinners(0)));
    let spec = AttackSpec::for_vm(2, HORIZON_NS).only(AttackKind::ProbeBurst);
    m.set_workload(
        adv,
        Box::new(Adversary::new(&AttackPlan::generate(11, &spec))),
    );
    m.with_vm(victim, |g, p| {
        vsched::install(
            g,
            p,
            VschedConfig::probers_only()
                .with_hardened_probes()
                .with_resilience(ResilCfg::default()),
        )
    });
    m.start();
    m.run_until(SimTime::from_ns(HORIZON_NS));
    let v = vs(&mut m, victim);
    assert!(
        v.vcap.rejected_samples >= 3,
        "polluted windows must be rejected, got {}",
        v.vcap.rejected_samples
    );
    let episodes = v.resil.as_ref().unwrap().episodes;
    assert!(
        v.degraded() || episodes >= 1,
        "sustained gaming must reach degraded mode (episodes {episodes})"
    );
}

#[test]
fn hardening_accepts_round_the_clock_contention() {
    // An honest always-on neighbour presses equally inside and outside the
    // probe windows: every sample must be accepted and the probed capacity
    // must still converge to the true ~50% share.
    let (b, victim) = ScenarioBuilder::new(HostSpec::flat(2), 12).vm(VmSpec::pinned(2, 0));
    let (b, nb) = b.vm(VmSpec::pinned(2, 0));
    let mut m = b.build();
    m.set_workload(victim, Box::new(Spinners(0)));
    let (s, _stats) = Stressor::new(2, work_ms(1.0));
    m.set_workload(nb, Box::new(s.pinned(vec![0, 1])));
    m.with_vm(victim, |g, p| {
        vsched::install(g, p, VschedConfig::probers_only().with_hardened_probes())
    });
    m.start();
    m.run_until(SimTime::from_ns(HORIZON_NS));
    let v = vs(&mut m, victim);
    assert_eq!(
        v.vcap.rejected_samples, 0,
        "honest contention must never be rejected"
    );
    let cap = v.vcap.capacity(guestos::VcpuId(0));
    assert!(
        (cap - 512.0).abs() < 120.0,
        "capacity should still track the honest ~50% share, got {cap}"
    );
}

#[test]
fn hardening_accepts_probe_noise_chaos() {
    // PR 3's ProbeNoise chaos jitters the steal readings themselves —
    // inside and outside the windows alike. The hardening layer must not
    // mistake that honest (if noisy) signal for gaming.
    let (b, victim) = ScenarioBuilder::new(HostSpec::flat(2), 13).vm(VmSpec::pinned(2, 0));
    let (b, nb) = b.vm(VmSpec::pinned(2, 0));
    let mut m = b.build();
    m.set_workload(victim, Box::new(Spinners(0)));
    let (s, _stats) = Stressor::new(2, work_ms(1.0));
    m.set_workload(nb, Box::new(s.pinned(vec![0, 1])));
    let chaos = ChaosSpec::for_pinned_vm(victim, 2, HORIZON_NS).only(FaultClass::ProbeNoise);
    FaultPlan::generate(13, &chaos).apply(&mut m);
    m.with_vm(victim, |g, p| {
        vsched::install(g, p, VschedConfig::probers_only().with_hardened_probes())
    });
    m.start();
    m.run_until(SimTime::from_ns(HORIZON_NS));
    let v = vs(&mut m, victim);
    assert!(
        v.vcap.rejected_samples <= 1,
        "probe noise is honest signal, got {} rejections",
        v.vcap.rejected_samples
    );
}
