//! End-to-end prober validation: vSched installed in a VM on the simulated
//! host must measure capacity, activity, and topology correctly.

use guestos::{GuestOs, Platform, SpawnSpec, TaskAction, TaskId, VcpuId, Workload};
use hostsim::{HostSpec, Pinning, ScenarioBuilder, VmSpec};
use simcore::time::MS;
use simcore::SimTime;
use vsched::{Vsched, VschedConfig};

/// CPU-bound spinner tasks.
struct Spinners(usize);

impl Workload for Spinners {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for _ in 0..self.0 {
            let t = guest.spawn(plat, SpawnSpec::normal(nr));
            guest.wake_task(plat, t, None);
        }
    }
    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: u64) {}
    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        TaskAction::Compute { work: 1.0e18 }
    }
    fn label(&self) -> &str {
        "spinners"
    }
}

fn install(m: &mut hostsim::Machine, vm: usize, cfg: VschedConfig) {
    m.with_vm(vm, |g, p| vsched::install(g, p, cfg));
}

fn vs(m: &mut hostsim::Machine, vm: usize) -> &mut Vsched {
    vsched::instance(&mut m.vms[vm].guest).expect("vsched installed")
}

#[test]
fn vcap_measures_half_share() {
    // Two VMs share one core; each vCPU gets ~50% → probed capacity ~512.
    let (b, vm0) = ScenarioBuilder::new(HostSpec::flat(1), 1).vm(VmSpec::pinned(1, 0));
    let (b, vm1) = b.vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm0, Box::new(Spinners(1)));
    m.set_workload(vm1, Box::new(Spinners(1)));
    install(&mut m, vm0, VschedConfig::probers_only());
    m.start();
    m.run_until(SimTime::from_secs(8));
    let cap = vs(&mut m, vm0).vcap.capacity(VcpuId(0));
    assert!(
        (cap - 512.0).abs() < 90.0,
        "expected ~512 capacity, probed {cap}"
    );
}

#[test]
fn vcap_measures_asymmetric_shares() {
    // vCPU 0 uncontended, vCPU 1 shares with a competing VM.
    let (b, vm0) = ScenarioBuilder::new(HostSpec::flat(2), 2).vm(VmSpec::pinned(2, 0));
    let (b, vm1) = b.vm(VmSpec {
        nr_vcpus: 1,
        pinning: Pinning::OneToOne(vec![1]),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    m.set_workload(vm0, Box::new(Spinners(2)));
    m.set_workload(vm1, Box::new(Spinners(1)));
    install(&mut m, vm0, VschedConfig::probers_only());
    m.start();
    m.run_until(SimTime::from_secs(8));
    let v = vs(&mut m, vm0);
    let cap0 = v.vcap.capacity(VcpuId(0));
    let cap1 = v.vcap.capacity(VcpuId(1));
    assert!(cap0 > 900.0, "dedicated vCPU capacity {cap0}");
    assert!(
        (cap1 - 512.0).abs() < 100.0,
        "contended vCPU capacity {cap1}"
    );
}

#[test]
fn vact_measures_vcpu_latency_under_bandwidth_control() {
    // quota 5 ms / period 10 ms → inactive periods of ~5 ms.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 3)
        .vm(VmSpec::pinned(1, 0).bandwidth(5 * MS, 10 * MS));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners(1)));
    install(&mut m, vm, VschedConfig::probers_only());
    m.start();
    m.run_until(SimTime::from_secs(8));
    let lat = vs(&mut m, vm).vact.latency_ns(VcpuId(0));
    assert!(
        (4 * MS..=7 * MS).contains(&lat),
        "expected ~5 ms vCPU latency, probed {} us",
        lat / 1000
    );
}

#[test]
fn vact_reports_zero_latency_for_dedicated_vcpu() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 4).vm(VmSpec::pinned(1, 0));
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners(1)));
    install(&mut m, vm, VschedConfig::probers_only());
    m.start();
    m.run_until(SimTime::from_secs(5));
    assert_eq!(vs(&mut m, vm).vact.latency_ns(VcpuId(0)), 0);
}

#[test]
fn vtop_discovers_smt_socket_and_stacking() {
    // The paper's Figure 10b setup: 8 vCPUs — vCPU0..3 on two SMT pairs of
    // socket 0; vCPU4,5 an SMT pair on socket 1; vCPU6,7 stacked on one
    // thread of socket 1.
    let host = HostSpec::new(2, 2, 2); // threads 0..3 socket0, 4..7 socket1
    let (b, vm) = ScenarioBuilder::new(host, 5).vm(VmSpec {
        nr_vcpus: 8,
        pinning: Pinning::OneToOne(vec![0, 1, 2, 3, 4, 5, 6, 6]),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners(0)));
    install(&mut m, vm, VschedConfig::probers_only());
    m.start();
    m.run_until(SimTime::from_secs(5));
    let v = vs(&mut m, vm);
    let topo = v.vtop.topo.clone().expect("topology probed");
    // SMT pairs.
    assert!(topo.smt[0].contains(1), "vCPU0/1 SMT: {:?}", topo.smt[0]);
    assert!(topo.smt[2].contains(3), "vCPU2/3 SMT");
    assert!(topo.smt[4].contains(5), "vCPU4/5 SMT");
    // Stacking.
    assert!(topo.stacked[6].contains(7), "vCPU6/7 stacked");
    // Sockets.
    assert!(topo.socket[0].contains(2) && topo.socket[0].contains(3));
    assert!(!topo.socket[0].contains(4));
    assert!(topo.socket[4].contains(6) && topo.socket[4].contains(7));
    assert!(v.vtop.last_full_ns.is_some());
    // The latency matrix mirrors Figure 10b's classes.
    let mat = &v.vtop.latency_matrix;
    assert!(mat[0][1] > 0.0 && mat[0][1] < 20.0, "smt {:.1}", mat[0][1]);
    assert!(mat[6][7].is_infinite(), "stacked pair must be infinite");
}

#[test]
fn vtop_validation_is_faster_than_full_probe() {
    let host = HostSpec::new(2, 2, 2);
    let (b, vm) = ScenarioBuilder::new(host, 6).vm(VmSpec {
        nr_vcpus: 8,
        pinning: Pinning::OneToOne(vec![0, 1, 2, 3, 4, 5, 6, 6]),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners(0)));
    install(&mut m, vm, VschedConfig::probers_only());
    m.start();
    m.run_until(SimTime::from_secs(10));
    let v = vs(&mut m, vm);
    assert!(v.vtop.validations >= 1, "validations ran");
    let full = v.vtop.last_full_ns.expect("full probe ran");
    let val = v.vtop.last_validate_ns.expect("validation ran");
    assert!(
        val < full,
        "validation ({val} ns) should be faster than full ({full} ns)"
    );
    assert_eq!(v.vtop.validation_failures, 0, "stable topology");
}

#[test]
fn rwc_bans_extra_stacked_vcpus() {
    let host = HostSpec::flat(3);
    let (b, vm) = ScenarioBuilder::new(host, 7).vm(VmSpec {
        nr_vcpus: 4,
        // vCPUs 2 and 3 stacked on thread 2.
        pinning: Pinning::OneToOne(vec![0, 1, 2, 2]),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    m.set_workload(vm, Box::new(Spinners(0)));
    install(&mut m, vm, VschedConfig::enhanced_cfs());
    m.start();
    m.run_until(SimTime::from_secs(5));
    let banned = {
        let v = vs(&mut m, vm);
        v.rwc.banned.clone()
    };
    assert_eq!(banned, vec![false, false, false, true], "{banned:?}");
    // The guest cgroup reflects the ban.
    let allow = m.vms[vm].guest.kern.cgroup;
    assert!(!allow.any.contains(3));
    assert!(allow.normal.contains(2));
}

#[test]
fn rwc_restricts_straggler_vcpu() {
    // One vCPU crushed by a 15x host load → straggler (< 10% of mean).
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(4), 8).vm(VmSpec::pinned(4, 0));
    let mut m = b.host_load(3, 15 * 1024).build();
    m.set_workload(vm, Box::new(Spinners(2)));
    install(&mut m, vm, VschedConfig::enhanced_cfs());
    m.start();
    m.run_until(SimTime::from_secs(10));
    let stragglers = vs(&mut m, vm).rwc.stragglers.clone();
    assert_eq!(
        stragglers,
        vec![false, false, false, true],
        "{stragglers:?}"
    );
    let allow = m.vms[vm].guest.kern.cgroup;
    assert!(
        !allow.normal.contains(3),
        "straggler excluded for normal tasks"
    );
    assert!(allow.any.contains(3), "still allowed for best-effort tasks");
}

#[test]
fn probers_overhead_is_small_on_dedicated_vm() {
    // Same workload with and without probers on a dedicated VM: throughput
    // loss stays within a few percent (paper §5.9, ~0.7%).
    let run = |with_vsched: bool| -> f64 {
        let (b, vm) = ScenarioBuilder::new(HostSpec::flat(2), 9).vm(VmSpec::pinned(2, 0));
        let mut m = b.build();
        m.set_workload(vm, Box::new(Spinners(2)));
        if with_vsched {
            install(&mut m, vm, VschedConfig::full());
        }
        m.start();
        m.run_until(SimTime::from_secs(5));
        (0..2).map(|i| m.vcpus[m.gv(vm, i)].delivered_work).sum()
    };
    let base = run(false);
    let with = run(true);
    let loss = 1.0 - with / base;
    assert!(
        loss < 0.06,
        "prober overhead too high: {:.2}%",
        loss * 100.0
    );
}
