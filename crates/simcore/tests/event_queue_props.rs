//! Property suite for [`EventQueue`]: FIFO tie order, clock monotonicity,
//! and equivalence with a sorted-vec reference model under interleaved
//! post/pop sequences.
//!
//! The queue's determinism contract — two events at the same instant fire
//! in post order, and `now` never runs backwards — is what makes the
//! parallel experiment runner's per-cell runs bit-identical to serial
//! execution. These properties pin that contract directly.

use vsched_simcore::propcheck::{forall, vec_of};
use vsched_simcore::{EventQueue, SimTime};

fn cases(base: usize) -> usize {
    if cfg!(feature = "property-tests") {
        base * 8
    } else {
        base
    }
}

/// Events posted for the same timestamp pop in FIFO post order.
#[test]
fn same_timestamp_pops_in_fifo_post_order() {
    forall(0xE1, cases(64), |rng| {
        // A few distinct timestamps, many events each.
        let stamps = vec_of(rng, 1, 6, |r| r.range(0, 1_000));
        let mut q: EventQueue<usize> = EventQueue::new();
        let n = 50 + rng.index(150);
        for i in 0..n {
            let t = stamps[rng.index(stamps.len())];
            q.post(SimTime(t), i);
        }
        // Within each timestamp, sequence numbers must come out ascending.
        let mut last_seq_at: std::collections::BTreeMap<u64, usize> = Default::default();
        while let Some((t, i)) = q.pop() {
            if let Some(&prev) = last_seq_at.get(&t.ns()) {
                assert!(prev < i, "t={t}: {i} popped after {prev}");
            }
            last_seq_at.insert(t.ns(), i);
        }
    });
}

/// The clock is monotone across arbitrary interleavings of posts and pops,
/// including posts relative to the advancing clock.
#[test]
fn now_is_monotonic_under_interleaving() {
    forall(0xE2, cases(64), |rng| {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut last = SimTime(0);
        for step in 0..300u32 {
            if q.is_empty() || rng.chance(0.6) {
                // Posting in the past is clamped to `now`, never rewinds.
                let at = q.now().after(rng.range(0, 50_000));
                q.post(at, step);
            } else {
                let (t, _) = q.pop().unwrap();
                assert!(t >= last, "clock ran backwards: {t} < {last}");
                assert_eq!(q.now(), t);
                last = t;
            }
        }
    });
}

/// Full behavioural equivalence with a reference model: a sorted vec keyed
/// by `(time, post sequence)`, popped from the front.
#[test]
fn matches_sorted_vec_reference_model() {
    forall(0xE3, cases(64), |rng| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model: Vec<(u64, u64, u64)> = Vec::new(); // (time, seq, payload)
        let mut seq = 0u64;
        let mut model_now = 0u64;
        for _ in 0..400 {
            if q.is_empty() || rng.chance(0.55) {
                let at = model_now + rng.range(0, 10_000);
                let payload = rng.u64();
                q.post(SimTime(at), payload);
                seq += 1;
                model.push((at, seq, payload));
                // Keep the model sorted by (time, seq): a stable total order
                // identical to the queue's key.
                model.sort_unstable_by_key(|&(t, s, _)| (t, s));
            } else {
                let (t, got) = q.pop().expect("queue non-empty");
                let (mt, _, want) = model.remove(0);
                assert_eq!(t.ns(), mt, "pop time diverged from model");
                assert_eq!(got, want, "pop payload diverged from model");
                model_now = mt;
            }
        }
        // Drain both; they must agree to the end.
        while let Some((t, got)) = q.pop() {
            let (mt, _, want) = model.remove(0);
            assert_eq!((t.ns(), got), (mt, want));
        }
        assert!(model.is_empty());
    });
}

/// `peek_time` always agrees with the next pop and never advances the clock.
#[test]
fn peek_agrees_with_pop() {
    forall(0xE4, cases(32), |rng| {
        let mut q: EventQueue<usize> = EventQueue::new();
        for i in 0..50 {
            q.post(SimTime(rng.range(0, 5_000)), i);
        }
        while let Some(peeked) = q.peek_time() {
            let before = q.now();
            assert_eq!(q.peek_time(), Some(peeked));
            assert_eq!(q.now(), before, "peek advanced the clock");
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, peeked);
        }
    });
}
