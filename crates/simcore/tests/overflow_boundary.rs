//! Regression tests at the `u64` time ceiling.
//!
//! Release builds used to be able to wrap near-`u64::MAX` horizons (the
//! workspace now also sets `overflow-checks = true` for release, so a wrap
//! would abort rather than time-travel). These tests pin the intended
//! *saturating* semantics: clocks stick at `SimTime::MAX`, they never go
//! backwards.

use vsched_simcore::time::MS;
use vsched_simcore::{EventQueue, Integrator, SimTime};

#[test]
fn post_after_saturates_at_the_time_ceiling() {
    let mut q: EventQueue<&str> = EventQueue::new();
    q.post(SimTime::from_ns(u64::MAX - 5), "near-max");
    q.pop();
    assert_eq!(q.now(), SimTime::from_ns(u64::MAX - 5));
    // A delay that would overflow must clamp to MAX, not wrap to the past.
    q.post_after(100 * MS, "after");
    assert_eq!(q.peek_time(), Some(SimTime::MAX));
    let (t, e) = q.pop().unwrap();
    assert_eq!((t, e), (SimTime::MAX, "after"));
    assert_eq!(q.now(), SimTime::MAX);
}

#[test]
fn eta_ns_never_produces_a_past_completion() {
    // A subnormal rate against a huge target: the raw quotient overflows
    // f64 toward infinity; eta must answer "never", not a wrapped time.
    let mut i = Integrator::new(SimTime::ZERO);
    i.set_rate(SimTime::ZERO, f64::MIN_POSITIVE);
    assert_eq!(i.eta_ns(SimTime::ZERO, f64::MAX), None);

    // A merely enormous finite ETA clamps to u64::MAX, which SimTime::after
    // then saturates.
    let mut i = Integrator::new(SimTime::ZERO);
    i.set_rate(SimTime::ZERO, 1e-18);
    let eta = i.eta_ns(SimTime::ZERO, 1e18).unwrap();
    assert_eq!(eta, u64::MAX);
    let now = SimTime::from_ns(u64::MAX - 1);
    assert_eq!(now.after(eta), SimTime::MAX);
}

#[test]
fn eta_ns_ordinary_cases_unchanged() {
    let mut i = Integrator::new(SimTime::ZERO);
    i.set_rate(SimTime::ZERO, 2.0);
    assert_eq!(i.eta_ns(SimTime::ZERO, 10.0), Some(5));
    i.add(10.0);
    assert_eq!(i.eta_ns(SimTime::ZERO, 10.0), Some(0));
}
