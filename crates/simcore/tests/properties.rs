//! Property tests on the discrete-event engine primitives.
//!
//! The whole reproduction rests on two invariants: the event queue
//! delivers in nondecreasing time with FIFO tie order, and integrators
//! account work exactly under arbitrary rate changes. Both are exercised
//! here under randomized operation sequences driven by the in-tree
//! `propcheck` harness (deterministic, offline).

use vsched_simcore::propcheck::{forall, vec_of};
use vsched_simcore::{EventQueue, Integrator, SimTime};

fn cases(base: usize) -> usize {
    if cfg!(feature = "property-tests") {
        base * 8
    } else {
        base
    }
}

/// Pops come out in nondecreasing time order no matter the post order.
#[test]
fn queue_pops_in_time_order() {
    forall(0x51, cases(64), |rng| {
        let delays = vec_of(rng, 1, 200, |r| r.range(0, 1_000_000));
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            q.post(SimTime(d), i);
        }
        let mut last = SimTime(0);
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "time went backwards: {t:?} after {last:?}");
            assert_eq!(q.now(), t);
            last = t;
            n += 1;
        }
        assert_eq!(n, delays.len());
    });
}

/// Events posted at the same instant pop in insertion order (FIFO ties) —
/// the determinism guarantee every scheduler decision relies on.
#[test]
fn queue_ties_are_fifo() {
    forall(0x52, cases(64), |rng| {
        let times = vec_of(rng, 2, 100, |r| r.range(0, 16));
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.post(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                if lt == t {
                    assert!(id > lid, "tie at {t:?} broke FIFO: {id} after {lid}");
                }
            }
            last = Some((t, id));
        }
    });
}

/// Interleaved post/pop never lets `post_after` schedule into the past
/// and never loses an event.
#[test]
fn queue_interleaved_conserves_events() {
    forall(0x53, cases(64), |rng| {
        let ops = vec_of(rng, 1, 300, |r| (r.chance(0.5), r.range(0, 10_000)));
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut posted = 0u64;
        let mut popped = 0u64;
        for &(pop, delay) in &ops {
            if pop {
                if let Some((t, _)) = q.pop() {
                    assert!(t >= q.now() || t == q.now());
                    popped += 1;
                }
            } else {
                q.post_after(delay, posted);
                posted += 1;
            }
        }
        assert_eq!(posted - popped, q.len() as u64);
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(posted, popped);
    });
}

/// The integrator's value equals the exact piecewise-constant integral
/// of the rates applied, for any sequence of rate changes.
#[test]
fn integrator_matches_exact_integral() {
    forall(0x54, cases(64), |rng| {
        let steps = vec_of(rng, 1, 100, |r| (r.range(0, 1_000_000), r.range(0, 2048)));
        let mut now = SimTime(0);
        let mut ig = Integrator::new(now);
        let mut exact = 0.0f64;
        let mut rate = 0.0f64;
        for &(dt, r) in &steps {
            exact += rate * dt as f64;
            now = SimTime(now.0 + dt);
            rate = r as f64;
            ig.set_rate(now, rate);
            // Up to rounding slack from accumulation order.
            let got = ig.value_at(now);
            assert!(
                (got - exact).abs() <= 1e-6 * exact.max(1.0),
                "value {got} vs exact {exact}"
            );
        }
    });
}

/// `eta_ns` inverts `value_at`: advancing by the returned delta reaches
/// (at least) the target, and one nanosecond less does not overshoot it
/// by a full rate step.
#[test]
fn integrator_eta_reaches_target() {
    forall(0x55, cases(128), |rng| {
        let rate = rng.range(1, 4096) as u32;
        let dt = rng.range(1, 10_000_000);
        let mut ig = Integrator::new(SimTime(0));
        ig.set_rate(SimTime(0), rate as f64);
        let target = rate as f64 * dt as f64 * 0.7;
        let eta = ig
            .eta_ns(SimTime(0), target)
            .expect("positive rate has an ETA");
        let reached = ig.value_at(SimTime(eta));
        assert!(
            reached >= target - 1e-6,
            "reached {reached} target {target}"
        );
        if eta > 0 {
            let before = ig.value_at(SimTime(eta - 1));
            assert!(before < target + rate as f64, "eta not minimal");
        }
    });
}

/// `settle` is idempotent and never changes the observable value.
#[test]
fn integrator_settle_is_transparent() {
    forall(0x56, cases(64), |rng| {
        let steps = vec_of(rng, 1, 50, |r| (r.range(0, 100_000), r.range(0, 1024)));
        let mut now = SimTime(0);
        let mut a = Integrator::new(now);
        let mut b = Integrator::new(now);
        for &(dt, r) in &steps {
            now = SimTime(now.0 + dt);
            // `a` settles eagerly at every step; `b` only on rate changes.
            a.settle(now);
            a.settle(now);
            a.set_rate(now, r as f64);
            b.set_rate(now, r as f64);
            assert!((a.value() - b.value()).abs() <= 1e-6 * b.value().max(1.0));
        }
        assert!((a.value_at(now) - b.value_at(now)).abs() <= 1e-6 * b.value_at(now).max(1.0));
    });
}

/// Zero rate freezes the value for any horizon.
#[test]
fn integrator_zero_rate_freezes() {
    forall(0x57, cases(128), |rng| {
        let horizon = rng.range(0, u64::MAX / 2);
        let mut ig = Integrator::new(SimTime(0));
        ig.set_rate(SimTime(0), 512.0);
        ig.set_rate(SimTime(1000), 0.0);
        let frozen = ig.value_at(SimTime(1000));
        assert_eq!(ig.value_at(SimTime(1000 + horizon)), frozen);
        assert!(ig.eta_ns(SimTime(1000), frozen + 1.0).is_none());
    });
}
