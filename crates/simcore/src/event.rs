//! The event queue.
//!
//! A binary heap keyed by `(time, sequence)`. The sequence number breaks ties
//! in insertion order, which makes simulations deterministic: two events
//! scheduled for the same instant always fire in the order they were posted.
//!
//! Cancellation is by *generation counters* at the call sites (lazy
//! invalidation): schedulers bump a counter when state changes and stale
//! events are discarded on delivery. This is cheaper and simpler than
//! removing heap entries, and it is the pattern used throughout `hostsim`.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: SimTime,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use vsched_simcore::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.post(SimTime::from_ms(5), "later");
/// q.post(SimTime::from_ms(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_ms(1), "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `cap` pending events before the
    /// backing heap reallocates. Simulations post from the first event on;
    /// pre-sizing skips the doubling-growth copies on the hot posting path.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to
    /// `now` so time never runs backwards (debug builds assert instead).
    pub fn post(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event posted in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            key: Key {
                time: at,
                seq: self.seq,
            },
            event,
        }));
    }

    /// Schedules `event` after a relative delay.
    pub fn post_after(&mut self, delay_ns: u64, event: E) {
        self.post(self.now.after(delay_ns), event);
    }

    /// Removes and returns the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.key.time;
        Some((entry.key.time, entry.event))
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.key.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.post(SimTime::from_ms(3), 3);
        q.post(SimTime::from_ms(1), 1);
        q.post(SimTime::from_ms(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1);
        for i in 0..100 {
            q.post(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.post(SimTime::from_ms(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(7));
    }

    #[test]
    fn post_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.post(SimTime::from_ms(10), "a");
        q.pop();
        q.post_after(5 * crate::time::MS, "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ms(15));
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.post(SimTime::from_ms(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(2)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.post(SimTime::from_ms(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
