//! Minimal JSON reading and writing for offline artifacts.
//!
//! The workspace runs without network access and without external crates,
//! but the experiment harness needs durable structured artifacts: suite
//! checkpoint manifests, failure reports, and shrunk chaos-repro plans all
//! live on disk as JSON so they are inspectable with standard tools. This
//! module is a deliberately small value type plus parser/writer pair —
//! just enough JSON for those fixed schemas, with one property the usual
//! float-only implementations lack: **unsigned integers round-trip
//! exactly**. Seeds and nanosecond timestamps are `u64`; routing them
//! through `f64` would corrupt anything above 2^53.
//!
//! Supported: objects, arrays, strings (with escapes), `u64`/`i64`
//! integers, floats, booleans, null. Not supported (rejected on parse):
//! duplicate-key detection, full surrogate-pair decoding (lone `\uXXXX`
//! escapes map to the replacement character outside the BMP pair path).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` (exact round-trip).
    Uint(u64),
    /// A negative integer that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps rendering deterministic: the writer
    /// emits keys in sorted order, so equal values serialize to equal
    /// bytes — checkpoint manifests are diffable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience constructor for objects from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Uint(n)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl Json {
    /// Compact, deterministic rendering (sorted object keys, no spaces).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a decimal point / exponent so the value
                    // parses back as a float, never silently as an int.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let tail = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = tail.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            at: start,
            msg: format!("bad number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly() {
        // Above 2^53: would corrupt through f64.
        for n in [u64::MAX, u64::MAX - 1, (1 << 53) + 1, 0] {
            let j = Json::Uint(n);
            let back = Json::parse(&j.render()).unwrap();
            assert_eq!(back.as_u64(), Some(n));
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = Json::obj([
            ("seed", Json::Uint(18446744073709551615)),
            (
                "events",
                Json::Arr(vec![
                    Json::obj([("class", "QuotaChurn".into()), ("at", Json::Uint(12))]),
                    Json::Null,
                ]),
            ),
            ("ok", Json::Bool(true)),
            ("label", "a \"quoted\"\nline\t\\".into()),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Deterministic: rendering is stable byte-for-byte.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "1 2", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_whitespace_and_floats() {
        let v = Json::parse(" { \"x\" : [ 1.5 , -2 , 3 ] } ").unwrap();
        let arr = v.get("x").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Float(1.5));
        assert_eq!(arr[1], Json::Int(-2));
        assert_eq!(arr[2], Json::Uint(3));
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse("\"a\\u0041\\n\"").unwrap();
        assert_eq!(v.as_str(), Some("aA\n"));
    }
}
