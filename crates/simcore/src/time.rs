//! Simulated time.
//!
//! All simulation timestamps are `u64` nanoseconds wrapped in [`SimTime`].
//! Integer time keeps event ordering exact (no float comparison hazards) and
//! matches the kernel's own `sched_clock()` convention.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One microsecond in nanoseconds.
pub const US: u64 = 1_000;
/// One millisecond in nanoseconds.
pub const MS: u64 = 1_000_000;
/// One second in nanoseconds.
pub const SEC: u64 = 1_000_000_000;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from whole nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * US)
    }

    /// Constructs from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * MS)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * SEC)
    }

    /// Nanoseconds since the epoch.
    pub const fn ns(self) -> u64 {
        self.0
    }

    /// Time as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / MS as f64
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SEC as f64
    }

    /// Saturating difference `self - earlier` in nanoseconds.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Saturating addition of a nanosecond delta.
    pub fn after(self, delta_ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(delta_ns))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        self.after(rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        *self = self.after(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1000));
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX.after(10), SimTime::MAX);
        assert_eq!(SimTime::ZERO.since(SimTime::from_secs(1)), 0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_ms(2) > SimTime::from_ms(1));
        assert_eq!(SimTime::from_ms(5) - SimTime::from_ms(2), 3 * MS);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimTime::from_ns(5).to_string(), "5ns");
        assert_eq!(SimTime::from_ms(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }
}
