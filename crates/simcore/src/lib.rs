//! Deterministic discrete-event simulation engine.
//!
//! This crate is the substrate every other layer of the vSched reproduction
//! stands on. It provides:
//!
//! * [`SimTime`] — simulated time as integer nanoseconds with convenience
//!   constructors ([`time::MS`], [`time::SEC`], …).
//! * [`EventQueue`] — a total-order event heap generic over the event
//!   payload; ties are broken by insertion sequence so simulations are
//!   deterministic and independent of heap internals.
//! * [`SimRng`] — a self-contained xoshiro256++ PRNG with the distributions
//!   the workload generators need (exponential, lognormal-ish, uniform).
//! * [`Integrator`] — a piecewise-constant-rate work integrator, the
//!   mechanism by which tasks accrue work only while their vCPU is actually
//!   running on a physical core (the paper's central observable).
//! * [`propcheck`] — a minimal deterministic property-test harness used by
//!   the workspace's randomized test suites (no external deps).
//! * [`json`] — a tiny exact-integer JSON reader/writer for on-disk
//!   artifacts (checkpoint manifests, failure reports, chaos repro plans).
//!
//! The engine is single-threaded by design: determinism is a feature, every
//! experiment is exactly reproducible from its seed.

pub mod event;
pub mod integrator;
pub mod json;
pub mod propcheck;
pub mod rng;
pub mod time;

pub use event::EventQueue;
pub use integrator::Integrator;
pub use rng::SimRng;
pub use time::SimTime;
