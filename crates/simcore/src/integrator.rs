//! Piecewise-constant-rate work integration.
//!
//! The central quantity in a two-level scheduling simulation is *work
//! accrued under a changing rate*: a guest task makes progress only while it
//! is the task chosen by the guest scheduler **and** its vCPU is running on
//! a physical hardware thread, at that thread's current capacity. All of
//! those factors are piecewise constant between simulation events, so work
//! is integrated lazily: whenever any factor changes, the caller settles the
//! elapsed interval at the old rate and installs the new rate.
//!
//! [`Integrator`] is also used for cycle accounting (Figure 20's
//! total-cycles / CPS metrics) and for `vtop`'s cache-line transfer model
//! (transfers accrue while both probe vCPUs overlap in activity).

use crate::time::SimTime;

/// Accumulates `rate * dt` over piecewise-constant-rate intervals.
#[derive(Debug, Clone, Copy)]
pub struct Integrator {
    total: f64,
    rate: f64,
    since: SimTime,
}

impl Integrator {
    /// Creates an integrator at zero with rate zero.
    pub fn new(now: SimTime) -> Self {
        Self {
            total: 0.0,
            rate: 0.0,
            since: now,
        }
    }

    /// Settles the interval `[since, now]` at the current rate.
    pub fn settle(&mut self, now: SimTime) {
        let dt = now.since(self.since);
        if dt > 0 && self.rate != 0.0 {
            self.total += self.rate * dt as f64;
        }
        self.since = now;
    }

    /// Settles up to `now` and installs a new rate.
    pub fn set_rate(&mut self, now: SimTime, rate: f64) {
        self.settle(now);
        self.rate = rate;
    }

    /// The current rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Accumulated value *as of the last settle* — call [`Self::settle`] or
    /// use [`Self::value_at`] for an up-to-date reading.
    pub fn value(&self) -> f64 {
        self.total
    }

    /// Accumulated value projected to `now` without mutating state.
    pub fn value_at(&self, now: SimTime) -> f64 {
        self.total + self.rate * now.since(self.since) as f64
    }

    /// Time (ns from `now`) until the accumulated value reaches `target`,
    /// or `None` if the rate is non-positive or the target is already met
    /// (already-met targets report `Some(0)`).
    ///
    /// ETAs that do not fit simulated time (a subnormal rate against a huge
    /// target, or a non-finite quotient) report `None` — "never" — instead
    /// of a wrapped or saturated timestamp. Finite ETAs near the `u64`
    /// ceiling clamp to `u64::MAX`, which [`SimTime::after`] then saturates,
    /// so a completion event can never be scheduled in the past.
    pub fn eta_ns(&self, now: SimTime, target: f64) -> Option<u64> {
        let current = self.value_at(now);
        if current >= target {
            return Some(0);
        }
        if self.rate <= 0.0 {
            return None;
        }
        let dt = (target - current) / self.rate;
        if !dt.is_finite() {
            return None;
        }
        // Round up so the completion event never fires marginally early;
        // clamp explicitly rather than leaning on `as`-cast saturation so
        // the boundary behaviour is spelled out.
        let dt = dt.ceil();
        if dt >= u64::MAX as f64 {
            return Some(u64::MAX);
        }
        Some(dt as u64)
    }

    /// Adds a constant to the accumulated value (used for one-shot work
    /// penalties such as cache-refill costs after a vCPU inactive period).
    pub fn add(&mut self, amount: f64) {
        self.total += amount;
    }

    /// Resets the accumulated value to zero at `now`, keeping the rate.
    pub fn reset(&mut self, now: SimTime) {
        self.total = 0.0;
        self.since = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MS;

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn integrates_constant_rate() {
        let mut i = Integrator::new(t(0));
        i.set_rate(t(0), 2.0);
        i.settle(t(10));
        assert_eq!(i.value(), 2.0 * 10.0 * MS as f64);
    }

    #[test]
    fn rate_changes_are_piecewise() {
        let mut i = Integrator::new(t(0));
        i.set_rate(t(0), 1.0);
        i.set_rate(t(5), 3.0);
        i.settle(t(10));
        assert_eq!(i.value(), (5.0 + 15.0) * MS as f64);
    }

    #[test]
    fn value_at_projects_without_mutation() {
        let mut i = Integrator::new(t(0));
        i.set_rate(t(0), 1.0);
        assert_eq!(i.value_at(t(4)), 4.0 * MS as f64);
        assert_eq!(i.value(), 0.0); // unsettled
    }

    #[test]
    fn eta_predicts_completion() {
        let mut i = Integrator::new(t(0));
        i.set_rate(t(0), 0.5);
        let eta = i.eta_ns(t(0), 1000.0).unwrap();
        assert_eq!(eta, 2000);
    }

    #[test]
    fn eta_when_already_done_is_zero() {
        let mut i = Integrator::new(t(0));
        i.add(10.0);
        assert_eq!(i.eta_ns(t(0), 5.0), Some(0));
    }

    #[test]
    fn eta_at_zero_rate_is_none() {
        let i = Integrator::new(t(0));
        assert_eq!(i.eta_ns(t(0), 5.0), None);
    }

    #[test]
    fn zero_rate_accrues_nothing() {
        let mut i = Integrator::new(t(0));
        i.settle(t(100));
        assert_eq!(i.value(), 0.0);
    }

    #[test]
    fn reset_zeroes_but_keeps_rate() {
        let mut i = Integrator::new(t(0));
        i.set_rate(t(0), 2.0);
        i.settle(t(1));
        i.reset(t(1));
        assert_eq!(i.value(), 0.0);
        i.settle(t(2));
        assert_eq!(i.value(), 2.0 * MS as f64);
    }

    #[test]
    fn eta_rounds_up() {
        let mut i = Integrator::new(t(0));
        i.set_rate(t(0), 3.0);
        // 10 units at rate 3 → 3.33 ns → must round to 4.
        assert_eq!(i.eta_ns(t(0), 10.0), Some(4));
    }
}
