//! Minimal deterministic property-test harness.
//!
//! The workspace must build and test with no registry access, so the
//! property suites run on this self-contained replacement for `proptest`:
//! every property executes `cases` bodies, each with an independent
//! [`SimRng`] forked from a fixed seed. Failures print the case index and
//! per-case seed so a single case can be replayed in isolation.
//!
//! There is no shrinking; keep generated inputs small enough to read.

use crate::rng::SimRng;

/// Runs `body` for `cases` independently seeded cases.
///
/// The per-case RNG stream depends only on `(seed, case_index)`, so inserting
/// or removing cases never perturbs the others.
///
/// # Panics
///
/// Re-raises the first case failure, after printing which case (and seed)
/// failed.
pub fn forall(seed: u64, cases: usize, mut body: impl FnMut(&mut SimRng)) {
    for case in 0..cases {
        let case_seed = SimRng::new(seed).fork(case as u64).u64();
        let mut rng = SimRng::new(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property failed at case {case}/{cases} (seed {seed}, case seed {case_seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Generates a vector whose length is uniform in `[min_len, max_len)` with
/// elements drawn by `gen`.
pub fn vec_of<T>(
    rng: &mut SimRng,
    min_len: usize,
    max_len: usize,
    mut gen: impl FnMut(&mut SimRng) -> T,
) -> Vec<T> {
    let n = if min_len + 1 >= max_len {
        min_len
    } else {
        min_len + rng.index(max_len - min_len)
    };
    (0..n).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_every_case_deterministically() {
        let mut first = Vec::new();
        forall(42, 16, |rng| first.push(rng.u64()));
        let mut second = Vec::new();
        forall(42, 16, |rng| second.push(rng.u64()));
        assert_eq!(first.len(), 16);
        assert_eq!(first, second);
        // Cases are independent streams, not one shared stream.
        let distinct: std::collections::HashSet<_> = first.iter().collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        forall(7, 32, |rng| {
            let v = vec_of(rng, 2, 10, |r| r.index(5));
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        });
    }
}
