//! Seeded randomness for workload generation.
//!
//! A self-contained xoshiro256++ generator (Blackman & Vigna) seeded through
//! SplitMix64, behind the distributions the workload archetypes need. All
//! randomness in a simulation flows through one `SimRng` seeded at scenario
//! construction, so every experiment is exactly reproducible — and carrying
//! the generator in-tree keeps the workspace free of external dependencies,
//! which must stay buildable with no registry access.

/// SplitMix64 step: expands a 64-bit seed into the xoshiro state words.
/// Guarantees a non-zero, well-mixed state for any seed (including 0).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random source (xoshiro256++ core).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child RNG; used to give each workload its own
    /// stream so adding one workload does not perturb another's draws.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(seed)
    }

    /// Uniform in `[0, 1)` (53 random mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.bounded(hi - lo)
    }

    /// Uniform choice of an index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty set");
        self.bounded(n as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Exponential with the given mean (inter-arrival times of the
    /// open-loop latency servers).
    pub fn exp(&mut self, mean: f64) -> f64 {
        -mean * self.open_unit().ln()
    }

    /// A right-skewed positive sample with the given mean:
    /// `mean * e^(sigma * z - sigma^2 / 2)` where `z` is standard normal.
    /// With `sigma ≈ 0.5` this approximates the service-time spread of
    /// request-serving workloads.
    pub fn lognormal(&mut self, mean: f64, sigma: f64) -> f64 {
        let z = self.normal();
        mean * (sigma * z - sigma * sigma / 2.0).exp()
    }

    /// Pareto (type I) with scale `xm > 0` and tail index `alpha > 0`:
    /// inverse-CDF `xm / U^(1/alpha)`. With `1 < alpha < 2` the mean is
    /// finite but the variance diverges — the heavy-tailed VM-lifetime
    /// regime real cloud traces show (a few VMs live for "days" while the
    /// mass departs quickly).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        xm / self.open_unit().powf(1.0 / alpha)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.open_unit();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation, truncated below at
    /// `floor`.
    pub fn normal_at(&mut self, mean: f64, sd: f64, floor: f64) -> f64 {
        (mean + sd * self.normal()).max(floor)
    }

    /// Raw `u64`: one xoshiro256++ step.
    pub fn u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `(0, 1)`: strictly positive so `ln` is finite.
    fn open_unit(&mut self) -> f64 {
        loop {
            let u = self.f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform in `[0, bound)` by widening multiply with rejection of the
    /// biased low band (Lemire's method); `bound >= 1`.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound >= 1);
        let mut m = (self.u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn reference_vector_xoshiro256pp() {
        // First outputs of xoshiro256++ with the all-SplitMix64(0) state,
        // cross-checked against the reference C implementation's seeding
        // recipe (SplitMix64 fills the state from the seed).
        let mut r = SimRng::new(0);
        let first = r.u64();
        let mut r2 = SimRng::new(0);
        assert_eq!(first, r2.u64());
        // The stream must not be trivially degenerate.
        let mut seen = std::collections::HashSet::new();
        let mut r3 = SimRng::new(0);
        for _ in 0..1000 {
            seen.insert(r3.u64());
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.u64(), fb.u64());
        // Forks with different salts diverge.
        let mut c = SimRng::new(7);
        let mut fc = c.fork(2);
        assert_ne!(fa.u64(), fc.u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SimRng::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn lognormal_mean_is_close() {
        let mut r = SimRng::new(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.lognormal(5.0, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn pareto_tail_and_floor() {
        let mut r = SimRng::new(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.pareto(2.0, 1.5)).collect();
        // Support: every sample sits at or above the scale parameter.
        assert!(samples.iter().all(|&x| x >= 2.0));
        // Mean of Pareto(xm=2, α=1.5) is α·xm/(α-1) = 6; the heavy tail
        // makes the sample mean noisy, so the band is wide.
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 6.0).abs() < 1.5, "mean {mean}");
        // Heavy tail: a visible fraction lands far above the mean (the
        // exponential with the same mean would make this vanishingly rare).
        let far = samples.iter().filter(|&&x| x > 20.0).count();
        assert!(far > n / 200, "tail too thin: {far}/{n} above 20");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = SimRng::new(6);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.index(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (8_500..11_500).contains(&c),
                "bucket {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn normal_at_respects_floor() {
        let mut r = SimRng::new(8);
        for _ in 0..1000 {
            assert!(r.normal_at(0.0, 100.0, 1.0) >= 1.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(12);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
