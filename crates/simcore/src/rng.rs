//! Seeded randomness for workload generation.
//!
//! Wraps a `SmallRng` behind the distributions the workload archetypes need.
//! All randomness in a simulation flows through one `SimRng` seeded at
//! scenario construction, so every experiment is exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; used to give each workload its own
    /// stream so adding one workload does not perturb another's draws.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.rng.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(seed)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.rng.gen_range(lo..hi)
    }

    /// Uniform choice of an index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty set");
        self.rng.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Exponential with the given mean (inter-arrival times of the
    /// open-loop latency servers).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// A right-skewed positive sample with the given mean:
    /// `mean * e^(sigma * z - sigma^2 / 2)` where `z` is standard normal.
    /// With `sigma ≈ 0.5` this approximates the service-time spread of
    /// request-serving workloads.
    pub fn lognormal(&mut self, mean: f64, sigma: f64) -> f64 {
        let z = self.normal();
        mean * (sigma * z - sigma * sigma / 2.0).exp()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation, truncated below at
    /// `floor`.
    pub fn normal_at(&mut self, mean: f64, sd: f64, floor: f64) -> f64 {
        (mean + sd * self.normal()).max(floor)
    }

    /// Raw `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.u64(), fb.u64());
        // Forks with different salts diverge.
        let mut c = SimRng::new(7);
        let mut fc = c.fork(2);
        assert_ne!(fa.u64(), fc.u64());
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn lognormal_mean_is_close() {
        let mut r = SimRng::new(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.lognormal(5.0, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = SimRng::new(6);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn normal_at_respects_floor() {
        let mut r = SimRng::new(8);
        for _ in 0..1000 {
            assert!(r.normal_at(0.0, 100.0, 1.0) >= 1.0);
        }
    }
}
