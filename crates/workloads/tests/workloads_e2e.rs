//! Archetype validation on the full simulator: every workload runs,
//! produces sane statistics, and reacts to contention the way its real
//! counterpart does.

use hostsim::{HostSpec, Machine, ScenarioBuilder, VmSpec};
use simcore::time::{MS, SEC};
use simcore::{SimRng, SimTime};
use vsched_workloads::{
    build, suite::Handle, work_ms, BarrierCfg, BarrierParallel, LatencyServer, LatencyServerCfg,
    LockCfg, LockParallel, MsgPairs, MsgPairsCfg, Pipeline, PipelineCfg, Stressor, TaskQueue,
    ThinkIo,
};

fn one_vm(cores: usize, seed: u64) -> (Machine, usize) {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(cores), seed).vm(VmSpec::pinned(cores, 0));
    (b.build(), vm)
}

#[test]
fn latency_server_serves_requests_with_sane_breakdown() {
    let (mut m, vm) = one_vm(4, 1);
    // 1 ms requests every ~2 ms across 4 workers: light load.
    let cfg = LatencyServerCfg::new(4, work_ms(1.0), 2.0 * MS as f64);
    let (wl, stats) = LatencyServer::new(cfg, SimRng::new(7));
    m.set_workload(vm, Box::new(wl));
    m.start();
    m.run_until(SimTime::from_secs(10));
    let s = stats.borrow();
    // ~5000 arrivals in 10 s.
    assert!(
        (4000..6000).contains(&s.completed),
        "completed {}",
        s.completed
    );
    // Service ≈ 1 ms on dedicated cores.
    let p50 = s.service.p50();
    assert!((800_000..1_400_000).contains(&p50), "service p50 {p50}");
    // Queue is small on an idle VM.
    assert!(s.queue.p50() < 200_000, "queue p50 {}", s.queue.p50());
    // e2e ≈ queue + service.
    assert!(s.e2e.p50() >= s.service.p50());
}

#[test]
fn latency_server_queue_grows_under_saturation() {
    let (mut m, vm) = one_vm(1, 2);
    // Offered load ≈ 1.5x capacity: the backlog must dominate.
    let cfg = LatencyServerCfg::new(2, work_ms(1.0), 0.66 * MS as f64);
    let (wl, stats) = LatencyServer::new(cfg, SimRng::new(8));
    m.set_workload(vm, Box::new(wl));
    m.start();
    m.run_until(SimTime::from_secs(3));
    let s = stats.borrow();
    assert!(
        s.queue.p95() > 10 * MS,
        "saturated queue p95 {}",
        s.queue.p95()
    );
}

#[test]
fn barrier_parallel_completes_rounds() {
    let (mut m, vm) = one_vm(4, 3);
    let (wl, stats) =
        BarrierParallel::new(BarrierCfg::new(4, work_ms(2.0)).rounds(100), SimRng::new(9));
    m.set_workload(vm, Box::new(wl));
    m.start();
    m.run_until(SimTime::from_secs(10));
    let s = stats.borrow();
    assert_eq!(s.completed, 100);
    let t = s.finished_at.expect("finished");
    // 100 rounds × ~2 ms ≈ 0.2 s (plus stragglers).
    assert!(
        (SimTime::from_ms(180)..SimTime::from_ms(600)).contains(&t),
        "finished at {t}"
    );
}

#[test]
fn spinning_barrier_burns_more_cycles_than_blocking() {
    let run = |spin: bool| -> f64 {
        let (mut m, vm) = one_vm(4, 4);
        let mut cfg = BarrierCfg::new(4, work_ms(1.0)).rounds(200);
        // Unequal bursts → stragglers → waiting time at barriers.
        cfg.sigma_frac = 0.5;
        if spin {
            cfg = cfg.spinning();
        }
        let (wl, _stats) = BarrierParallel::new(cfg, SimRng::new(10));
        m.set_workload(vm, Box::new(wl));
        m.start();
        m.run_until(SimTime::from_secs(10));
        m.vms[vm].cycles.value()
    };
    let blocking = run(false);
    let spinning = run(true);
    assert!(
        spinning > 1.1 * blocking,
        "spin {spinning:.3e} vs block {blocking:.3e}"
    );
}

#[test]
fn lock_parallel_serializes_critical_sections() {
    let (mut m, vm) = one_vm(4, 5);
    let (wl, stats) = LockParallel::new(
        LockCfg::new(4, work_ms(0.1), work_ms(1.0)).iterations(500),
        SimRng::new(11),
    );
    m.set_workload(vm, Box::new(wl));
    m.start();
    m.run_until(SimTime::from_secs(10));
    let s = stats.borrow();
    assert_eq!(s.completed, 500);
    // Critical sections serialize: 500 × 1 ms ≥ 0.5 s wall time.
    let t = s.finished_at.expect("finished");
    assert!(t >= SimTime::from_ms(480), "finished at {t}");
}

#[test]
fn pipeline_pushes_items_through_stages() {
    let (mut m, vm) = one_vm(6, 6);
    let (wl, stats) = Pipeline::new(
        PipelineCfg::new(
            vec![(2, work_ms(1.0)), (2, work_ms(1.0)), (2, work_ms(0.5))],
            300,
        ),
        SimRng::new(12),
    );
    m.set_workload(vm, Box::new(wl));
    m.start();
    m.run_until(SimTime::from_secs(10));
    let s = stats.borrow();
    assert_eq!(s.completed, 300);
    assert!(s.finished_at.is_some());
}

#[test]
fn msg_pairs_delivers_all_messages() {
    let (mut m, vm) = one_vm(4, 7);
    let (wl, stats) = MsgPairs::new(MsgPairsCfg::new(2, 2, 2, 200), SimRng::new(13));
    m.set_workload(vm, Box::new(wl));
    m.start();
    m.run_until(SimTime::from_secs(20));
    let s = stats.borrow();
    // 2 groups × 2 senders × 200 messages.
    assert_eq!(s.completed, 800);
    assert!(s.finished_at.is_some());
}

#[test]
fn stressor_throughput_scales_with_capacity() {
    let run = |with_competitor: bool| -> u64 {
        let (b, vm) = ScenarioBuilder::new(HostSpec::flat(1), 8).vm(VmSpec::pinned(1, 0));
        let (b, other) = b.vm(VmSpec::pinned(1, 0));
        let mut m = b.build();
        let (wl, stats) = Stressor::new(1, work_ms(5.0));
        m.set_workload(vm, Box::new(wl));
        if with_competitor {
            let (cw, _cs) = Stressor::new(1, work_ms(5.0));
            m.set_workload(other, Box::new(cw));
        }
        m.start();
        m.run_until(SimTime::from_secs(5));
        let completed = stats.borrow().completed;
        completed
    };
    let alone = run(false);
    let shared = run(true);
    let ratio = shared as f64 / alone as f64;
    assert!((ratio - 0.5).abs() < 0.08, "ratio {ratio}");
}

#[test]
fn think_io_sleeps_between_bursts() {
    let (mut m, vm) = one_vm(1, 9);
    // 0.2 ms compute + ~2 ms sleep → ~450 cycles/s.
    let (wl, stats) = ThinkIo::new(1, work_ms(0.2), 2 * MS, SimRng::new(14));
    m.set_workload(vm, Box::new(wl));
    m.start();
    m.run_until(SimTime::from_secs(5));
    let c = stats.borrow().completed;
    assert!((1800..2800).contains(&c), "cycles {c}");
    // The vCPU was mostly idle.
    let active = m.vcpu_active_ns(m.gv(vm, 0)) as f64 / (5.0 * SEC as f64);
    assert!(active < 0.25, "active fraction {active}");
}

#[test]
fn task_queue_finishes_all_items() {
    let (mut m, vm) = one_vm(4, 10);
    let (wl, stats) = TaskQueue::new(4, 200, work_ms(2.0), SimRng::new(15));
    m.set_workload(vm, Box::new(wl));
    m.start();
    m.run_until(SimTime::from_secs(10));
    let s = stats.borrow();
    assert_eq!(s.completed, 200);
    // 200 × 2 ms / 4 workers ≈ 0.1 s.
    let t = s.finished_at.expect("finished");
    assert!(t < SimTime::from_ms(400), "finished at {t}");
}

#[test]
fn suite_benchmarks_all_run_on_the_machine() {
    // Smoke-run every suite benchmark briefly and require forward progress.
    let names: Vec<&str> = vsched_workloads::THROUGHPUT_BENCHES
        .iter()
        .chain(vsched_workloads::LATENCY_BENCHES.iter())
        .copied()
        .chain(["hackbench", "fio", "sysbench", "matmul"])
        .collect();
    for (i, name) in names.iter().enumerate() {
        let (mut m, vm) = one_vm(4, 100 + i as u64);
        let (wl, handle) = build(name, 4, SimRng::new(200 + i as u64));
        m.set_workload(vm, wl);
        m.start();
        m.run_until(SimTime::from_secs(3));
        assert!(handle.completed() > 0, "{name}: no progress in 3 s");
        match handle {
            Handle::Latency(s) => assert!(s.borrow().e2e.p95() > 0, "{name}: empty latency"),
            Handle::Throughput(s) => assert!(s.borrow().work_done > 0.0, "{name}"),
        }
    }
}
