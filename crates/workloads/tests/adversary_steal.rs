//! End-to-end adversary claims, at the machine level:
//!
//! * the tick-dodger steals a measurably positive share from an equal-
//!   weight neighbour under *sampled* proportional-share accounting
//!   (`HostSched::CreditSampled` — the Xen-credit attack from "Scheduler
//!   Vulnerabilities and Attacks in Cloud Computing");
//! * the same attack gains nothing under exact-settling accounting
//!   (`HostSched::Proportional`) — dodging only forfeits runtime;
//! * under `HostSched::Domain` time partitioning the theft is
//!   structurally impossible, and the run stays clean under the new
//!   domain trace laws (slice sums, cross-domain execution, steal
//!   conservation).

use guestos::GuestConfig;
use hostsim::{DomainSchedule, DomainSlice, HostSched, HostSpec, Machine};
use simcore::time::MS;
use simcore::SimTime;
use trace::{Collector, PriorityClass, TraceSink};
use vsched_workloads::{work_ms, Adversary, AttackKind, AttackPlan, AttackSpec, Stressor};

const HORIZON_NS: u64 = 3_000 * MS;

/// Runs an always-hungry 2-vCPU victim against a 2-vCPU tick-dodger on a
/// 2-thread host under `sched`; returns the adversary's share of total
/// thread time. Fair share is 0.5. Panics on any trace-law violation.
fn adversary_share(sched: HostSched) -> f64 {
    let mut m = Machine::new(HostSpec::flat(2), 7);
    let victim = m.add_vm(GuestConfig::new(2), vec![vec![0], vec![1]], 1024, None);
    let advm = m.add_vm(GuestConfig::new(2), vec![vec![0], vec![1]], 1024, None);
    m.set_vm_class(victim, PriorityClass::Standard);
    m.set_vm_class(advm, PriorityClass::Batch);
    let (_, shared) = TraceSink::shared(Collector::default().with_checker());
    m.attach_trace(&shared);
    m.set_host_sched(sched).unwrap();

    let (stressor, _stats) = Stressor::new(2, work_ms(1.0));
    m.set_workload(victim, Box::new(stressor.pinned(vec![0, 1])));
    let spec = AttackSpec::for_vm(2, HORIZON_NS).only(AttackKind::DodgeRun);
    let plan = AttackPlan::generate(42, &spec);
    m.set_workload(advm, Box::new(Adversary::new(&plan)));

    m.start();
    m.run_until(SimTime::from_ns(HORIZON_NS));

    let report_ok = {
        let c = shared.borrow();
        let checker = c.checker.as_ref().unwrap();
        assert!(
            checker.report().ok(),
            "trace law violated: {:?}",
            checker.first()
        );
        true
    };
    assert!(report_ok);

    let adv_active: u64 = (0..2).map(|v| m.vcpu_active_ns(m.gv(advm, v))).sum();
    adv_active as f64 / (2 * HORIZON_NS) as f64
}

#[test]
fn tick_dodger_steals_under_sampled_accounting() {
    let share = adversary_share(HostSched::CreditSampled { tick_ns: MS });
    assert!(
        share > 0.65,
        "dodger share {share:.3} — expected well above the 0.5 fair share"
    );
}

#[test]
fn exact_accounting_gives_the_dodger_nothing() {
    let share = adversary_share(HostSched::Proportional);
    assert!(
        share < 0.55,
        "dodger share {share:.3} under exact settling — dodging should not pay"
    );
}

#[test]
fn domain_schedule_confines_the_dodger_to_its_slice() {
    let ds = DomainSchedule::new(vec![
        DomainSlice::new(PriorityClass::Standard, 2 * MS),
        DomainSlice::new(PriorityClass::Batch, 2 * MS),
    ]);
    let share = adversary_share(HostSched::Domain(ds));
    assert!(
        share < 0.52,
        "dodger share {share:.3} — must not exceed its half-period entitlement"
    );
    assert!(
        share > 0.2,
        "dodger share {share:.3} — the adversary's own slice must still run it"
    );
}
