//! Combinator behaviour: task routing, timer namespacing, and delayed
//! starts on the real machine.

use hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use simcore::time::SEC;
use simcore::{SimRng, SimTime};
use vsched_workloads::{build, work_ms, DelayedWorkload, MultiWorkload, Stressor};

#[test]
fn multi_workload_runs_children_independently() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(4), 1).vm(VmSpec::pinned(4, 0));
    let mut m = b.build();
    let (a, sa) = Stressor::new(2, work_ms(5.0));
    let (c, sc) = Stressor::new(2, work_ms(5.0));
    m.set_workload(
        vm,
        Box::new(MultiWorkload::new(vec![Box::new(a), Box::new(c)])),
    );
    m.start();
    m.run_until(SimTime::from_secs(2));
    // Both children progressed, roughly equally (2 threads each on 4 cores).
    let ca = sa.borrow().completed;
    let cc = sc.borrow().completed;
    assert!(ca > 0 && cc > 0);
    let ratio = ca as f64 / cc as f64;
    assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
}

#[test]
fn multi_workload_routes_timers_by_namespace() {
    // Two latency servers (timer-driven arrivals) in one VM: both must
    // keep receiving their own arrival timers.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(4), 2).vm(VmSpec::pinned(4, 0));
    let mut m = b.build();
    let (w1, h1) = build("masstree", 2, SimRng::new(3));
    let (w2, h2) = build("silo", 2, SimRng::new(4));
    m.set_workload(vm, Box::new(MultiWorkload::new(vec![w1, w2])));
    m.start();
    m.run_until(SimTime::from_secs(3));
    assert!(h1.completed() > 100, "masstree {}", h1.completed());
    assert!(h2.completed() > 100, "silo {}", h2.completed());
}

#[test]
fn delayed_workload_starts_on_schedule() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(2), 3).vm(VmSpec::pinned(2, 0));
    let mut m = b.build();
    let (w, s) = Stressor::new(2, work_ms(5.0));
    m.set_workload(vm, Box::new(DelayedWorkload::new(Box::new(w), 2 * SEC)));
    m.start();
    m.run_until(SimTime::from_secs(1));
    assert_eq!(s.borrow().completed, 0, "nothing before the delay");
    m.run_until(SimTime::from_secs(4));
    let done = s.borrow().completed;
    assert!(done > 0, "workload started after the delay");
    // Roughly 2 s × 2 cores / 5 ms = ~800 events.
    assert!((600..900).contains(&(done as usize)), "completed {done}");
}

#[test]
fn delayed_inside_multi_combines() {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(2), 4).vm(VmSpec::pinned(2, 0));
    let mut m = b.build();
    let (early, se) = Stressor::new(1, work_ms(5.0));
    let (late, sl) = Stressor::new(1, work_ms(5.0));
    m.set_workload(
        vm,
        Box::new(MultiWorkload::new(vec![
            Box::new(early),
            Box::new(DelayedWorkload::new(Box::new(late), SEC)),
        ])),
    );
    m.start();
    m.run_until(SimTime::from_secs(2));
    let e = se.borrow().completed;
    let l = sl.borrow().completed;
    assert!(e > l, "early {e} late {l}");
    assert!(l > 0, "late child ran");
}
