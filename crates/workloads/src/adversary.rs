//! Adversarial guest archetypes: scheduler-gaming workloads.
//!
//! "Scheduler Vulnerabilities and Attacks in Cloud Computing" (PAPERS.md)
//! shows that a guest which understands the hypervisor's accounting can
//! steal cycles from proportional-share schedulers. This module models
//! three such adversaries as seed-deterministic, replayable *attack
//! plans* — the same shape as `hostsim`'s chaos [`FaultPlan`]s, so the
//! PR 4 ddmin shrinker reduces an attack to a 1-minimal repro unchanged:
//!
//! * **tick-dodger** ([`AttackKind::DodgeRun`]) — computes between the
//!   host's sampled accounting ticks but sleeps across every tick
//!   instant, so a sampled scheduler (Xen-credit-style
//!   `HostSched::CreditSampled`) never charges it and its wakes always
//!   preempt honestly-charged neighbours;
//! * **probe-polluter** ([`AttackKind::ProbeBurst`]) — bursts interference
//!   exactly during a neighbour's vcap/vact probe windows (the "oracle
//!   attacker": window timing is computable from vSched's published
//!   defaults), poisoning the learned capacity while staying near-idle
//!   the rest of the time;
//! * **quota-thrasher** ([`AttackKind::ThrashPhase`]) — oscillates demand
//!   in square waves sized to defeat PELT-style averaging.
//!
//! An [`AttackPlan`] compiles an archetype mix into a coarse action
//! timeline (tens of actions, so ddmin stays tractable); the
//! [`Adversary`] workload executes it by force-waking and force-blocking
//! one pinned spin task per vCPU at the planned boundaries. DodgeRun
//! actions are expanded at install time into per-tick micro-intervals —
//! the plan stays coarse, the execution is tick-accurate.

use guestos::{CpuMask, GuestOs, Platform, SpawnSpec, TaskAction, TaskId, TaskState, Workload};
use simcore::json::Json;
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// A burst that never completes on its own; the adversary's tasks are
/// stopped by force-blocking, not by running out of work.
const ENDLESS_WORK: f64 = 1.0e18;

/// One archetype's action class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Tick-dodging compute run: expanded into per-tick micro-intervals
    /// that sleep across every accounting-tick instant.
    DodgeRun,
    /// Interference burst synchronized with a neighbour's probe window.
    ProbeBurst,
    /// One "on" phase of a demand square wave (off = the gap to the next).
    ThrashPhase,
}

/// All archetypes, in stable order.
pub const ATTACK_KINDS: [AttackKind; 3] = [
    AttackKind::DodgeRun,
    AttackKind::ProbeBurst,
    AttackKind::ThrashPhase,
];

impl AttackKind {
    /// Stable serialization name (attack-repro files store these).
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::DodgeRun => "DodgeRun",
            AttackKind::ProbeBurst => "ProbeBurst",
            AttackKind::ThrashPhase => "ThrashPhase",
        }
    }

    /// Inverse of [`AttackKind::name`].
    pub fn from_name(name: &str) -> Option<AttackKind> {
        ATTACK_KINDS.into_iter().find(|k| k.name() == name)
    }

    /// Stable per-kind RNG stream tag (independent of declaration order).
    fn tag(&self) -> u64 {
        match self {
            AttackKind::DodgeRun => 1,
            AttackKind::ProbeBurst => 2,
            AttackKind::ThrashPhase => 3,
        }
    }
}

/// What the adversary knows and may touch.
#[derive(Debug, Clone)]
pub struct AttackSpec {
    /// Number of vCPUs the adversary VM has (one attack task per vCPU).
    pub nr_vcpus: usize,
    /// Enabled archetypes.
    pub kinds: Vec<AttackKind>,
    /// Attacks are planned in `[start, start + horizon)`.
    pub start: SimTime,
    /// Planning horizon in nanoseconds.
    pub horizon_ns: u64,
    /// The host's sampled accounting tick the dodger games.
    pub tick_ns: u64,
    /// How long before/after each tick instant the dodger stays off-CPU.
    pub guard_ns: u64,
    /// When the victim's first probe window opens (vSched arms its first
    /// vcap window 10 ms after install).
    pub probe_first_ns: u64,
    /// Probe window cadence (vSched's light-probe period).
    pub probe_every_ns: u64,
    /// Probe window width (vSched's sampling period).
    pub probe_window_ns: u64,
}

impl AttackSpec {
    /// A spec for an adversary VM with `nr_vcpus` vCPUs and every
    /// archetype enabled, tuned to the repo's default host tick (1 ms)
    /// and vSched probe schedule (first window at 10 ms, every 1 s,
    /// 100 ms wide).
    pub fn for_vm(nr_vcpus: usize, horizon_ns: u64) -> Self {
        Self {
            nr_vcpus,
            kinds: ATTACK_KINDS.to_vec(),
            start: SimTime::ZERO,
            horizon_ns,
            tick_ns: MS,
            guard_ns: 50_000,
            probe_first_ns: 10 * MS,
            probe_every_ns: 1_000 * MS,
            probe_window_ns: 100 * MS,
        }
    }

    /// Restricts the plan to a single archetype.
    pub fn only(mut self, kind: AttackKind) -> Self {
        self.kinds = vec![kind];
        self
    }
}

impl PartialEq for AttackSpec {
    fn eq(&self, other: &Self) -> bool {
        self.nr_vcpus == other.nr_vcpus
            && self.kinds == other.kinds
            && self.start == other.start
            && self.horizon_ns == other.horizon_ns
            && self.tick_ns == other.tick_ns
            && self.guard_ns == other.guard_ns
            && self.probe_first_ns == other.probe_first_ns
            && self.probe_every_ns == other.probe_every_ns
            && self.probe_window_ns == other.probe_window_ns
    }
}

/// One planned attack action: vCPU `vcpu` is on-CPU (per its kind's
/// execution rule) during `[at, at + dur_ns)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackAction {
    /// Action start.
    pub at: SimTime,
    /// Action length in nanoseconds.
    pub dur_ns: u64,
    /// Guest-local vCPU of the adversary VM.
    pub vcpu: usize,
    /// Archetype.
    pub kind: AttackKind,
}

impl fmt::Display for AttackAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} {:?} vcpu={} dur={}",
            self.at.ns(),
            self.kind,
            self.vcpu,
            self.dur_ns
        )
    }
}

/// A replayable, shrinkable attack schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// Planned actions, sorted by start time (ties keep generation order,
    /// which is itself deterministic).
    pub events: Vec<AttackAction>,
    spec: AttackSpec,
}

impl AttackPlan {
    /// Generates the plan. Each enabled archetype draws from its own
    /// forked RNG stream, so enabling or disabling one archetype never
    /// perturbs the timeline of another.
    pub fn generate(seed: u64, spec: &AttackSpec) -> AttackPlan {
        let mut events: Vec<AttackAction> = Vec::new();
        for &kind in &spec.kinds {
            let mut rng = SimRng::new(seed ^ 0xAD5A_5A17).fork(kind.tag());
            Self::plan_kind(&mut rng, spec, kind, &mut events);
        }
        events.sort_by_key(|e| e.at);
        AttackPlan {
            seed,
            events,
            spec: spec.clone(),
        }
    }

    fn plan_kind(
        rng: &mut SimRng,
        spec: &AttackSpec,
        kind: AttackKind,
        out: &mut Vec<AttackAction>,
    ) {
        let end = spec.start.ns().saturating_add(spec.horizon_ns);
        match kind {
            AttackKind::DodgeRun => {
                // Long, mostly-back-to-back compute runs; the executor
                // carves the per-tick dodging out of each run.
                for vcpu in 0..spec.nr_vcpus {
                    let mut t = spec.start.ns().saturating_add(rng.range(0, 4 * MS));
                    while t < end {
                        let dur = (100 * MS + rng.range(0, 200 * MS)).min(end - t);
                        out.push(AttackAction {
                            at: SimTime::from_ns(t),
                            dur_ns: dur,
                            vcpu,
                            kind,
                        });
                        t = t.saturating_add(dur + 10 * MS + rng.range(0, 40 * MS));
                    }
                }
            }
            AttackKind::ProbeBurst => {
                // The oracle attacker: one burst per computable probe
                // window, opened slightly early so the interference is
                // already flowing when the window's steal snapshot lands.
                let mut open = spec.start.ns().saturating_add(spec.probe_first_ns);
                while open < end {
                    for vcpu in 0..spec.nr_vcpus {
                        let lead = MS + rng.range(0, 500_000);
                        let at = open.saturating_sub(lead);
                        out.push(AttackAction {
                            at: SimTime::from_ns(at),
                            dur_ns: spec.probe_window_ns + lead + MS,
                            vcpu,
                            kind,
                        });
                    }
                    open = open.saturating_add(spec.probe_every_ns);
                }
            }
            AttackKind::ThrashPhase => {
                // Square-wave demand: on-phases with comparable off-gaps,
                // sized near PELT's averaging horizon so the load signal
                // never converges.
                for vcpu in 0..spec.nr_vcpus {
                    let mut t = spec.start.ns().saturating_add(rng.range(0, 20 * MS));
                    while t < end {
                        let on = (50 * MS + rng.range(0, 100 * MS)).min(end - t);
                        out.push(AttackAction {
                            at: SimTime::from_ns(t),
                            dur_ns: on,
                            vcpu,
                            kind,
                        });
                        t = t.saturating_add(on + 50 * MS + rng.range(0, 100 * MS));
                    }
                }
            }
        }
    }

    /// The spec the plan was generated against.
    pub fn spec(&self) -> &AttackSpec {
        &self.spec
    }

    /// A plan with the same seed and spec but a different action list
    /// (any subsequence — the ddmin shrinker's subset probe).
    pub fn with_events(&self, events: Vec<AttackAction>) -> AttackPlan {
        debug_assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        AttackPlan {
            seed: self.seed,
            events,
            spec: self.spec.clone(),
        }
    }

    /// Stable one-line-per-action rendering; determinism gates compare
    /// this byte-for-byte across runs and processes.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }

    /// Serializes the full plan — spec, seed, and action list — as JSON
    /// (the attack-repro file format; integers round-trip exactly).
    pub fn to_json(&self) -> String {
        let spec = &self.spec;
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::obj([
                    ("at_ns", Json::Uint(e.at.ns())),
                    ("kind", e.kind.name().into()),
                    ("vcpu", Json::Uint(e.vcpu as u64)),
                    ("dur_ns", Json::Uint(e.dur_ns)),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("seed", Json::Uint(self.seed)),
            (
                "spec",
                Json::obj([
                    ("nr_vcpus", Json::Uint(spec.nr_vcpus as u64)),
                    (
                        "kinds",
                        Json::Arr(spec.kinds.iter().map(|k| k.name().into()).collect()),
                    ),
                    ("start_ns", Json::Uint(spec.start.ns())),
                    ("horizon_ns", Json::Uint(spec.horizon_ns)),
                    ("tick_ns", Json::Uint(spec.tick_ns)),
                    ("guard_ns", Json::Uint(spec.guard_ns)),
                    ("probe_first_ns", Json::Uint(spec.probe_first_ns)),
                    ("probe_every_ns", Json::Uint(spec.probe_every_ns)),
                    ("probe_window_ns", Json::Uint(spec.probe_window_ns)),
                ]),
            ),
            ("events", Json::Arr(events)),
        ])
        .render()
    }

    /// Parses a plan previously written by [`AttackPlan::to_json`].
    pub fn from_json(text: &str) -> Result<AttackPlan, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let need =
            |v: Option<&Json>, what: &str| v.cloned().ok_or_else(|| format!("missing {what}"));
        let u = |v: &Json, what: &str| v.as_u64().ok_or_else(|| format!("{what} not a u64"));
        let kind_of = |v: &Json| -> Result<AttackKind, String> {
            let name = v.as_str().ok_or("kind not a string")?;
            AttackKind::from_name(name).ok_or_else(|| format!("unknown attack kind '{name}'"))
        };

        let sj = need(doc.get("spec"), "spec")?;
        let su = |key: &str| -> Result<u64, String> { u(&need(sj.get(key), key)?, key) };
        let spec = AttackSpec {
            nr_vcpus: su("nr_vcpus")? as usize,
            kinds: need(sj.get("kinds"), "spec.kinds")?
                .as_arr()
                .ok_or("spec.kinds not an array")?
                .iter()
                .map(kind_of)
                .collect::<Result<_, _>>()?,
            start: SimTime::from_ns(su("start_ns")?),
            horizon_ns: su("horizon_ns")?,
            tick_ns: su("tick_ns")?,
            guard_ns: su("guard_ns")?,
            probe_first_ns: su("probe_first_ns")?,
            probe_every_ns: su("probe_every_ns")?,
            probe_window_ns: su("probe_window_ns")?,
        };
        let mut events = Vec::new();
        for ej in need(doc.get("events"), "events")?
            .as_arr()
            .ok_or("events not an array")?
        {
            events.push(AttackAction {
                at: SimTime::from_ns(u(&need(ej.get("at_ns"), "event.at_ns")?, "at_ns")?),
                kind: kind_of(&need(ej.get("kind"), "event.kind")?)?,
                vcpu: u(&need(ej.get("vcpu"), "event.vcpu")?, "vcpu")? as usize,
                dur_ns: u(&need(ej.get("dur_ns"), "event.dur_ns")?, "dur_ns")?,
            });
        }
        if !events.windows(2).all(|w| w[0].at <= w[1].at) {
            return Err("events not sorted by at_ns".into());
        }
        Ok(AttackPlan {
            seed: u(&need(doc.get("seed"), "seed")?, "seed")?,
            events,
            spec,
        })
    }
}

// ----------------------------------------------------------------------
// Executor
// ----------------------------------------------------------------------

/// Executes an [`AttackPlan`]: one endless-spin task per adversary vCPU,
/// pinned, force-woken at each planned interval start and force-blocked
/// at each interval end via per-vCPU timer chains. Fully deterministic:
/// the entire schedule is a pure function of the plan.
pub struct Adversary {
    plan_label: String,
    /// Per-vCPU run intervals `(start_ns, end_ns)`, sorted and merged.
    intervals: Vec<VecDeque<(u64, u64)>>,
    tasks: Vec<TaskId>,
    /// Whether vCPU `i`'s task is currently meant to be on-CPU.
    running: Vec<bool>,
}

impl Adversary {
    /// Compiles the plan into per-vCPU merged run intervals. DodgeRun
    /// actions expand here into their per-tick micro-intervals.
    pub fn new(plan: &AttackPlan) -> Self {
        let spec = plan.spec();
        let mut per: Vec<Vec<(u64, u64)>> = vec![Vec::new(); spec.nr_vcpus];
        for e in &plan.events {
            if e.vcpu >= spec.nr_vcpus {
                continue;
            }
            let (a, b) = (e.at.ns(), e.at.ns().saturating_add(e.dur_ns));
            match e.kind {
                AttackKind::DodgeRun => {
                    // Off-CPU inside [tick - guard, tick + guard] around
                    // every accounting tick; on-CPU in the gaps between.
                    let tick = spec.tick_ns.max(1);
                    let guard = spec.guard_ns.min(tick / 2);
                    let mut k = a / tick;
                    loop {
                        let lo = (k * tick + guard).max(a);
                        let hi = ((k + 1) * tick).saturating_sub(guard).min(b);
                        if lo >= b {
                            break;
                        }
                        if lo < hi {
                            per[e.vcpu].push((lo, hi));
                        }
                        k += 1;
                    }
                }
                AttackKind::ProbeBurst | AttackKind::ThrashPhase => {
                    if a < b {
                        per[e.vcpu].push((a, b));
                    }
                }
            }
        }
        let intervals = per
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                let mut merged: VecDeque<(u64, u64)> = VecDeque::with_capacity(v.len());
                for (a, b) in v {
                    match merged.back_mut() {
                        Some(last) if a <= last.1 => last.1 = last.1.max(b),
                        _ => merged.push_back((a, b)),
                    }
                }
                merged
            })
            .collect();
        Self {
            plan_label: format!("adversary[seed={}]", plan.seed),
            intervals,
            tasks: Vec::new(),
            running: Vec::new(),
        }
    }

    /// Total planned on-CPU nanoseconds (per-vCPU intervals summed) —
    /// the denominator for a stolen-fraction measurement.
    pub fn planned_on_ns(&self) -> u64 {
        self.intervals.iter().flatten().map(|(a, b)| b - a).sum()
    }
}

impl Workload for Adversary {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for v in 0..self.intervals.len() {
            let spec = SpawnSpec::normal(nr).affinity(CpuMask::single(v % nr.max(1)));
            let t = guest.spawn(plat, spec);
            self.tasks.push(t);
            self.running.push(false);
            // Not woken here: the task sits Blocked until its first
            // planned interval.
            if let Some(&(start, _)) = self.intervals[v].front() {
                plat.set_timer(v as u64, SimTime::from_ns(start));
            }
        }
    }

    fn on_timer(&mut self, g: &mut GuestOs, p: &mut dyn Platform, token: u64) {
        let v = token as usize;
        if v >= self.tasks.len() {
            return;
        }
        let task = self.tasks[v];
        if self.running[v] {
            // Interval end: force the task off-CPU until the next one.
            let Some((_, end)) = self.intervals[v].pop_front() else {
                return;
            };
            debug_assert!(p.now().ns() >= end);
            self.running[v] = false;
            if g.kern.task(task).state != TaskState::Dead {
                g.kern.block_task(p, task);
            }
            if let Some(&(start, _)) = self.intervals[v].front() {
                p.set_timer(v as u64, SimTime::from_ns(start));
            }
        } else {
            // Interval start: wake and arm the end-of-interval timer.
            let Some(&(_, end)) = self.intervals[v].front() else {
                return;
            };
            self.running[v] = true;
            if g.kern.task(task).state == TaskState::Blocked {
                g.wake_task(p, task, None);
            }
            p.set_timer(v as u64, SimTime::from_ns(end));
        }
    }

    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        // The burst never completes; intervals end by force-block.
        TaskAction::Compute { work: ENDLESS_WORK }
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.tasks.contains(&t)
    }

    fn label(&self) -> &str {
        &self.plan_label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::propcheck;

    #[test]
    fn plans_are_byte_identical_per_seed() {
        propcheck::forall(0xA77A, 40, |rng| {
            let seed = rng.u64();
            let spec = AttackSpec::for_vm(2, 3_000 * MS);
            let a = AttackPlan::generate(seed, &spec);
            let b = AttackPlan::generate(seed, &spec);
            assert_eq!(a.describe(), b.describe());
            assert_eq!(a, b);
        });
    }

    #[test]
    fn disabling_one_archetype_never_perturbs_another() {
        let full_spec = AttackSpec::for_vm(2, 3_000 * MS);
        let full = AttackPlan::generate(7, &full_spec);
        for kind in ATTACK_KINDS {
            let only = AttackPlan::generate(7, &full_spec.clone().only(kind));
            let filtered: Vec<_> = full
                .events
                .iter()
                .copied()
                .filter(|e| e.kind == kind)
                .collect();
            assert_eq!(only.events, filtered, "{kind:?} stream not independent");
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        propcheck::forall(0x1507, 20, |rng| {
            let seed = rng.u64();
            let spec = AttackSpec::for_vm(3, 2_500 * MS);
            let plan = AttackPlan::generate(seed, &spec);
            let back = AttackPlan::from_json(&plan.to_json()).unwrap();
            assert_eq!(back, plan);
        });
    }

    #[test]
    fn dodge_runs_expand_to_tick_avoiding_micro_intervals() {
        let mut spec = AttackSpec::for_vm(1, 100 * MS).only(AttackKind::DodgeRun);
        spec.tick_ns = MS;
        spec.guard_ns = 50_000;
        let plan = AttackPlan::generate(3, &spec);
        assert!(!plan.events.is_empty());
        let adv = Adversary::new(&plan);
        let tick = spec.tick_ns;
        let guard = spec.guard_ns;
        let mut checked = 0;
        for &(a, b) in &adv.intervals[0] {
            assert!(a < b);
            // Both edges keep at least the guard distance from the
            // nearest tick instant, and no interval spans a tick.
            assert!(a % tick >= guard, "start {a} within guard of a tick");
            assert!(
                b % tick != 0 && tick - b % tick >= guard,
                "end {b} within guard of a tick"
            );
            assert!(b - a <= tick - 2 * guard, "interval [{a},{b}) spans a tick");
            checked += 1;
        }
        assert!(
            checked > 50,
            "expanded intervals should straddle many ticks"
        );
        assert!(adv.planned_on_ns() > 0);
    }

    #[test]
    fn subset_plans_preserve_order_and_spec() {
        let spec = AttackSpec::for_vm(2, 2_000 * MS);
        let plan = AttackPlan::generate(11, &spec);
        let evens: Vec<_> = plan.events.iter().copied().step_by(2).collect();
        let sub = plan.with_events(evens.clone());
        assert_eq!(sub.events, evens);
        assert_eq!(sub.spec(), plan.spec());
        assert_eq!(sub.seed, plan.seed);
    }
}
