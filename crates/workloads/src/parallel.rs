//! Parallel throughput-oriented workloads (PARSEC / SPLASH-2x archetypes).
//!
//! * [`BarrierParallel`] — T threads alternate compute bursts and barriers
//!   (data-parallel scientific codes). `spin_wait` models user-level
//!   spin-based synchronization (streamcluster, volrend), which burns CPU
//!   while waiting and suffers the LHP-like problem the paper notes in
//!   §5.6.
//! * [`LockParallel`] — threads interleave outside work with critical
//!   sections under one lock (synchronization-intensive codes like
//!   canneal/dedup). A preempted lock holder stalls every waiter, which is
//!   why these workloads are so sensitive to straggler and stacked vCPUs
//!   (Figure 4).

use crate::common::ThroughputStats;
use guestos::{GuestOs, Platform, SpawnSpec, TaskAction, TaskId, Workload};
use simcore::SimRng;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Work burned per spin-wait quantum (capacity-ns): 50 µs of spinning.
const SPIN_QUANTUM: f64 = 1024.0 * 50_000.0;

/// Configuration of a barrier-parallel workload.
#[derive(Debug, Clone)]
pub struct BarrierCfg {
    /// Threads.
    pub threads: usize,
    /// Mean compute work per burst (capacity-ns).
    pub burst_work: f64,
    /// Burst spread as a fraction of the mean.
    pub sigma_frac: f64,
    /// Rounds to execute; `None` = run forever.
    pub rounds: Option<u64>,
    /// Busy-wait at the barrier instead of blocking.
    pub spin_wait: bool,
    /// Communication group tag for the threads.
    pub comm_group: Option<u32>,
    /// Mark threads cache-sensitive.
    pub cache_sensitive: bool,
}

impl BarrierCfg {
    /// Blocking barriers, endless rounds.
    pub fn new(threads: usize, burst_work: f64) -> Self {
        Self {
            threads,
            burst_work,
            sigma_frac: 0.15,
            rounds: None,
            spin_wait: false,
            comm_group: None,
            cache_sensitive: false,
        }
    }

    /// Limits the number of rounds (finite job with an execution time).
    pub fn rounds(mut self, r: u64) -> Self {
        self.rounds = Some(r);
        self
    }

    /// Spin at barriers.
    pub fn spinning(mut self) -> Self {
        self.spin_wait = true;
        self
    }

    /// Tags threads with a communication group.
    pub fn with_comm_group(mut self, g: u32) -> Self {
        self.comm_group = Some(g);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BarPhase {
    Computing,
    Waiting,
    Spinning,
}

/// Barrier-synchronized parallel workload.
pub struct BarrierParallel {
    cfg: BarrierCfg,
    rng: SimRng,
    stats: Rc<RefCell<ThroughputStats>>,
    tasks: Vec<TaskId>,
    phase: Vec<BarPhase>,
    task_round: Vec<u64>,
    round: u64,
    arrivals: usize,
    finished: bool,
}

impl BarrierParallel {
    /// Creates the workload and its statistics handle.
    pub fn new(cfg: BarrierCfg, rng: SimRng) -> (Self, Rc<RefCell<ThroughputStats>>) {
        let stats = ThroughputStats::handle();
        (
            Self {
                cfg,
                rng,
                stats: Rc::clone(&stats),
                tasks: Vec::new(),
                phase: Vec::new(),
                task_round: Vec::new(),
                round: 0,
                arrivals: 0,
                finished: false,
            },
            stats,
        )
    }

    fn index(&self, t: TaskId) -> usize {
        self.tasks.iter().position(|&x| x == t).expect("own task")
    }

    fn burst(&mut self) -> TaskAction {
        let w = self.rng.normal_at(
            self.cfg.burst_work,
            self.cfg.sigma_frac * self.cfg.burst_work,
            1.0,
        );
        self.stats.borrow_mut().work_done += w;
        TaskAction::Compute { work: w }
    }
}

impl Workload for BarrierParallel {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for _ in 0..self.cfg.threads {
            let mut spec = SpawnSpec::normal(nr);
            if let Some(g) = self.cfg.comm_group {
                spec = spec.comm_group(g);
            }
            if self.cfg.cache_sensitive {
                spec = spec.cache_sensitive();
            }
            let t = guest.spawn(plat, spec);
            self.tasks.push(t);
            self.phase.push(BarPhase::Computing);
            self.task_round.push(0);
            guest.wake_task(plat, t, None);
        }
    }

    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _token: u64) {}

    fn next_action(
        &mut self,
        guest: &mut GuestOs,
        plat: &mut dyn Platform,
        t: TaskId,
    ) -> TaskAction {
        let i = self.index(t);
        match self.phase[i] {
            BarPhase::Computing => {
                // Arrived at the barrier.
                self.arrivals += 1;
                if self.arrivals == self.cfg.threads {
                    // Barrier releases.
                    self.arrivals = 0;
                    self.round += 1;
                    let mut s = self.stats.borrow_mut();
                    s.completed += 1;
                    if let Some(r) = self.cfg.rounds {
                        if s.completed >= r {
                            self.finished = true;
                            s.finished_at = Some(plat.now());
                        }
                    }
                    drop(s);
                    // Wake the blocked waiters.
                    for (j, &task) in self.tasks.clone().iter().enumerate() {
                        if self.phase[j] == BarPhase::Waiting {
                            guest.wake_task(plat, task, guest.kern.task(t).state.vcpu());
                        }
                    }
                }
                if self.task_round[i] < self.round {
                    // Barrier already released (this was the last arriver).
                    self.task_round[i] = self.round;
                    if self.finished {
                        self.phase[i] = BarPhase::Computing;
                        return TaskAction::Exit;
                    }
                    return self.burst();
                }
                if self.cfg.spin_wait {
                    self.phase[i] = BarPhase::Spinning;
                    TaskAction::Compute { work: SPIN_QUANTUM }
                } else {
                    self.phase[i] = BarPhase::Waiting;
                    TaskAction::Block
                }
            }
            BarPhase::Spinning => {
                if self.task_round[i] < self.round {
                    self.task_round[i] = self.round;
                    self.phase[i] = BarPhase::Computing;
                    if self.finished {
                        return TaskAction::Exit;
                    }
                    return self.burst();
                }
                TaskAction::Compute { work: SPIN_QUANTUM }
            }
            BarPhase::Waiting => {
                // Woken by the releasing thread.
                if self.task_round[i] < self.round {
                    self.task_round[i] = self.round;
                    self.phase[i] = BarPhase::Computing;
                    if self.finished {
                        return TaskAction::Exit;
                    }
                    return self.burst();
                }
                TaskAction::Block // spurious
            }
        }
    }

    fn finished(&self) -> bool {
        self.finished
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.tasks.contains(&t)
    }

    fn label(&self) -> &str {
        "barrier-parallel"
    }
}

// ----------------------------------------------------------------------

/// Configuration of a lock-based parallel workload.
#[derive(Debug, Clone)]
pub struct LockCfg {
    /// Threads.
    pub threads: usize,
    /// Work outside the critical section (capacity-ns).
    pub outside_work: f64,
    /// Work inside the critical section (capacity-ns).
    pub critical_work: f64,
    /// Total critical sections to execute; `None` = forever.
    pub iterations: Option<u64>,
    /// Spin on the lock instead of blocking (user-level spinlocks).
    pub spin: bool,
    /// Communication group.
    pub comm_group: Option<u32>,
    /// Cache sensitivity.
    pub cache_sensitive: bool,
}

impl LockCfg {
    /// Blocking lock, endless.
    pub fn new(threads: usize, outside_work: f64, critical_work: f64) -> Self {
        Self {
            threads,
            outside_work,
            critical_work,
            iterations: None,
            spin: false,
            comm_group: None,
            cache_sensitive: false,
        }
    }

    /// Limits total iterations.
    pub fn iterations(mut self, n: u64) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Spin-lock variant.
    pub fn spinning(mut self) -> Self {
        self.spin = true;
        self
    }

    /// Tags threads with a communication group.
    pub fn with_comm_group(mut self, g: u32) -> Self {
        self.comm_group = Some(g);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LockPhase {
    Outside,
    WaitingLock,
    SpinningLock,
    Critical,
}

/// Lock-intensive parallel workload.
pub struct LockParallel {
    cfg: LockCfg,
    rng: SimRng,
    stats: Rc<RefCell<ThroughputStats>>,
    tasks: Vec<TaskId>,
    phase: Vec<LockPhase>,
    holder: Option<usize>,
    waiters: VecDeque<usize>,
    finished: bool,
}

impl LockParallel {
    /// Creates the workload and its statistics handle.
    pub fn new(cfg: LockCfg, rng: SimRng) -> (Self, Rc<RefCell<ThroughputStats>>) {
        let stats = ThroughputStats::handle();
        (
            Self {
                cfg,
                rng,
                stats: Rc::clone(&stats),
                tasks: Vec::new(),
                phase: Vec::new(),
                holder: None,
                waiters: VecDeque::new(),
                finished: false,
            },
            stats,
        )
    }

    fn index(&self, t: TaskId) -> usize {
        self.tasks.iter().position(|&x| x == t).expect("own task")
    }

    fn outside(&mut self) -> TaskAction {
        let w = self
            .rng
            .normal_at(self.cfg.outside_work, 0.15 * self.cfg.outside_work, 1.0);
        self.stats.borrow_mut().work_done += w;
        TaskAction::Compute { work: w }
    }

    fn critical(&mut self) -> TaskAction {
        self.stats.borrow_mut().work_done += self.cfg.critical_work;
        TaskAction::Compute {
            work: self.cfg.critical_work.max(1.0),
        }
    }
}

impl Workload for LockParallel {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for _ in 0..self.cfg.threads {
            let mut spec = SpawnSpec::normal(nr);
            if let Some(g) = self.cfg.comm_group {
                spec = spec.comm_group(g);
            }
            if self.cfg.cache_sensitive {
                spec = spec.cache_sensitive();
            }
            let t = guest.spawn(plat, spec);
            self.tasks.push(t);
            self.phase.push(LockPhase::Outside);
            guest.wake_task(plat, t, None);
        }
    }

    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _token: u64) {}

    fn next_action(
        &mut self,
        guest: &mut GuestOs,
        plat: &mut dyn Platform,
        t: TaskId,
    ) -> TaskAction {
        let i = self.index(t);
        if self.finished {
            return TaskAction::Exit;
        }
        match self.phase[i] {
            LockPhase::Outside => {
                // Try to acquire.
                if self.holder.is_none() {
                    self.holder = Some(i);
                    self.phase[i] = LockPhase::Critical;
                    self.critical()
                } else if self.cfg.spin {
                    self.phase[i] = LockPhase::SpinningLock;
                    TaskAction::Compute { work: SPIN_QUANTUM }
                } else {
                    self.phase[i] = LockPhase::WaitingLock;
                    self.waiters.push_back(i);
                    TaskAction::Block
                }
            }
            LockPhase::SpinningLock => {
                if self.holder.is_none() {
                    self.holder = Some(i);
                    self.phase[i] = LockPhase::Critical;
                    self.critical()
                } else {
                    TaskAction::Compute { work: SPIN_QUANTUM }
                }
            }
            LockPhase::WaitingLock => {
                // Granted the lock at release time.
                debug_assert_eq!(self.holder, Some(i));
                self.phase[i] = LockPhase::Critical;
                self.critical()
            }
            LockPhase::Critical => {
                // Release.
                let mut s = self.stats.borrow_mut();
                s.completed += 1;
                if let Some(n) = self.cfg.iterations {
                    if s.completed >= n {
                        self.finished = true;
                        s.finished_at = Some(plat.now());
                    }
                }
                drop(s);
                self.holder = None;
                if !self.finished {
                    if let Some(next) = self.waiters.pop_front() {
                        // Direct handoff to the oldest blocked waiter.
                        self.holder = Some(next);
                        let waiter_task = self.tasks[next];
                        guest.wake_task(plat, waiter_task, guest.kern.task(t).state.vcpu());
                    }
                } else {
                    // Wake everyone so they can exit.
                    for j in self.waiters.drain(..) {
                        let task = self.tasks[j];
                        self.phase[j] = LockPhase::Outside;
                        guest.wake_task(plat, task, None);
                    }
                }
                if self.finished {
                    return TaskAction::Exit;
                }
                self.phase[i] = LockPhase::Outside;
                self.outside()
            }
        }
    }

    fn finished(&self) -> bool {
        self.finished
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.tasks.contains(&t)
    }

    fn label(&self) -> &str {
        "lock-parallel"
    }
}
