//! Workload combinators.
//!
//! * [`MultiWorkload`] — hosts several workloads in one VM (e.g. the mixed
//!   Matmul + Nginx experiment of Figure 12b, or a benchmark plus
//!   best-effort background load). Timer tokens are namespaced per child
//!   and `next_action` is routed by task ownership.
//! * [`DelayedWorkload`] — starts a workload after a delay (the
//!   multi-tenant phases of Figure 17, where interfering workloads launch
//!   and terminate over time).

use guestos::{GuestOs, Platform, RunDelta, TaskAction, TaskId, VcpuId, Workload};
use simcore::SimTime;

/// Token stride per child in a [`MultiWorkload`].
const STRIDE: u64 = 1 << 32;

/// A platform proxy that offsets timer tokens into a child's namespace.
struct OffsetPlat<'a> {
    inner: &'a mut dyn Platform,
    offset: u64,
}

impl Platform for OffsetPlat<'_> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn steal_ns(&self, v: VcpuId) -> u64 {
        self.inner.steal_ns(v)
    }
    fn vcpu_active(&self, v: VcpuId) -> bool {
        self.inner.vcpu_active(v)
    }
    fn kick(&mut self, v: VcpuId) {
        self.inner.kick(v)
    }
    fn vcpu_idle(&mut self, v: VcpuId) {
        self.inner.vcpu_idle(v)
    }
    fn run_task(&mut self, v: VcpuId, t: TaskId, remaining: f64, factor: f64, cache_penalty: f64) {
        self.inner.run_task(v, t, remaining, factor, cache_penalty)
    }
    fn stop_task(&mut self, v: VcpuId) -> RunDelta {
        self.inner.stop_task(v)
    }
    fn poll_task(&mut self, v: VcpuId) -> RunDelta {
        self.inner.poll_task(v)
    }
    fn update_factor(&mut self, v: VcpuId, factor: f64) {
        self.inner.update_factor(v, factor)
    }
    fn send_ipi(&mut self, to: VcpuId) {
        self.inner.send_ipi(to)
    }
    fn comm_distance(&self, a: VcpuId, b: VcpuId) -> guestos::CommDistance {
        self.inner.comm_distance(a, b)
    }
    fn cacheline_latency_ns(&mut self, a: VcpuId, b: VcpuId) -> Option<f64> {
        self.inner.cacheline_latency_ns(a, b)
    }
    fn set_timer(&mut self, token: u64, at: SimTime) {
        debug_assert!(token < STRIDE, "child token too large: {token}");
        self.inner.set_timer(self.offset + token, at)
    }
}

/// Several workloads sharing one VM.
pub struct MultiWorkload {
    children: Vec<Box<dyn Workload>>,
}

impl MultiWorkload {
    /// Combines child workloads; their order determines timer namespaces.
    pub fn new(children: Vec<Box<dyn Workload>>) -> Self {
        assert!(!children.is_empty(), "at least one child workload");
        Self { children }
    }
}

impl Workload for MultiWorkload {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        for (i, c) in self.children.iter_mut().enumerate() {
            let mut proxy = OffsetPlat {
                inner: plat,
                offset: i as u64 * STRIDE,
            };
            c.start(guest, &mut proxy);
        }
    }

    fn on_timer(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform, token: u64) {
        let child = (token / STRIDE) as usize;
        if let Some(c) = self.children.get_mut(child) {
            let mut proxy = OffsetPlat {
                inner: plat,
                offset: child as u64 * STRIDE,
            };
            c.on_timer(guest, &mut proxy, token % STRIDE);
        }
    }

    fn next_action(
        &mut self,
        guest: &mut GuestOs,
        plat: &mut dyn Platform,
        t: TaskId,
    ) -> TaskAction {
        for (i, c) in self.children.iter_mut().enumerate() {
            if c.owns_task(t) {
                let mut proxy = OffsetPlat {
                    inner: plat,
                    offset: i as u64 * STRIDE,
                };
                return c.next_action(guest, &mut proxy, t);
            }
        }
        TaskAction::Exit
    }

    fn finished(&self) -> bool {
        self.children.iter().all(|c| c.finished())
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.children.iter().any(|c| c.owns_task(t))
    }

    fn label(&self) -> &str {
        "multi"
    }
}

/// Reserved token for the delayed-start timer.
const DELAY_TOKEN: u64 = STRIDE - 1;

/// Starts an inner workload after a delay.
pub struct DelayedWorkload {
    inner: Box<dyn Workload>,
    delay_ns: u64,
    started: bool,
}

impl DelayedWorkload {
    /// Wraps `inner` to begin `delay_ns` after simulation start.
    pub fn new(inner: Box<dyn Workload>, delay_ns: u64) -> Self {
        Self {
            inner,
            delay_ns,
            started: false,
        }
    }
}

impl Workload for DelayedWorkload {
    fn start(&mut self, _guest: &mut GuestOs, plat: &mut dyn Platform) {
        let at = plat.now().after(self.delay_ns);
        plat.set_timer(DELAY_TOKEN, at);
    }

    fn on_timer(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform, token: u64) {
        if token == DELAY_TOKEN && !self.started {
            self.started = true;
            self.inner.start(guest, plat);
        } else {
            self.inner.on_timer(guest, plat, token);
        }
    }

    fn next_action(
        &mut self,
        guest: &mut GuestOs,
        plat: &mut dyn Platform,
        t: TaskId,
    ) -> TaskAction {
        self.inner.next_action(guest, plat, t)
    }

    fn finished(&self) -> bool {
        self.started && self.inner.finished()
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.started && self.inner.owns_task(t)
    }

    fn label(&self) -> &str {
        "delayed"
    }
}
