//! Message-passing workload (hackbench archetype).
//!
//! Groups of senders and receivers exchange small messages: the classic
//! scheduler stress test. Every message is a cross-task wakeup, so the
//! workload is dominated by wake-up placement, IPI costs, and communication
//! locality — exactly what the LLC-aware experiment (Figure 13) measures.

use crate::common::ThroughputStats;
use guestos::{GuestOs, Platform, SpawnSpec, TaskAction, TaskId, TaskState, Workload};
use simcore::SimRng;
use std::cell::RefCell;
use std::rc::Rc;

/// Hackbench-style configuration.
#[derive(Debug, Clone)]
pub struct MsgPairsCfg {
    /// Number of groups; each group has its own senders/receivers and its
    /// own communication-group tag.
    pub groups: usize,
    /// Senders per group.
    pub senders: usize,
    /// Receivers per group.
    pub receivers: usize,
    /// Messages each sender sends in total.
    pub messages_per_sender: u64,
    /// Work per send (capacity-ns).
    pub send_work: f64,
    /// Work per receive (capacity-ns).
    pub recv_work: f64,
    /// Base communication-group id (groups use base, base+1, …).
    pub comm_group_base: u32,
}

impl MsgPairsCfg {
    /// Standard hackbench shape.
    pub fn new(groups: usize, senders: usize, receivers: usize, messages: u64) -> Self {
        Self {
            groups,
            senders,
            receivers,
            messages_per_sender: messages,
            send_work: 1024.0 * 20_000.0, // 20 µs per send
            recv_work: 1024.0 * 20_000.0,
            comm_group_base: 100,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    Sender { group: usize, sent: u64 },
    Receiver { group: usize },
}

/// Socket-buffer window: a sender blocks after this many unconsumed
/// messages until the receiver drains them (flow control — this is what
/// makes hackbench's wakeups bidirectional).
const SEND_WINDOW: u64 = 32;

/// The message-passing workload.
pub struct MsgPairs {
    cfg: MsgPairsCfg,
    rng: SimRng,
    stats: Rc<RefCell<ThroughputStats>>,
    tasks: Vec<TaskId>,
    roles: Vec<Role>,
    /// Pending messages per receiver (values = sender indices).
    inbox: Vec<std::collections::VecDeque<usize>>,
    /// Unconsumed messages in flight per sender.
    inflight: Vec<u64>,
    /// Senders blocked on a full window.
    send_blocked: Vec<bool>,
    /// Live senders per group.
    live_senders: Vec<usize>,
    finished: bool,
}

impl MsgPairs {
    /// Creates the workload and its statistics handle.
    pub fn new(cfg: MsgPairsCfg, rng: SimRng) -> (Self, Rc<RefCell<ThroughputStats>>) {
        let stats = ThroughputStats::handle();
        let live = vec![cfg.senders; cfg.groups];
        (
            Self {
                cfg,
                rng,
                stats: Rc::clone(&stats),
                tasks: Vec::new(),
                roles: Vec::new(),
                inbox: Vec::new(),
                inflight: Vec::new(),
                send_blocked: Vec::new(),
                live_senders: live,
                finished: false,
            },
            stats,
        )
    }

    fn index(&self, t: TaskId) -> usize {
        self.tasks.iter().position(|&x| x == t).expect("own task")
    }

    /// Receiver indices of a group.
    fn receivers_of(&self, group: usize) -> Vec<usize> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Role::Receiver { group: g } if *g == group))
            .map(|(i, _)| i)
            .collect()
    }
}

impl Workload for MsgPairs {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for group in 0..self.cfg.groups {
            let tag = self.cfg.comm_group_base + group as u32;
            for _ in 0..self.cfg.senders {
                let t = guest.spawn(plat, SpawnSpec::normal(nr).comm_group(tag));
                self.tasks.push(t);
                self.roles.push(Role::Sender { group, sent: 0 });
                self.inbox.push(std::collections::VecDeque::new());
                self.inflight.push(0);
                self.send_blocked.push(false);
                guest.wake_task(plat, t, None);
            }
            for _ in 0..self.cfg.receivers {
                let t = guest.spawn(plat, SpawnSpec::normal(nr).comm_group(tag));
                self.tasks.push(t);
                self.roles.push(Role::Receiver { group });
                self.inbox.push(std::collections::VecDeque::new());
                self.inflight.push(0);
                self.send_blocked.push(false);
                guest.wake_task(plat, t, None);
            }
        }
    }

    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _token: u64) {}

    fn next_action(
        &mut self,
        guest: &mut GuestOs,
        plat: &mut dyn Platform,
        t: TaskId,
    ) -> TaskAction {
        let i = self.index(t);
        match self.roles[i] {
            Role::Sender { group, sent } => {
                if sent > 0 && !self.send_blocked[i] {
                    // The previous send burst completed: deliver the message
                    // to a random receiver of the group.
                    let receivers = self.receivers_of(group);
                    let r = receivers[self.rng.index(receivers.len())];
                    self.inbox[r].push_back(i);
                    self.inflight[i] += 1;
                    if matches!(guest.kern.task(self.tasks[r]).state, TaskState::Blocked) {
                        let waker = guest.kern.task(t).state.vcpu();
                        guest.wake_task(plat, self.tasks[r], waker);
                    }
                }
                self.send_blocked[i] = false;
                if self.inflight[i] >= SEND_WINDOW {
                    // Socket buffer full: block until the receiver drains
                    // (it wakes us — flow control).
                    self.send_blocked[i] = true;
                    return TaskAction::Block;
                }
                if sent >= self.cfg.messages_per_sender {
                    self.live_senders[group] -= 1;
                    if self.live_senders[group] == 0 {
                        // Wake blocked receivers so they can drain and exit.
                        for r in self.receivers_of(group) {
                            if matches!(guest.kern.task(self.tasks[r]).state, TaskState::Blocked) {
                                guest.wake_task(plat, self.tasks[r], None);
                            }
                        }
                    }
                    return TaskAction::Exit;
                }
                self.roles[i] = Role::Sender {
                    group,
                    sent: sent + 1,
                };
                TaskAction::Compute {
                    work: self.cfg.send_work,
                }
            }
            Role::Receiver { group } => {
                if let Some(sender) = self.inbox[i].pop_front() {
                    self.inflight[sender] = self.inflight[sender].saturating_sub(1);
                    // Window reopened: wake the blocked sender (the
                    // receiver is the waker — bidirectional affinity).
                    if self.send_blocked[sender]
                        && self.inflight[sender] < SEND_WINDOW / 2
                        && matches!(
                            guest.kern.task(self.tasks[sender]).state,
                            TaskState::Blocked
                        )
                    {
                        let waker = guest.kern.task(t).state.vcpu();
                        guest.wake_task(plat, self.tasks[sender], waker);
                    }
                    let mut s = self.stats.borrow_mut();
                    s.completed += 1;
                    s.work_done += self.cfg.recv_work;
                    let total = self.cfg.groups as u64
                        * self.cfg.senders as u64
                        * self.cfg.messages_per_sender;
                    if s.completed >= total {
                        s.finished_at = Some(plat.now());
                        drop(s);
                        self.finished = true;
                    }
                    return TaskAction::Compute {
                        work: self.cfg.recv_work,
                    };
                }
                if self.live_senders[group] == 0 {
                    TaskAction::Exit
                } else {
                    TaskAction::Block
                }
            }
        }
    }

    fn finished(&self) -> bool {
        self.finished
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.tasks.contains(&t)
    }

    fn label(&self) -> &str {
        "msg-pairs"
    }
}
