//! Open-loop request-serving workloads (Tailbench, Nginx).
//!
//! Requests arrive in a Poisson stream; a pool of worker tasks serves them.
//! An idle (blocked) worker is woken per arrival; when all workers are busy
//! the request waits in an application backlog. Per-request latency is
//! decomposed exactly as Table 3 of the paper reports it for Masstree:
//!
//! * **queue** — arrival → service start. A woken worker only reaches its
//!   service burst after traversing the runqueue, so vCPU inactivity
//!   extends this component exactly as §2.3's *extended runqueue latency*
//!   describes;
//! * **service** — service start → completion (a stalled vCPU stretches
//!   this too);
//! * **end-to-end** — their sum.

use crate::common::LatencyStats;
use guestos::{GuestOs, Platform, Policy, SpawnSpec, TaskAction, TaskId, TaskState, Workload};
use metrics::TimeSeries;
use simcore::{SimRng, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Timer token for request arrivals.
const ARRIVAL: u64 = 1;

/// Configuration of a latency-server workload.
#[derive(Debug, Clone)]
pub struct LatencyServerCfg {
    /// Worker tasks.
    pub workers: usize,
    /// Mean service work per request (capacity-ns).
    pub service_work: f64,
    /// Service-time spread (lognormal sigma).
    pub sigma: f64,
    /// Mean request inter-arrival time (ns).
    pub interarrival_ns: f64,
    /// Spawn one `SCHED_IDLE` best-effort spinner per vCPU (the paper's
    /// "with best-effort tasks" configuration).
    pub best_effort: bool,
    /// Tag worker tasks with a communication group.
    pub comm_group: Option<u32>,
    /// Record a live completions-per-window series (Figures 16/17).
    pub series_window_ns: Option<u64>,
    /// Closed-loop drive (wrk/ab style): `(connections, think_ns)`. Each
    /// connection issues its next request one exponential think time after
    /// the previous response, so the completion rate is capacity-bound —
    /// slower service (e.g. an evicted LLC) costs throughput directly —
    /// while per-worker utilization stays low. `None` keeps the open-loop
    /// Poisson stream.
    pub closed_loop: Option<(usize, f64)>,
}

impl LatencyServerCfg {
    /// A server with the given worker count, mean per-request service work
    /// (capacity-ns) and mean inter-arrival time.
    pub fn new(workers: usize, service_work: f64, interarrival_ns: f64) -> Self {
        Self {
            workers,
            service_work,
            sigma: 0.3,
            interarrival_ns,
            best_effort: false,
            comm_group: None,
            series_window_ns: None,
            closed_loop: None,
        }
    }

    /// Switches to closed-loop drive with the given connection count and
    /// mean think time (ns); `interarrival_ns` is ignored in this mode.
    pub fn with_closed_loop(mut self, connections: usize, think_ns: f64) -> Self {
        self.closed_loop = Some((connections, think_ns));
        self
    }

    /// Enables per-vCPU best-effort spinners.
    pub fn with_best_effort(mut self) -> Self {
        self.best_effort = true;
        self
    }

    /// Enables the live-throughput series.
    pub fn with_series(mut self, window_ns: u64) -> Self {
        self.series_window_ns = Some(window_ns);
        self
    }

    /// Tags workers with a communication group.
    pub fn with_comm_group(mut self, g: u32) -> Self {
        self.comm_group = Some(g);
        self
    }
}

struct InFlight {
    arrived: SimTime,
    issued: SimTime,
}

/// The workload object.
pub struct LatencyServer {
    cfg: LatencyServerCfg,
    rng: SimRng,
    stats: Rc<RefCell<LatencyStats>>,
    workers: Vec<TaskId>,
    best_effort: Vec<TaskId>,
    current: Vec<Option<InFlight>>,
    backlog: VecDeque<SimTime>,
    /// Rotating wake cursor (closed-loop mode): spreads request wakeups
    /// across the worker pool so no single worker absorbs all the load.
    rr: usize,
}

impl LatencyServer {
    /// Creates the workload and its shared statistics handle.
    pub fn new(cfg: LatencyServerCfg, rng: SimRng) -> (Self, Rc<RefCell<LatencyStats>>) {
        let stats = LatencyStats::handle();
        if let Some(w) = cfg.series_window_ns {
            stats.borrow_mut().series = Some(TimeSeries::new(w, 0));
        }
        (
            Self {
                cfg,
                rng,
                stats: Rc::clone(&stats),
                workers: Vec::new(),
                best_effort: Vec::new(),
                current: Vec::new(),
                backlog: VecDeque::new(),
                rr: 0,
            },
            stats,
        )
    }

    /// Creates the workload around an *existing* statistics handle, so a
    /// tenant whose VM is live-migrated between hosts keeps accumulating
    /// into the same histograms. Does not reset the handle; a series is
    /// only attached if the config asks for one and none exists yet.
    pub fn with_stats(
        cfg: LatencyServerCfg,
        rng: SimRng,
        stats: Rc<RefCell<LatencyStats>>,
    ) -> Self {
        if let Some(w) = cfg.series_window_ns {
            let mut s = stats.borrow_mut();
            if s.series.is_none() {
                s.series = Some(TimeSeries::new(w, 0));
            }
        }
        Self {
            cfg,
            rng,
            stats,
            workers: Vec::new(),
            best_effort: Vec::new(),
            current: Vec::new(),
            backlog: VecDeque::new(),
            rr: 0,
        }
    }

    fn worker_index(&self, t: TaskId) -> Option<usize> {
        self.workers.iter().position(|&w| w == t)
    }

    fn draw_service(&mut self) -> f64 {
        self.rng
            .lognormal(self.cfg.service_work, self.cfg.sigma)
            .max(1.0)
    }

    fn schedule_arrival(&mut self, plat: &mut dyn Platform) {
        let dt = self.rng.exp(self.cfg.interarrival_ns).max(1.0) as u64;
        let at = plat.now().after(dt);
        plat.set_timer(ARRIVAL, at);
    }

    /// Schedules one connection's next request a think time from now.
    /// Timer events with the same token coexist, so each connection simply
    /// posts its own `ARRIVAL`.
    fn schedule_think(&mut self, plat: &mut dyn Platform, think_ns: f64) {
        let dt = self.rng.exp(think_ns).max(1.0) as u64;
        let at = plat.now().after(dt);
        plat.set_timer(ARRIVAL, at);
    }

    fn complete(&mut self, plat: &mut dyn Platform, now: SimTime, w: usize) {
        let Some(fl) = self.current[w].take() else {
            return;
        };
        let queue = fl.issued.since(fl.arrived);
        let e2e = now.since(fl.arrived);
        let service = e2e.saturating_sub(queue);
        let mut s = self.stats.borrow_mut();
        s.queue.record(queue);
        s.service.record(service);
        s.e2e.record(e2e);
        s.completed += 1;
        if let Some(series) = s.series.as_mut() {
            series.tick(now.ns());
        }
        drop(s);
        // Closed loop: the connection thinks, then issues the next request.
        if let Some((_, think_ns)) = self.cfg.closed_loop {
            self.schedule_think(plat, think_ns);
        }
    }
}

impl Workload for LatencyServer {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for _ in 0..self.cfg.workers {
            let mut spec = SpawnSpec::normal(nr).latency_sensitive();
            if let Some(g) = self.cfg.comm_group {
                spec = spec.comm_group(g);
            }
            let t = guest.spawn(plat, spec);
            self.workers.push(t);
            self.current.push(None);
        }
        if self.cfg.best_effort {
            for _ in 0..nr {
                let t = guest.spawn(plat, SpawnSpec::normal(nr).policy(Policy::Idle));
                self.best_effort.push(t);
                guest.wake_task(plat, t, None);
            }
        }
        match self.cfg.closed_loop {
            Some((connections, think_ns)) => {
                for _ in 0..connections {
                    self.schedule_think(plat, think_ns);
                }
            }
            None => self.schedule_arrival(plat),
        }
    }

    fn on_timer(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform, token: u64) {
        if token != ARRIVAL {
            return;
        }
        let now = plat.now();
        self.backlog.push_back(now);
        // Wake one idle worker; it pulls the request when it actually runs,
        // so the measured queue time includes the runqueue latency. Closed
        // loop rotates the search start so the load spreads over the pool;
        // open loop keeps the original first-fit.
        let n = self.workers.len();
        let start = if self.cfg.closed_loop.is_some() {
            self.rr % n.max(1)
        } else {
            0
        };
        let idle = (0..n).map(|i| (start + i) % n.max(1)).find(|&w| {
            self.current[w].is_none()
                && matches!(guest.kern.task(self.workers[w]).state, TaskState::Blocked)
        });
        if let Some(w) = idle {
            if self.cfg.closed_loop.is_some() {
                self.rr = w + 1;
            }
            guest.wake_task(plat, self.workers[w], None);
        }
        // Open loop: the Poisson stream re-arms itself. (Closed loop re-arms
        // per connection, on completion.)
        if self.cfg.closed_loop.is_none() {
            self.schedule_arrival(plat);
        }
    }

    fn next_action(
        &mut self,
        _guest: &mut GuestOs,
        plat: &mut dyn Platform,
        t: TaskId,
    ) -> TaskAction {
        let now = plat.now();
        let Some(w) = self.worker_index(t) else {
            // A best-effort spinner: spin forever.
            return TaskAction::Compute { work: 1.0e18 };
        };
        if self.current[w].is_some() {
            self.complete(plat, now, w);
        }
        match self.backlog.pop_front() {
            Some(arrived) => {
                let work = self.draw_service();
                self.current[w] = Some(InFlight {
                    arrived,
                    issued: now,
                });
                TaskAction::Compute { work }
            }
            None => TaskAction::Block,
        }
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.workers.contains(&t) || self.best_effort.contains(&t)
    }

    fn label(&self) -> &str {
        "latency-server"
    }
}
